"""Reliability objective: schedule success probability under
exponential per-processor / per-link failure rates.

The model is the standard one (Benoit et al., PAPERS.md): a resource
with failure rate ``lambda`` survives an interval of length ``d`` with
probability ``exp(-lambda * d)``. A schedule succeeds when every task
execution and every message hop survives, so its reliability is the
product over all slots and hops — a value in ``(0, 1]`` that is
monotone non-increasing in every rate (the property suite checks both).

**Replication.** With ``replication = r > 1`` each task is notionally
executed by ``r`` independent replicas and succeeds when at least one
does: the per-task term becomes ``1 - (1 - exp(-lambda*d))**r``.
Replication models the fault-tolerance knob the multi-criteria
literature trades against energy — it never changes the schedule
itself, only the success probability attributed to it.

**Reuse of the failure machinery.** :meth:`ReliabilityModel.
from_scenario` derives rates from the same
:class:`~repro.dynamic.events.Scenario` tokens the failure injector
consumes (``"f1l2a0s7"``): the expected event counts over a horizon
become per-resource rates, so the analytic model and the injected-event
simulation describe the same failure regime.

A model can be attached to a :class:`~repro.network.system.
HeterogeneousSystem` (``system.failure_model``); unattached systems
fall back to :meth:`ReliabilityModel.uniform`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["ReliabilityModel", "schedule_reliability"]

#: default per-processor failure rate (per time unit)
DEFAULT_PROC_RATE = 1e-5
#: default per-link failure rate (per time unit)
DEFAULT_LINK_RATE = 1e-5


@dataclass(frozen=True)
class ReliabilityModel:
    """Exponential failure rates per processor and per link channel."""

    #: failure rate of each processor (per time unit)
    proc_rates: Tuple[float, ...]
    #: failure rate of every link channel (per time unit)
    link_rate: float = DEFAULT_LINK_RATE
    #: independent replicas per task (1 = no replication)
    replication: int = 1

    def __post_init__(self):
        if not self.proc_rates:
            raise ConfigurationError(
                "reliability model needs at least one processor"
            )
        if any(r < 0 for r in self.proc_rates):
            raise ConfigurationError("processor failure rates must be >= 0")
        if self.link_rate < 0:
            raise ConfigurationError("link failure rate must be >= 0")
        if not isinstance(self.replication, int) or self.replication < 1:
            raise ConfigurationError(
                f"replication must be an int >= 1, got {self.replication!r}"
            )

    @property
    def n_procs(self) -> int:
        return len(self.proc_rates)

    def link_rate_for(self, link) -> float:
        """Failure rate of one link channel (uniform today; the hook is
        per-link so heterogeneous rates slot in without touching the
        evaluator)."""
        return self.link_rate

    @classmethod
    def uniform(cls, n_procs: int, proc_rate: float = DEFAULT_PROC_RATE,
                link_rate: float = DEFAULT_LINK_RATE,
                replication: int = 1) -> "ReliabilityModel":
        return cls(
            proc_rates=(proc_rate,) * n_procs,
            link_rate=link_rate,
            replication=replication,
        )

    @classmethod
    def from_scenario(cls, scenario, system, horizon: float,
                      replication: int = 1) -> "ReliabilityModel":
        """Rates implied by a failure-injection scenario over ``horizon``
        time units: the scenario's expected event counts, spread evenly
        over the system's resources, become per-resource rates — so the
        analytic reliability and a :class:`~repro.dynamic.events.
        FailureInjector` run describe the same regime."""
        from repro.dynamic.events import Scenario, parse_scenario

        if not isinstance(scenario, Scenario):
            scenario = parse_scenario(scenario)
        if horizon <= 0:
            raise ConfigurationError(
                f"scenario horizon must be positive, got {horizon}"
            )
        n_procs = system.n_procs
        n_channels = max(1, len(list(system.topology.channels())))
        proc_rate = scenario.n_proc_failures / (n_procs * horizon)
        link_rate = scenario.n_link_failures / (n_channels * horizon)
        return cls(
            proc_rates=(proc_rate,) * n_procs,
            link_rate=link_rate,
            replication=replication,
        )


def schedule_reliability(
    schedule, model: Optional[ReliabilityModel] = None
) -> float:
    """Success probability of a committed schedule under ``model``
    (default: the system's attached model, else
    :meth:`ReliabilityModel.uniform`). Always in ``(0, 1]``.
    """
    system = schedule.system
    if model is None:
        model = getattr(system, "failure_model", None) or (
            ReliabilityModel.uniform(system.n_procs)
        )
    if model.n_procs != system.n_procs:
        raise ConfigurationError(
            f"reliability model covers {model.n_procs} processors; the "
            f"system has {system.n_procs}"
        )
    total = 1.0
    # tasks in graph order (the same stable order every engine sees)
    for task in system.graph.tasks():
        slot = schedule.slots.get(task)
        if slot is None:
            continue  # partial schedules: score what is committed
        r = math.exp(-model.proc_rates[slot.proc] * slot.duration)
        if model.replication > 1:
            r = 1.0 - (1.0 - r) ** model.replication
        total *= r
    for channel in schedule.link_order:
        for hop in schedule.link_order[channel]:
            total *= math.exp(-model.link_rate_for(hop.link) * hop.duration)
    return total
