"""Multi-criteria objectives: makespan, energy, reliability, throughput.

See :mod:`repro.objectives.registry` for the registry/token grammar and
Pareto helpers, and the per-objective modules for the models. All
evaluators are pure deterministic reductions over committed schedules —
the ``REPRO_HOTPATH`` byte-identity contract extends through them.
"""

from repro.objectives.energy import PowerModel, schedule_energy
from repro.objectives.registry import (
    OBJECTIVE_NAMES,
    OBJECTIVE_SENSES,
    dominates,
    evaluate_objectives,
    objectives_token,
    pareto_front,
    parse_objectives,
)
from repro.objectives.reliability import ReliabilityModel, schedule_reliability
from repro.objectives.throughput import bottleneck_busy_times, schedule_throughput

__all__ = [
    "OBJECTIVE_NAMES",
    "OBJECTIVE_SENSES",
    "parse_objectives",
    "objectives_token",
    "evaluate_objectives",
    "dominates",
    "pareto_front",
    "PowerModel",
    "schedule_energy",
    "ReliabilityModel",
    "schedule_reliability",
    "schedule_throughput",
    "bottleneck_busy_times",
]
