"""Throughput objective: steady-state period of pipelined instances.

When the same task graph is executed on successive data sets (a
pipelined workflow — the setting of Benoit/Rehn-Sonigo/Robert's
multi-criteria study, PAPERS.md), consecutive instances can overlap:
instance ``k+1`` starts on each resource as soon as instance ``k`` has
released it. In the steady state the initiation interval (the *period*)
is set by the bottleneck resource — the processor or link channel with
the most total busy time per instance:

    period = max over resources of (total busy time on that resource)

The objective value is the period itself (minimized; throughput is its
reciprocal). The property suite checks the defining invariant: the
period is never smaller than any single resource's busy time.

Like every objective, this is a pure reduction over the committed
schedule's containers — no simulation, no wall clock — so engine modes
agree byte-for-byte.
"""

from __future__ import annotations

__all__ = ["schedule_throughput", "bottleneck_busy_times"]


def bottleneck_busy_times(schedule) -> dict:
    """Total busy time per resource: ``{("proc", p) | ("link", ch): t}``.

    Processors accumulate their slot durations, link channels their hop
    durations, both in container order.
    """
    out = {}
    system = schedule.system
    for proc in system.topology.processors:
        busy = 0.0
        for task in schedule.proc_order[proc]:
            busy += schedule.slots[task].duration
        out[("proc", proc)] = busy
    for channel in schedule.link_order:
        busy = 0.0
        for hop in schedule.link_order[channel]:
            busy += hop.duration
        out[("link", channel)] = busy
    return out


def schedule_throughput(schedule) -> float:
    """Steady-state period of pipelined instances of this schedule:
    the maximum per-resource busy time (see module docstring)."""
    best = 0.0
    for busy in bottleneck_busy_times(schedule).values():
        if busy > best:
            best = busy
    return best
