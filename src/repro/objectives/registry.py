"""The objective registry: names, senses, tokens, and Pareto dominance.

Makespan is the library's historical (and default) objective; this
module makes it one of several. Every objective is a pure, deterministic
float reduction over a *committed* :class:`~repro.schedule.schedule.
Schedule` — evaluators never mutate the schedule and never consult
wall-clock state, so the four ``REPRO_HOTPATH`` engine modes (whose
schedules are byte-identical by contract) produce byte-identical
objective values.

Tokens. A cell's ``objectives`` axis is a comma-separated token
(``"energy,reliability"``). :func:`parse_objectives` accepts the names
in any order, rejects unknown names and duplicates, and
:func:`objectives_token` renders the **canonical** spelling (registry
order) — so reordering a token can never change a
:class:`~repro.experiments.cache.ResultCache` key, exactly like the
overlay grammar in :mod:`repro.corpus.overlays`.

Senses. ``makespan``, ``energy`` and ``throughput`` (the steady-state
initiation *period* of pipelined instances) are minimized;
``reliability`` (schedule success probability) is maximized.
:func:`dominates` and :func:`pareto_front` encode that, and front
membership is insertion-order independent by construction (dominance is
a property of the point set, not of any iteration order).

Examples
--------
>>> parse_objectives("reliability,energy")
('energy', 'reliability')
>>> objectives_token("reliability,energy")
'energy,reliability'
>>> parse_objectives("energy,energy")
Traceback (most recent call last):
    ...
repro.errors.ConfigurationError: duplicate objective 'energy'
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError

__all__ = [
    "OBJECTIVE_NAMES",
    "OBJECTIVE_SENSES",
    "parse_objectives",
    "objectives_token",
    "evaluate_objectives",
    "dominates",
    "pareto_front",
]

#: every objective the library ships, in canonical (token) order.
#: ``makespan`` stays the default and stays bit-exact — it is read
#: straight off the schedule, untouched by the other evaluators.
OBJECTIVE_NAMES: Tuple[str, ...] = (
    "makespan", "energy", "reliability", "throughput",
)

#: optimization direction per objective ("min" | "max")
OBJECTIVE_SENSES: Dict[str, str] = {
    "makespan": "min",      # schedule length
    "energy": "min",        # busy + idle + link transfer energy
    "reliability": "max",   # schedule success probability in (0, 1]
    "throughput": "min",    # steady-state period of pipelined instances
}

_RANK = {name: i for i, name in enumerate(OBJECTIVE_NAMES)}


def parse_objectives(
    objectives: Union[str, Sequence[str]],
) -> Tuple[str, ...]:
    """Parse an objectives token (or name sequence) into the canonical
    tuple. Any input order is accepted; unknown names and duplicates are
    rejected (a duplicate would let two spellings of one computation
    alias different cache keys — same rule as overlay parts)."""
    if isinstance(objectives, str):
        parts = [p.strip() for p in objectives.split(",") if p.strip()]
    else:
        parts = list(objectives)
    seen: List[str] = []
    for name in parts:
        if name not in _RANK:
            raise ConfigurationError(
                f"unknown objective {name!r}; known: {list(OBJECTIVE_NAMES)}"
            )
        if name in seen:
            raise ConfigurationError(f"duplicate objective {name!r}")
        seen.append(name)
    return tuple(sorted(seen, key=_RANK.__getitem__))


def objectives_token(objectives: Union[str, Sequence[str]]) -> str:
    """Canonical comma-separated token (empty for no objectives)."""
    return ",".join(parse_objectives(objectives))


def evaluate_objectives(
    schedule,
    objectives: Union[str, Sequence[str]] = OBJECTIVE_NAMES,
) -> Dict[str, float]:
    """Evaluate the requested objectives on a committed schedule.

    Returns ``{name: value}`` with keys in canonical order. Every
    evaluator is a deterministic reduction over the schedule's own
    containers, so for byte-identical schedules the values are
    byte-identical too (the engine-mode contract extends through this
    function; pinned by ``tests/test_hotpath_equivalence.py``).
    """
    values: Dict[str, float] = {}
    for name in parse_objectives(objectives):
        if name == "makespan":
            values[name] = schedule.schedule_length()
        elif name == "energy":
            from repro.objectives.energy import schedule_energy

            values[name] = schedule_energy(schedule)
        elif name == "reliability":
            from repro.objectives.reliability import schedule_reliability

            values[name] = schedule_reliability(schedule)
        else:  # throughput
            from repro.objectives.throughput import schedule_throughput

            values[name] = schedule_throughput(schedule)
    return values


# ----------------------------------------------------------------------
# Pareto dominance
# ----------------------------------------------------------------------

def _check_vector(values: Dict[str, float], names: Tuple[str, ...]) -> None:
    missing = [n for n in names if n not in values]
    if missing:
        raise ConfigurationError(
            f"objective vector lacks {missing}; has {sorted(values)}"
        )


def dominates(
    a: Dict[str, float],
    b: Dict[str, float],
    objectives: Union[str, Sequence[str]] = OBJECTIVE_NAMES,
) -> bool:
    """True when vector ``a`` Pareto-dominates ``b``: at least as good
    in every objective (per its sense) and strictly better in one."""
    names = parse_objectives(objectives)
    _check_vector(a, names)
    _check_vector(b, names)
    strictly = False
    for name in names:
        if OBJECTIVE_SENSES[name] == "max":
            if a[name] < b[name]:
                return False
            strictly = strictly or a[name] > b[name]
        else:
            if a[name] > b[name]:
                return False
            strictly = strictly or a[name] < b[name]
    return strictly


def pareto_front(
    points: Iterable[Tuple[str, Dict[str, float]]],
    objectives: Union[str, Sequence[str]] = OBJECTIVE_NAMES,
) -> List[str]:
    """Labels of the non-dominated points, in input order.

    Membership is insertion-order independent: a point is on the front
    iff no *other* point dominates it, which is a property of the set.
    Ties (two identical vectors) dominate neither way, so both stay on
    the front.
    """
    names = parse_objectives(objectives)
    items = list(points)
    front: List[str] = []
    for i, (label, values) in enumerate(items):
        if not any(
            dominates(other, values, names)
            for j, (_, other) in enumerate(items) if j != i
        ):
            front.append(label)
    return front
