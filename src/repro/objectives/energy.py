"""Energy objective: a frequency/idle-power model per processor plus
link transfer energy over the per-link bandwidth/duplex substrate.

The model follows the classic CMOS decomposition the multi-criteria
scheduling literature uses (Benoit/Rehn-Sonigo/Robert, PAPERS.md):

* **busy power** — a processor executing a task draws
  ``alpha * f_p**3 + idle_p`` per time unit (dynamic power cubic in the
  relative clock ``f_p``, on top of its static leakage);
* **idle power** — a powered-on processor draws ``idle_p`` per time
  unit whenever it is not executing, until the schedule finishes (no
  shutdown: the platform is on for the whole makespan);
* **link energy** — every committed message hop draws ``link_power``
  per time unit of its duration. Hop durations already include the
  per-link bandwidth divisor and the duplex channel discipline, so the
  link substrate's heterogeneity flows into energy for free.

Because ``alpha > 0`` and ``f_p > 0``, busy power strictly exceeds idle
power on every processor — which makes "energy strictly increases when
any execution cost increases" a theorem, not a hope (the property suite
in ``tests/test_objectives.py`` checks it on randomized schedules).

A model can be attached to a :class:`~repro.network.system.
HeterogeneousSystem` (``system.power_model``); unattached systems fall
back to :meth:`PowerModel.uniform`, which is deterministic, so every
schedule has a well-defined energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.util.rng import RngStream

__all__ = ["PowerModel", "schedule_energy"]

#: default static leakage per processor (per time unit)
DEFAULT_IDLE_POWER = 0.25
#: default energy draw of a busy link channel (per time unit)
DEFAULT_LINK_POWER = 0.5


@dataclass(frozen=True)
class PowerModel:
    """Per-processor frequency/idle-power model (see module docstring)."""

    #: relative clock per processor (dynamic power ~ alpha * f**3)
    frequencies: Tuple[float, ...]
    #: static leakage per processor, drawn busy or idle
    idle_power: Tuple[float, ...]
    #: energy draw per time unit of a busy link channel
    link_power: float = DEFAULT_LINK_POWER
    #: dynamic-power coefficient
    alpha: float = 1.0

    def __post_init__(self):
        if len(self.frequencies) != len(self.idle_power):
            raise ConfigurationError(
                f"power model has {len(self.frequencies)} frequencies but "
                f"{len(self.idle_power)} idle powers"
            )
        if not self.frequencies:
            raise ConfigurationError("power model needs at least one processor")
        if any(f <= 0 for f in self.frequencies):
            raise ConfigurationError("frequencies must be positive")
        if any(p < 0 for p in self.idle_power):
            raise ConfigurationError("idle powers must be >= 0")
        if self.link_power < 0:
            raise ConfigurationError("link power must be >= 0")
        if self.alpha <= 0:
            raise ConfigurationError("alpha must be positive")

    @property
    def n_procs(self) -> int:
        return len(self.frequencies)

    def busy_power(self, proc: int) -> float:
        """Power drawn while executing: ``alpha * f**3 + idle`` — always
        strictly above :attr:`idle_power` (alpha and f are positive)."""
        f = self.frequencies[proc]
        return self.alpha * f * f * f + self.idle_power[proc]

    @classmethod
    def uniform(cls, n_procs: int) -> "PowerModel":
        """The default model: unit clocks, uniform leakage."""
        return cls(
            frequencies=(1.0,) * n_procs,
            idle_power=(DEFAULT_IDLE_POWER,) * n_procs,
        )

    @classmethod
    def sample(cls, n_procs: int, seed: int = 0,
               freq_range: Tuple[float, float] = (0.5, 2.0)) -> "PowerModel":
        """Deterministically sampled heterogeneous model (property tests
        and experiments): clocks from ``U[freq_range]``, leakage a fixed
        fraction of each clock."""
        lo, hi = freq_range
        if not (0 < lo <= hi):
            raise ConfigurationError(f"bad frequency range [{lo}, {hi}]")
        rng = RngStream(seed).fork("power-model", n_procs)
        freqs = tuple(rng.uniform(lo, hi) for _ in range(n_procs))
        return cls(
            frequencies=freqs,
            idle_power=tuple(DEFAULT_IDLE_POWER * f for f in freqs),
        )


def schedule_energy(schedule, model: Optional[PowerModel] = None) -> float:
    """Total energy of a committed schedule under ``model`` (default:
    the system's attached model, else :meth:`PowerModel.uniform`).

    Deterministic reduction: processors in topology order, slots in
    processor-order, hops in channel order — the same containers the
    schedule serializes from, so byte-identical schedules give
    byte-identical energies.
    """
    system = schedule.system
    if model is None:
        model = getattr(system, "power_model", None) or PowerModel.uniform(
            system.n_procs
        )
    if model.n_procs != system.n_procs:
        raise ConfigurationError(
            f"power model covers {model.n_procs} processors; the system "
            f"has {system.n_procs}"
        )
    sl = schedule.schedule_length()
    total = 0.0
    for proc in system.topology.processors:
        busy = 0.0
        bp = model.busy_power(proc)
        for task in schedule.proc_order[proc]:
            d = schedule.slots[task].duration
            total += bp * d
            busy += d
        total += model.idle_power[proc] * (sl - busy)
    for channel in schedule.link_order:
        for hop in schedule.link_order[channel]:
            total += model.link_power * hop.duration
    return total
