"""Shared scaffolding for routing-table list schedulers (DLS/HEFT/CPOP).

These algorithms build a schedule monotonically: once a task is placed its
times never change. Messages are routed over *static shortest paths*
(:class:`repro.network.routing.RoutingTable`) with store-and-forward
timing and exclusive link reservations — the contention model is identical
to BSA's substrate, only the route choice differs (table vs incremental).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.graph.model import TaskId
from repro.network.routing import RoutingTable
from repro.network.system import HeterogeneousSystem
from repro.network.topology import Proc
from repro.schedule.events import Edge
from repro.schedule.linkplan import LinkPlanner, slot_start
from repro.schedule.schedule import Schedule
from repro.util.intervals import fast_path_enabled


@dataclass
class MessagePlan:
    """Planned (not yet committed) routing of one incoming message."""

    edge: Edge
    path: Optional[List[Proc]]          # None => local
    hop_starts: Optional[List[float]]
    arrival: float


class ListScheduleBuilder:
    """Monotonic schedule construction with routed messages."""

    def __init__(
        self,
        system: HeterogeneousSystem,
        algorithm: str,
        routing: Optional[RoutingTable] = None,
        link_insertion: bool = True,
        proc_insertion: bool = False,
    ):
        self.system = system
        self.sched = Schedule(system, algorithm)
        self.routing = routing or RoutingTable(system.topology)
        self.link_insertion = link_insertion
        self.proc_insertion = proc_insertion

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def plan_messages(self, task: TaskId, proc: Proc) -> Tuple[float, List[MessagePlan]]:
        """Plan the routing of all incoming messages of ``task`` onto
        ``proc``; return (data-arrival time, plans). Nothing is committed.

        Plans within one call share a tentative link load so two messages
        of the same task never plan overlapping reservations.
        """
        graph = self.system.graph
        planner = LinkPlanner(self.sched, self.link_insertion)
        plans: List[MessagePlan] = []
        da = 0.0
        for k in graph.predecessors(task):
            edge = (k, task)
            if not self.sched.is_scheduled(k):
                raise SchedulingError(
                    f"cannot place {task!r}: predecessor {k!r} unscheduled"
                )
            src_proc = self.sched.proc_of(k)
            ready = self.sched.slots[k].finish
            if src_proc == proc:
                plans.append(MessagePlan(edge, None, None, ready))
            else:
                path = self.routing.path(src_proc, proc)
                hop_starts, arrival = planner.walk_path(edge, path, ready)
                plans.append(MessagePlan(edge, path, hop_starts, arrival))
            da = max(da, plans[-1].arrival)
        return da, plans

    def earliest_start(self, task: TaskId, proc: Proc, data_arrival: float) -> float:
        """Earliest start on ``proc`` given arrival, per the slot policy."""
        duration = self.system.exec_cost(task, proc)
        return slot_start(self.sched, proc, data_arrival, duration,
                          self.proc_insertion)

    def proc_available(self, proc: Proc) -> float:
        """Finish time of the last task on ``proc`` (DLS's ``TF``)."""
        if fast_path_enabled():
            return self.sched.proc_timeline(proc).last_finish()
        busy = self.sched.proc_busy(proc)
        return busy[-1].finish if busy else 0.0

    # ------------------------------------------------------------------
    # commitment
    # ------------------------------------------------------------------
    def commit(
        self,
        task: TaskId,
        proc: Proc,
        start: float,
        plans: List[MessagePlan],
    ) -> None:
        """Place ``task`` at ``start`` on ``proc`` and commit its messages."""
        for plan in plans:
            if plan.path is None:
                self.sched.mark_local(plan.edge)
            else:
                self.sched.set_route(plan.edge, plan.path, hop_starts=plan.hop_starts)
        self.sched.place_task(task, proc, start=start)

    def finish(self) -> Schedule:
        """Final bookkeeping: mark still-unrouted local edges, sanity-check."""
        graph = self.system.graph
        for edge in graph.edges():
            if edge not in self.sched.routes:
                u, v = edge
                if (
                    self.sched.is_scheduled(u)
                    and self.sched.is_scheduled(v)
                    and self.sched.proc_of(u) == self.sched.proc_of(v)
                ):
                    self.sched.mark_local(edge)
        return self.sched
