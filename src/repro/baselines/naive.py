"""Trivial reference schedulers used as sanity bounds in tests and benches.

``schedule_serial`` is the best single-processor execution: every parallel
schedule should beat or match it on parallel-friendly graphs, and no
contention model can make it invalid (there are no messages).

``schedule_round_robin`` spreads tasks over processors with no cost
awareness; it exercises the routing substrate heavily and provides an
upper-bound-ish reference for how bad naive mapping gets on sparse
topologies.
"""

from __future__ import annotations

from repro.graph.validation import validate_graph
from repro.network.routing import RoutingTable
from repro.network.system import HeterogeneousSystem
from repro.baselines.common import ListScheduleBuilder
from repro.schedule.schedule import Schedule


def schedule_serial(system: HeterogeneousSystem) -> Schedule:
    """All tasks, in topological order, on the fastest single processor."""
    validate_graph(system.graph)
    graph = system.graph
    proc = min(
        system.topology.processors,
        key=lambda p: sum(system.exec_cost(t, p) for t in graph.tasks()),
    )
    builder = ListScheduleBuilder(system, algorithm="serial")
    for task in graph.topological_order():
        da, plans = builder.plan_messages(task, proc)
        start = builder.earliest_start(task, proc, da)
        builder.commit(task, proc, start, plans)
    return builder.finish()


def schedule_round_robin(system: HeterogeneousSystem) -> Schedule:
    """Topological order, processors assigned cyclically."""
    validate_graph(system.graph)
    graph = system.graph
    builder = ListScheduleBuilder(
        system,
        algorithm="round-robin",
        routing=RoutingTable(system.topology),
        link_insertion=True,
        proc_insertion=False,
    )
    procs = system.topology.processors
    for i, task in enumerate(graph.topological_order()):
        proc = procs[i % len(procs)]
        da, plans = builder.plan_messages(task, proc)
        start = builder.earliest_start(task, proc, da)
        builder.commit(task, proc, start, plans)
    return builder.finish()
