"""Series-parallel decomposition mapper (extension beyond the paper).

The series-parallel view of a task graph (classic in the pipelined
multi-criteria literature — see PAPERS.md) decomposes it into *series
chains* (maximal linear paths: every interior edge joins an
out-degree-1 producer to an in-degree-1 consumer) composed in parallel.
A chain's tasks have no external fan-in or fan-out between them, so any
placement that splits a chain across processors pays communication for
zero gained parallelism.

The mapper exploits exactly that: it walks tasks in HEFT's upward-rank
order, and when it meets the *head* of a chain it selects the processor
minimizing the head's earliest finish time **plus the remaining chain's
execution cost on that processor** — a lookahead that prices the whole
series segment, not just its first task. Every later member of the
chain is pinned to the head's processor (committed with slot insertion,
so unrelated chains can still interleave). Messages between chains are
routed over the shortest-path table with exclusive link reservations —
the same contention substrate as BSA/DLS/HEFT, so the comparison is
apples-to-apples.

On chain-heavy graphs (Gaussian elimination, LU) this collapses whole
dependency spines onto one processor and avoids HEFT's occasional
ping-ponging of a linear sequence between processors; on fan-out-heavy
graphs it degrades gracefully to per-task EFT placement (every chain
has length 1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.model import TaskId
from repro.graph.validation import validate_graph
from repro.network.routing import RoutingTable
from repro.network.system import HeterogeneousSystem
from repro.network.topology import Proc
from repro.baselines.common import ListScheduleBuilder
from repro.baselines.heft import upward_ranks
from repro.schedule.schedule import Schedule


def series_chains(graph) -> Dict[TaskId, List[TaskId]]:
    """Decompose ``graph`` into maximal series chains.

    Returns ``{head: [head, m1, m2, ...]}`` covering every task exactly
    once. An edge ``u -> v`` is *serial* when ``u`` has out-degree 1 and
    ``v`` has in-degree 1 — then ``v`` can only ever run after ``u`` and
    receives data from nobody else, so the pair belongs to one chain.
    Tasks with no serial edge form singleton chains.
    """
    succ_of: Dict[TaskId, TaskId] = {}
    has_serial_pred = set()
    for u in graph.tasks():
        succs = list(graph.successors(u))
        if len(succs) != 1:
            continue
        v = succs[0]
        if len(list(graph.predecessors(v))) == 1:
            succ_of[u] = v
            has_serial_pred.add(v)
    chains: Dict[TaskId, List[TaskId]] = {}
    for t in graph.tasks():
        if t in has_serial_pred:
            continue  # interior/tail of some chain
        chain = [t]
        while chain[-1] in succ_of:
            chain.append(succ_of[chain[-1]])
        chains[t] = chain
    return chains


def schedule_spdecomp(system: HeterogeneousSystem) -> Schedule:
    """Run the series-parallel decomposition mapper.

    >>> from repro.network.system import HeterogeneousSystem
    >>> from repro.network.topology import ring
    >>> from repro.workloads.suites import random_graph
    >>> system = HeterogeneousSystem.sample(
    ...     random_graph(12, seed=3), ring(4), seed=0)
    >>> schedule = schedule_spdecomp(system)
    >>> schedule.algorithm, len(schedule.slots)
    ('SPDECOMP', 12)
    """
    validate_graph(system.graph)
    graph = system.graph
    builder = ListScheduleBuilder(
        system,
        algorithm="SPDECOMP",
        routing=RoutingTable(system.topology),
        link_insertion=True,
        proc_insertion=True,
    )
    chains = series_chains(graph)
    # tail exec cost per chain head: chain cost minus the head's own
    tail_of: Dict[TaskId, List[TaskId]] = {
        head: chain[1:] for head, chain in chains.items()
    }
    rank = upward_ranks(system)
    order_index = {t: k for k, t in enumerate(graph.tasks())}
    # descending rank is precedence-safe: rank(parent) > rank(child),
    # and a chain head always outranks its members (it precedes them).
    order = sorted(graph.tasks(), key=lambda t: (-rank[t], order_index[t]))

    pin: Dict[TaskId, Proc] = {}
    for task in order:
        if task in pin:
            candidates = [pin[task]]
        else:
            candidates = list(system.topology.processors)
        tail = tail_of.get(task, [])
        best = None  # (score, proc, start, plans)
        for proc in candidates:
            da, plans = builder.plan_messages(task, proc)
            start = builder.earliest_start(task, proc, da)
            eft = start + system.exec_cost(task, proc)
            # price the whole series segment on this processor
            score = eft + sum(system.exec_cost(m, proc) for m in tail)
            if best is None or (score, proc) < (best[0], best[1]):
                best = (score, proc, start, plans)
        _, proc, start, plans = best
        builder.commit(task, proc, start, plans)
        for member in tail:
            pin[member] = proc
    return builder.finish()
