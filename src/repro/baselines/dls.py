"""Dynamic Level Scheduling (Sih & Lee 1993) — the paper's baseline.

DLS is a greedy dynamic list scheduler for heterogeneous,
interconnection-constrained systems. At every step it evaluates all
(ready task, processor) pairs and schedules the pair with the largest
*dynamic level*:

    DL(Ti, Px) = SL*(Ti) - max(DA(Ti, Px), TF(Px)) + Delta(Ti, Px)

* ``SL*`` — static level: the largest sum of *median* execution costs
  along any path from the task to a sink (communication excluded);
* ``DA`` — data arrival: when the last incoming message lands on ``Px``,
  with messages routed over the static shortest-path routing table and
  reserving exclusive link slots (store-and-forward);
* ``TF`` — the time the processor finishes its last scheduled task (DLS
  appends; no processor-slot insertion);
* ``Delta(Ti, Px) = E*(Ti) - E(Ti, Px)`` — the heterogeneity bonus for
  placing the task on a fast processor.

The paper criticizes exactly this structure: the greedy, locally-earliest
choice plus fixed table routes can clog links for later tasks. We keep the
algorithm faithful so that comparison is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graph.analysis import static_b_levels
from repro.graph.model import TaskId
from repro.graph.validation import validate_graph
from repro.network.routing import RoutingTable
from repro.network.system import HeterogeneousSystem, LinkHeterogeneity
from repro.baselines.common import ListScheduleBuilder, MessagePlan
from repro.schedule.linkplan import arrival_lower_bound
from repro.schedule.schedule import Schedule
from repro.util.intervals import fast_path_enabled


@dataclass(frozen=True)
class DLSOptions:
    """Knobs for the DLS baseline.

    ``link_insertion=False`` (default) reserves link slots greedily in
    scheduling order, as Sih & Lee describe — and as the paper's critique
    of DLS's message handling presumes. Setting it True gives DLS the
    earliest-gap insertion substrate (a stronger variant than the paper's
    baseline; used in ablations).

    ``routing_strategy`` selects the static routing table: ``"bfs"``
    shortest paths (any topology), ``"ecube"`` dimension-ordered routing
    (hypercubes only — the static policy the paper names in §2.3), or
    ``"weighted"`` cost-aware Dijkstra over per-hop transfer time
    ``1/bandwidth`` (prefers fat links on heterogeneous topologies; the
    ``dls-weighted`` registry variant).
    """

    link_insertion: bool = False
    routing_strategy: str = "bfs"


def schedule_dls(
    system: HeterogeneousSystem,
    options: Optional[DLSOptions] = None,
) -> Schedule:
    """Run DLS and return a complete schedule.

    >>> from repro.network.system import HeterogeneousSystem
    >>> from repro.network.topology import ring
    >>> from repro.workloads.suites import random_graph
    >>> system = HeterogeneousSystem.sample(
    ...     random_graph(12, seed=3), ring(4), seed=0)
    >>> schedule = schedule_dls(system)
    >>> schedule.algorithm, len(schedule.slots)
    ('DLS', 12)
    """
    options = options or DLSOptions()
    validate_graph(system.graph)
    graph = system.graph
    builder = ListScheduleBuilder(
        system,
        algorithm="DLS",
        routing=RoutingTable(system.topology, strategy=options.routing_strategy),
        link_insertion=options.link_insertion,
        proc_insertion=False,
    )

    # static level: median execution costs, no communication
    median = {t: system.median_exec_cost(t) for t in graph.tasks()}
    sl_star = static_b_levels(graph, exec_cost=lambda t: median[t])
    order_index = {t: k for k, t in enumerate(graph.tasks())}

    n_unsched_preds: Dict[TaskId, int] = {
        t: graph.in_degree(t) for t in graph.tasks()
    }
    ready: List[TaskId] = [t for t in graph.tasks() if n_unsched_preds[t] == 0]
    procs = system.topology.processors

    use_pruning = fast_path_enabled()
    # With homogeneous link factors and uniform unit bandwidth every hop
    # of message (k, task) costs its nominal c, and table routes have a
    # fixed hop count — so the queue-free store-and-forward chain
    # lower-bounds the data arrival per (pred, proc) pair float-exactly.
    # Skewed bandwidths make fast-link hops cheaper than c, so the chain
    # would overshoot; fall back to the producer-finish bound there.
    distance_bound = use_pruning and (
        system.link_mode is LinkHeterogeneity.HOMOGENEOUS
        and system.topology.uniform_bandwidth
    )
    routing = builder.routing
    slots = builder.sched.slots
    # DLS is monotonic: once a task's predecessors are placed their procs
    # and finish times never change, so the per-(task, proc) arrival
    # bound is computed once when the task first becomes ready.
    da_lb_cache: Dict[TaskId, List[float]] = {}
    while ready:
        best = None  # (key, task, proc, start, plans)
        for task in ready:
            sl = sl_star[task]
            oi = order_index[task]
            if use_pruning:
                # Exact upper bound on DL(task, proc): the data arrival
                # can never precede the latest predecessor finish plus
                # (for homogeneous links) the queue-free store-and-
                # forward chain over the table route's hop count, so
                #   DL <= sl - max(da_lb, TF) + delta
                # float-exactly (same subtraction/addition operands,
                # repeated addition mirroring the plan's hop chain).
                # A pair is skipped only when even that bound loses to
                # the incumbent key, making the argmax — and hence the
                # schedule — identical to exhaustive evaluation.
                lbs = da_lb_cache.get(task)
                if lbs is None:
                    pred_info = [
                        (builder.sched.proc_of(k), slots[k].finish,
                         graph.comm_cost(k, task))
                        for k in graph.predecessors(task)
                    ]
                    hop_distance = (
                        (lambda p, q: len(routing.path(p, q)) - 1)
                        if distance_bound else None
                    )
                    lbs = [
                        arrival_lower_bound(pred_info, proc, hop_distance)
                        for proc in procs
                    ]
                    da_lb_cache[task] = lbs
            for proc in procs:
                tf = builder.proc_available(proc)
                delta = median[task] - system.exec_cost(task, proc)
                if use_pruning and best is not None:
                    dl_ub = sl - max(lbs[proc], tf) + delta
                    if (-dl_ub, oi, proc) >= best[0]:
                        continue
                da, plans = builder.plan_messages(task, proc)
                start = max(da, tf)
                dl = sl - start + delta
                key = (-dl, oi, proc)
                if best is None or key < best[0]:
                    best = (key, task, proc, start, plans)
        _, task, proc, start, plans = best
        builder.commit(task, proc, start, plans)
        ready.remove(task)
        for s in graph.successors(task):
            n_unsched_preds[s] -= 1
            if n_unsched_preds[s] == 0:
                ready.append(s)

    sched = builder.finish()
    if len(sched.slots) != graph.n_tasks:
        raise ConfigurationError("DLS failed to schedule all tasks")
    return sched
