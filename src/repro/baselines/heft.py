"""Contention-aware HEFT (extension beyond the paper).

HEFT (Topcuoglu et al.) ranks tasks by *upward rank* (mean execution cost
plus the heaviest successor chain including nominal communication) and
places each task, in rank order, on the processor minimizing its earliest
finish time with slot insertion. Classic HEFT assumes a contention-free
network; here messages are routed over the shortest-path table and reserve
exclusive link slots, so results are directly comparable with BSA/DLS on
the same substrate.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.model import TaskId
from repro.graph.validation import validate_graph
from repro.network.routing import RoutingTable
from repro.network.system import HeterogeneousSystem
from repro.baselines.common import ListScheduleBuilder
from repro.schedule.schedule import Schedule


def upward_ranks(system: HeterogeneousSystem) -> Dict[TaskId, float]:
    """HEFT's rank_u with mean execution costs and nominal comm costs."""
    graph = system.graph
    rank: Dict[TaskId, float] = {}
    for t in reversed(graph.topological_order()):
        best = 0.0
        for s in graph.successors(t):
            cand = graph.comm_cost(t, s) + rank[s]
            if cand > best:
                best = cand
        rank[t] = system.mean_exec_cost(t) + best
    return rank


def schedule_heft(system: HeterogeneousSystem) -> Schedule:
    """Run contention-aware HEFT and return a complete schedule.

    >>> from repro.network.system import HeterogeneousSystem
    >>> from repro.network.topology import ring
    >>> from repro.workloads.suites import random_graph
    >>> system = HeterogeneousSystem.sample(
    ...     random_graph(12, seed=3), ring(4), seed=0)
    >>> schedule = schedule_heft(system)
    >>> schedule.algorithm, len(schedule.slots)
    ('HEFT', 12)
    """
    validate_graph(system.graph)
    graph = system.graph
    builder = ListScheduleBuilder(
        system,
        algorithm="HEFT",
        routing=RoutingTable(system.topology),
        link_insertion=True,
        proc_insertion=True,
    )
    rank = upward_ranks(system)
    order_index = {t: k for k, t in enumerate(graph.tasks())}
    # descending rank is precedence-safe: rank(parent) > rank(child)
    order = sorted(graph.tasks(), key=lambda t: (-rank[t], order_index[t]))

    for task in order:
        best = None  # (eft, proc, start, plans)
        for proc in system.topology.processors:
            da, plans = builder.plan_messages(task, proc)
            start = builder.earliest_start(task, proc, da)
            eft = start + system.exec_cost(task, proc)
            if best is None or (eft, proc) < (best[0], best[1]):
                best = (eft, proc, start, plans)
        _, proc, start, plans = best
        builder.commit(task, proc, start, plans)
    return builder.finish()
