"""Comparator algorithms.

* :func:`schedule_dls` — the paper's baseline (Sih & Lee 1993), a dynamic
  list scheduler with routing-table message scheduling.
* :func:`schedule_heft`, :func:`schedule_cpop` — contention-aware
  adaptations of the classic heterogeneous list schedulers (extensions
  beyond the paper, useful as additional reference points).
* :func:`schedule_serial`, :func:`schedule_round_robin` — sanity bounds.
"""

from repro.baselines.common import ListScheduleBuilder
from repro.baselines.dls import DLSOptions, schedule_dls
from repro.baselines.heft import schedule_heft
from repro.baselines.cpop import schedule_cpop
from repro.baselines.etf import schedule_etf
from repro.baselines.naive import schedule_serial, schedule_round_robin

__all__ = [
    "ListScheduleBuilder",
    "DLSOptions",
    "schedule_dls",
    "schedule_heft",
    "schedule_cpop",
    "schedule_etf",
    "schedule_serial",
    "schedule_round_robin",
]
