"""Contention-aware ETF — Earliest Task First (Hwang et al. 1989).

ETF is the classic greedy-by-start-time list scheduler: at every step it
evaluates all (ready task, processor) pairs and commits the pair with the
*earliest start time*, breaking ties by larger static level (so the
critical path is preferred among equally early candidates). It is the
natural counterpoint to DLS (which maximizes level *minus* start time)
and a common yardstick in the contention-aware scheduling literature that
followed this paper.

Messages route over the static shortest-path table with exclusive link
reservations, identical to our DLS substrate, so all baselines compare on
equal footing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.analysis import static_b_levels
from repro.graph.model import TaskId
from repro.graph.validation import validate_graph
from repro.network.routing import RoutingTable
from repro.network.system import HeterogeneousSystem
from repro.baselines.common import ListScheduleBuilder
from repro.schedule.schedule import Schedule


def schedule_etf(system: HeterogeneousSystem) -> Schedule:
    """Run contention-aware ETF and return a complete schedule.

    >>> from repro.network.system import HeterogeneousSystem
    >>> from repro.network.topology import ring
    >>> from repro.workloads.suites import random_graph
    >>> system = HeterogeneousSystem.sample(
    ...     random_graph(12, seed=3), ring(4), seed=0)
    >>> schedule = schedule_etf(system)
    >>> schedule.algorithm, len(schedule.slots)
    ('ETF', 12)
    """
    validate_graph(system.graph)
    graph = system.graph
    builder = ListScheduleBuilder(
        system,
        algorithm="ETF",
        routing=RoutingTable(system.topology),
        link_insertion=False,   # contemporaneous with DLS: greedy links
        proc_insertion=False,
    )

    # static level on median costs, as in the DLS comparison setting
    median = {t: system.median_exec_cost(t) for t in graph.tasks()}
    sl = static_b_levels(graph, exec_cost=lambda t: median[t])
    order_index = {t: k for k, t in enumerate(graph.tasks())}

    n_unsched: Dict[TaskId, int] = {t: graph.in_degree(t) for t in graph.tasks()}
    ready: List[TaskId] = [t for t in graph.tasks() if n_unsched[t] == 0]

    while ready:
        best = None  # (start, -static level, index, proc, task, plans)
        for task in ready:
            for proc in system.topology.processors:
                da, plans = builder.plan_messages(task, proc)
                start = max(da, builder.proc_available(proc))
                key = (start, -sl[task], order_index[task], proc)
                if best is None or key < best[0]:
                    best = (key, task, proc, start, plans)
        _, task, proc, start, plans = best
        builder.commit(task, proc, start, plans)
        ready.remove(task)
        for s in graph.successors(task):
            n_unsched[s] -= 1
            if n_unsched[s] == 0:
                ready.append(s)
    return builder.finish()
