"""Contention-aware CPOP (extension beyond the paper).

CPOP (Topcuoglu et al.) assigns every critical-path task to the single
processor minimizing the CP's total execution time; other tasks are placed
by earliest finish time. Priorities are ``rank_u + rank_d``. As with our
HEFT variant, messages are routed with real link reservations so the
comparison with BSA/DLS is on equal footing.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set

from repro.graph.model import TaskId
from repro.graph.validation import validate_graph
from repro.network.routing import RoutingTable
from repro.network.system import HeterogeneousSystem
from repro.baselines.common import ListScheduleBuilder
from repro.baselines.heft import upward_ranks
from repro.schedule.schedule import Schedule
from repro.util.tolerance import TIE_EPS


def downward_ranks(system: HeterogeneousSystem) -> Dict[TaskId, float]:
    """rank_d: heaviest chain from an entry task into each task."""
    graph = system.graph
    rank: Dict[TaskId, float] = {}
    for t in graph.topological_order():
        best = 0.0
        for p in graph.predecessors(t):
            cand = rank[p] + system.mean_exec_cost(p) + graph.comm_cost(p, t)
            if cand > best:
                best = cand
        rank[t] = best
    return rank


def schedule_cpop(system: HeterogeneousSystem) -> Schedule:
    """Run contention-aware CPOP and return a complete schedule.

    >>> from repro.network.system import HeterogeneousSystem
    >>> from repro.network.topology import ring
    >>> from repro.workloads.suites import random_graph
    >>> system = HeterogeneousSystem.sample(
    ...     random_graph(12, seed=3), ring(4), seed=0)
    >>> schedule = schedule_cpop(system)
    >>> schedule.algorithm, len(schedule.slots)
    ('CPOP', 12)
    """
    validate_graph(system.graph)
    graph = system.graph
    ru = upward_ranks(system)
    rd = downward_ranks(system)
    priority = {t: ru[t] + rd[t] for t in graph.tasks()}
    cp_value = max(priority.values())

    # walk one critical path by priority
    cp_tasks: Set[TaskId] = set()
    entries = [t for t in graph.tasks() if not graph.predecessors(t)]
    cur = max(entries, key=lambda t: (priority[t] >= cp_value - TIE_EPS, priority[t]))
    cp_tasks.add(cur)
    while graph.successors(cur):
        nxt = max(
            graph.successors(cur),
            key=lambda s: (abs(priority[s] - cp_value) <= TIE_EPS, priority[s]),
        )
        cp_tasks.add(nxt)
        cur = nxt

    cp_proc = min(
        system.topology.processors,
        key=lambda p: sum(system.exec_cost(t, p) for t in cp_tasks),
    )

    builder = ListScheduleBuilder(
        system,
        algorithm="CPOP",
        routing=RoutingTable(system.topology),
        link_insertion=True,
        proc_insertion=True,
    )

    order_index = {t: k for k, t in enumerate(graph.tasks())}
    n_unsched = {t: graph.in_degree(t) for t in graph.tasks()}
    heap = [(-priority[t], order_index[t], t) for t in graph.tasks() if n_unsched[t] == 0]
    heapq.heapify(heap)

    while heap:
        _, _, task = heapq.heappop(heap)
        if task in cp_tasks:
            da, plans = builder.plan_messages(task, cp_proc)
            start = builder.earliest_start(task, cp_proc, da)
            builder.commit(task, cp_proc, start, plans)
        else:
            best = None
            for proc in system.topology.processors:
                da, plans = builder.plan_messages(task, proc)
                start = builder.earliest_start(task, proc, da)
                eft = start + system.exec_cost(task, proc)
                if best is None or (eft, proc) < (best[0], best[1]):
                    best = (eft, proc, start, plans)
            _, proc, start, plans = best
            builder.commit(task, proc, start, plans)
        for s in graph.successors(task):
            n_unsched[s] -= 1
            if n_unsched[s] == 0:
                heapq.heappush(heap, (-priority[s], order_index[s], s))
    return builder.finish()
