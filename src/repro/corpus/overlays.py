"""Cache-key-visible parameter overlays for imported task graphs.

External cells take a file's structure and costs verbatim; the
generated suites, by contrast, can be swept over granularity and
heterogeneity axes. An :class:`Overlay` closes that gap: it is an
explicit, deterministic transform applied to an imported workload
*after* reading and *before* binding —

* **bridge** — repair a disconnected import with epsilon-cost
  connector edges (:func:`repro.graph.interchange.bridge_components`);
* **ccr** — rescale every communication cost by one factor so the
  graph's communication-to-computation ratio (total comm / total exec)
  hits a target, making CCR a sweepable axis for files whose native
  units (e.g. bytes vs seconds) put it anywhere;
* **granularity** — multiply every communication cost by a factor, the
  external analogue of the generated suites' granularity axis;
* **het_range / het_seed** — re-sample the per-processor execution-cost
  vectors of a trace-like workload from ``U[lo, hi]`` (fastest
  processor normalized to ``lo``, exactly like
  :meth:`HeterogeneousSystem.sample`), replacing the file's platform
  binding with a synthetic one. Scalar workloads already sample
  heterogeneity at bind time from the cell's ``het_lo``/``het_hi``
  axes, so the overlay rejects them rather than duplicating that path.

Every overlay renders to a canonical token (:meth:`Overlay.token`,
inverted by :func:`parse_overlay`) that
:func:`repro.workloads.external.app_token` appends to the cell's app
token — so overlays land in ``Cell.key()`` and therefore in
:class:`~repro.experiments.cache.ResultCache` keys: two cells that
differ in any overlay parameter can never alias one cache entry.

Examples
--------
>>> ovl = Overlay(ccr=0.5, granularity=2.0)
>>> ovl.token()
'ccr0.5,gran2.0'
>>> parse_overlay('ccr0.5,gran2.0') == ovl
True
>>> Overlay().token()
''
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, GraphError
from repro.graph.interchange import BRIDGE_POLICIES, ExternalWorkload
from repro.util.rng import RngStream

__all__ = [
    "Overlay",
    "parse_overlay",
    "apply_overlay",
    "overlay_grid",
]

_HET_RE = re.compile(r"het([^:@,]+):([^:@,]+)@(\d+)\Z")


def _fnum(x: float) -> str:
    """Exact, shortest-repr text for a float — tokens must distinguish
    any two different parameter values, so lossy %g is not an option."""
    return repr(float(x))


@dataclass(frozen=True)
class Overlay:
    """One explicit transform of an imported workload (see module doc).

    The defaults are the identity: no bridging, no comm rescaling, no
    heterogeneity re-sampling — ``token()`` is then empty and
    :func:`apply_overlay` returns the workload object unchanged.
    """

    #: import repair policy ("none" | "epsilon" | "components"),
    #: applied at load time
    bridge: str = "none"
    #: target communication-to-computation ratio (None = keep the file's)
    ccr: Optional[float] = None
    #: multiplier on every communication cost
    granularity: float = 1.0
    #: re-sample exec vectors from U[lo, hi] (trace-like workloads only)
    het_range: Optional[Tuple[float, float]] = None
    #: seed of the heterogeneity re-sample
    het_seed: int = 0

    def __post_init__(self):
        if self.bridge not in BRIDGE_POLICIES:
            raise ConfigurationError(
                f"overlay bridge must be one of {list(BRIDGE_POLICIES)}, "
                f"got {self.bridge!r}"
            )
        if self.ccr is not None and not self.ccr > 0:
            raise ConfigurationError(
                f"overlay ccr must be positive, got {self.ccr}"
            )
        if not self.granularity > 0:
            raise ConfigurationError(
                f"overlay granularity must be positive, got {self.granularity}"
            )
        if self.het_range is not None:
            lo, hi = self.het_range
            if not (0 < lo <= hi):
                raise ConfigurationError(
                    f"bad overlay heterogeneity range [{lo}, {hi}]"
                )
            object.__setattr__(self, "het_range", (float(lo), float(hi)))
        if self.het_seed < 0:
            raise ConfigurationError(
                f"overlay het_seed must be >= 0, got {self.het_seed}"
            )

    @property
    def is_identity(self) -> bool:
        """True when the overlay changes nothing at all.

        >>> Overlay().is_identity, Overlay(bridge="epsilon").is_identity
        (True, False)
        """
        return self.bridge == "none" and not self.transforms

    @property
    def transforms(self) -> bool:
        """True when :func:`apply_overlay` would alter the workload
        (bridging happens at load time and does not count)."""
        return (
            self.ccr is not None
            or self.granularity != 1.0
            or self.het_range is not None
        )

    def token(self) -> str:
        """Canonical cache-key fragment; empty for the identity overlay.
        Floats render at full repr precision, so any two different
        overlays produce different tokens (and so different cache keys).

        >>> Overlay(bridge="epsilon", het_range=(1, 10), het_seed=3).token()
        'bridge,het1.0:10.0@3'
        >>> Overlay(bridge="components").token()
        'bridgecomp'
        """
        parts: List[str] = []
        if self.bridge == "epsilon":
            parts.append("bridge")
        elif self.bridge == "components":
            parts.append("bridgecomp")
        if self.ccr is not None:
            parts.append(f"ccr{_fnum(self.ccr)}")
        if self.granularity != 1.0:
            parts.append(f"gran{_fnum(self.granularity)}")
        if self.het_range is not None:
            lo, hi = self.het_range
            parts.append(f"het{_fnum(lo)}:{_fnum(hi)}@{self.het_seed}")
        return ",".join(parts)


def parse_overlay(text: str) -> Overlay:
    """Invert :meth:`Overlay.token` (any float spelling is accepted;
    the canonical one is full repr).

    >>> parse_overlay("bridge,ccr10") == Overlay(bridge="epsilon", ccr=10.0)
    True
    >>> parse_overlay("")
    Overlay(bridge='none', ccr=None, granularity=1.0, het_range=None, het_seed=0)

    Repeated parts are rejected rather than last-wins — ``"ccr2,ccr3"``
    is always a typo, and silently dropping ``ccr2`` would run (and
    cache) a different experiment than the one named:

    >>> parse_overlay("ccr2,ccr3")
    Traceback (most recent call last):
      ...
    repro.errors.ConfigurationError: duplicate overlay token part 'ccr3' (ccr already set)
    """
    bridge = "none"
    ccr: Optional[float] = None
    granularity = 1.0
    het_range: Optional[Tuple[float, float]] = None
    het_seed = 0
    if not text:
        return Overlay()

    def _float(raw: str, part: str) -> float:
        try:
            return float(raw)
        except ValueError:
            raise ConfigurationError(
                f"malformed overlay token part {part!r}"
            ) from None

    seen = set()

    def _once(kind: str, part: str) -> None:
        if kind in seen:
            raise ConfigurationError(
                f"duplicate overlay token part {part!r} ({kind} already set)"
            )
        seen.add(kind)

    for part in text.split(","):
        if part == "bridge":
            _once("bridge", part)
            bridge = "epsilon"
        elif part == "bridgecomp":
            _once("bridge", part)
            bridge = "components"
        elif part.startswith("ccr"):
            _once("ccr", part)
            ccr = _float(part[3:], part)
        elif part.startswith("gran"):
            _once("gran", part)
            granularity = _float(part[4:], part)
        elif part.startswith("het"):
            m = _HET_RE.match(part)
            if not m:
                raise ConfigurationError(f"malformed overlay token part {part!r}")
            _once("het", part)
            het_range = (_float(m.group(1), part), _float(m.group(2), part))
            het_seed = int(m.group(3))
        else:
            raise ConfigurationError(f"unknown overlay token part {part!r}")
    return Overlay(
        bridge=bridge, ccr=ccr, granularity=granularity,
        het_range=het_range, het_seed=het_seed,
    )


def apply_overlay(workload: ExternalWorkload, overlay: Overlay) -> ExternalWorkload:
    """Apply ``overlay``'s transforms to an imported workload.

    Returns a new :class:`ExternalWorkload` (or ``workload`` itself for
    a no-op overlay). Bridging is *not* applied here — it is a load
    policy (``load_workload(bridge=...)``), because a disconnected
    graph must be repaired before validation, not after.

    Transform order: ``ccr`` rescales all communication costs to the
    target ratio, ``granularity`` multiplies them, ``het_range``
    re-samples the exec-cost vectors against the (by then final)
    nominal graph costs.
    """
    if not overlay.transforms:
        return workload
    graph = workload.graph.copy()
    if overlay.ccr is not None:
        total_comm = graph.total_comm_cost()
        if total_comm <= 0:
            raise GraphError(
                f"cannot rescale {graph.name!r} to CCR {overlay.ccr:g}: the "
                f"graph has no communication cost to scale"
            )
        factor = overlay.ccr * graph.total_exec_cost() / total_comm
        for u, v in graph.edges():
            graph.set_edge_cost(u, v, graph.comm_cost(u, v) * factor)
    if overlay.granularity != 1.0:
        for u, v in graph.edges():
            graph.set_edge_cost(u, v, graph.comm_cost(u, v) * overlay.granularity)
    exec_costs = workload.exec_costs
    if overlay.het_range is not None:
        if exec_costs is None:
            raise GraphError(
                f"overlay heterogeneity re-sampling needs per-processor "
                f"cost vectors, but {graph.name!r} carries scalar costs — "
                f"sweep scalar workloads through the cell's het_lo/het_hi "
                f"axes instead"
            )
        lo, hi = overlay.het_range
        n_procs = len(next(iter(exec_costs.values())))
        rng = RngStream(overlay.het_seed).fork("overlay-het")
        resampled = {}
        for t in graph.tasks():
            factors = [rng.uniform(lo, hi) for _ in range(n_procs)]
            fastest = min(range(n_procs), key=lambda p: factors[p])
            factors[fastest] = lo
            resampled[t] = tuple(f * graph.cost(t) for f in factors)
        exec_costs = resampled
    return dataclasses.replace(workload, graph=graph, exec_costs=exec_costs)


def overlay_grid(
    ccrs: Iterable[float] = (),
    granularities: Iterable[float] = (),
    het_ranges: Iterable[Tuple[float, float]] = (),
    het_seed: int = 0,
    bridge: str = "none",
) -> List[Overlay]:
    """Cartesian product of overlay axes; an empty axis contributes its
    identity value, so ``overlay_grid()`` is ``[Overlay()]``.

    >>> [o.token() for o in overlay_grid(ccrs=[0.1, 1], granularities=[2])]
    ['ccr0.1,gran2.0', 'ccr1.0,gran2.0']
    """
    out: List[Overlay] = []
    for ccr in tuple(ccrs) or (None,):
        for gran in tuple(granularities) or (1.0,):
            for het in tuple(het_ranges) or (None,):
                out.append(
                    Overlay(
                        bridge=bridge,
                        ccr=ccr,
                        granularity=gran,
                        het_range=het,
                        het_seed=het_seed,
                    )
                )
    return out
