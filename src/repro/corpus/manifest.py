"""Corpus manifests: a directory of graph files as one experiment input.

:func:`scan_corpus` walks a directory, reads every file with a
registered interchange extension, and records per-file metadata — the
format it sniffed to, task/edge counts, the native CCR, the number of
weakly-connected components (>1 means the file needs the epsilon
bridge), the per-processor vector length for trace-like files, and the
full content hash. The resulting :class:`Manifest` serializes to JSON
(``repro corpus scan --out``) so a scan can be inspected, diffed and
re-expanded without re-reading the corpus.

:func:`manifest_cells` is the expansion step: manifest x overlay-grid x
topology x scheduler into :class:`~repro.experiments.config.Cell` lists
for the parallel ``run_cells`` engine. Two corpus-specific rules:

* files with more than one component get ``bridge="epsilon"`` added to
  their overlay automatically (the cell would otherwise fail to load);
* an overlay heterogeneity re-sample on a *scalar* file is routed
  through the cell's ``het_lo``/``het_hi``/``system_seed`` axes instead
  (equally cache-key-visible) — vectors are re-sampled in the overlay,
  scalars at bind time, and either way the sweep axis works.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.overlays import Overlay
from repro.errors import ConfigurationError
from repro.experiments.config import ALGORITHM_NAMES, Cell
from repro.experiments.external import corpus_paths
from repro.graph.interchange import ExternalWorkload, load_workload
from repro.graph.validation import weak_components
from repro.workloads.external import external_cell

__all__ = [
    "DEFAULT_CORPUS_DIR",
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "ManifestEntry",
    "Manifest",
    "scan_corpus",
    "manifest_cells",
    "CORPUS_TOPOLOGIES",
    "CORPUS_N_PROCS",
]

#: the bundled mini-corpus (DAX + WfCommons + dummy-bridged STG + trace)
DEFAULT_CORPUS_DIR = os.path.join("examples", "corpus")

MANIFEST_FORMAT = "repro-corpus-manifest"
MANIFEST_VERSION = 1

#: topologies a corpus bench sweeps by default
CORPUS_TOPOLOGIES: Tuple[str, ...] = ("ring", "hypercube")

#: default processor count for scalar corpus files (vector files pin
#: their own); matches the EXPERIMENTS.md §7/§8 setting
CORPUS_N_PROCS = 8


@dataclass(frozen=True)
class ManifestEntry:
    """Per-file metadata recorded by :func:`scan_corpus`."""

    path: str
    fmt: str                    # registry name the content sniffed to
    name: str                   # the graph's own name
    n_tasks: int
    n_edges: int
    components: int             # weakly-connected components (1 = sound)
    ccr: float                  # total comm cost / total exec cost
    n_procs: Optional[int]      # exec-vector length (None = scalar costs)
    content_hash: str           # full sha256 of the raw file text

    @property
    def needs_bridge(self) -> bool:
        """True when scheduling this file requires the epsilon bridge."""
        return self.components > 1

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ManifestEntry":
        return cls(**{f.name: d[f.name] for f in dataclasses.fields(cls)})


@dataclass(frozen=True)
class Manifest:
    """A scanned corpus: directory + one :class:`ManifestEntry` per file."""

    directory: str
    entries: Tuple[ManifestEntry, ...]

    def __len__(self) -> int:
        return len(self.entries)

    def paths(self) -> List[str]:
        return [e.path for e in self.entries]

    def to_dict(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "directory": self.directory,
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "Manifest":
        if not isinstance(d, dict) or d.get("format") != MANIFEST_FORMAT:
            raise ConfigurationError(
                f"not a {MANIFEST_FORMAT} document "
                f"(format={d.get('format')!r})" if isinstance(d, dict)
                else f"not a {MANIFEST_FORMAT} document"
            )
        if d.get("version") != MANIFEST_VERSION:
            raise ConfigurationError(
                f"unsupported manifest version {d.get('version')!r}"
            )
        return cls(
            directory=d.get("directory", ""),
            entries=tuple(ManifestEntry.from_dict(e) for e in d.get("entries", [])),
        )

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"manifest is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(doc)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Manifest":
        with open(path) as fh:
            return cls.from_json(fh.read())


def scan_corpus(
    directory: Optional[str] = None,
    workloads: Optional[Dict[str, ExternalWorkload]] = None,
) -> Manifest:
    """Scan ``directory`` (default: the bundled ``examples/corpus/``)
    into a :class:`Manifest`.

    Every file with a registered interchange extension is read with the
    connectivity requirement relaxed (a dummy-bridged STG must still be
    scannable — its ``components`` count is exactly what the scan is
    for); structural errors in any file abort the scan, because a
    corpus with an unreadable member would silently shrink every sweep
    built on it. Pass a dict as ``workloads`` to receive the loaded
    :class:`ExternalWorkload` per path — :func:`manifest_cells` accepts
    it back, so a scan-then-expand pipeline parses each file once.
    """
    directory = directory or DEFAULT_CORPUS_DIR
    entries: List[ManifestEntry] = []
    for path in corpus_paths(directory):
        workload = load_workload(path, require_connected=False)
        if workloads is not None:
            workloads[path] = workload
        graph = workload.graph
        total_exec = graph.total_exec_cost()
        entries.append(
            ManifestEntry(
                path=path,
                fmt=workload.fmt,
                name=graph.name,
                n_tasks=graph.n_tasks,
                n_edges=graph.n_edges,
                components=len(weak_components(graph)),
                ccr=(graph.total_comm_cost() / total_exec) if total_exec else 0.0,
                n_procs=workload.n_procs,
                content_hash=workload.content_hash,
            )
        )
    return Manifest(directory=directory, entries=tuple(entries))


def manifest_cells(
    manifest: Manifest,
    overlays: Sequence[Overlay] = (Overlay(),),
    topologies: Sequence[str] = CORPUS_TOPOLOGIES,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    n_procs: int = CORPUS_N_PROCS,
    het_lo: float = 1.0,
    het_hi: float = 50.0,
    system_seed: int = 0,
    workloads: Optional[Dict[str, ExternalWorkload]] = None,
    objectives: str = "",
) -> List[Cell]:
    """Expand manifest x overlays x topologies x algorithms into cells.

    ``n_procs`` applies to scalar files only — files with exec-cost
    vectors pin their own processor count. ``workloads`` (as filled by
    :func:`scan_corpus`) skips re-reading files the scan just parsed.
    ``objectives`` (an objectives token, e.g. ``"energy,reliability"``)
    makes every cell score those criteria too — canonicalized once so
    all cells share one cache-key spelling. See the module docstring
    for the auto-bridge and scalar-heterogeneity routing rules.
    """
    if objectives:
        from repro.objectives.registry import objectives_token

        objectives = objectives_token(objectives)
    cells: List[Cell] = []
    for entry in manifest.entries:
        # one read per file; the workload object carries the hash and
        # metadata every (overlay, topology, algorithm) cell needs
        workload = (workloads or {}).get(entry.path)
        if workload is None:
            workload = load_workload(entry.path, require_connected=False)
        for overlay in overlays:
            ovl = overlay
            if entry.needs_bridge and ovl.bridge == "none":
                ovl = dataclasses.replace(ovl, bridge="epsilon")
            lo, hi, seed = het_lo, het_hi, system_seed
            if ovl.het_range is not None and entry.n_procs is None:
                # scalar files sample heterogeneity at bind time — route
                # the overlay's range/seed through the cell axes, which
                # are just as cache-key-visible
                lo, hi = ovl.het_range
                seed = ovl.het_seed
                ovl = dataclasses.replace(ovl, het_range=None, het_seed=0)
            for topology in topologies:
                for algorithm in algorithms:
                    cell = external_cell(
                        entry.path,
                        algorithm=algorithm,
                        topology=topology,
                        n_procs=None if entry.n_procs else n_procs,
                        het_lo=lo,
                        het_hi=hi,
                        system_seed=seed,
                        workload=workload,
                        overlay=ovl,
                    )
                    if objectives:
                        cell = dataclasses.replace(
                            cell, objectives=objectives
                        )
                    cells.append(cell)
    return cells
