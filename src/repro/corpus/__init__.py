"""Corpus subsystem: directories of real workload files as sweepable
experiment inputs.

Three layers (see ARCHITECTURE.md for the data flow):

* :mod:`repro.corpus.overlays` — explicit, cache-key-visible transforms
  (bridge / CCR / granularity / heterogeneity) of imported graphs;
* :mod:`repro.corpus.manifest` — scan a directory into a content-hashed
  :class:`~repro.corpus.manifest.Manifest` and expand
  manifest x overlay-grid x topology x scheduler into experiment cells;
* :mod:`repro.corpus.bench` — run the cells through the parallel
  ``run_cells`` engine and render the deterministic aggregate
  scheduler-ordering report behind ``repro corpus bench``.

Only the overlay layer is imported eagerly: :mod:`repro.workloads.
external` resolves overlay tokens at cell-build time, so the manifest
and bench layers (which sit *above* the workload provider) load lazily
to keep the import graph acyclic.
"""

from repro.corpus.overlays import (  # noqa: F401
    Overlay,
    apply_overlay,
    overlay_grid,
    parse_overlay,
)

__all__ = [
    "Overlay",
    "apply_overlay",
    "overlay_grid",
    "parse_overlay",
    "manifest",
    "bench",
    "overlays",
]


def __getattr__(name):
    # manifest/bench import the experiment layers, which import
    # workloads.external, which imports corpus.overlays — importing them
    # here eagerly would close that cycle, so they resolve on demand
    if name in ("manifest", "bench"):
        import importlib

        return importlib.import_module(f"repro.corpus.{name}")
    raise AttributeError(f"module 'repro.corpus' has no attribute {name!r}")
