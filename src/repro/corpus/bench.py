"""Corpus-scale benchmarking: run a manifest through the sweep engine
and render the aggregate scheduler-ordering report.

The report is **deterministic**: it is computed purely from schedule
metrics (never wall-clock timings), cells are iterated in expansion
order, and every float is rendered at fixed precision — so the same
corpus produces byte-identical report text on every run, machine, and
``REPRO_HOTPATH`` engine mode (the engines' byte-identity contract
extends through it; pinned by ``tests/test_corpus.py``).

A *scenario* is one (file x overlay x topology) combination; every
scenario is scheduled by every algorithm, and per scenario each
algorithm's schedule length is normalized by the best one. The ranking
table aggregates those normalized lengths — mean 1.00 means "always
the winner" — alongside win counts and the mean ratio against BSA.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.corpus.manifest import (
    CORPUS_N_PROCS,
    CORPUS_TOPOLOGIES,
    Manifest,
    manifest_cells,
    scan_corpus,
)
from repro.corpus.overlays import Overlay
from repro.experiments.config import ALGORITHM_NAMES, Cell
from repro.experiments.runner import CellResult, SweepReport, run_cells
from repro.util.tables import format_table
from repro.workloads.external import parse_token

__all__ = ["run_corpus", "aggregate_report", "corpus_bench"]


def run_corpus(
    corpus: Union[str, Manifest, None] = None,
    overlays: Sequence[Overlay] = (Overlay(),),
    topologies: Sequence[str] = CORPUS_TOPOLOGIES,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    n_procs: int = CORPUS_N_PROCS,
    system_seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
    progress=None,
    objectives: str = "",
) -> Tuple[List[Cell], Dict[str, CellResult], SweepReport]:
    """Expand and execute a corpus sweep; returns (cells, results, report).

    ``corpus`` may be a directory path, a pre-built :class:`Manifest`,
    or ``None`` for the bundled ``examples/corpus/``. Failures are
    collected in the sweep report rather than raised, so one broken
    scenario cannot take down a corpus-sized run. ``objectives`` (an
    objectives token) makes every cell score those extra criteria.
    """
    workloads = {}
    if isinstance(corpus, Manifest):
        manifest = corpus
    else:
        manifest = scan_corpus(corpus, workloads=workloads)
    cells = manifest_cells(
        manifest,
        overlays=overlays,
        topologies=topologies,
        algorithms=algorithms,
        n_procs=n_procs,
        system_seed=system_seed,
        workloads=workloads,
        objectives=objectives,
    )
    results, report = run_cells(
        cells,
        jobs=jobs,
        use_cache=use_cache,
        progress=progress,
        raise_on_error=False,
    )
    return cells, results, report


def _scenario_key(cell: Cell) -> tuple:
    """Everything that identifies a scenario except the algorithm."""
    return (
        cell.app, cell.topology, cell.n_procs,
        cell.het_lo, cell.het_hi, cell.system_seed,
        cell.duplex, cell.bandwidth_skew,
    )


#: the manifest_cells defaults for the sampled-heterogeneity axes; a
#: cell that deviates (e.g. a het overlay routed through the axes for a
#: scalar file) gets the deviation spelled out in its scenario label
_DEFAULT_HET_AXES = (1.0, 50.0, 0)


def _scenario_label(cell: Cell) -> str:
    path, _, overlay = parse_token(cell.app)
    token = overlay.token()
    label = os.path.basename(path) + (f"!{token}" if token else "")
    if (cell.het_lo, cell.het_hi, cell.system_seed) != _DEFAULT_HET_AXES:
        label += f"~het{cell.het_lo:g}:{cell.het_hi:g}@{cell.system_seed}"
    return label


def aggregate_report(
    cells: Sequence[Cell],
    results: Dict[str, CellResult],
    algorithms: Optional[Sequence[str]] = None,
) -> str:
    """Render the deterministic aggregate ordering report (see module
    docstring) for an executed corpus sweep."""
    if algorithms is None:
        seen_algos: List[str] = []
        for cell in cells:
            if cell.algorithm not in seen_algos:
                seen_algos.append(cell.algorithm)
        algorithms = seen_algos

    # group cells into scenarios, in first-appearance order
    scenarios: Dict[tuple, Dict[str, Cell]] = {}
    for cell in cells:
        scenarios.setdefault(_scenario_key(cell), {})[cell.algorithm] = cell

    complete: List[Tuple[tuple, Dict[str, float]]] = []
    dropped: List[str] = []
    for key, by_algo in scenarios.items():
        sl: Dict[str, float] = {}
        for algo in algorithms:
            cell = by_algo.get(algo)
            result = results.get(cell.key()) if cell is not None else None
            if result is None:
                break
            sl[algo] = result.schedule_length
        if len(sl) == len(algorithms):
            complete.append((key, sl))
        else:
            cell = next(iter(by_algo.values()))
            dropped.append(f"{_scenario_label(cell)}[{cell.topology}]")

    lines: List[str] = []
    n_files = len({parse_token(k[0])[0] for k in scenarios})
    lines.append(
        f"corpus aggregate — {n_files} file(s), {len(scenarios)} scenario(s) "
        f"(file x overlay x topology), {len(algorithms)} schedulers"
    )
    if dropped:
        lines.append(
            f"dropped {len(dropped)} scenario(s) with failed/missing cells: "
            + ", ".join(sorted(dropped))
        )
    lines.append("")

    if complete:
        # overall ranking
        norm_sum = {a: 0.0 for a in algorithms}
        sl_sum = {a: 0.0 for a in algorithms}
        wins = {a: 0 for a in algorithms}
        vs_bsa_sum = {a: 0.0 for a in algorithms}
        for _, sl in complete:
            best = min(sl.values())
            for a in algorithms:
                norm_sum[a] += sl[a] / best
                sl_sum[a] += sl[a]
                if sl[a] == best:
                    wins[a] += 1
                if "bsa" in sl:
                    vs_bsa_sum[a] += sl[a] / sl["bsa"]
        n = len(complete)
        ranking = sorted(algorithms, key=lambda a: (norm_sum[a], a))
        rows = []
        for rank, a in enumerate(ranking, start=1):
            row: List[object] = [
                rank, a, norm_sum[a] / n, f"{wins[a]}/{n}", sl_sum[a] / n,
            ]
            if "bsa" in algorithms:
                row.append(vs_bsa_sum[a] / n)
            rows.append(row)
        headers = ["rank", "algorithm", "mean norm SL", "wins", "mean SL"]
        if "bsa" in algorithms:
            headers.append("vs bsa")
        lines.append(
            format_table(
                headers, rows,
                title="scheduler ordering (normalized SL; 1.000 = best per scenario)",
                ndigits=3,
            )
        )
        lines.append("")

        # per-scenario normalized table
        rows = []
        for key, sl in complete:
            cell = next(iter(scenarios[key].values()))
            best = min(sl.values())
            winner = min(algorithms, key=lambda a: (sl[a], a))
            rows.append(
                [_scenario_label(cell), cell.topology]
                + [sl[a] / best for a in algorithms]
                + [winner]
            )
        lines.append(
            format_table(
                ["scenario", "topology"] + list(algorithms) + ["winner"],
                rows,
                title="per-scenario normalized SL",
                ndigits=3,
            )
        )

        # per-criterion mean table — only when the sweep scored extra
        # objectives (cells carry an objectives token), so the default
        # report is byte-identical to what it always was
        names: List[str] = []
        for cell in cells:
            if cell.objectives:
                for n in cell.objectives.split(","):
                    if n not in names:
                        names.append(n)
        if names:
            obj_sum = {a: {n: 0.0 for n in names} for a in algorithms}
            n_scored = 0
            for key, _sl in complete:
                by_algo = scenarios[key]
                vals = {
                    a: results[by_algo[a].key()].objectives
                    for a in algorithms
                }
                if any(n not in vals[a] for a in algorithms for n in names):
                    continue  # scenario ran without (some) objectives
                n_scored += 1
                for a in algorithms:
                    for n in names:
                        obj_sum[a][n] += vals[a][n]
            if n_scored:
                lines.append("")
                rows = [
                    [a] + [obj_sum[a][n] / n_scored for n in names]
                    for a in algorithms
                ]
                lines.append(
                    format_table(
                        ["algorithm"] + [f"mean {n}" for n in names],
                        rows,
                        title=(f"objective means over {n_scored} "
                               f"scenario(s)"),
                        ndigits=4,
                    )
                )
    return "\n".join(lines)


def corpus_bench(
    corpus: Union[str, Manifest, None] = None,
    overlays: Sequence[Overlay] = (Overlay(),),
    topologies: Sequence[str] = CORPUS_TOPOLOGIES,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    n_procs: int = CORPUS_N_PROCS,
    system_seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
    progress=None,
    objectives: str = "",
) -> Tuple[str, SweepReport]:
    """One-call corpus benchmark: run the sweep, render the aggregate.

    Returns ``(report text, sweep report)`` — the text is the
    deterministic artifact (suitable for files/CI), the sweep report
    carries the non-deterministic execution telemetry (timings, cache
    hits, failures; stderr reporting goes through
    :mod:`repro.obs.ndjson` in the CLI). ``objectives`` adds the
    per-criterion mean table.
    """
    from repro import obs

    with obs.span("corpus.bench", jobs=jobs):
        cells, results, sweep = run_corpus(
            corpus,
            overlays=overlays,
            topologies=topologies,
            algorithms=algorithms,
            n_procs=n_procs,
            system_seed=system_seed,
            jobs=jobs,
            use_cache=use_cache,
            progress=progress,
            objectives=objectives,
        )
        report = aggregate_report(cells, results, algorithms=algorithms)
    return report, sweep
