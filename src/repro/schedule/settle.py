"""Order-based time settlement (the "bubble" evaluator).

Given a schedule whose *orders* (task order per processor, hop order per
link, hop chain per message) are fixed, compute the earliest-consistent
start/finish time of every task and hop. This is a longest-path
computation over the combined constraint DAG:

* task precedence: a task starts no earlier than each incoming message's
  arrival (last hop finish, or the producer's finish for local messages);
* processor exclusivity *in order*: a task starts no earlier than the
  finish of its predecessor in ``proc_order``;
* hop chaining (store-and-forward): hop ``k+1`` starts no earlier than hop
  ``k`` finishes; the first hop waits for the producer task;
* link exclusivity *in order*: a hop starts no earlier than the finish of
  its predecessor in ``link_order``.

When BSA removes a task from a processor, re-settling makes every
downstream occupant "bubble up" into the freed time — exactly the paper's
metaphor — while provably keeping the schedule feasible.

Raises :class:`repro.errors.CycleError` if the orders are contradictory
(e.g. a task placed before its own ancestor's message lands); BSA treats
that as a rejected migration and rolls back.

Implementation note: this runs after every committed migration, so it is
the hottest loop in BSA. Nodes are mapped to dense integer ids and the
Kahn pass runs over plain lists.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import CycleError, SchedulingError
from repro.schedule.schedule import Schedule
from repro.util.intervals import fast_path_enabled


def settle(schedule: Schedule) -> Schedule:
    """Recompute all start/finish times in place; returns the schedule."""
    if fast_path_enabled():
        return _settle_fast(schedule)
    return _settle_legacy(schedule)


def _settle_fast(schedule: Schedule) -> Schedule:
    """Same longest-path computation as :func:`_settle_legacy` with the
    inner loops flattened (no closure per dependency, hoisted lookups).
    Times are identical: node durations and the precedence structure are
    the same, and Kahn's algorithm computes each start as a max over
    predecessors independent of traversal order.
    """
    system = schedule.system
    graph = system.graph
    exec_cost = system.exec_cost
    comm_cost = system.comm_cost

    objs: List[object] = []
    duration: List[float] = []
    append_obj = objs.append
    append_dur = duration.append

    task_ids: Dict[object, int] = {}
    i = 0
    for task, slot in schedule.slots.items():
        task_ids[task] = i
        append_obj(slot)
        c = slot.cost
        append_dur(c if c is not None else exec_cost(task, slot.proc))
        i += 1
    hop_ids: Dict[int, int] = {}
    for route in schedule.routes.values():
        for hop in route.hops:
            hop_ids[id(hop)] = i
            append_obj(hop)
            c = hop.cost
            append_dur(c if c is not None else comm_cost(hop.edge, hop.link))
            i += 1

    n = i
    succ: List[List[int]] = [[] for _ in range(n)]
    indeg: List[int] = [0] * n

    for order in schedule.proc_order.values():
        if len(order) > 1:
            a = task_ids[order[0]]
            for t in order[1:]:
                b = task_ids[t]
                succ[a].append(b)
                indeg[b] += 1
                a = b

    for hops in schedule.link_order.values():
        if len(hops) > 1:
            a = hop_ids[id(hops[0])]
            for h in hops[1:]:
                b = hop_ids[id(h)]
                succ[a].append(b)
                indeg[b] += 1
                a = b

    routes = schedule.routes
    get_route = routes.get
    # direct adjacency iteration — graph.edges() would build a fresh
    # tuple list on a path hit hundreds of times per schedule
    for u, vs in graph._succ.items():
        iu = task_ids.get(u)
        if iu is None:
            continue  # partial schedule: constraint not yet active
        for v in vs:
            iv = task_ids.get(v)
            if iv is None:
                continue
            route = get_route((u, v))
            a = iu
            if route is not None:
                for hop in route.hops:
                    b = hop_ids[id(hop)]
                    succ[a].append(b)
                    indeg[b] += 1
                    a = b
            succ[a].append(iv)
            indeg[iv] += 1

    start = [0.0] * n
    ready = [k for k in range(n) if indeg[k] == 0]
    head = 0
    while head < len(ready):
        k = ready[head]
        head += 1
        finish = start[k] + duration[k]
        for j in succ[k]:
            if finish > start[j]:
                start[j] = finish
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if head != n:
        blocked = [k for k in range(n) if indeg[k] > 0]
        cycle = _extract_cycle(succ, blocked, objs, schedule)
        raise CycleError(
            f"contradictory schedule orders ({len(blocked)} nodes blocked); "
            f"cycle: {cycle}",
            blocked,
        )

    for k in range(n):
        obj = objs[k]
        s = start[k]
        obj.start = s
        obj.finish = s + duration[k]

    schedule.resort_orders()
    return schedule


def _settle_legacy(schedule: Schedule) -> Schedule:
    graph = schedule.system.graph
    system = schedule.system

    # --- dense node numbering: tasks first, then hops ---------------------
    task_ids: Dict[object, int] = {}
    objs: List[object] = []          # per node: TaskSlot or MessageHop
    duration: List[float] = []

    for task, slot in schedule.slots.items():
        task_ids[task] = len(objs)
        objs.append(slot)
        duration.append(system.exec_cost(task, slot.proc))

    hop_ids: Dict[int, int] = {}     # id(hop) -> node
    for route in schedule.routes.values():
        for hop in route.hops:
            hop_ids[id(hop)] = len(objs)
            objs.append(hop)
            duration.append(system.comm_cost(hop.edge, hop.link))

    n = len(objs)
    succ: List[List[int]] = [[] for _ in range(n)]
    indeg: List[int] = [0] * n

    def dep(a: int, b: int) -> None:
        succ[a].append(b)
        indeg[b] += 1

    # processor order chains ---------------------------------------------
    for order in schedule.proc_order.values():
        for a, b in zip(order, order[1:]):
            dep(task_ids[a], task_ids[b])

    # link order chains -----------------------------------------------------
    for hops in schedule.link_order.values():
        for a, b in zip(hops, hops[1:]):
            dep(hop_ids[id(a)], hop_ids[id(b)])

    # message chains & task precedence -------------------------------------
    slots = schedule.slots
    routes = schedule.routes
    for u, v in graph.edges():
        if u not in slots or v not in slots:
            continue  # partial schedule: constraint not yet active
        route = routes.get((u, v))
        if route is None or not route.hops:
            dep(task_ids[u], task_ids[v])
            continue
        hops = route.hops
        dep(task_ids[u], hop_ids[id(hops[0])])
        for a, b in zip(hops, hops[1:]):
            dep(hop_ids[id(a)], hop_ids[id(b)])
        dep(hop_ids[id(hops[-1])], task_ids[v])

    # Kahn longest-path ------------------------------------------------------
    start = [0.0] * n
    ready = [i for i in range(n) if indeg[i] == 0]
    head = 0
    while head < len(ready):
        i = ready[head]
        head += 1
        finish = start[i] + duration[i]
        for j in succ[i]:
            if finish > start[j]:
                start[j] = finish
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if head != n:
        blocked = [i for i in range(n) if indeg[i] > 0]
        cycle = _extract_cycle(succ, blocked, objs, schedule)
        raise CycleError(
            f"contradictory schedule orders ({len(blocked)} nodes blocked); "
            f"cycle: {cycle}",
            blocked,
        )

    # write back ----------------------------------------------------------
    for i, obj in enumerate(objs):
        obj.start = start[i]
        obj.finish = start[i] + duration[i]

    schedule.resort_orders()
    return schedule


def _extract_cycle(succ, blocked_list, objs, schedule) -> str:
    """Find one concrete cycle among blocked nodes (debugging aid).

    Classic O(V+E) colored DFS: *gray* nodes are on the current path, and
    *black* nodes are fully explored and provably not part of a cycle
    reachable from here (so they are never revisited — keeping this linear
    matters: the exponential naive version once froze whole BSA runs).
    """
    blocked = set(blocked_list)
    if not blocked:
        return "<none>"

    def describe(i: int) -> str:
        obj = objs[i]
        if hasattr(obj, "task"):
            return f"task {obj.task!r}@P{obj.proc}"
        return f"hop {obj.edge} {obj.src}->{obj.dst}"

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {i: WHITE for i in blocked}
    for root in blocked_list:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(succ[root]))]
        color[root] = GRAY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in blocked or color.get(nxt) == BLACK:
                    continue
                if color[nxt] == GRAY:
                    idx = path.index(nxt)
                    cycle = path[idx:] + [nxt]
                    shown = cycle if len(cycle) <= 12 else cycle[:12]
                    suffix = "" if len(cycle) <= 12 else f" -> ... ({len(cycle)} nodes)"
                    return " -> ".join(describe(k) for k in shown) + suffix
                color[nxt] = GRAY
                path.append(nxt)
                stack.append((nxt, iter(succ[nxt])))
                advanced = True
                break
            if not advanced:
                stack.pop()
                path.pop()
                color[node] = BLACK
    return "<no simple cycle found>"
