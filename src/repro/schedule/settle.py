"""Order-based time settlement (the "bubble" evaluator).

Given a schedule whose *orders* (task order per processor, hop order per
link, hop chain per message) are fixed, compute the earliest-consistent
start/finish time of every task and hop. This is a longest-path
computation over the combined constraint DAG:

* task precedence: a task starts no earlier than each incoming message's
  arrival (last hop finish, or the producer's finish for local messages);
* processor exclusivity *in order*: a task starts no earlier than the
  finish of its predecessor in ``proc_order``;
* hop chaining (store-and-forward): hop ``k+1`` starts no earlier than hop
  ``k`` finishes; the first hop waits for the producer task;
* link exclusivity *in order*: a hop starts no earlier than the finish of
  its predecessor in ``link_order``.

When BSA removes a task from a processor, re-settling makes every
downstream occupant "bubble up" into the freed time — exactly the paper's
metaphor — while provably keeping the schedule feasible.

Raises :class:`repro.errors.CycleError` if the orders are contradictory
(e.g. a task placed before its own ancestor's message lands); BSA treats
that as a rejected migration and rolls back.

Implementation note: this runs after every committed migration, so it is
the hottest loop in BSA. Nodes are mapped to dense integer ids and the
Kahn pass runs over plain lists.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import CycleError, SchedulingError
from repro.schedule.schedule import Schedule


def settle(schedule: Schedule) -> Schedule:
    """Recompute all start/finish times in place; returns the schedule."""
    graph = schedule.system.graph
    system = schedule.system

    # --- dense node numbering: tasks first, then hops ---------------------
    task_ids: Dict[object, int] = {}
    objs: List[object] = []          # per node: TaskSlot or MessageHop
    duration: List[float] = []

    for task, slot in schedule.slots.items():
        task_ids[task] = len(objs)
        objs.append(slot)
        duration.append(system.exec_cost(task, slot.proc))

    hop_ids: Dict[int, int] = {}     # id(hop) -> node
    for route in schedule.routes.values():
        for hop in route.hops:
            hop_ids[id(hop)] = len(objs)
            objs.append(hop)
            duration.append(system.comm_cost(hop.edge, hop.link))

    n = len(objs)
    succ: List[List[int]] = [[] for _ in range(n)]
    indeg: List[int] = [0] * n

    def dep(a: int, b: int) -> None:
        succ[a].append(b)
        indeg[b] += 1

    # processor order chains ---------------------------------------------
    for order in schedule.proc_order.values():
        for a, b in zip(order, order[1:]):
            dep(task_ids[a], task_ids[b])

    # link order chains -----------------------------------------------------
    for hops in schedule.link_order.values():
        for a, b in zip(hops, hops[1:]):
            dep(hop_ids[id(a)], hop_ids[id(b)])

    # message chains & task precedence -------------------------------------
    slots = schedule.slots
    routes = schedule.routes
    for u, v in graph.edges():
        if u not in slots or v not in slots:
            continue  # partial schedule: constraint not yet active
        route = routes.get((u, v))
        if route is None or not route.hops:
            dep(task_ids[u], task_ids[v])
            continue
        hops = route.hops
        dep(task_ids[u], hop_ids[id(hops[0])])
        for a, b in zip(hops, hops[1:]):
            dep(hop_ids[id(a)], hop_ids[id(b)])
        dep(hop_ids[id(hops[-1])], task_ids[v])

    # Kahn longest-path ------------------------------------------------------
    start = [0.0] * n
    ready = [i for i in range(n) if indeg[i] == 0]
    head = 0
    while head < len(ready):
        i = ready[head]
        head += 1
        finish = start[i] + duration[i]
        for j in succ[i]:
            if finish > start[j]:
                start[j] = finish
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if head != n:
        blocked = [i for i in range(n) if indeg[i] > 0]
        cycle = _extract_cycle(succ, blocked, objs, schedule)
        raise CycleError(
            f"contradictory schedule orders ({len(blocked)} nodes blocked); "
            f"cycle: {cycle}",
            blocked,
        )

    # write back ----------------------------------------------------------
    for i, obj in enumerate(objs):
        obj.start = start[i]
        obj.finish = start[i] + duration[i]

    schedule.resort_orders()
    return schedule


def _extract_cycle(succ, blocked_list, objs, schedule) -> str:
    """Find one concrete cycle among blocked nodes (debugging aid).

    Classic O(V+E) colored DFS: *gray* nodes are on the current path, and
    *black* nodes are fully explored and provably not part of a cycle
    reachable from here (so they are never revisited — keeping this linear
    matters: the exponential naive version once froze whole BSA runs).
    """
    blocked = set(blocked_list)
    if not blocked:
        return "<none>"

    def describe(i: int) -> str:
        obj = objs[i]
        if hasattr(obj, "task"):
            return f"task {obj.task!r}@P{obj.proc}"
        return f"hop {obj.edge} {obj.src}->{obj.dst}"

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {i: WHITE for i in blocked}
    for root in blocked_list:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(succ[root]))]
        color[root] = GRAY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in blocked or color.get(nxt) == BLACK:
                    continue
                if color[nxt] == GRAY:
                    idx = path.index(nxt)
                    cycle = path[idx:] + [nxt]
                    shown = cycle if len(cycle) <= 12 else cycle[:12]
                    suffix = "" if len(cycle) <= 12 else f" -> ... ({len(cycle)} nodes)"
                    return " -> ".join(describe(k) for k in shown) + suffix
                color[nxt] = GRAY
                path.append(nxt)
                stack.append((nxt, iter(succ[nxt])))
                advanced = True
                break
            if not advanced:
                stack.pop()
                path.pop()
                color[node] = BLACK
    return "<no simple cycle found>"
