"""Order-based time settlement (the "bubble" evaluator).

Given a schedule whose *orders* (task order per processor, hop order per
link, hop chain per message) are fixed, compute the earliest-consistent
start/finish time of every task and hop. This is a longest-path
computation over the combined constraint DAG:

* task precedence: a task starts no earlier than each incoming message's
  arrival (last hop finish, or the producer's finish for local messages);
* processor exclusivity *in order*: a task starts no earlier than the
  finish of its predecessor in ``proc_order``;
* hop chaining (store-and-forward): hop ``k+1`` starts no earlier than hop
  ``k`` finishes; the first hop waits for the producer task;
* link exclusivity *in order*: a hop starts no earlier than the finish of
  its predecessor in ``link_order``.

When BSA removes a task from a processor, re-settling makes every
downstream occupant "bubble up" into the freed time — exactly the paper's
metaphor — while provably keeping the schedule feasible.

Raises :class:`repro.errors.CycleError` if the orders are contradictory
(e.g. a task placed before its own ancestor's message lands); BSA treats
that as a rejected migration and rolls back.

Implementation note: this runs after every committed migration, so it is
the hottest loop in BSA. Nodes are mapped to dense integer ids and the
Kahn pass runs over plain lists.

Four implementations coexist, selected by the process-wide hot-path
mode:

* :func:`_settle_legacy` — the original closure-per-dependency code;
* :func:`_settle_fast` — the same full Kahn pass with flattened loops;
* :func:`settle_incremental` — the change-driven engine (mode
  ``incremental``): instead of rebuilding the whole constraint DAG it
  starts from the *seed set* a :class:`~repro.schedule.schedule.
  ScheduleTxn` collected during the mutations (every node whose
  constraint predecessors changed) and propagates recomputed times
  forward only while they actually change. Called by
  ``commit_migration`` in incremental mode; :func:`settle` itself always
  runs a full pass (it has no seed information);
* :func:`settle_array` — the array-engine sibling (mode ``array``):
  the same change-driven worklist settled against the numpy-backed
  flat-array state (:mod:`repro.schedule.arraystate`), writing back
  through the same ScheduleTxn undo log.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.errors import CycleError, SchedulingError
from repro.obs import counters as _obs
from repro.schedule.schedule import Schedule
from repro.util.intervals import fast_path_enabled


def settle(schedule: Schedule) -> Schedule:
    """Recompute all start/finish times in place; returns the schedule."""
    if fast_path_enabled():
        return _settle_fast(schedule)
    return _settle_legacy(schedule)


def _settle_fast(schedule: Schedule) -> Schedule:
    """Same longest-path computation as :func:`_settle_legacy` with the
    inner loops flattened (no closure per dependency, hoisted lookups).
    Times are identical: node durations and the precedence structure are
    the same, and Kahn's algorithm computes each start as a max over
    predecessors independent of traversal order.
    """
    if _obs.ACTIVE:
        _obs.inc("settle.full_passes")
    system = schedule.system
    graph = system.graph
    exec_cost = system.exec_cost
    comm_cost = system.comm_cost

    objs: List[object] = []
    duration: List[float] = []
    append_obj = objs.append
    append_dur = duration.append

    task_ids: Dict[object, int] = {}
    i = 0
    for task, slot in schedule.slots.items():
        task_ids[task] = i
        append_obj(slot)
        c = slot.cost
        append_dur(c if c is not None else exec_cost(task, slot.proc))
        i += 1
    hop_ids: Dict[int, int] = {}
    for route in schedule.routes.values():
        for hop in route.hops:
            hop_ids[id(hop)] = i
            append_obj(hop)
            c = hop.cost
            append_dur(c if c is not None else comm_cost(hop.edge, hop.link))
            i += 1

    n = i
    succ: List[List[int]] = [[] for _ in range(n)]
    indeg: List[int] = [0] * n

    for order in schedule.proc_order.values():
        if len(order) > 1:
            a = task_ids[order[0]]
            for t in order[1:]:
                b = task_ids[t]
                succ[a].append(b)
                indeg[b] += 1
                a = b

    for hops in schedule.link_order.values():
        if len(hops) > 1:
            a = hop_ids[id(hops[0])]
            for h in hops[1:]:
                b = hop_ids[id(h)]
                succ[a].append(b)
                indeg[b] += 1
                a = b

    routes = schedule.routes
    get_route = routes.get
    # direct adjacency iteration — graph.edges() would build a fresh
    # tuple list on a path hit hundreds of times per schedule
    for u, vs in graph._succ.items():
        iu = task_ids.get(u)
        if iu is None:
            continue  # partial schedule: constraint not yet active
        for v in vs:
            iv = task_ids.get(v)
            if iv is None:
                continue
            route = get_route((u, v))
            a = iu
            if route is not None:
                for hop in route.hops:
                    b = hop_ids[id(hop)]
                    succ[a].append(b)
                    indeg[b] += 1
                    a = b
            succ[a].append(iv)
            indeg[iv] += 1

    start = [0.0] * n
    ready = [k for k in range(n) if indeg[k] == 0]
    head = 0
    while head < len(ready):
        k = ready[head]
        head += 1
        finish = start[k] + duration[k]
        for j in succ[k]:
            if finish > start[j]:
                start[j] = finish
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if head != n:
        blocked = [k for k in range(n) if indeg[k] > 0]
        cycle = _extract_cycle(succ, blocked, objs, schedule)
        raise CycleError(
            f"contradictory schedule orders ({len(blocked)} nodes blocked); "
            f"cycle: {cycle}",
            blocked,
        )

    for k in range(n):
        obj = objs[k]
        s = start[k]
        obj.start = s
        obj.finish = s + duration[k]

    schedule.resort_orders()
    return schedule


def settle_incremental(schedule: Schedule, seed_tasks, seed_hops) -> Schedule:
    """Change-driven settle: recompute only the affected cone.

    Contract: ``schedule`` was fully settled before the current batch of
    structural mutations, and ``seed_tasks``/``seed_hops`` (typically a
    :class:`~repro.schedule.schedule.ScheduleTxn`'s seed sets) contain
    every node whose constraint predecessors changed — moved/new tasks,
    the order successors of removed or inserted occupants, new hops, and
    the consumers of rerouted messages. Every other node's predecessors
    (and their times) are unchanged, so its settled times are still the
    longest-path fixpoint and need no work.

    Seeds are recomputed from their live predecessors; a node whose
    start moves (in either direction — "bubbling up" is a *decrease*)
    has its successors re-enqueued, so recomputation propagates exactly
    as far as times actually change. A worklist pop budget bounds the
    pathological cases: contradictory orders make times grow around the
    cycle without converging, so exceeding the budget falls back to the
    full Kahn pass, which detects the cycle exactly (and is bit-identical
    when there is none). Zero-cost message edges could hide a
    contradictory all-zero-duration hop cycle from the growth argument,
    so graphs containing one always take the full pass.

    When a transaction is open, every time write-back is recorded in its
    undo log first, so a rollback after the fallback's ``CycleError``
    restores the pre-commit times exactly.

    The fixpoint is unique and max() involves no arithmetic, so the
    resulting times are bit-identical to :func:`_settle_fast` — enforced
    across the whole randomized invariant sweep by
    ``tests/test_hotpath_equivalence.py`` and ``benchmarks/bench_hotpath.py``.
    """
    system = schedule.system
    graph = system.graph
    if graph.has_zero_cost_edge():
        return _settle_fast(schedule)

    slots = schedule.slots
    routes = schedule.routes
    slots_get = slots.get
    routes_get = routes.get
    proc_order = schedule.proc_order
    link_order = schedule.link_order
    exec_cost = system.exec_cost
    comm_cost = system.comm_cost
    txn = schedule._txn
    pred_edges = graph.pred_edges
    succ_of = graph._succ

    # Occupant-position indexes, cached on the schedule across settles
    # (invalidated only when an order structurally changes — see
    # Schedule.proc_positions). Hops additionally carry a ``_rpos``
    # backref (index within their route, stamped at creation) so the
    # route chain needs no index. A local memo avoids re-stamping the
    # cache check per pop.
    proc_pos: Dict[object, Dict[object, int]] = {}
    link_pos: Dict[object, Dict[int, int]] = {}
    pp_get = proc_pos.get
    lp_get = link_pos.get
    sched_ppos = schedule.proc_positions
    sched_lpos = schedule.link_positions

    # -- worklist ---------------------------------------------------------
    heap: List[tuple] = []
    pending: set = set()
    heappush = heapq.heappush
    heappop = heapq.heappop
    seq = 0

    live_seed_hops: List[object] = []
    for hop in seed_hops:
        r = routes_get(hop.edge)
        if r is not None and any(h is hop for h in r.hops):
            live_seed_hops.append(hop)
    for t in seed_tasks:
        slot = slots_get(t)
        if slot is not None:
            oid = id(slot)
            if oid not in pending:
                pending.add(oid)
                seq += 1
                heappush(heap, (slot.start, seq, False, slot))
    for hop in live_seed_hops:
        oid = id(hop)
        if oid not in pending:
            pending.add(oid)
            seq += 1
            heappush(heap, (hop.start, seq, True, hop))

    touched_procs: set = set()
    touched_channels: set = set()
    times_append = txn.times.append if txn is not None else None
    # Contradictory orders (BSA's rare rejected commits) make times grow
    # around the cycle without converging, so the worklist would never
    # empty. Two heuristics bound that — both only trade performance,
    # because the full-pass fallback is exact whether or not a cycle
    # exists: a node whose start *grows* many times in one settle is on
    # a cycle (legitimate transients re-grow a node once or twice), and
    # a global pop budget of about one pass-worth backstops everything
    # else (a legitimate settle touches far fewer nodes than that).
    regrow: Dict[int, int] = {}
    budget = len(slots) + 3 * len(routes) + 64
    pops = 0

    while heap:
        pops += 1
        if pops > budget:
            # almost certainly a contradictory order cycle: let the full
            # pass prove it (or, if not, settle everything exactly)
            if _obs.ACTIVE:
                _obs.inc("settle.budget_fallbacks")
                _obs.inc("settle.cone_pops", pops)
            return _settle_fast(schedule)
        _, _, is_hop, obj = heappop(heap)
        pending.discard(id(obj))

        # recompute obj.start as the max over its *live* predecessors
        new_start = 0.0
        if is_hop:
            ch = obj._chan
            order = link_order[ch]
            m = lp_get(ch)
            if m is None:
                m = link_pos[ch] = sched_lpos(ch)
            i = m[id(obj)]
            if i > 0:
                f = order[i - 1].finish
                if f > new_start:
                    new_start = f
            u, v = obj.edge
            chained = u in slots and v in slots
            if chained:
                k = obj._rpos
                f = slots[u].finish if k == 0 else routes[obj.edge].hops[k - 1].finish
                if f > new_start:
                    new_start = f
        else:
            t, p = obj.task, obj.proc
            order = proc_order[p]
            m = pp_get(p)
            if m is None:
                m = proc_pos[p] = sched_ppos(p)
            i = m[t]
            if i > 0:
                f = slots[order[i - 1]].finish
                if f > new_start:
                    new_start = f
            for u, ue in pred_edges(t):
                us = slots_get(u)
                if us is None:
                    continue  # partial schedule: constraint not yet active
                r = routes_get(ue)
                f = r.hops[-1].finish if (r is not None and r.hops) else us.finish
                if f > new_start:
                    new_start = f

        if new_start == obj.start:
            continue  # times converged here; successors are unaffected

        if times_append is not None:
            times_append((obj, obj.start, obj.finish))
        duration = obj.cost
        if duration is None:
            duration = (
                comm_cost(obj.edge, obj.link) if is_hop
                else exec_cost(obj.task, obj.proc)
            )
        old_finish = obj.finish
        obj.start = new_start
        new_finish = new_start + duration
        obj.finish = new_finish

        # Propagate to constraint successors — but only where this
        # node's finish can actually move them. A successor's start is
        # the max over its predecessor finishes, so a *grown* finish
        # matters only when it exceeds the successor's current start,
        # and a *shrunk* one only when it was the binding constraint
        # (successor start == old finish, an exact float copy). A
        # dominated successor skipped here is re-examined if its binding
        # predecessor ever changes — that predecessor's own write
        # triggers the push, and the recompute reads all predecessors.
        grew = new_finish > old_finish
        if grew:
            oid = id(obj)
            c = regrow.get(oid, 0) + 1
            if c >= 3:
                # repeated growth: almost surely a contradictory order
                # cycle through this node — confirm with a successor DFS
                # (far cheaper than proving it via the full pass). A
                # cleared node is a legitimate multi-wave transient:
                # mark it checked and keep iterating (the fixpoint does
                # not depend on processing order; a cycle elsewhere is
                # caught by its own members' growth or the pop budget).
                if _reaches_itself(schedule, obj, is_hop):
                    desc = (
                        f"hop {obj.edge} {obj.src}->{obj.dst}" if is_hop
                        else f"task {obj.task!r}@P{obj.proc}"
                    )
                    raise CycleError(
                        "contradictory schedule orders (incremental "
                        f"settle): cycle through {desc}",
                        [obj.edge if is_hop else obj.task],
                    )
                c = -(1 << 30)  # proven cycle-free; never re-check
            regrow[oid] = c
        if is_hop:
            touched_channels.add(ch)
            if i + 1 < len(order):
                nxt = order[i + 1]
                s = nxt.start
                if (new_finish > s) if grew else (s == old_finish):
                    oid = id(nxt)
                    if oid not in pending:
                        pending.add(oid)
                        seq += 1
                        heappush(heap, (s, seq, True, nxt))
            if chained:
                hops = routes[obj.edge].hops
                k = obj._rpos
                nxt = hops[k + 1] if k + 1 < len(hops) else slots[v]
                s = nxt.start
                if (new_finish > s) if grew else (s == old_finish):
                    oid = id(nxt)
                    if oid not in pending:
                        pending.add(oid)
                        seq += 1
                        heappush(heap, (s, seq, k + 1 < len(hops), nxt))
        else:
            touched_procs.add(p)
            if i + 1 < len(order):
                nxt = slots[order[i + 1]]
                s = nxt.start
                if (new_finish > s) if grew else (s == old_finish):
                    oid = id(nxt)
                    if oid not in pending:
                        pending.add(oid)
                        seq += 1
                        heappush(heap, (s, seq, False, nxt))
            for v in succ_of[t]:
                vs = slots_get(v)
                if vs is None:
                    continue
                r = routes_get((t, v))
                if r is not None and r.hops:
                    nxt, nxt_hop = r.hops[0], True
                else:
                    nxt, nxt_hop = vs, False
                s = nxt.start
                if (new_finish > s) if grew else (s == old_finish):
                    oid = id(nxt)
                    if oid not in pending:
                        pending.add(oid)
                        seq += 1
                        heappush(heap, (s, seq, nxt_hop, nxt))

    # seeds sit on mutated resources even when their times were already
    # right (e.g. an inserted hop whose planned start was exact)
    for t in seed_tasks:
        slot = slots_get(t)
        if slot is not None:
            touched_procs.add(slot.proc)
    for hop in live_seed_hops:
        touched_channels.add(hop._chan)

    if _obs.ACTIVE:
        _obs.inc("settle.incremental_runs")
        _obs.inc("settle.cone_pops", pops)
    schedule.resort_partial(touched_procs, touched_channels)
    return schedule


def settle_array(schedule: Schedule, seed_tasks, seed_hops) -> Schedule:
    """Array-engine sibling of :func:`settle_incremental`.

    Same change-driven worklist, same seeds, same undo-log write-backs
    through the open :class:`~repro.schedule.schedule.ScheduleTxn` —
    rollback, the validator, and ``repro.dynamic`` repair see no
    difference. What changes is the state the cone is settled against:
    timelines rebuilt during/after the settle are
    :class:`~repro.schedule.arraystate.ArrayTimeline` (via the
    schedule's engine-mode timeline class), and the rare ``cost is
    None`` duration fallbacks read the :class:`~repro.schedule.
    arraystate.ArrayState` dense matrices instead of per-task dict
    chains. The longest-path fixpoint is a max over the same floats, so
    the settled times are bit-identical to :func:`settle_incremental` —
    enforced by the 4-mode differential suites.
    """
    system = schedule.system
    graph = system.graph
    if graph.has_zero_cost_edge():
        return _settle_fast(schedule)

    from repro.schedule.arraystate import get_array_state

    state = get_array_state(system)
    exec_matrix = state.exec_matrix
    task_index = graph.task_index
    comm_row = state.comm_row
    col_of = state._col
    comm_cost = system.comm_cost

    slots = schedule.slots
    routes = schedule.routes
    slots_get = slots.get
    routes_get = routes.get
    proc_order = schedule.proc_order
    link_order = schedule.link_order
    txn = schedule._txn
    pred_edges = graph.pred_edges
    succ_of = graph._succ

    proc_pos: Dict[object, Dict[object, int]] = {}
    link_pos: Dict[object, Dict[int, int]] = {}
    pp_get = proc_pos.get
    lp_get = link_pos.get
    sched_ppos = schedule.proc_positions
    sched_lpos = schedule.link_positions

    heap: List[tuple] = []
    pending: set = set()
    heappush = heapq.heappush
    heappop = heapq.heappop
    seq = 0

    live_seed_hops: List[object] = []
    for hop in seed_hops:
        r = routes_get(hop.edge)
        if r is not None and any(h is hop for h in r.hops):
            live_seed_hops.append(hop)
    for t in seed_tasks:
        slot = slots_get(t)
        if slot is not None:
            oid = id(slot)
            if oid not in pending:
                pending.add(oid)
                seq += 1
                heappush(heap, (slot.start, seq, False, slot))
    for hop in live_seed_hops:
        oid = id(hop)
        if oid not in pending:
            pending.add(oid)
            seq += 1
            heappush(heap, (hop.start, seq, True, hop))

    touched_procs: set = set()
    touched_channels: set = set()
    times_append = txn.times.append if txn is not None else None
    # same convergence backstops as settle_incremental (see there)
    regrow: Dict[int, int] = {}
    budget = len(slots) + 3 * len(routes) + 64
    pops = 0

    while heap:
        pops += 1
        if pops > budget:
            if _obs.ACTIVE:
                _obs.inc("settle.budget_fallbacks")
                _obs.inc("settle.cone_pops", pops)
            return _settle_fast(schedule)
        _, _, is_hop, obj = heappop(heap)
        pending.discard(id(obj))

        new_start = 0.0
        if is_hop:
            ch = obj._chan
            order = link_order[ch]
            m = lp_get(ch)
            if m is None:
                m = link_pos[ch] = sched_lpos(ch)
            i = m[id(obj)]
            if i > 0:
                f = order[i - 1].finish
                if f > new_start:
                    new_start = f
            u, v = obj.edge
            chained = u in slots and v in slots
            if chained:
                k = obj._rpos
                f = slots[u].finish if k == 0 else routes[obj.edge].hops[k - 1].finish
                if f > new_start:
                    new_start = f
        else:
            t, p = obj.task, obj.proc
            order = proc_order[p]
            m = pp_get(p)
            if m is None:
                m = proc_pos[p] = sched_ppos(p)
            i = m[t]
            if i > 0:
                f = slots[order[i - 1]].finish
                if f > new_start:
                    new_start = f
            for u, ue in pred_edges(t):
                us = slots_get(u)
                if us is None:
                    continue  # partial schedule: constraint not yet active
                r = routes_get(ue)
                f = r.hops[-1].finish if (r is not None and r.hops) else us.finish
                if f > new_start:
                    new_start = f

        if new_start == obj.start:
            continue  # times converged here; successors are unaffected

        if times_append is not None:
            times_append((obj, obj.start, obj.finish))
        duration = obj.cost
        if duration is None:
            # dense fallbacks: same floats as the system's scalar
            # lookups (the exec matrix shares the per-task tuples, the
            # comm row the memoized h'*c/bw products)
            if is_hop:
                row = comm_row(obj.edge)
                lid = obj.link
                duration = (
                    row[col_of[lid]] if row is not None
                    else comm_cost(obj.edge, lid)
                )
            else:
                duration = float(exec_matrix[task_index(obj.task), obj.proc])
        old_finish = obj.finish
        obj.start = new_start
        new_finish = new_start + duration
        obj.finish = new_finish

        grew = new_finish > old_finish
        if grew:
            oid = id(obj)
            c = regrow.get(oid, 0) + 1
            if c >= 3:
                if _reaches_itself(schedule, obj, is_hop):
                    desc = (
                        f"hop {obj.edge} {obj.src}->{obj.dst}" if is_hop
                        else f"task {obj.task!r}@P{obj.proc}"
                    )
                    raise CycleError(
                        "contradictory schedule orders (array settle): "
                        f"cycle through {desc}",
                        [obj.edge if is_hop else obj.task],
                    )
                c = -(1 << 30)  # proven cycle-free; never re-check
            regrow[oid] = c
        if is_hop:
            touched_channels.add(ch)
            if i + 1 < len(order):
                nxt = order[i + 1]
                s = nxt.start
                if (new_finish > s) if grew else (s == old_finish):
                    oid = id(nxt)
                    if oid not in pending:
                        pending.add(oid)
                        seq += 1
                        heappush(heap, (s, seq, True, nxt))
            if chained:
                hops = routes[obj.edge].hops
                k = obj._rpos
                nxt = hops[k + 1] if k + 1 < len(hops) else slots[v]
                s = nxt.start
                if (new_finish > s) if grew else (s == old_finish):
                    oid = id(nxt)
                    if oid not in pending:
                        pending.add(oid)
                        seq += 1
                        heappush(heap, (s, seq, k + 1 < len(hops), nxt))
        else:
            touched_procs.add(p)
            if i + 1 < len(order):
                nxt = slots[order[i + 1]]
                s = nxt.start
                if (new_finish > s) if grew else (s == old_finish):
                    oid = id(nxt)
                    if oid not in pending:
                        pending.add(oid)
                        seq += 1
                        heappush(heap, (s, seq, False, nxt))
            for v in succ_of[t]:
                vs = slots_get(v)
                if vs is None:
                    continue
                r = routes_get((t, v))
                if r is not None and r.hops:
                    nxt, nxt_hop = r.hops[0], True
                else:
                    nxt, nxt_hop = vs, False
                s = nxt.start
                if (new_finish > s) if grew else (s == old_finish):
                    oid = id(nxt)
                    if oid not in pending:
                        pending.add(oid)
                        seq += 1
                        heappush(heap, (s, seq, nxt_hop, nxt))

    for t in seed_tasks:
        slot = slots_get(t)
        if slot is not None:
            touched_procs.add(slot.proc)
    for hop in live_seed_hops:
        touched_channels.add(hop._chan)

    if _obs.ACTIVE:
        _obs.inc("settle.incremental_runs")
        _obs.inc("settle.cone_pops", pops)
    schedule.resort_partial(touched_procs, touched_channels)
    return schedule


def _reaches_itself(schedule: Schedule, start, start_is_hop: bool) -> bool:
    """True when ``start`` lies on a constraint cycle (reachable from its
    own successors). Pure order-graph traversal — no float work, no
    global graph build — so confirming a suspected contradictory commit
    costs a DFS over the reachable cone instead of a full settle pass.
    """
    slots = schedule.slots
    routes = schedule.routes
    proc_order = schedule.proc_order
    link_order = schedule.link_order
    graph_succ = schedule.system.graph._succ
    lpos = schedule.link_positions
    ppos = schedule.proc_positions

    def successors(node, is_hop):
        out = []
        if is_hop:
            ch = node._chan
            order = link_order[ch]
            i = lpos(ch)[id(node)]
            if i + 1 < len(order):
                out.append((order[i + 1], True))
            u, v = node.edge
            if u in slots and v in slots:
                hops = routes[node.edge].hops
                k = node._rpos
                if k + 1 < len(hops):
                    out.append((hops[k + 1], True))
                else:
                    out.append((slots[v], False))
        else:
            t, p = node.task, node.proc
            order = proc_order[p]
            i = ppos(p)[t]
            if i + 1 < len(order):
                out.append((slots[order[i + 1]], False))
            for v in graph_succ[t]:
                vs = slots.get(v)
                if vs is None:
                    continue
                r = routes.get((t, v))
                if r is not None and r.hops:
                    out.append((r.hops[0], True))
                else:
                    out.append((vs, False))
        return out

    stack = successors(start, start_is_hop)
    seen = set()
    while stack:
        node, is_hop = stack.pop()
        if node is start:
            return True
        oid = id(node)
        if oid in seen:
            continue
        seen.add(oid)
        stack.extend(successors(node, is_hop))
    return False


def _settle_legacy(schedule: Schedule) -> Schedule:
    graph = schedule.system.graph
    system = schedule.system

    # --- dense node numbering: tasks first, then hops ---------------------
    task_ids: Dict[object, int] = {}
    objs: List[object] = []          # per node: TaskSlot or MessageHop
    duration: List[float] = []

    for task, slot in schedule.slots.items():
        task_ids[task] = len(objs)
        objs.append(slot)
        duration.append(system.exec_cost(task, slot.proc))

    hop_ids: Dict[int, int] = {}     # id(hop) -> node
    for route in schedule.routes.values():
        for hop in route.hops:
            hop_ids[id(hop)] = len(objs)
            objs.append(hop)
            duration.append(system.comm_cost(hop.edge, hop.link))

    n = len(objs)
    succ: List[List[int]] = [[] for _ in range(n)]
    indeg: List[int] = [0] * n

    def dep(a: int, b: int) -> None:
        succ[a].append(b)
        indeg[b] += 1

    # processor order chains ---------------------------------------------
    for order in schedule.proc_order.values():
        for a, b in zip(order, order[1:]):
            dep(task_ids[a], task_ids[b])

    # link order chains -----------------------------------------------------
    for hops in schedule.link_order.values():
        for a, b in zip(hops, hops[1:]):
            dep(hop_ids[id(a)], hop_ids[id(b)])

    # message chains & task precedence -------------------------------------
    slots = schedule.slots
    routes = schedule.routes
    for u, v in graph.edges():
        if u not in slots or v not in slots:
            continue  # partial schedule: constraint not yet active
        route = routes.get((u, v))
        if route is None or not route.hops:
            dep(task_ids[u], task_ids[v])
            continue
        hops = route.hops
        dep(task_ids[u], hop_ids[id(hops[0])])
        for a, b in zip(hops, hops[1:]):
            dep(hop_ids[id(a)], hop_ids[id(b)])
        dep(hop_ids[id(hops[-1])], task_ids[v])

    # Kahn longest-path ------------------------------------------------------
    start = [0.0] * n
    ready = [i for i in range(n) if indeg[i] == 0]
    head = 0
    while head < len(ready):
        i = ready[head]
        head += 1
        finish = start[i] + duration[i]
        for j in succ[i]:
            if finish > start[j]:
                start[j] = finish
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if head != n:
        blocked = [i for i in range(n) if indeg[i] > 0]
        cycle = _extract_cycle(succ, blocked, objs, schedule)
        raise CycleError(
            f"contradictory schedule orders ({len(blocked)} nodes blocked); "
            f"cycle: {cycle}",
            blocked,
        )

    # write back ----------------------------------------------------------
    for i, obj in enumerate(objs):
        obj.start = start[i]
        obj.finish = start[i] + duration[i]

    schedule.resort_orders()
    return schedule


def _extract_cycle(succ, blocked_list, objs, schedule) -> str:
    """Find one concrete cycle among blocked nodes (debugging aid).

    Classic O(V+E) colored DFS: *gray* nodes are on the current path, and
    *black* nodes are fully explored and provably not part of a cycle
    reachable from here (so they are never revisited — keeping this linear
    matters: the exponential naive version once froze whole BSA runs).
    """
    blocked = set(blocked_list)
    if not blocked:
        return "<none>"

    def describe(i: int) -> str:
        obj = objs[i]
        if hasattr(obj, "task"):
            return f"task {obj.task!r}@P{obj.proc}"
        return f"hop {obj.edge} {obj.src}->{obj.dst}"

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {i: WHITE for i in blocked}
    for root in blocked_list:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(succ[root]))]
        color[root] = GRAY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in blocked or color.get(nxt) == BLACK:
                    continue
                if color[nxt] == GRAY:
                    idx = path.index(nxt)
                    cycle = path[idx:] + [nxt]
                    shown = cycle if len(cycle) <= 12 else cycle[:12]
                    suffix = "" if len(cycle) <= 12 else f" -> ... ({len(cycle)} nodes)"
                    return " -> ".join(describe(k) for k in shown) + suffix
                color[nxt] = GRAY
                path.append(nxt)
                stack.append((nxt, iter(succ[nxt])))
                advanced = True
                break
            if not advanced:
                stack.pop()
                path.pop()
                color[node] = BLACK
    return "<no simple cycle found>"
