"""ASCII Gantt charts in the style of the paper's Figure 2.

One column per processor and per link; time flows downward. Intended for
eyeballing small schedules (the worked example, tests, tutorials) — the
experiment harness reports numbers, not art.
"""

from __future__ import annotations

from typing import List, Optional

from repro.schedule.schedule import Schedule
from repro.util.tolerance import EPS


def render_gantt(
    schedule: Schedule,
    height: int = 40,
    col_width: int = 9,
    show_links: bool = True,
) -> str:
    """Render the schedule as fixed-width text.

    Each column is a processor (``P0..``) or link (``L0-1..``); each row is
    a time bucket of ``SL / height``. Task slots print their id at the
    bucket where they start and ``|`` while running; hops print
    ``src>dst`` of their message.
    """
    sl = schedule.schedule_length()
    if sl <= 0:
        return "(empty schedule)"
    dt = sl / height

    columns: List[List[str]] = []
    headers: List[str] = []

    for p in schedule.system.topology.processors:
        headers.append(f"P{p}")
        col = [" " * col_width] * (height + 1)
        for t in schedule.proc_order[p]:
            slot = schedule.slots[t]
            r0 = min(height, int(slot.start / dt))
            r1 = min(height, max(r0, int((slot.finish - EPS) / dt)))
            label = str(t)[:col_width].center(col_width)
            # short slots can share a bucket: don't hide the earlier label
            if col[r0].strip() and r0 < r1:
                r0 += 1
            col[r0] = label
            for r in range(r0 + 1, r1 + 1):
                col[r] = "|".center(col_width)
        columns.append(col)

    if show_links:
        topo = schedule.system.topology
        for ch in topo.channels():
            # half-duplex channel == canonical link id; full-duplex
            # channels are per-direction and render with an arrow
            sep = "-" if topo.duplex(*ch) == "half" else ">"
            headers.append(f"L{ch[0]}{sep}{ch[1]}")
            col = [" " * col_width] * (height + 1)
            for hop in schedule.link_order[ch]:
                r0 = min(height, int(hop.start / dt))
                r1 = min(height, max(r0, int((hop.finish - EPS) / dt)))
                label = f"{_short(hop.edge[0])}>{_short(hop.edge[1])}"[:col_width]
                col[r0] = label.center(col_width)
                for r in range(r0 + 1, r1 + 1):
                    col[r] = ":".center(col_width)
            columns.append(col)

    lines = []
    lines.append("time".rjust(8) + " " + " ".join(h.center(col_width) for h in headers))
    lines.append("-" * (9 + (col_width + 1) * len(headers)))
    for r in range(height + 1):
        t_label = f"{r * dt:8.1f}"
        lines.append(t_label + " " + " ".join(col[r] for col in columns))
    lines.append("-" * (9 + (col_width + 1) * len(headers)))
    lines.append(f"schedule length = {sl:.1f}  ({schedule.algorithm})")
    return "\n".join(lines)


def _short(task_id) -> str:
    s = str(task_id)
    return s if len(s) <= 4 else s[:4]
