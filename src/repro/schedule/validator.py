"""Strict schedule validation.

Checks every invariant implied by the paper's model (§2.1):

1. every task appears exactly once, on a real processor, with duration
   exactly ``h_ix * tau_i``;
2. tasks on one processor never overlap;
3. link exclusivity under the topology's *duplex model*: on a
   half-duplex link no two hops overlap regardless of direction; on a
   full-duplex link hops may overlap only when they travel in opposite
   directions. The rule is read from the topology's
   :class:`~repro.network.topology.LinkSpec`, not from how the hops
   happen to be stored — so a full-duplex schedule replayed on a
   half-duplex system is caught;
4. every inter-processor message is routed along a *contiguous* path of
   existing links from producer to consumer, departs no earlier than the
   producer finishes, respects store-and-forward hop ordering, and each
   hop lasts exactly ``h'_ij,xy * c_ij / bandwidth``;
5. every task starts no earlier than its data-ready time (all incoming
   message arrivals / local producer finishes);
6. bookkeeping consistency between ``routes`` and ``link_order``.

All violations are collected (not fail-fast) so tests can assert on the
full picture. ``validate_schedule`` raises
:class:`repro.errors.InvalidScheduleError` when anything is wrong.

Tolerances come from :mod:`repro.util.tolerance` — the *same* constants
the engine schedules with, so nothing can pass the engine's overlap
check yet fail validation (or vice versa) in a tolerance gap.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import InvalidScheduleError
from repro.schedule.schedule import Schedule
from repro.util.intervals import intervals_overlap
from repro.util.tolerance import TOL as _TOL


def schedule_violations(schedule: Schedule) -> List[str]:
    """Return a list of human-readable violations (empty == valid)."""
    v: List[str] = []
    system = schedule.system
    graph = system.graph
    topo = system.topology

    # 1. task coverage & durations ------------------------------------------
    for task in graph.tasks():
        if task not in schedule.slots:
            v.append(f"task {task!r} is not scheduled")
    for task, slot in schedule.slots.items():
        if not graph.has_task(task):
            v.append(f"scheduled task {task!r} is not in the graph")
            continue
        if not (0 <= slot.proc < topo.n_procs):
            v.append(f"task {task!r} on invalid processor {slot.proc}")
            continue
        if slot.start < -_TOL:
            v.append(f"task {task!r} starts before time 0 ({slot.start})")
        expected = system.exec_cost(task, slot.proc)
        if abs(slot.duration - expected) > _TOL:
            v.append(
                f"task {task!r} duration {slot.duration:.6f} != "
                f"exec cost {expected:.6f} on P{slot.proc}"
            )
        if task not in schedule.proc_order[slot.proc]:
            v.append(f"task {task!r} missing from proc_order[{slot.proc}]")

    for p, order in schedule.proc_order.items():
        for t in order:
            if t not in schedule.slots or schedule.slots[t].proc != p:
                v.append(f"proc_order[{p}] lists {t!r} which is not slotted there")

    # 2. processor exclusivity ----------------------------------------------
    for p, order in schedule.proc_order.items():
        slots = sorted((schedule.slots[t] for t in order), key=lambda s: s.start)
        for a, b in zip(slots, slots[1:]):
            if intervals_overlap(a.start, a.finish, b.start, b.finish):
                v.append(
                    f"P{p}: tasks {a.task!r} [{a.start:.3f},{a.finish:.3f}) and "
                    f"{b.task!r} [{b.start:.3f},{b.finish:.3f}) overlap"
                )

    # 3. link exclusivity under the duplex model ------------------------------
    # Group hops by *undirected* link and apply the topology's duplex rule
    # (not the container layout): half-duplex forbids any overlap on the
    # link, full-duplex forbids overlap only within one direction.
    by_link: Dict[Tuple[int, int], List] = {}
    for ch, hops in schedule.link_order.items():
        for h in hops:
            if not topo.has_link(h.src, h.dst):
                v.append(f"channel {ch}: hop {h.edge} uses missing link ({h.src},{h.dst})")
                continue
            if topo.channel(h.src, h.dst) != ch:
                v.append(
                    f"channel {ch}: hop {h.edge} {h.src}->{h.dst} belongs to "
                    f"channel {topo.channel(h.src, h.dst)}"
                )
            by_link.setdefault(h.link, []).append(h)
    for l, hops in sorted(by_link.items()):
        half = topo.duplex(*l) == "half"
        groups = [hops] if half else [
            [h for h in hops if (h.src, h.dst) == l],
            [h for h in hops if (h.src, h.dst) != l],
        ]
        for group in groups:
            shops = sorted(group, key=lambda h: h.start)
            for a, b in zip(shops, shops[1:]):
                if intervals_overlap(a.start, a.finish, b.start, b.finish):
                    dir_note = "" if half else f" (direction {a.src}->{a.dst})"
                    v.append(
                        f"link {l}{dir_note}: hops {a.edge}[{a.start:.3f},{a.finish:.3f}) and "
                        f"{b.edge}[{b.start:.3f},{b.finish:.3f}) overlap"
                    )

    # 4 & 5. message routing and precedence ----------------------------------
    for u, uv in graph.edges():
        edge = (u, uv)
        if u not in schedule.slots or uv not in schedule.slots:
            continue
        su, sv = schedule.slots[u], schedule.slots[uv]
        route = schedule.routes.get(edge)
        if su.proc == sv.proc:
            if route is not None and not route.is_local:
                v.append(f"message {edge} routed although both tasks on P{su.proc}")
            if sv.start < su.finish - _TOL:
                v.append(
                    f"precedence violated: {uv!r} starts {sv.start:.3f} < "
                    f"{u!r} finishes {su.finish:.3f} (same P{su.proc})"
                )
            continue
        # inter-processor: route must exist and be coherent
        if route is None or route.is_local:
            v.append(f"message {edge} between P{su.proc} and P{sv.proc} has no route")
            continue
        procs = route.procs
        if procs[0] != su.proc:
            v.append(f"message {edge} departs from P{procs[0]}, producer on P{su.proc}")
        if procs[-1] != sv.proc:
            v.append(f"message {edge} arrives at P{procs[-1]}, consumer on P{sv.proc}")
        if not route.check_contiguous():
            v.append(f"message {edge} route is not a contiguous path: {procs}")
        prev_finish = su.finish
        for k, hop in enumerate(route.hops):
            if not topo.has_link(hop.src, hop.dst):
                v.append(f"message {edge} hop {k} uses missing link ({hop.src},{hop.dst})")
                continue
            expected = system.comm_cost(edge, hop.link)
            if abs(hop.duration - expected) > _TOL:
                v.append(
                    f"message {edge} hop {k} duration {hop.duration:.6f} != "
                    f"comm cost {expected:.6f} on link {hop.link}"
                )
            if hop.start < prev_finish - _TOL:
                v.append(
                    f"message {edge} hop {k} starts {hop.start:.3f} before "
                    f"its data is ready at {prev_finish:.3f}"
                )
            ch = topo.channel(hop.src, hop.dst)
            if hop not in schedule.link_order[ch]:
                v.append(f"message {edge} hop {k} missing from link_order[{ch}]")
            prev_finish = hop.finish
        if sv.start < route.arrival - _TOL:
            v.append(
                f"task {uv!r} starts {sv.start:.3f} before message {edge} "
                f"arrives at {route.arrival:.3f}"
            )

    # 6. no orphan hops --------------------------------------------------------
    route_hops = {id(h) for r in schedule.routes.values() for h in r.hops}
    for l, hops in schedule.link_order.items():
        for h in hops:
            if id(h) not in route_hops:
                v.append(f"link {l} holds orphan hop for {h.edge}")

    return v


def validate_schedule(schedule: Schedule) -> None:
    """Raise :class:`InvalidScheduleError` unless the schedule is valid."""
    violations = schedule_violations(schedule)
    if violations:
        raise InvalidScheduleError(violations)
