"""Schedule building blocks: task slots, message hops, routes.

Times on these objects are *derived* state — either set by the settle pass
(BSA) or directly by a monotonic list scheduler (DLS). The authoritative
state of an order-based schedule is the occupant order on each processor
and link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.graph.model import TaskId
from repro.network.topology import Link, Proc, link_id

Edge = Tuple[TaskId, TaskId]


@dataclass(slots=True)
class TaskSlot:
    """Execution of one task on one processor over ``[start, finish)``.

    ``cost`` caches the exact execution cost the slot was created with so
    the settle pass need not re-derive it (``finish - start`` is *not* a
    substitute: after float rounding it can differ from the cost in the
    last bit). ``None`` means "unknown, look it up".

    ``slots=True``: these objects are the unit of work of every settle
    pass; slotted attribute access measurably speeds the hottest loops.
    """

    task: TaskId
    proc: Proc
    start: float = 0.0
    finish: float = 0.0
    cost: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(slots=True)
class MessageHop:
    """One link traversal of a message.

    ``src``/``dst`` give the direction; ``link`` is the canonical
    (undirected) link id, i.e. ``link == link_id(src, dst)``.

    ``_rpos``/``_chan`` are backrefs stamped by
    :meth:`repro.schedule.schedule.Schedule.set_route` (index within the
    owning route, reservation channel) for the incremental settle
    engine; they carry no independent information, so they are excluded
    from comparison and repr.
    """

    edge: Edge
    src: Proc
    dst: Proc
    start: float = 0.0
    finish: float = 0.0
    #: exact communication cost at creation (see TaskSlot.cost)
    cost: Optional[float] = None
    _rpos: int = field(default=0, compare=False, repr=False)
    _chan: Optional[Link] = field(default=None, compare=False, repr=False)

    @property
    def link(self) -> Link:
        return link_id(self.src, self.dst)

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class Route:
    """The full multi-hop path of one message between two processors.

    ``hops`` is ordered from the producer's processor toward the
    consumer's. An empty route means the message is local (zero cost).
    """

    edge: Edge
    hops: List[MessageHop] = field(default_factory=list)

    @property
    def is_local(self) -> bool:
        return not self.hops

    @property
    def procs(self) -> List[Proc]:
        """Processor sequence visited by the message (empty when local)."""
        if not self.hops:
            return []
        seq = [self.hops[0].src]
        seq.extend(h.dst for h in self.hops)
        return seq

    @property
    def arrival(self) -> float:
        """Finish time on the last hop (message finish time at destination)."""
        return self.hops[-1].finish if self.hops else 0.0

    def check_contiguous(self) -> bool:
        """True when consecutive hops share endpoints (a real path)."""
        return all(a.dst == b.src for a, b in zip(self.hops, self.hops[1:]))
