"""Tentative link reservations layered over a schedule's committed state.

Both BSA's migration evaluator and the list-scheduler baselines answer
the same what-if question while planning: *if this message went over
these links now, when would each hop start?* Reservations made while
answering must be visible to later hops of the same planning pass (two
messages of one task must not overlap on a link) but must not touch the
schedule. :class:`LinkPlanner` is that overlay, shared by both engines so
the contention substrate stays identical across algorithms.

Two implementations, selected by the process-wide hot-path mode:

* *indexed* (modes ``fast`` and ``incremental`` — planning is identical
  in both; ``incremental`` only changes settle/rollback downstream) —
  query the schedule's cached :class:`Timeline` with an indexed jump,
  merged on the fly (two-pointer walk) with the planner's small
  per-link tentative-reservation lists; nothing is copied or re-sorted;
* *legacy* — the original code: re-merge ``sorted(committed + planned)``
  object lists and scan from time zero on every reservation.

All modes yield bit-identical plans (see
``tests/test_hotpath_equivalence.py`` and ``benchmarks/bench_hotpath.py``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Tuple

from repro.network.topology import Link, Proc, link_id
from repro.schedule.events import Edge
from repro.schedule.schedule import Schedule
from repro.util.intervals import Interval, earliest_gap, fast_path_enabled


class LinkPlanner:
    """Plan hop reservations against committed + tentative link load."""

    def __init__(self, sched: Schedule, insertion: bool):
        self.sched = sched
        self.insertion = insertion
        # legacy mode: tentative Interval lists merged per query
        self.planned: Dict[Link, List[Interval]] = {}
        # fast mode: small start-sorted (starts, finishes) lists per link
        self._extras: Dict[Link, Tuple[List[float], List[float]]] = {}
        # bind the implementation once — reserve is called per hop on the
        # hottest path and the mode cannot change mid-plan
        self.reserve = (
            self._reserve_fast if fast_path_enabled() else self._reserve_legacy
        )

    def _reserve_fast(self, lid: Link, ready: float, duration: float) -> float:
        """Reserve ``duration`` on ``lid`` no earlier than ``ready``;
        returns the chosen start under the configured slot policy."""
        base = self.sched.link_timeline(lid)
        entry = self._extras.get(lid)
        if entry is None:
            entry = self._extras[lid] = ([], [])
        ex_starts, ex_finishes = entry
        if self.insertion:
            start = base.earliest_gap_merged(
                ready, duration, ex_starts, ex_finishes
            )
        else:
            # last reservation in start order of the merged view
            # (tentative after committed at equal starts, matching the
            # legacy stable sort)
            if ex_starts and (
                not base.starts or ex_starts[-1] >= base.starts[-1]
            ):
                last = ex_finishes[-1]
            else:
                last = base.last_finish()
            start = max(ready, last)
        k = bisect_right(ex_starts, start)
        ex_starts.insert(k, start)
        ex_finishes.insert(k, start + duration)
        return start

    def _reserve_legacy(self, lid: Link, ready: float, duration: float) -> float:
        busy = self.sched.link_busy(lid)
        extra = self.planned.get(lid)
        if extra:
            busy = sorted(busy + extra, key=lambda iv: iv.start)
        if self.insertion:
            start = earliest_gap(busy, ready, duration)
        else:
            last = busy[-1].finish if busy else 0.0
            start = max(ready, last)
        self.planned.setdefault(lid, []).append(Interval(start, start + duration))
        self.planned[lid].sort(key=lambda iv: iv.start)
        return start

    def walk_path(
        self, edge: Edge, path: List[Proc], ready: float
    ) -> Tuple[List[float], float]:
        """Reserve every hop of ``path``; returns (hop starts, arrival).

        Hop *durations* are looked up by canonical link id; hop
        *reservations* go to the traversal direction's channel (identical
        on half-duplex links, per-direction on full-duplex ones).
        """
        system = self.sched.system
        # hot path: index the precomputed directed-pair -> channel map
        # directly (it maps half-duplex directions to the canonical lid)
        channel_of = system.topology._channel
        comm_cache = system._comm_cache
        comm_cost = system.comm_cost
        reserve = self.reserve
        starts: List[float] = []
        for a, b in zip(path, path[1:]):
            lid = (a, b) if a < b else (b, a)
            duration = comm_cache.get((edge, lid))
            if duration is None:
                duration = comm_cost(edge, lid)
            start = reserve(channel_of[(a, b)], ready, duration)
            starts.append(start)
            ready = start + duration
        return starts, ready


def arrival_lower_bound(
    pred_info: List[Tuple[Proc, float, float]],
    dst: Proc,
    hop_distance=None,
) -> float:
    """Queue-free lower bound on a task's data-ready time at ``dst``.

    ``pred_info`` holds ``(producer proc, producer finish, nominal comm
    cost)`` per predecessor. With ``hop_distance`` (a ``(src, dst) ->
    hops`` callable, valid only when every hop of a message costs its
    nominal ``c`` — homogeneous link factors — and routes have exactly
    that many hops), each arrival is bounded by the store-and-forward
    chain ``finish + c + c + ...``; the repeated addition mirrors the
    hop-by-hop float chain of a real plan, so the bound is float-exact
    (``arrival >= bound`` bit-for-bit, queueing only delays hops).
    Without ``hop_distance`` the bound degrades to the latest producer
    finish, which is always valid.

    This is the soundness-bearing kernel of both BSA's and DLS's
    candidate pruning — keep it shared so the float-exactness argument
    lives in exactly one place.
    """
    lb = 0.0
    for (p, f, c) in pred_info:
        if hop_distance is not None and p != dst:
            d = hop_distance(p, dst)
            while d > 0:
                f = f + c
                d -= 1
        if f > lb:
            lb = f
    return lb


def slot_start(sched: Schedule, proc: Proc, ready: float, duration: float,
               insertion: bool) -> float:
    """Earliest feasible task start on ``proc`` under the slot policy."""
    if fast_path_enabled():
        tl = sched.proc_timeline(proc)
        if insertion:
            return tl.earliest_gap(ready, duration)
        return max(ready, tl.last_finish())
    busy = sched.proc_busy(proc)
    if insertion:
        return earliest_gap(busy, ready, duration)
    last = busy[-1].finish if busy else 0.0
    return max(ready, last)
