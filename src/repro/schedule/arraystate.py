"""Flat-array engine state for ``REPRO_HOTPATH=array``.

The object-and-dict hot path (modes ``fast``/``incremental``) tops out
around n≈400 tasks: beyond that, BSA spends its time in per-candidate
``evaluate_migration`` calls and long scalar timeline scans. The array
engine keeps the *algorithms* (and therefore the schedules, bit for bit)
identical and swaps the *state representation* under them:

* :class:`ArrayTimeline` — a :class:`~repro.util.intervals.Timeline`
  whose gap search switches to one vectorized numpy pass (subtract /
  compare / argmax over the tail) once the post-bisect tail is long
  enough to beat the scalar scan. The candidate start before reservation
  ``k`` is ``max(ready, maxf[k-1])`` — exactly the scalar loop's running
  maximum, because the bisect guarantees ``maxf[i-1] <= ready`` — so the
  float comparisons are the same operations in the same order and the
  result is bit-identical.
* :class:`ArrayState` — dense cost/route mirrors of a
  :class:`~repro.network.system.HeterogeneousSystem`, built once per
  system and cached on it: the ``n_tasks x n_procs`` execution-cost
  matrix, per-edge communication-cost rows over the canonical links
  (vectorized ``factor * c / bandwidth`` in the scalar evaluation
  order), and per-source *shortest-path tries* that merge the BFS routes
  to every destination by shared prefix so a committed-state arrival
  bound for all candidate processors costs one gap search per trie node
  instead of one full route walk per destination.

:func:`ArrayState.arrival_bounds` is the soundness-bearing kernel of the
batched candidate evaluator in :mod:`repro.core.bsa`: it walks a
predecessor's message over the *committed* link timelines only (no
planner extras). ``earliest_gap`` under insertion is monotone
nondecreasing in both the ready time and the reservation set — extra
reservations can only break a fit or raise the running maximum, never
admit an earlier start — so the committed walk lower-bounds the planned
arrival hop by hop, and is bit-equal to it whenever the plan's own
tentative reservations don't share a channel with the message (the
common case). See ``_evaluate_candidates_array`` for how the bounds
become pruning masks without changing the selected plan.

This module is the only engine module that imports numpy at the top
level; it is imported only when the ``array`` mode is active (the mode
switch in :mod:`repro.util.intervals` refuses ``array`` without numpy,
and every other mode stays numpy-free).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional

import numpy as np

from repro.network.routing import shortest_path
from repro.network.system import HeterogeneousSystem, LinkHeterogeneity
from repro.network.topology import Link, Proc
from repro.obs import counters as _obs
from repro.schedule.events import Edge
from repro.util.intervals import Timeline
from repro.util.tolerance import EPS

__all__ = ["ArrayTimeline", "ArrayState", "get_array_state"]


class ArrayTimeline(Timeline):
    """A :class:`Timeline` with a vectorized long-tail gap search.

    Short scans (the common case once the bisect has skipped everything
    finished before ``ready``) stay on the scalar loop — numpy's per-op
    overhead only pays off past a few dozen reservations. The numpy
    mirrors of the start / running-max-finish arrays are built lazily on
    the first long query and reused for the timeline's lifetime (the
    schedule rebuilds timelines on mutation, so they are immutable
    here).
    """

    # the numpy mirrors are left unset until the first long query (an
    # unset slot raises AttributeError) — timelines are rebuilt on every
    # mutation, so a per-construction cost would dwarf the savings
    __slots__ = ("_np_starts", "_np_maxf")

    #: tail length at which the vectorized pass beats the scalar scan
    VEC_MIN = 48

    def earliest_gap(self, ready: float, duration: float) -> float:
        if duration < -EPS:
            raise ValueError(f"negative duration {duration}")
        t = ready if ready > 0.0 else 0.0
        if duration <= EPS:
            return t
        starts, finishes, maxf = self.starts, self.finishes, self._maxf
        n = len(starts)
        i = bisect_right(maxf, t)
        # Scalar prefix first: most queries fit within a few reservations
        # of the bisect point and the scalar loop exits at the first fit,
        # whereas a vectorized pass always pays for the whole tail. Only
        # a congested query that survives the prefix (no gap for VEC_MIN
        # reservations) falls through to the one-shot numpy pass.
        stop = i + self.VEC_MIN
        scan_all = stop >= n
        if scan_all:
            stop = n
        while i < stop:
            if starts[i] - t >= duration - EPS:
                return t
            f = finishes[i]
            if f > t:
                t = f
            i += 1
        if scan_all:
            return t
        try:
            nps = self._np_starts
        except AttributeError:
            nps = self._np_starts = np.asarray(starts)
            self._np_maxf = np.asarray(maxf)
        npm = self._np_maxf
        # Candidate start before reservation k (k in [i, n)): the scalar
        # loop's running maximum of t over finishes[..k-1], which equals
        # max(t, maxf[k-1]) because maxf is the running maximum and every
        # reservation before i was already folded into t. Same floats,
        # same `starts[k] - t >= duration - EPS` fit test — the first
        # fitting index is exactly where the scalar loop would return,
        # and with no fit both return max(t, maxf[-1]).
        cand = np.empty(n - i)
        cand[0] = t
        np.maximum(npm[i:n - 1], t, out=cand[1:])
        fits = nps[i:] - cand >= duration - EPS
        j = int(fits.argmax())
        if fits[j]:
            return float(cand[j])
        last = maxf[-1]
        return last if last > t else t

    def earliest_gap_merged(
        self,
        ready: float,
        duration: float,
        extra_starts: List[float],
        extra_finishes: List[float],
    ) -> float:
        # no tentative reservations on this link yet (the common case on
        # the first touch of each link in a plan): the two-pointer walk
        # degenerates to the base walk, which the vectorized search
        # answers identically
        if not extra_starts:
            return self.earliest_gap(ready, duration)
        return Timeline.earliest_gap_merged(
            self, ready, duration, extra_starts, extra_finishes
        )


class ArrayState:
    """Dense cost/route mirrors of one system, for the array engine.

    Built lazily via :func:`get_array_state` and cached on the system
    object; rebuilt automatically when the task set grows (dynamic
    arrivals register new tasks and cost rows before rescheduling).
    Communication-cost rows and path tries are themselves filled
    lazily per edge / per source processor, so corpus-scale systems only
    materialize what the scheduler actually touches.
    """

    def __init__(self, system: HeterogeneousSystem):
        self.system = system
        graph = system.graph
        topology = system.topology
        self._graph = graph
        self._topology = topology
        self.n_procs = topology.n_procs
        self._n_tasks = len(graph._index)
        # dense execution-cost matrix: row order == graph.task_index
        # order (insertion order), values shared bit-for-bit with the
        # system's per-task tuples
        self.exec_matrix = np.asarray(
            [system._exec[t] for t in graph.tasks()], dtype=float
        )
        self._task_index = graph.task_index
        # canonical links in a stable order; per-edge comm rows index
        # into this via the column map
        self._lids: List[Link] = sorted({
            (a, b) if a < b else (b, a) for (a, b) in topology.channels()
        })
        self._col: Dict[Link, int] = {l: k for k, l in enumerate(self._lids)}
        self._bw = np.asarray(
            [topology.bandwidth(*l) for l in self._lids], dtype=float
        )
        if system.link_mode is LinkHeterogeneity.PER_LINK:
            self._factors = np.asarray(
                [system._per_link[l] for l in self._lids], dtype=float
            )
        elif system.link_mode is LinkHeterogeneity.HOMOGENEOUS:
            self._factors = np.ones(len(self._lids))
        else:
            # PER_MESSAGE_LINK factors are hash-materialized per
            # (edge, link) — no row structure to vectorize; comm_row
            # returns None and callers fall back to the memoized scalar
            self._factors = None
        self._comm_rows: Dict[Edge, Optional[List[float]]] = {}
        self._tries: Dict[Proc, tuple] = {}

    # ------------------------------------------------------------------
    def valid_for(self, system: HeterogeneousSystem) -> bool:
        """Still mirrors ``system``? (Graph/topology identity + task
        count; edges need no stamp — comm rows are filled per edge.)"""
        return (
            self._graph is system.graph
            and self._topology is system.topology
            and self._n_tasks == len(system.graph._index)
        )

    def exec_row(self, task) -> np.ndarray:
        """Execution-cost row of ``task`` over all processors (a view)."""
        return self.exec_matrix[self._task_index(task)]

    def comm_row(self, edge: Edge) -> Optional[List[float]]:
        """Hop cost of ``edge`` on every canonical link, as a plain list
        (scalar indexing in the walk loops must not pay numpy overhead).

        The vectorized build performs ``(factor * c) / bandwidth``
        elementwise — the same two IEEE operations, in the same order,
        as :meth:`HeterogeneousSystem.comm_cost` — so every entry is
        bit-equal to the scalar lookup. ``None`` in ``per_message_link``
        mode (callers fall back to the memoized scalar path).
        """
        row = self._comm_rows.get(edge)
        if row is None and edge not in self._comm_rows:
            if self._factors is None:
                row = None
            else:
                c = self._graph.comm_cost(*edge)
                row = ((self._factors * c) / self._bw).tolist()
            self._comm_rows[edge] = row
        return row

    # ------------------------------------------------------------------
    def trie(self, src: Proc) -> tuple:
        """Shortest-path trie rooted at ``src``: the BFS routes to every
        destination, merged by shared (parent, hop) prefix.

        Returns ``(parents, chans, cols, dst_node)`` parallel arrays:
        node ``k`` is one directed hop whose message leaves the finish
        of node ``parents[k]`` (or the producer, for roots ``-1``),
        reserves on channel ``chans[k]`` and costs the edge's comm row
        at column ``cols[k]``; ``dst_node[d]`` is the terminal node of
        the route to ``d`` (``-1`` for ``src`` itself). Identical
        prefixes produce identical float chains, so merging them loses
        nothing — and needs no path-consistency assumption.
        """
        hit = self._tries.get(src)
        if hit is None:
            if _obs.ACTIVE:
                _obs.inc("route.trie_misses")
            hit = self._tries[src] = self._build_trie(src)
        elif _obs.ACTIVE:
            _obs.inc("route.trie_hits")
        return hit

    def _build_trie(self, src: Proc) -> tuple:
        topology = self._topology
        channel_of = topology._channel
        col_of = self._col
        parents: List[int] = []
        chans: List[Link] = []
        cols: List[int] = []
        dst_node = [-1] * self.n_procs
        index: Dict[tuple, int] = {}
        for dst in topology.processors:
            if dst == src:
                continue
            node = -1
            path = shortest_path(topology, src, dst)
            for a, b in zip(path, path[1:]):
                key = (node, a, b)
                nxt = index.get(key)
                if nxt is None:
                    nxt = len(parents)
                    index[key] = nxt
                    parents.append(node)
                    chans.append(channel_of[(a, b)])
                    cols.append(col_of[(a, b) if a < b else (b, a)])
                node = nxt
            dst_node[dst] = node
        return parents, chans, cols, dst_node

    def arrival_bounds(
        self,
        sched,
        edge: Edge,
        src: Proc,
        finish: float,
        insertion: bool,
        tl_memo: Optional[Dict[Link, Timeline]] = None,
    ) -> List[float]:
        """Lower bound on ``edge``'s arrival at *every* processor if its
        consumer migrated there, walking committed link timelines only.

        One earliest-gap query per trie node. Sound because the real
        plan walks the same paths with the same hop costs against
        committed-plus-tentative load and a ready time at least as
        large; exact whenever no tentative reservation shares a channel
        with this message. Only valid under the insertion slot policy —
        the append policy's "last reservation in start order" can move
        *earlier* when tentative hops are layered on, so callers must
        not use these bounds with ``insertion=False``.

        ``tl_memo`` (channel -> timeline) skips the schedule's stamped
        timeline-cache probe on repeat channels; callers batching many
        walks against one committed state share one dict across them.
        """
        if not insertion:  # pragma: no cover - guarded by the evaluator
            raise ValueError("arrival bounds require the insertion policy")
        parents, chans, cols, dst_node = self.trie(src)
        row = self.comm_row(edge)
        comm_cost = self.system.comm_cost
        lids = self._lids
        link_timeline = sched.link_timeline
        memo_get = tl_memo.get if tl_memo is not None else None
        arr: List[float] = []
        for k in range(len(parents)):
            p = parents[k]
            ready = finish if p < 0 else arr[p]
            c = row[cols[k]] if row is not None else comm_cost(edge, lids[cols[k]])
            ch = chans[k]
            if memo_get is not None:
                tl = memo_get(ch)
                if tl is None:
                    tl = tl_memo[ch] = link_timeline(ch)
            else:
                tl = link_timeline(ch)
            arr.append(tl.earliest_gap(ready, c) + c)
        return [finish if n < 0 else arr[n] for n in dst_node]


def get_array_state(system: HeterogeneousSystem) -> ArrayState:
    """The system's cached :class:`ArrayState`, (re)built when stale."""
    state = system.__dict__.get("_array_state")
    if state is None or not state.valid_for(system):
        state = ArrayState(system)
        system.__dict__["_array_state"] = state
    return state
