"""Schedule quality metrics.

Beyond the paper's headline metric (schedule length), these are the
standard quantities used to discuss contention-aware schedules: total
communication (Figure 2 reports it), processor/link utilization, speedup
against the best serial execution, and the CP-based lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.graph.analysis import b_levels
from repro.network.topology import Link, Proc
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class ScheduleMetrics:
    """Bundle of summary statistics for one schedule."""

    schedule_length: float
    total_comm_cost: float           # sum of hop durations (Fig. 2 metric)
    n_routed_messages: int
    n_hops: int
    serial_best: float               # best single-processor execution time
    speedup: float                   # serial_best / schedule_length
    efficiency: float                # speedup / n_procs
    cp_exec_lower_bound: float       # heaviest exec-only path, fastest procs
    normalized_sl: float             # schedule_length / cp_exec_lower_bound
    proc_utilization: Dict[Proc, float]
    link_utilization: Dict[Link, float]

    @property
    def mean_proc_utilization(self) -> float:
        if not self.proc_utilization:
            return 0.0
        return sum(self.proc_utilization.values()) / len(self.proc_utilization)

    @property
    def mean_link_utilization(self) -> float:
        if not self.link_utilization:
            return 0.0
        return sum(self.link_utilization.values()) / len(self.link_utilization)


def compute_metrics(schedule: Schedule) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a complete schedule."""
    system = schedule.system
    graph = system.graph
    sl = schedule.schedule_length()

    total_comm = sum(h.duration for r in schedule.routes.values() for h in r.hops)
    n_routed = sum(1 for r in schedule.routes.values() if not r.is_local)
    n_hops = sum(len(r.hops) for r in schedule.routes.values())

    serial_best = min(
        sum(system.exec_cost(t, p) for t in graph.tasks())
        for p in system.topology.processors
    )

    # exec-only critical path with each task on its fastest processor: no
    # schedule can beat the heaviest chain even with free communication.
    fastest = {t: min(system.exec_cost_row(t)) for t in graph.tasks()}
    bl = b_levels(_zero_comm(graph), exec_cost=lambda t: fastest[t])
    lower = max(bl.values()) if bl else 0.0

    horizon = sl if sl > 0 else 1.0
    proc_util = {
        p: sum(schedule.slots[t].duration for t in order) / horizon
        for p, order in schedule.proc_order.items()
    }
    link_util = {
        l: sum(h.duration for h in hops) / horizon
        for l, hops in schedule.link_order.items()
    }

    return ScheduleMetrics(
        schedule_length=sl,
        total_comm_cost=total_comm,
        n_routed_messages=n_routed,
        n_hops=n_hops,
        serial_best=serial_best,
        speedup=serial_best / sl if sl > 0 else float("inf"),
        efficiency=(serial_best / sl / system.n_procs) if sl > 0 else float("inf"),
        cp_exec_lower_bound=lower,
        normalized_sl=sl / lower if lower > 0 else float("inf"),
        proc_utilization=proc_util,
        link_utilization=link_util,
    )


def _zero_comm(graph):
    """Copy of ``graph`` with all communication costs zeroed."""
    g = graph.copy(name=f"{graph.name}-zerocomm")
    for u, v in g.edges():
        g.set_edge_cost(u, v, 0.0)
    return g
