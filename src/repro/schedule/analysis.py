"""Post-hoc schedule analysis: critical chains and time breakdowns.

``critical_chain`` walks backward from the last-finishing task through
each task's latest-arriving input, producing the chain that actually
determines the makespan — the first thing to look at when asking *why* a
schedule is as long as it is. ``chain_breakdown`` splits the makespan
into execution, message transit and queueing components along that chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.graph.model import TaskId
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class ChainLink:
    """One task on the critical chain, with its gating message (if any)."""

    task: TaskId
    proc: int
    start: float
    finish: float
    drt: float                    # latest input arrival (0 for entries)
    queue_wait: float             # start - drt (blocked behind the processor)
    via_message: Optional[TaskId]  # predecessor whose message gated us
    message_hops: int
    message_wait: float           # arrival - producer finish (0 if local)


@dataclass(frozen=True)
class ChainBreakdown:
    """Makespan decomposition along the critical chain."""

    schedule_length: float
    exec_time: float
    message_wait: float
    queue_wait: float
    n_tasks: int
    n_hops: int

    @property
    def exec_fraction(self) -> float:
        return self.exec_time / self.schedule_length if self.schedule_length else 0.0

    @property
    def comm_fraction(self) -> float:
        return self.message_wait / self.schedule_length if self.schedule_length else 0.0


def critical_chain(schedule: Schedule) -> List[ChainLink]:
    """The chain of tasks (last to first input) that sets the makespan."""
    if not schedule.slots:
        return []
    graph = schedule.system.graph
    links: List[ChainLink] = []
    task = max(schedule.slots.values(), key=lambda s: s.finish).task
    while True:
        slot = schedule.slots[task]
        preds = graph.predecessors(task)
        drt, vip = 0.0, None
        for k in preds:
            arr = schedule.arrival_time((k, task))
            if arr > drt:
                drt, vip = arr, k
        msg_hops, msg_wait = 0, 0.0
        if vip is not None:
            route = schedule.routes.get((vip, task))
            if route is not None and not route.is_local:
                msg_hops = len(route.hops)
                msg_wait = drt - schedule.slots[vip].finish
        links.append(ChainLink(
            task=task, proc=slot.proc, start=slot.start, finish=slot.finish,
            drt=drt, queue_wait=max(0.0, slot.start - drt),
            via_message=vip, message_hops=msg_hops, message_wait=msg_wait,
        ))
        if vip is None:
            break
        task = vip
    links.reverse()
    return links


def chain_breakdown(schedule: Schedule) -> ChainBreakdown:
    """Split the makespan into exec / message / queue time along the chain."""
    chain = critical_chain(schedule)
    return ChainBreakdown(
        schedule_length=schedule.schedule_length(),
        exec_time=sum(l.finish - l.start for l in chain),
        message_wait=sum(l.message_wait for l in chain),
        queue_wait=sum(l.queue_wait for l in chain),
        n_tasks=len(chain),
        n_hops=sum(l.message_hops for l in chain),
    )
