"""The mutable schedule container shared by all algorithms.

State model
-----------
* ``proc_order[p]``  — ordered list of task ids on processor ``p``.
* ``slots[task]``    — the :class:`TaskSlot` (processor + times).
* ``routes[edge]``   — the :class:`Route` of every non-local message.
* ``link_order[ch]`` — ordered list of :class:`MessageHop` per link
  *channel* (one shared timeline for a half-duplex link, one per
  direction for a full-duplex link; see :meth:`Topology.channel`). With
  the paper's all-half-duplex default the keys are exactly the
  canonical link ids.

Orders are authoritative; times are derived (via :func:`repro.schedule.
settle.settle`) or set directly by monotonic schedulers. Mutators keep the
cross-indices consistent so BSA's migration machinery can move tasks and
re-route messages without bookkeeping leaks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.graph.model import TaskId
from repro.network.system import HeterogeneousSystem
from repro.obs import counters as _obs
from repro.network.topology import Link, Proc, link_id
from repro.schedule.events import Edge, MessageHop, Route, TaskSlot
from repro.util.intervals import Interval, Timeline, array_enabled


def _timeline_class():
    """Timeline implementation for the active engine mode.

    The array engine swaps in :class:`~repro.schedule.arraystate.
    ArrayTimeline` (vectorized long-tail gap search); the import stays
    lazy so every other mode never touches numpy.
    """
    if array_enabled():
        from repro.schedule.arraystate import ArrayTimeline

        return ArrayTimeline
    return Timeline


class Schedule:
    """A (possibly partial) mapping of tasks and messages onto a system.

    The container is algorithm-agnostic: schedulers place tasks
    (:meth:`place_task`), route messages (:meth:`set_route` /
    :meth:`mark_local`), and either assign times directly or let
    :func:`repro.schedule.settle.settle` derive them from the orders.

    Examples
    --------
    Build a two-task schedule by hand on a two-processor chain:

    >>> from repro.graph.model import TaskGraph
    >>> from repro.network.system import HeterogeneousSystem
    >>> from repro.network.topology import chain
    >>> g = TaskGraph("tiny")
    >>> g.add_task("a", 10.0); g.add_task("b", 5.0); g.add_edge("a", "b", 4.0)
    >>> system = HeterogeneousSystem.from_exec_table(
    ...     g, chain(2), {"a": (10.0, 20.0), "b": (5.0, 5.0)})
    >>> sched = Schedule(system, algorithm="by-hand")
    >>> _ = sched.place_task("a", 0, start=0.0)
    >>> _ = sched.set_route(("a", "b"), [0, 1], hop_starts=[10.0])
    >>> _ = sched.place_task("b", 1, start=14.0)
    >>> sched.schedule_length()
    19.0
    >>> from repro.schedule.validator import validate_schedule
    >>> validate_schedule(sched)
    """

    def __init__(self, system: HeterogeneousSystem, algorithm: str = "unknown"):
        self.system = system
        self.algorithm = algorithm
        self.proc_order: Dict[Proc, List[TaskId]] = {
            p: [] for p in system.topology.processors
        }
        self.slots: Dict[TaskId, TaskSlot] = {}
        self.routes: Dict[Edge, Route] = {}
        self.link_order: Dict[Link, List[MessageHop]] = {
            ch: [] for ch in system.topology.channels()
        }
        # Lazily built per-resource Timeline indexes (see timeline docs
        # in repro.util.intervals), invalidated at *resource*
        # granularity: every mutator bumps the version of exactly the
        # processors/channels it touched, so a commit that rearranges
        # two processors and three links leaves every other resource's
        # cached timeline valid. ``_epoch`` covers wholesale changes
        # (full resort, snapshot restore, rollback); ``_version`` stays
        # as the coarse any-mutation counter. BSA evaluates hundreds of
        # candidate moves between mutations, so the caches are hit far
        # more than rebuilt.
        self._version: int = 0
        self._epoch: int = 0
        self._res_version: Dict[Tuple[str, object], int] = {}
        self._tl_cache: Dict[Tuple[str, object], Tuple[Tuple[int, int], Timeline]] = {}
        # Occupant-position indexes for the incremental settle engine,
        # versioned by *order* changes only (a settle rewrites times on
        # the pivot every commit but rarely reorders it, so these maps
        # survive most commits; timelines, which depend on times, do not).
        self._ord_version: Dict[Tuple[str, object], int] = {}
        self._pos_cache: Dict[Tuple[str, object], Tuple[Tuple[int, int], Dict]] = {}
        # Open transaction (undo log + incremental-settle seed set); see
        # begin_txn. None outside a transactional commit.
        self._txn: Optional["ScheduleTxn"] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def proc_of(self, task: TaskId) -> Proc:
        """Processor the task is placed on (raises if unscheduled)."""
        try:
            return self.slots[task].proc
        except KeyError:
            raise SchedulingError(f"task {task!r} is not scheduled") from None

    def is_scheduled(self, task: TaskId) -> bool:
        """True when the task has a slot in this schedule."""
        return task in self.slots

    def schedule_length(self) -> float:
        """Makespan: latest task finish time (0 for an empty schedule)."""
        if not self.slots:
            return 0.0
        return max(s.finish for s in self.slots.values())

    def proc_busy(self, proc: Proc) -> List[TaskSlot]:
        """Start-sorted busy slots on ``proc`` (assumes settled times).

        Returns the live :class:`TaskSlot` objects — do not mutate.
        """
        slots = self.slots
        return [slots[t] for t in self.proc_order[proc]]

    def link_busy(self, link: Link) -> List[MessageHop]:
        """Start-sorted busy hops on the given link *channel* (assumes
        settled times). Returns the *live* hop list — do not mutate.
        """
        return self.link_order[link]

    def proc_timeline(self, proc: Proc) -> Timeline:
        """Cached :class:`Timeline` over ``proc``'s busy slots.

        The returned object is shared and must not be mutated — tentative
        planners layer their reservations over it with
        :meth:`Timeline.earliest_gap_merged` instead.
        """
        key = ("p", proc)
        stamp = (self._epoch, self._res_version.get(key, 0))
        hit = self._tl_cache.get(key)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        slots = self.slots
        tl = _timeline_class().from_items(
            [slots[t] for t in self.proc_order[proc]]
        )
        self._tl_cache[key] = (stamp, tl)
        return tl

    def link_timeline(self, link: Link) -> Timeline:
        """Cached :class:`Timeline` over the given link channel's busy
        hops (shared — do not mutate; copy first)."""
        key = ("l", link)
        stamp = (self._epoch, self._res_version.get(key, 0))
        hit = self._tl_cache.get(key)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        tl = _timeline_class().from_items(self.link_order[link])
        self._tl_cache[key] = (stamp, tl)
        return tl

    def proc_positions(self, proc: Proc) -> Dict[TaskId, int]:
        """Cached ``task -> index`` map over ``proc_order[proc]`` (shared
        — do not mutate). Valid until the order structurally changes."""
        key = ("p", proc)
        stamp = (self._epoch, self._ord_version.get(key, 0))
        hit = self._pos_cache.get(key)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        m = {t: i for i, t in enumerate(self.proc_order[proc])}
        self._pos_cache[key] = (stamp, m)
        return m

    def link_positions(self, channel: Link) -> Dict[int, int]:
        """Cached ``id(hop) -> index`` map over the channel's hop order
        (shared — do not mutate). Valid until the order changes."""
        key = ("l", channel)
        stamp = (self._epoch, self._ord_version.get(key, 0))
        hit = self._pos_cache.get(key)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        m = {id(h): i for i, h in enumerate(self.link_order[channel])}
        self._pos_cache[key] = (stamp, m)
        return m

    def route_of(self, edge: Edge) -> Optional[Route]:
        return self.routes.get(edge)

    def arrival_time(self, edge: Edge) -> float:
        """When the message of ``edge`` is available at the consumer's
        processor: producer finish if local, else last-hop finish."""
        route = self.routes.get(edge)
        if route is None or route.is_local:
            return self.slots[edge[0]].finish
        return route.arrival

    # ------------------------------------------------------------------
    # task mutation
    # ------------------------------------------------------------------
    def place_task(
        self,
        task: TaskId,
        proc: Proc,
        start: float,
        position: Optional[int] = None,
    ) -> TaskSlot:
        """Add ``task`` to ``proc`` with the given start time.

        ``position=None`` inserts in start-time order (stable); an explicit
        position pins the slot in the processor's order list.
        """
        if task in self.slots:
            raise SchedulingError(f"task {task!r} already scheduled")
        duration = self.system.exec_cost(task, proc)
        slot = TaskSlot(task, proc, start, start + duration, cost=duration)
        order = self.proc_order[proc]
        if position is None:
            position = self._bisect_by_start(order, start)
        order.insert(position, task)
        self.slots[task] = slot
        if self._txn is not None:
            self._txn.record_place(task, proc, position, order)
        self._version += 1
        key = ("p", proc)
        rv = self._res_version
        rv[key] = rv.get(key, 0) + 1
        ov = self._ord_version
        ov[key] = ov.get(key, 0) + 1
        return slot

    def _bisect_by_start(self, order: List[TaskId], start: float) -> int:
        lo, hi = 0, len(order)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.slots[order[mid]].start <= start:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def remove_task(self, task: TaskId) -> TaskSlot:
        """Remove ``task`` from its processor (routes are left untouched)."""
        slot = self.slots.pop(task, None)
        if slot is None:
            raise SchedulingError(f"task {task!r} is not scheduled")
        order = self.proc_order[slot.proc]
        pos = order.index(task)
        order.pop(pos)
        if self._txn is not None:
            self._txn.record_remove(task, slot, pos, order)
        self._version += 1
        key = ("p", slot.proc)
        rv = self._res_version
        rv[key] = rv.get(key, 0) + 1
        ov = self._ord_version
        ov[key] = ov.get(key, 0) + 1
        return slot

    # ------------------------------------------------------------------
    # route mutation
    # ------------------------------------------------------------------
    def set_route(
        self,
        edge: Edge,
        proc_path: List[Proc],
        hop_starts: Optional[List[float]] = None,
    ) -> Route:
        """Install a route along ``proc_path`` (length >= 2), replacing any
        existing route of ``edge``.

        ``hop_starts`` (when given) sets each hop's start time and places
        it in start-order on its link; otherwise hops are appended at the
        end of each link's order (a later settle pass assigns times).
        """
        if len(proc_path) < 2:
            raise SchedulingError(f"route for {edge} needs >= 2 processors")
        self.clear_route(edge)
        topology = self.system.topology
        txn = self._txn
        hops: List[MessageHop] = []
        entries: List[Tuple[Link, int]] = []
        for i, (a, b) in enumerate(zip(proc_path, proc_path[1:])):
            if not topology.has_link(a, b):
                raise SchedulingError(f"no link between {a} and {b} for {edge}")
            duration = self.system.comm_cost(edge, link_id(a, b))
            start = hop_starts[i] if hop_starts else 0.0
            # _rpos/_chan: backrefs for the incremental settle engine —
            # index within the route (stable: routes are rebuilt whole,
            # never spliced) and the reservation channel, both O(1) walks
            hop = MessageHop(edge, a, b, start, start + duration,
                             cost=duration, _rpos=i)
            hops.append(hop)
            channel = topology.channel(a, b)
            hop._chan = channel
            order = self.link_order[channel]
            rkey = ("l", channel)
            rv = self._res_version
            rv[rkey] = rv.get(rkey, 0) + 1
            ov = self._ord_version
            ov[rkey] = ov.get(rkey, 0) + 1
            if hop_starts:
                pos = self._bisect_hops(order, start)
                order.insert(pos, hop)
            else:
                pos = len(order)
                order.append(hop)
            if txn is not None:
                entries.append((channel, pos))
                nxt = order[pos + 1] if pos + 1 < len(order) else None
                if nxt is not None:
                    txn.seed_hops.append(nxt)
        route = Route(edge, hops)
        self.routes[edge] = route
        if txn is not None:
            txn.record_set_route(edge, entries)
            txn.seed_hops.extend(hops)
            txn.seed_tasks.add(edge[1])
        self._version += 1
        return route

    def _bisect_hops(self, order: List[MessageHop], start: float) -> int:
        lo, hi = 0, len(order)
        while lo < hi:
            mid = (lo + hi) // 2
            if order[mid].start <= start:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def clear_route(self, edge: Edge) -> None:
        """Remove the route of ``edge`` and release its link reservations."""
        route = self.routes.pop(edge, None)
        if route is None:
            return
        channel = self.system.topology.channel
        txn = self._txn
        entries: List[Tuple[Link, int]] = []
        rv = self._res_version
        ov = self._ord_version
        for hop in route.hops:
            ch = channel(hop.src, hop.dst)
            rkey = ("l", ch)
            rv[rkey] = rv.get(rkey, 0) + 1
            ov[rkey] = ov.get(rkey, 0) + 1
            order = self.link_order[ch]
            # identity removal: dataclass __eq__ could match a different
            # but value-equal hop of another message on the same channel
            for pos, h in enumerate(order):
                if h is hop:
                    break
            else:  # pragma: no cover - container invariant violated
                raise SchedulingError(f"hop of {edge} missing from link order")
            order.pop(pos)
            if txn is not None:
                entries.append((ch, pos))
                if pos < len(order):
                    txn.seed_hops.append(order[pos])
        if txn is not None:
            txn.record_clear_route(edge, route, entries)
            txn.seed_tasks.add(edge[1])
        self._version += 1

    def mark_local(self, edge: Edge) -> None:
        """Record that ``edge`` is intra-processor (no links used)."""
        self.clear_route(edge)
        self.routes[edge] = Route(edge, [])
        if self._txn is not None:
            self._txn.record_set_local(edge)
            self._txn.seed_tasks.add(edge[1])

    # ------------------------------------------------------------------
    # transactions (undo log)
    # ------------------------------------------------------------------
    def begin_txn(self) -> "ScheduleTxn":
        """Open a transaction: record every structural mutation (and any
        time write-back the incremental settle performs) in an undo log
        so a failed commit can be reversed in O(#mutations) instead of
        restoring a whole-schedule snapshot. Also accumulates the seed
        set the incremental settle engine recomputes from.

        One transaction may be open at a time; close it with
        :meth:`ScheduleTxn.rollback` or :meth:`commit_txn`.
        """
        if self._txn is not None:
            raise SchedulingError("a schedule transaction is already open")
        self._txn = ScheduleTxn(self)
        return self._txn

    def commit_txn(self) -> None:
        """Close the open transaction, keeping all its mutations."""
        if self._txn is None:
            raise SchedulingError("no schedule transaction is open")
        self._txn = None

    @property
    def txn(self) -> Optional["ScheduleTxn"]:
        return self._txn

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def resort_orders(self) -> None:
        """Re-sort occupant lists by settled start time (stable)."""
        for p, order in self.proc_order.items():
            order.sort(key=lambda t: (self.slots[t].start, self.slots[t].finish))
        for l, hops in self.link_order.items():
            hops.sort(key=lambda h: (h.start, h.finish))
        self._version += 1
        self._epoch += 1  # every resource may have changed

    def resort_partial(self, procs: Iterable[Proc], channels: Iterable[Link]) -> None:
        """Re-sort only the given processor/link orders by settled start.

        The incremental settle engine calls this with exactly the
        resources whose occupants' times it touched; every other order
        is untouched since the last full resort, so a stable re-sort of
        it would be the identity — skipping it is equivalent to
        :meth:`resort_orders`. Settled times almost always leave even
        the touched orders sorted (chain constraints force
        ``start_next >= finish_prev``), so a linear sortedness check
        runs first and the stable sort only when it actually fails.
        """
        slots = self.slots
        rv = self._res_version
        ov = self._ord_version
        for p in procs:
            order = self.proc_order[p]
            ps = pf = float("-inf")
            for t in order:
                s = slots[t]
                ss, sf = s.start, s.finish
                if ss < ps or (ss == ps and sf < pf):
                    order.sort(key=lambda t: (slots[t].start, slots[t].finish))
                    key = ("p", p)
                    ov[key] = ov.get(key, 0) + 1
                    break
                ps, pf = ss, sf
            key = ("p", p)
            rv[key] = rv.get(key, 0) + 1
        for ch in channels:
            hops = self.link_order[ch]
            ps = pf = float("-inf")
            for h in hops:
                ss, sf = h.start, h.finish
                if ss < ps or (ss == ps and sf < pf):
                    hops.sort(key=lambda h: (h.start, h.finish))
                    key = ("l", ch)
                    ov[key] = ov.get(key, 0) + 1
                    break
                ps, pf = ss, sf
            key = ("l", ch)
            rv[key] = rv.get(key, 0) + 1
        self._version += 1

    def copy(self) -> "Schedule":
        """Deep copy (fresh slot/hop objects, shared system)."""
        dup = Schedule(self.system, self.algorithm)
        for t, slot in self.slots.items():
            dup.slots[t] = TaskSlot(slot.task, slot.proc, slot.start, slot.finish,
                                    cost=slot.cost)
        for p, order in self.proc_order.items():
            dup.proc_order[p] = list(order)
        hop_map: Dict[int, MessageHop] = {}
        for edge, route in self.routes.items():
            new_hops = []
            for k, h in enumerate(route.hops):
                nh = MessageHop(h.edge, h.src, h.dst, h.start, h.finish,
                                cost=h.cost)
                nh._rpos = k
                nh._chan = self.system.topology.channel(h.src, h.dst)
                hop_map[id(h)] = nh
                new_hops.append(nh)
            dup.routes[edge] = Route(edge, new_hops)
        for l, hops in self.link_order.items():
            dup.link_order[l] = [hop_map[id(h)] for h in hops]
        return dup

    def snapshot(self) -> "ScheduleSnapshot":
        """Shallow structural capture for transactional rollback.

        Much cheaper than :meth:`copy` — container dicts/lists are copied
        but slot/hop/route objects are *shared* with the live schedule.
        This is sound for rolling back a failed ``commit_migration``
        because mutators only ever create new objects or re-link
        containers; shared objects' times are first overwritten by the
        settle write-back, which the settle pass guarantees not to reach
        when it raises ``CycleError``. Do not use the snapshot after any
        successful settle: restoring it then would revive stale times.
        """
        return ScheduleSnapshot(self)

    def restore_snapshot(self, snap: "ScheduleSnapshot") -> None:
        """Adopt the state captured by :meth:`snapshot` (see its
        contract); the snapshot must not be reused afterwards."""
        if snap.system is not self.system:
            raise SchedulingError("cannot restore from a different system's snapshot")
        self.algorithm = snap.algorithm
        self.slots = snap.slots
        self.proc_order = snap.proc_order
        self.routes = snap.routes
        self.link_order = snap.link_order
        self._version += 1
        self._epoch += 1
        self._tl_cache.clear()

    def restore_from(self, snapshot: "Schedule") -> None:
        """Adopt the full state of ``snapshot`` (transactional rollback).

        ``snapshot`` must have been produced by :meth:`copy` of a schedule
        over the same system; afterwards the snapshot must not be reused.
        """
        if snapshot.system is not self.system:
            raise SchedulingError("cannot restore from a different system's snapshot")
        self.algorithm = snapshot.algorithm
        self.proc_order = snapshot.proc_order
        self.slots = snapshot.slots
        self.routes = snapshot.routes
        self.link_order = snapshot.link_order
        self._version += 1
        self._epoch += 1
        self._tl_cache.clear()

    def stats_summary(self) -> str:
        """One-line human summary used by the CLI and examples."""
        return (
            f"{self.algorithm}: SL={self.schedule_length():.1f}, "
            f"tasks={len(self.slots)}, "
            f"routed_msgs={sum(1 for r in self.routes.values() if not r.is_local)}, "
            f"hops={sum(len(r.hops) for r in self.routes.values())}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.algorithm!r}, tasks={len(self.slots)}, "
            f"SL={self.schedule_length():.1f})"
        )


class ScheduleSnapshot:
    """Shallow capture of a schedule's container state.

    Slot, hop and route objects are shared with the live schedule — see
    :meth:`Schedule.snapshot` for when that is sound.
    """

    __slots__ = ("system", "algorithm", "slots", "proc_order", "routes",
                 "link_order")

    def __init__(self, sched: Schedule):
        self.system = sched.system
        self.algorithm = sched.algorithm
        self.slots = dict(sched.slots)
        self.proc_order = {p: list(o) for p, o in sched.proc_order.items()}
        self.routes = dict(sched.routes)
        self.link_order = {l: list(h) for l, h in sched.link_order.items()}


#: undo-log op tags
_OP_PLACE, _OP_REMOVE, _OP_SET_ROUTE, _OP_CLEAR_ROUTE, _OP_SET_LOCAL = range(5)


class ScheduleTxn:
    """Undo log + incremental-settle seed set for one transactional commit.

    Every structural mutator of :class:`Schedule` appends an inverse
    operation while a transaction is open; :meth:`rollback` replays them
    in LIFO order, which restores each container to the exact state it
    had before the op (later mutations of the same list have already
    been reversed when an op replays, so recorded indices are valid).
    Time write-backs the incremental settle performs are recorded via
    :meth:`record_time` and restored the same way. Compared to
    :meth:`Schedule.snapshot` this costs O(actual mutations) instead of
    O(tasks + hops) per commit — and commits vastly outnumber rollbacks.

    The *seed sets* accumulate every node whose constraint predecessors
    changed (moved/new tasks, order successors of removed or inserted
    occupants, new hops, consumers of rerouted messages): exactly the
    set the incremental settle engine must recompute from (see
    :func:`repro.schedule.settle.settle_incremental`).
    """

    __slots__ = ("sched", "ops", "times", "seed_tasks", "seed_hops",
                 "_slot_keys", "_route_keys")

    def __init__(self, sched: Schedule):
        self.sched = sched
        self.ops: List[tuple] = []
        self.times: List[Tuple[object, float, float]] = []
        self.seed_tasks: set = set()
        self.seed_hops: List[MessageHop] = []
        # dict *insertion order* is observable (serialization iterates
        # slots/routes), so rollback must restore it; two flat key-list
        # copies are still far cheaper than snapshotting every container
        self._slot_keys: List[TaskId] = list(sched.slots)
        self._route_keys: List[Edge] = list(sched.routes)

    # -- recording hooks (called by Schedule mutators) -------------------
    def record_place(self, task: TaskId, proc: Proc, pos: int,
                     order: List[TaskId]) -> None:
        self.ops.append((_OP_PLACE, task, proc, pos))
        self.seed_tasks.add(task)
        if pos + 1 < len(order):
            self.seed_tasks.add(order[pos + 1])

    def record_remove(self, task: TaskId, slot: TaskSlot, pos: int,
                      order: List[TaskId]) -> None:
        self.ops.append((_OP_REMOVE, task, slot, pos))
        if pos < len(order):
            self.seed_tasks.add(order[pos])

    def record_set_route(self, edge: Edge,
                         entries: List[Tuple[Link, int]]) -> None:
        self.ops.append((_OP_SET_ROUTE, edge, entries))

    def record_clear_route(self, edge: Edge, route: Route,
                           entries: List[Tuple[Link, int]]) -> None:
        self.ops.append((_OP_CLEAR_ROUTE, edge, route, entries))

    def record_set_local(self, edge: Edge) -> None:
        self.ops.append((_OP_SET_LOCAL, edge))

    def record_time(self, obj, start: float, finish: float) -> None:
        """Remember ``obj``'s times before the settle write-back."""
        self.times.append((obj, start, finish))

    # -- closing ---------------------------------------------------------
    def rollback(self) -> None:
        """Reverse every recorded mutation and close the transaction."""
        if _obs.ACTIVE:
            _obs.inc("txn.rollbacks")
        sched = self.sched
        for obj, start, finish in reversed(self.times):
            obj.start = start
            obj.finish = finish
        for op in reversed(self.ops):
            kind = op[0]
            if kind == _OP_PLACE:
                _, task, proc, pos = op
                del sched.slots[task]
                sched.proc_order[proc].pop(pos)
            elif kind == _OP_REMOVE:
                _, task, slot, pos = op
                sched.slots[task] = slot
                sched.proc_order[slot.proc].insert(pos, task)
            elif kind == _OP_SET_ROUTE:
                _, edge, entries = op
                for ch, pos in reversed(entries):
                    sched.link_order[ch].pop(pos)
                del sched.routes[edge]
            elif kind == _OP_CLEAR_ROUTE:
                _, edge, route, entries = op
                hops = route.hops
                for i in range(len(entries) - 1, -1, -1):
                    ch, pos = entries[i]
                    sched.link_order[ch].insert(pos, hops[i])
                sched.routes[edge] = route
            else:  # _OP_SET_LOCAL
                sched.routes.pop(op[1], None)
        # restore dict insertion order (the replay restored the key sets
        # and values, but re-inserted keys sit at the tail)
        slots, routes = sched.slots, sched.routes
        sched.slots = {t: slots[t] for t in self._slot_keys}
        sched.routes = {e: routes[e] for e in self._route_keys}
        sched._txn = None
        sched._version += 1
        sched._epoch += 1
        sched._tl_cache.clear()
