"""The mutable schedule container shared by all algorithms.

State model
-----------
* ``proc_order[p]``  — ordered list of task ids on processor ``p``.
* ``slots[task]``    — the :class:`TaskSlot` (processor + times).
* ``routes[edge]``   — the :class:`Route` of every non-local message.
* ``link_order[ch]`` — ordered list of :class:`MessageHop` per link
  *channel* (one shared timeline for a half-duplex link, one per
  direction for a full-duplex link; see :meth:`Topology.channel`). With
  the paper's all-half-duplex default the keys are exactly the
  canonical link ids.

Orders are authoritative; times are derived (via :func:`repro.schedule.
settle.settle`) or set directly by monotonic schedulers. Mutators keep the
cross-indices consistent so BSA's migration machinery can move tasks and
re-route messages without bookkeeping leaks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.graph.model import TaskId
from repro.network.system import HeterogeneousSystem
from repro.network.topology import Link, Proc, link_id
from repro.schedule.events import Edge, MessageHop, Route, TaskSlot
from repro.util.intervals import Interval, Timeline


class Schedule:
    """A (possibly partial) mapping of tasks and messages onto a system."""

    def __init__(self, system: HeterogeneousSystem, algorithm: str = "unknown"):
        self.system = system
        self.algorithm = algorithm
        self.proc_order: Dict[Proc, List[TaskId]] = {
            p: [] for p in system.topology.processors
        }
        self.slots: Dict[TaskId, TaskSlot] = {}
        self.routes: Dict[Edge, Route] = {}
        self.link_order: Dict[Link, List[MessageHop]] = {
            ch: [] for ch in system.topology.channels()
        }
        # Monotonic mutation counter + lazily built per-resource Timeline
        # indexes (see timeline docs in repro.util.intervals). Any mutation
        # bumps the version; cached timelines are rebuilt on demand when
        # their stamp is stale. BSA evaluates hundreds of candidate moves
        # between mutations, so the caches are hit far more than rebuilt.
        self._version: int = 0
        self._tl_cache: Dict[Tuple[str, object], Tuple[int, Timeline]] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def proc_of(self, task: TaskId) -> Proc:
        try:
            return self.slots[task].proc
        except KeyError:
            raise SchedulingError(f"task {task!r} is not scheduled") from None

    def is_scheduled(self, task: TaskId) -> bool:
        return task in self.slots

    def schedule_length(self) -> float:
        """Makespan: latest task finish time (0 for an empty schedule)."""
        if not self.slots:
            return 0.0
        return max(s.finish for s in self.slots.values())

    def proc_busy(self, proc: Proc) -> List[TaskSlot]:
        """Start-sorted busy slots on ``proc`` (assumes settled times).

        Returns the live :class:`TaskSlot` objects — do not mutate.
        """
        slots = self.slots
        return [slots[t] for t in self.proc_order[proc]]

    def link_busy(self, link: Link) -> List[MessageHop]:
        """Start-sorted busy hops on the given link *channel* (assumes
        settled times). Returns the *live* hop list — do not mutate.
        """
        return self.link_order[link]

    def proc_timeline(self, proc: Proc) -> Timeline:
        """Cached :class:`Timeline` over ``proc``'s busy slots.

        The returned object is shared and must not be mutated — tentative
        planners layer their reservations over it with
        :meth:`Timeline.earliest_gap_merged` instead.
        """
        key = ("p", proc)
        hit = self._tl_cache.get(key)
        if hit is not None and hit[0] == self._version:
            return hit[1]
        slots = self.slots
        tl = Timeline.from_items([slots[t] for t in self.proc_order[proc]])
        self._tl_cache[key] = (self._version, tl)
        return tl

    def link_timeline(self, link: Link) -> Timeline:
        """Cached :class:`Timeline` over the given link channel's busy
        hops (shared — do not mutate; copy first)."""
        key = ("l", link)
        hit = self._tl_cache.get(key)
        if hit is not None and hit[0] == self._version:
            return hit[1]
        tl = Timeline.from_items(self.link_order[link])
        self._tl_cache[key] = (self._version, tl)
        return tl

    def route_of(self, edge: Edge) -> Optional[Route]:
        return self.routes.get(edge)

    def arrival_time(self, edge: Edge) -> float:
        """When the message of ``edge`` is available at the consumer's
        processor: producer finish if local, else last-hop finish."""
        route = self.routes.get(edge)
        if route is None or route.is_local:
            return self.slots[edge[0]].finish
        return route.arrival

    # ------------------------------------------------------------------
    # task mutation
    # ------------------------------------------------------------------
    def place_task(
        self,
        task: TaskId,
        proc: Proc,
        start: float,
        position: Optional[int] = None,
    ) -> TaskSlot:
        """Add ``task`` to ``proc`` with the given start time.

        ``position=None`` inserts in start-time order (stable); an explicit
        position pins the slot in the processor's order list.
        """
        if task in self.slots:
            raise SchedulingError(f"task {task!r} already scheduled")
        duration = self.system.exec_cost(task, proc)
        slot = TaskSlot(task, proc, start, start + duration, cost=duration)
        order = self.proc_order[proc]
        if position is None:
            position = self._bisect_by_start(order, start)
        order.insert(position, task)
        self.slots[task] = slot
        self._version += 1
        return slot

    def _bisect_by_start(self, order: List[TaskId], start: float) -> int:
        lo, hi = 0, len(order)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.slots[order[mid]].start <= start:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def remove_task(self, task: TaskId) -> TaskSlot:
        """Remove ``task`` from its processor (routes are left untouched)."""
        slot = self.slots.pop(task, None)
        if slot is None:
            raise SchedulingError(f"task {task!r} is not scheduled")
        self.proc_order[slot.proc].remove(task)
        self._version += 1
        return slot

    # ------------------------------------------------------------------
    # route mutation
    # ------------------------------------------------------------------
    def set_route(
        self,
        edge: Edge,
        proc_path: List[Proc],
        hop_starts: Optional[List[float]] = None,
    ) -> Route:
        """Install a route along ``proc_path`` (length >= 2), replacing any
        existing route of ``edge``.

        ``hop_starts`` (when given) sets each hop's start time and places
        it in start-order on its link; otherwise hops are appended at the
        end of each link's order (a later settle pass assigns times).
        """
        if len(proc_path) < 2:
            raise SchedulingError(f"route for {edge} needs >= 2 processors")
        self.clear_route(edge)
        topology = self.system.topology
        hops: List[MessageHop] = []
        for i, (a, b) in enumerate(zip(proc_path, proc_path[1:])):
            if not topology.has_link(a, b):
                raise SchedulingError(f"no link between {a} and {b} for {edge}")
            duration = self.system.comm_cost(edge, link_id(a, b))
            start = hop_starts[i] if hop_starts else 0.0
            hop = MessageHop(edge, a, b, start, start + duration, cost=duration)
            hops.append(hop)
            order = self.link_order[topology.channel(a, b)]
            if hop_starts:
                order.insert(self._bisect_hops(order, start), hop)
            else:
                order.append(hop)
        route = Route(edge, hops)
        self.routes[edge] = route
        self._version += 1
        return route

    def _bisect_hops(self, order: List[MessageHop], start: float) -> int:
        lo, hi = 0, len(order)
        while lo < hi:
            mid = (lo + hi) // 2
            if order[mid].start <= start:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def clear_route(self, edge: Edge) -> None:
        """Remove the route of ``edge`` and release its link reservations."""
        route = self.routes.pop(edge, None)
        if route is None:
            return
        channel = self.system.topology.channel
        for hop in route.hops:
            self.link_order[channel(hop.src, hop.dst)].remove(hop)
        self._version += 1

    def mark_local(self, edge: Edge) -> None:
        """Record that ``edge`` is intra-processor (no links used)."""
        self.clear_route(edge)
        self.routes[edge] = Route(edge, [])

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def resort_orders(self) -> None:
        """Re-sort occupant lists by settled start time (stable)."""
        for p, order in self.proc_order.items():
            order.sort(key=lambda t: (self.slots[t].start, self.slots[t].finish))
        for l, hops in self.link_order.items():
            hops.sort(key=lambda h: (h.start, h.finish))
        self._version += 1

    def copy(self) -> "Schedule":
        """Deep copy (fresh slot/hop objects, shared system)."""
        dup = Schedule(self.system, self.algorithm)
        for t, slot in self.slots.items():
            dup.slots[t] = TaskSlot(slot.task, slot.proc, slot.start, slot.finish,
                                    cost=slot.cost)
        for p, order in self.proc_order.items():
            dup.proc_order[p] = list(order)
        hop_map: Dict[int, MessageHop] = {}
        for edge, route in self.routes.items():
            new_hops = []
            for h in route.hops:
                nh = MessageHop(h.edge, h.src, h.dst, h.start, h.finish,
                                cost=h.cost)
                hop_map[id(h)] = nh
                new_hops.append(nh)
            dup.routes[edge] = Route(edge, new_hops)
        for l, hops in self.link_order.items():
            dup.link_order[l] = [hop_map[id(h)] for h in hops]
        return dup

    def snapshot(self) -> "ScheduleSnapshot":
        """Shallow structural capture for transactional rollback.

        Much cheaper than :meth:`copy` — container dicts/lists are copied
        but slot/hop/route objects are *shared* with the live schedule.
        This is sound for rolling back a failed ``commit_migration``
        because mutators only ever create new objects or re-link
        containers; shared objects' times are first overwritten by the
        settle write-back, which the settle pass guarantees not to reach
        when it raises ``CycleError``. Do not use the snapshot after any
        successful settle: restoring it then would revive stale times.
        """
        return ScheduleSnapshot(self)

    def restore_snapshot(self, snap: "ScheduleSnapshot") -> None:
        """Adopt the state captured by :meth:`snapshot` (see its
        contract); the snapshot must not be reused afterwards."""
        if snap.system is not self.system:
            raise SchedulingError("cannot restore from a different system's snapshot")
        self.algorithm = snap.algorithm
        self.slots = snap.slots
        self.proc_order = snap.proc_order
        self.routes = snap.routes
        self.link_order = snap.link_order
        self._version += 1
        self._tl_cache.clear()

    def restore_from(self, snapshot: "Schedule") -> None:
        """Adopt the full state of ``snapshot`` (transactional rollback).

        ``snapshot`` must have been produced by :meth:`copy` of a schedule
        over the same system; afterwards the snapshot must not be reused.
        """
        if snapshot.system is not self.system:
            raise SchedulingError("cannot restore from a different system's snapshot")
        self.algorithm = snapshot.algorithm
        self.proc_order = snapshot.proc_order
        self.slots = snapshot.slots
        self.routes = snapshot.routes
        self.link_order = snapshot.link_order
        self._version += 1
        self._tl_cache.clear()

    def stats_summary(self) -> str:
        """One-line human summary used by the CLI and examples."""
        return (
            f"{self.algorithm}: SL={self.schedule_length():.1f}, "
            f"tasks={len(self.slots)}, "
            f"routed_msgs={sum(1 for r in self.routes.values() if not r.is_local)}, "
            f"hops={sum(len(r.hops) for r in self.routes.values())}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.algorithm!r}, tasks={len(self.slots)}, "
            f"SL={self.schedule_length():.1f})"
        )


class ScheduleSnapshot:
    """Shallow capture of a schedule's container state.

    Slot, hop and route objects are shared with the live schedule — see
    :meth:`Schedule.snapshot` for when that is sound.
    """

    __slots__ = ("system", "algorithm", "slots", "proc_order", "routes",
                 "link_order")

    def __init__(self, sched: Schedule):
        self.system = sched.system
        self.algorithm = sched.algorithm
        self.slots = dict(sched.slots)
        self.proc_order = {p: list(o) for p, o in sched.proc_order.items()}
        self.routes = dict(sched.routes)
        self.link_order = {l: list(h) for l, h in sched.link_order.items()}
