"""Link-contention schedule substrate.

A :class:`Schedule` assigns every task to a processor slot and routes every
inter-processor message over a contiguous path of links, each hop holding
an exclusive reservation on its (half-duplex) link. Schedules are
*order-based*: processors and links hold ordered occupant lists, and
:func:`settle` derives actual times from those orders, which is how BSA's
"bubbling up" is realized. A strict :func:`validate_schedule` checks every
invariant the paper's model implies.
"""

from repro.schedule.events import TaskSlot, MessageHop, Route
from repro.schedule.schedule import Schedule
from repro.schedule.settle import settle
from repro.schedule.validator import validate_schedule, schedule_violations
from repro.schedule.metrics import ScheduleMetrics, compute_metrics
from repro.schedule.gantt import render_gantt
from repro.schedule.analysis import (
    ChainLink,
    ChainBreakdown,
    critical_chain,
    chain_breakdown,
)
from repro.schedule.io import (
    schedule_to_dict,
    schedule_from_dict,
    schedule_to_json,
    schedule_from_json,
)

__all__ = [
    "TaskSlot",
    "MessageHop",
    "Route",
    "Schedule",
    "settle",
    "validate_schedule",
    "schedule_violations",
    "ScheduleMetrics",
    "compute_metrics",
    "render_gantt",
    "ChainLink",
    "ChainBreakdown",
    "critical_chain",
    "chain_breakdown",
    "schedule_to_dict",
    "schedule_from_dict",
    "schedule_to_json",
    "schedule_from_json",
]
