"""Schedule serialization — export a schedule for downstream tooling.

The dict/JSON form records the platform identity, every task slot, and
every message route with per-hop timing. It is self-contained enough to
re-render a Gantt chart or audit contention in another tool; importing it
back into a :class:`Schedule` requires the original system object (costs
are not duplicated in the export).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import SchedulingError
from repro.network.system import HeterogeneousSystem
from repro.schedule.schedule import Schedule

_FORMAT_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Lossless plain-dict export of assignments, times and routes."""
    return {
        "version": _FORMAT_VERSION,
        "algorithm": schedule.algorithm,
        "graph": schedule.system.graph.name,
        "topology": schedule.system.topology.name,
        "schedule_length": schedule.schedule_length(),
        "tasks": [
            {
                "task": repr(t),
                "proc": slot.proc,
                "start": slot.start,
                "finish": slot.finish,
            }
            for t, slot in schedule.slots.items()
        ],
        "messages": [
            {
                "edge": [repr(e[0]), repr(e[1])],
                "local": route.is_local,
                "hops": [
                    {
                        "src": h.src,
                        "dst": h.dst,
                        "start": h.start,
                        "finish": h.finish,
                    }
                    for h in route.hops
                ],
            }
            for e, route in schedule.routes.items()
        ],
    }


def schedule_to_json(schedule: Schedule, indent: int = None) -> str:
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_dict(data: Dict[str, Any], system: HeterogeneousSystem) -> Schedule:
    """Rebuild a schedule over ``system`` from :func:`schedule_to_dict` output.

    Task ids are matched by repr against the system's graph (ints and
    strings round-trip; other id types need a custom loader).
    """
    if data.get("version") != _FORMAT_VERSION:
        raise SchedulingError(f"unsupported schedule format {data.get('version')!r}")
    by_repr = {repr(t): t for t in system.graph.tasks()}

    sched = Schedule(system, algorithm=data.get("algorithm", "imported"))
    for entry in data["tasks"]:
        task = by_repr.get(entry["task"])
        if task is None:
            raise SchedulingError(f"unknown task {entry['task']!r} in import")
        sched.place_task(task, entry["proc"], start=entry["start"])
    for msg in data["messages"]:
        u = by_repr.get(msg["edge"][0])
        v = by_repr.get(msg["edge"][1])
        if u is None or v is None:
            raise SchedulingError(f"unknown edge {msg['edge']} in import")
        if msg["local"] or not msg["hops"]:
            sched.mark_local((u, v))
        else:
            path = [msg["hops"][0]["src"]] + [h["dst"] for h in msg["hops"]]
            starts = [h["start"] for h in msg["hops"]]
            sched.set_route((u, v), path, hop_starts=starts)
    return sched


def schedule_from_json(text: str, system: HeterogeneousSystem) -> Schedule:
    return schedule_from_dict(json.loads(text), system)
