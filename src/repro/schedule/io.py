"""Schedule serialization — export a schedule for downstream tooling.

Two export granularities:

* the **schedule** dict/JSON form (:func:`schedule_to_dict`) records
  the platform identity, every task slot, and every message route with
  per-hop timing. It is self-contained enough to re-render a Gantt
  chart or audit contention in another tool; importing it back into a
  :class:`Schedule` requires the original system object (costs are not
  duplicated in the export);
* the **bundle** form (:func:`bundle_to_dict` / :func:`write_bundle`)
  additionally embeds the task graph as a workflow-trace dict (exact
  per-processor cost vectors), the topology dict (links + specs), and
  the link-heterogeneity parameters — everything needed to rebuild the
  system and replay the schedule through the validator *without* the
  generating code. ``read_bundle`` + ``validate_schedule`` is a full
  audit of a schedule produced elsewhere.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import SchedulingError
from repro.network.system import HeterogeneousSystem
from repro.schedule.schedule import Schedule

_FORMAT_VERSION = 1

BUNDLE_FORMAT = "repro-schedule-bundle"
BUNDLE_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Lossless plain-dict export of assignments, times and routes."""
    return {
        "version": _FORMAT_VERSION,
        "algorithm": schedule.algorithm,
        "graph": schedule.system.graph.name,
        "topology": schedule.system.topology.name,
        "schedule_length": schedule.schedule_length(),
        "tasks": [
            {
                "task": repr(t),
                "proc": slot.proc,
                "start": slot.start,
                "finish": slot.finish,
            }
            for t, slot in schedule.slots.items()
        ],
        "messages": [
            {
                "edge": [repr(e[0]), repr(e[1])],
                "local": route.is_local,
                "hops": [
                    {
                        "src": h.src,
                        "dst": h.dst,
                        "start": h.start,
                        "finish": h.finish,
                    }
                    for h in route.hops
                ],
            }
            for e, route in schedule.routes.items()
        ],
    }


def schedule_to_json(schedule: Schedule, indent: int = None) -> str:
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_dict(data: Dict[str, Any], system: HeterogeneousSystem) -> Schedule:
    """Rebuild a schedule over ``system`` from :func:`schedule_to_dict` output.

    Task ids are matched by repr against the system's graph (ints and
    strings round-trip; other id types need a custom loader).
    """
    if data.get("version") != _FORMAT_VERSION:
        raise SchedulingError(f"unsupported schedule format {data.get('version')!r}")
    by_repr = {repr(t): t for t in system.graph.tasks()}

    sched = Schedule(system, algorithm=data.get("algorithm", "imported"))
    for entry in data["tasks"]:
        task = by_repr.get(entry["task"])
        if task is None:
            raise SchedulingError(f"unknown task {entry['task']!r} in import")
        sched.place_task(task, entry["proc"], start=entry["start"])
    for msg in data["messages"]:
        u = by_repr.get(msg["edge"][0])
        v = by_repr.get(msg["edge"][1])
        if u is None or v is None:
            raise SchedulingError(f"unknown edge {msg['edge']} in import")
        if msg["local"] or not msg["hops"]:
            sched.mark_local((u, v))
        else:
            path = [msg["hops"][0]["src"]] + [h["dst"] for h in msg["hops"]]
            starts = [h["start"] for h in msg["hops"]]
            sched.set_route((u, v), path, hop_starts=starts)
    return sched


def schedule_from_json(text: str, system: HeterogeneousSystem) -> Schedule:
    return schedule_from_dict(json.loads(text), system)


# ----------------------------------------------------------------------
# bundles: schedule + graph + topology + link model, fully replayable
# ----------------------------------------------------------------------

def bundle_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """Self-contained export: the schedule plus everything needed to
    rebuild its system (trace-dict graph with exact exec vectors and
    nominal costs, topology dict, link-model parameters).

    Task ids must be interchange-safe (int/str) — relabel with
    :func:`repro.graph.interchange.relabel_tasks` first if they are not.
    """
    from repro.graph.interchange import ExternalWorkload, trace_to_dict

    system = schedule.system
    graph = system.graph
    workload = ExternalWorkload(
        graph=graph,
        exec_costs={t: system.exec_cost_row(t) for t in graph.tasks()},
    )
    return {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "graph": trace_to_dict(workload),
        # the trace convention derives nominal costs from the vectors
        # (fastest processor); record the graph's own nominal costs so
        # the rebuilt system is exact even when they differ
        "nominal_costs": [graph.cost(t) for t in graph.tasks()],
        "topology": system.topology.to_dict(),
        "link_model": {
            "mode": system.link_mode.name,
            "factor_range": list(system.link_factor_range),
            "seed": system.link_seed,
            "per_link": {
                f"{a}-{b}": factor
                for (a, b), factor in sorted(system.per_link_factors.items())
            },
        },
        "schedule": schedule_to_dict(schedule),
    }


def bundle_from_dict(data: Dict[str, Any]) -> Schedule:
    """Rebuild system and schedule from :func:`bundle_to_dict` output."""
    from repro.graph.interchange import trace_from_dict
    from repro.network.system import LinkHeterogeneity
    from repro.network.topology import Topology

    if not isinstance(data, dict) or data.get("format") != BUNDLE_FORMAT:
        raise SchedulingError(
            f"not a {BUNDLE_FORMAT} document "
            + (f"(format={data.get('format')!r})" if isinstance(data, dict) else "")
        )
    if data.get("version") != BUNDLE_VERSION:
        raise SchedulingError(
            f"unsupported bundle version {data.get('version')!r}"
        )
    workload = trace_from_dict(data["graph"])
    if workload.exec_costs is None:
        raise SchedulingError("bundle graph carries no exec-cost vectors")
    graph = workload.graph
    nominal = data.get("nominal_costs")
    if nominal is not None:
        if len(nominal) != graph.n_tasks:
            raise SchedulingError(
                f"bundle has {len(nominal)} nominal costs for "
                f"{graph.n_tasks} tasks"
            )
        for t, cost in zip(graph.tasks(), nominal):
            graph.set_task_cost(t, cost)
    topology = Topology.from_dict(data["topology"])
    lm = data.get("link_model") or {}
    try:
        mode = LinkHeterogeneity[lm.get("mode", "HOMOGENEOUS")]
    except KeyError:
        raise SchedulingError(
            f"unknown link heterogeneity mode {lm.get('mode')!r}"
        ) from None
    per_link = {
        tuple(int(p) for p in key.split("-")): factor
        for key, factor in (lm.get("per_link") or {}).items()
    }
    system = HeterogeneousSystem.from_exec_table(
        graph,
        topology,
        workload.exec_costs,
        link_mode=mode,
        per_link_factors=per_link or None,
        link_factor_range=tuple(lm.get("factor_range", (1.0, 1.0))),
        link_seed=lm.get("seed", 0),
    )
    return schedule_from_dict(data["schedule"], system)


def relabel_schedule(schedule: Schedule) -> Schedule:
    """Value-identical copy whose task ids are interchange-safe.

    The generated regular applications use tuple task ids, which the
    bundle format rejects; this maps them through
    :func:`repro.graph.interchange.relabel_tasks`' default rename and
    rebuilds system + schedule with every time, order, and route
    preserved exactly.  Already-safe schedules are returned unchanged
    (not copied).

    ``PER_MESSAGE_LINK`` systems whose ids actually change cannot be
    relabeled exactly — their link factors are stable hashes keyed by
    task id, so renamed edges would draw different factors — and raise
    :class:`~repro.errors.SchedulingError` instead of exporting a
    bundle that fails its own replay audit.
    """
    from repro.graph.interchange import _is_interchange_id, relabel_tasks
    from repro.network.system import LinkHeterogeneity

    system = schedule.system
    graph = system.graph
    if all(_is_interchange_id(t) for t in graph.tasks()):
        return schedule
    if system.link_mode is LinkHeterogeneity.PER_MESSAGE_LINK:
        raise SchedulingError(
            "cannot relabel a schedule over a PER_MESSAGE_LINK system: "
            "link factors are keyed by task id, so renamed ids would "
            "change communication costs"
        )
    new_graph = relabel_tasks(graph)
    mapping = dict(zip(graph.tasks(), new_graph.tasks()))
    new_system = HeterogeneousSystem(
        new_graph,
        system.topology,
        {mapping[t]: system.exec_cost_row(t) for t in graph.tasks()},
        link_mode=system.link_mode,
        link_factor_range=system.link_factor_range,
        link_seed=system.link_seed,
        per_link_factors=system.per_link_factors or None,
    )
    out = schedule.copy()  # fresh slot/hop/route objects, orders preserved
    out.system = new_system
    out.slots = {mapping[t]: s for t, s in out.slots.items()}
    for s in out.slots.values():
        s.task = mapping[s.task]
    out.proc_order = {
        p: [mapping[t] for t in order] for p, order in out.proc_order.items()
    }
    new_routes = {}
    for (u, v), route in out.routes.items():
        ne = (mapping[u], mapping[v])
        route.edge = ne
        for h in route.hops:  # link_order shares these hop objects
            h.edge = ne
        new_routes[ne] = route
    out.routes = new_routes
    return out


def bundle_to_json(schedule: Schedule, indent: Optional[int] = None) -> str:
    return json.dumps(bundle_to_dict(schedule), indent=indent)


def bundle_from_json(text: str) -> Schedule:
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise SchedulingError(f"bundle is not valid JSON: {exc}") from None
    return bundle_from_dict(data)


def write_bundle(schedule: Schedule, path: str, indent: Optional[int] = None) -> None:
    """Write a replayable schedule bundle to ``path`` (JSON)."""
    with open(path, "w") as fh:
        fh.write(bundle_to_json(schedule, indent=indent) + "\n")


def read_bundle(path: str) -> Schedule:
    """Read a bundle back into a fully-bound :class:`Schedule` — no
    generating code needed; feed the result to ``validate_schedule``
    for a complete replay audit."""
    with open(path) as fh:
        return bundle_from_json(fh.read())
