"""Level analysis: t-levels, b-levels, critical paths, granularity.

Definitions follow the paper (§2.2):

* **b-level** of a task = length of the longest path *beginning* with the
  task (includes the task's own execution cost and downstream
  communication costs).
* **t-level** of a task = length of the longest path *reaching* the task
  (excludes the task's own cost; includes upstream execution and
  communication costs).
* **critical path (CP)** = path with the largest sum of execution and
  communication costs; every CP task satisfies
  ``t_level + b_level == cp_length``.

All functions accept an optional ``exec_cost`` mapping so the same code
computes nominal levels (``tau_i``) and per-processor *actual* levels
(``h_ix * tau_i``) — the latter drive BSA's pivot selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.model import TaskGraph, TaskId
from repro.util.rng import RngStream
from repro.util.tolerance import TIE_EPS


def _resolve_cost(graph: TaskGraph, exec_cost) -> Callable[[TaskId], float]:
    if exec_cost is None:
        return graph.cost
    if callable(exec_cost):
        return exec_cost
    return lambda t: exec_cost[t]


def t_levels(graph: TaskGraph, exec_cost=None) -> Dict[TaskId, float]:
    """Top levels: longest path length *into* each task (excl. own cost)."""
    cost = _resolve_cost(graph, exec_cost)
    tl: Dict[TaskId, float] = {}
    for t in graph.topological_order():
        best = 0.0
        for p in graph.predecessors(t):
            cand = tl[p] + cost(p) + graph.comm_cost(p, t)
            if cand > best:
                best = cand
        tl[t] = best
    return tl


def b_levels(graph: TaskGraph, exec_cost=None) -> Dict[TaskId, float]:
    """Bottom levels: longest path length *from* each task (incl. own cost)."""
    cost = _resolve_cost(graph, exec_cost)
    bl: Dict[TaskId, float] = {}
    for t in reversed(graph.topological_order()):
        best = 0.0
        for s in graph.successors(t):
            cand = graph.comm_cost(t, s) + bl[s]
            if cand > best:
                best = cand
        bl[t] = cost(t) + best
    return bl


def static_b_levels(graph: TaskGraph, exec_cost=None) -> Dict[TaskId, float]:
    """b-levels computed *without* communication costs (DLS static level)."""
    cost = _resolve_cost(graph, exec_cost)
    bl: Dict[TaskId, float] = {}
    for t in reversed(graph.topological_order()):
        best = 0.0
        for s in graph.successors(t):
            if bl[s] > best:
                best = bl[s]
        bl[t] = cost(t) + best
    return bl


def cp_length(graph: TaskGraph, exec_cost=None) -> float:
    """Length of the critical path (max b-level over entry tasks)."""
    bl = b_levels(graph, exec_cost)
    return max(bl.values()) if bl else 0.0


def critical_path(
    graph: TaskGraph,
    exec_cost=None,
    rng: Optional[RngStream] = None,
) -> List[TaskId]:
    """One critical path, as an ordered task list.

    When several paths tie for the largest total length, the paper selects
    the one with the larger sum of *execution* costs, breaking remaining
    ties randomly; we do the same (deterministically when ``rng`` is None,
    by preferring the earliest task in graph insertion order).
    """
    cost = _resolve_cost(graph, exec_cost)
    bl = b_levels(graph, exec_cost)
    if not bl:
        return []
    # exec-only weight of the heaviest-exec critical path starting at t
    exec_sum: Dict[TaskId, float] = {}
    next_hop: Dict[TaskId, List[TaskId]] = {}
    for t in reversed(graph.topological_order()):
        candidates = []
        for s in graph.successors(t):
            if abs(graph.comm_cost(t, s) + bl[s] - (bl[t] - cost(t))) <= TIE_EPS:
                candidates.append(s)
        next_hop[t] = candidates
        if candidates:
            exec_sum[t] = cost(t) + max(exec_sum[s] for s in candidates)
        else:
            exec_sum[t] = cost(t)

    cp_len = max(bl.values())
    starts = [t for t in graph.tasks() if abs(bl[t] - cp_len) <= TIE_EPS and not graph.predecessors(t)]
    if not starts:  # numerical fallback: any task achieving the max b-level
        starts = [t for t in graph.tasks() if abs(bl[t] - cp_len) <= TIE_EPS]
    starts = _argmax_ties(starts, lambda t: exec_sum[t], rng)

    path = [starts]
    while next_hop[path[-1]]:
        nxt = _argmax_ties(next_hop[path[-1]], lambda t: exec_sum[t], rng)
        path.append(nxt)
    return path


def _argmax_ties(items: Sequence[TaskId], key, rng: Optional[RngStream]):
    best = max(key(t) for t in items)
    tied = [t for t in items if abs(key(t) - best) <= TIE_EPS]
    if len(tied) == 1 or rng is None:
        return tied[0]
    return rng.choice(tied)


def granularity(graph: TaskGraph) -> float:
    """Paper's granularity: average execution cost / average comm cost.

    Returns ``inf`` for graphs whose messages are all free.
    """
    mc = graph.mean_comm_cost()
    if mc == 0:
        return float("inf")
    return graph.mean_exec_cost() / mc


@dataclass
class GraphAnalysis:
    """Bundled level analysis of one graph under one cost model.

    Computing t-levels, b-levels and the CP repeatedly is the hot path of
    serialization; this object computes them once and exposes derived
    queries.
    """

    graph: TaskGraph
    exec_cost: Optional[object] = None
    rng: Optional[RngStream] = None
    t_level: Dict[TaskId, float] = field(init=False)
    b_level: Dict[TaskId, float] = field(init=False)
    cp: List[TaskId] = field(init=False)
    cp_len: float = field(init=False)

    def __post_init__(self):
        self.t_level = t_levels(self.graph, self.exec_cost)
        self.b_level = b_levels(self.graph, self.exec_cost)
        self.cp = critical_path(self.graph, self.exec_cost, self.rng)
        self.cp_len = max(self.b_level.values()) if self.b_level else 0.0

    def is_cp_task(self, task: TaskId) -> bool:
        return task in set(self.cp)

    def path_length(self, path: Sequence[TaskId]) -> float:
        """Total exec+comm length of an explicit path (validation helper)."""
        cost = _resolve_cost(self.graph, self.exec_cost)
        total = 0.0
        for i, t in enumerate(path):
            total += cost(t)
            if i + 1 < len(path):
                total += self.graph.comm_cost(t, path[i + 1])
        return total
