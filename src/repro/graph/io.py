"""Serialization and interop for task graphs.

Plain-dict / JSON round-trips are used by the experiment cache; networkx
conversion is provided for users who want to build or analyse graphs with
the wider ecosystem; DOT export helps eyeballing small graphs.

For *external* graph formats (Standard Task Graph, DOT import, JSON
workflow traces with per-processor cost vectors) see
:mod:`repro.graph.interchange`, which registers this module's JSON
dialect alongside them.

>>> g = TaskGraph(name="demo")
>>> g.add_task("a", 10.0); g.add_task("b", 5.0); g.add_edge("a", "b", 2.0)
>>> graph_from_json(graph_to_json(g)).comm_cost("a", "b")
2.0
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import GraphError
from repro.graph.model import TaskGraph

_FORMAT_VERSION = 1


def graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Lossless plain-dict form (task ids are stringified for JSON safety).

    >>> g = TaskGraph(name="pair")
    >>> g.add_task(0, 3.0); g.add_task("t", 4.0); g.add_edge(0, "t", 1.0)
    >>> graph_to_dict(g)["tasks"]
    [['0', 3.0], ["'t'", 4.0]]
    """
    return {
        "version": _FORMAT_VERSION,
        "name": graph.name,
        "tasks": [[repr(t), graph.cost(t)] for t in graph.tasks()],
        "edges": [[repr(u), repr(v), graph.comm_cost(u, v)] for u, v in graph.edges()],
    }


def graph_from_dict(data: Dict[str, Any]) -> TaskGraph:
    """Inverse of :func:`graph_to_dict` (task ids come back via eval of repr
    for the basic types we emit: int / str tuples are not supported).

    >>> g = TaskGraph(); g.add_task(7, 2.5)
    >>> graph_from_dict(graph_to_dict(g)).cost(7)
    2.5
    """
    if data.get("version") != _FORMAT_VERSION:
        raise GraphError(f"unsupported graph format version {data.get('version')!r}")
    g = TaskGraph(name=data.get("name", "graph"))
    for raw, cost in data["tasks"]:
        g.add_task(_parse_id(raw), cost)
    for raw_u, raw_v, cost in data["edges"]:
        g.add_edge(_parse_id(raw_u), _parse_id(raw_v), cost)
    return g


def _parse_id(raw: str):
    """Parse the repr of an int or str task id without a general eval.

    Quoted ids go through ``ast.literal_eval`` so repr escapes
    (backslashes, embedded quotes, newlines) invert exactly.

    >>> _parse_id("12"), _parse_id("'T1'"), _parse_id(repr("back\\\\slash"))
    (12, 'T1', 'back\\\\slash')
    """
    try:
        return int(raw)
    except ValueError:
        pass
    if len(raw) >= 2 and raw[0] == raw[-1] and raw[0] in "'\"":
        import ast

        try:
            value = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            raise GraphError(f"cannot parse task id {raw!r}") from None
        if isinstance(value, str):
            return value
    raise GraphError(f"cannot parse task id {raw!r}")


def graph_to_json(graph: TaskGraph) -> str:
    """Compact JSON text of :func:`graph_to_dict` (the cache dialect).

    >>> g = TaskGraph(name="one"); g.add_task(0, 1.0)
    >>> graph_to_json(g)
    '{"version": 1, "name": "one", "tasks": [["0", 1.0]], "edges": []}'
    """
    return json.dumps(graph_to_dict(graph), indent=None, sort_keys=False)


def graph_from_json(text: str) -> TaskGraph:
    """Inverse of :func:`graph_to_json`.

    >>> graph_from_json(
    ...     '{"version": 1, "name": "one", "tasks": [["0", 1.0]], "edges": []}'
    ... ).n_tasks
    1
    """
    return graph_from_dict(json.loads(text))


def to_networkx(graph: TaskGraph):
    """Convert to a ``networkx.DiGraph`` with ``cost`` / ``comm`` attributes.

    >>> g = TaskGraph(); g.add_task(0, 1.0); g.add_task(1, 2.0)
    >>> g.add_edge(0, 1, 3.0)
    >>> to_networkx(g).edges[0, 1]["comm"]
    3.0
    """
    import networkx as nx

    g = nx.DiGraph(name=graph.name)
    for t in graph.tasks():
        g.add_node(t, cost=graph.cost(t))
    for u, v in graph.edges():
        g.add_edge(u, v, comm=graph.comm_cost(u, v))
    return g


def from_networkx(nxg, name: str = None) -> TaskGraph:
    """Build a :class:`TaskGraph` from a ``networkx.DiGraph``.

    Node attribute ``cost`` (or ``weight``) gives execution cost; edge
    attribute ``comm`` (or ``weight``) gives communication cost.

    >>> g = TaskGraph(); g.add_task("a", 4.0)
    >>> from_networkx(to_networkx(g)).cost("a")
    4.0
    """
    g = TaskGraph(name=name or getattr(nxg, "name", None) or "from_networkx")
    for node, attrs in nxg.nodes(data=True):
        cost = attrs.get("cost", attrs.get("weight"))
        if cost is None:
            raise GraphError(f"node {node!r} lacks a 'cost'/'weight' attribute")
        g.add_task(node, cost)
    for u, v, attrs in nxg.edges(data=True):
        comm = attrs.get("comm", attrs.get("weight", 0.0))
        g.add_edge(u, v, comm)
    return g


def to_dot(graph: TaskGraph) -> str:
    """Graphviz DOT text for quick visual inspection of small graphs.

    Costs render at ``%g`` precision — for an exact, re-importable DOT
    export use :func:`repro.graph.interchange.write_dot` instead
    (:func:`~repro.graph.interchange.read_dot` accepts both).

    >>> g = TaskGraph(name="one"); g.add_task("a", 2.0)
    >>> print(to_dot(g))
    digraph "one" {
      "a" [label="a\\n2"];
    }
    """
    lines = [f'digraph "{graph.name}" {{']
    for t in graph.tasks():
        lines.append(f'  "{t}" [label="{t}\\n{graph.cost(t):g}"];')
    for u, v in graph.edges():
        lines.append(f'  "{u}" -> "{v}" [label="{graph.comm_cost(u, v):g}"];')
    lines.append("}")
    return "\n".join(lines)
