"""CP / IB / OB task classification (paper §2.2).

* **CP** tasks lie on the selected critical path.
* **IB** (in-branch) tasks are ancestors of some CP task but not CP
  themselves — they must precede their CP descendants in any serial order.
* **OB** (out-branch) tasks are everything else; the serialization appends
  them last, in descending b-level order.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.graph.model import TaskGraph, TaskId


class TaskClass(enum.Enum):
    CP = "cp"
    IB = "ib"
    OB = "ob"


def classify_tasks(
    graph: TaskGraph,
    cp: Sequence[TaskId],
) -> Dict[TaskId, TaskClass]:
    """Partition every task into CP / IB / OB given a chosen critical path."""
    cp_set = set(cp)
    result: Dict[TaskId, TaskClass] = {}
    ib: set = set()
    for t in cp:
        ib |= graph.ancestors(t)
    ib -= cp_set
    for t in graph.tasks():
        if t in cp_set:
            result[t] = TaskClass.CP
        elif t in ib:
            result[t] = TaskClass.IB
        else:
            result[t] = TaskClass.OB
    return result
