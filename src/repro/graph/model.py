"""The task graph model.

A parallel program is a weighted DAG (paper §2.1): tasks ``T1..Tn`` carry a
*nominal execution cost* ``tau_i`` (the cost on the reference — fastest —
machine) and each edge ``(i, j)`` carries a *nominal communication cost*
``c_ij`` for the message ``Mij``. Heterogeneity factors live in
:mod:`repro.network.system`, not here: the graph is platform-independent.

Task identifiers are arbitrary hashables (ints in generated workloads,
strings like ``"T1"`` in the paper example). Iteration orders are
deterministic: insertion order, which all generators keep topological-ish
and seeded.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import CycleError, GraphError

TaskId = Hashable
Edge = Tuple[TaskId, TaskId]


class TaskGraph:
    """A directed acyclic task graph with execution and communication costs.

    Parameters
    ----------
    name:
        Optional human-readable name (used in reports and cache keys).

    Examples
    --------
    >>> g = TaskGraph(name="demo")
    >>> g.add_task("a", 10.0)
    >>> g.add_task("b", 5.0)
    >>> g.add_edge("a", "b", 2.0)
    >>> g.n_tasks, g.n_edges
    (2, 1)
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._cost: Dict[TaskId, float] = {}
        self._succ: Dict[TaskId, Dict[TaskId, float]] = {}
        self._pred: Dict[TaskId, Dict[TaskId, float]] = {}
        self._index: Dict[TaskId, int] = {}
        self._zero_comm: Optional[bool] = None  # cache for has_zero_cost_edge
        self._pred_edges: Dict[TaskId, tuple] = {}  # cache for pred_edges
        #: declares a deliberately disconnected graph: its weak components
        #: are independent programs sharing the machine, and validation /
        #: the schedulers must accept them as-is instead of demanding the
        #: paper's connected-DAG assumption (set by the ``components``
        #: bridge policy in :mod:`repro.graph.interchange`)
        self.components_independent: bool = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: TaskId, cost: float) -> None:
        """Add a task with nominal execution cost ``cost`` (> 0)."""
        if task in self._cost:
            raise GraphError(f"duplicate task {task!r}")
        if cost <= 0:
            raise GraphError(f"task {task!r} must have positive cost, got {cost}")
        self._index[task] = len(self._cost)
        self._cost[task] = float(cost)
        self._succ[task] = {}
        self._pred[task] = {}

    def add_edge(self, src: TaskId, dst: TaskId, cost: float) -> None:
        """Add a message edge ``src -> dst`` with nominal cost ``cost`` (>= 0)."""
        if src not in self._cost:
            raise GraphError(f"unknown source task {src!r}")
        if dst not in self._cost:
            raise GraphError(f"unknown destination task {dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on {src!r}")
        if dst in self._succ[src]:
            raise GraphError(f"duplicate edge {src!r} -> {dst!r}")
        if cost < 0:
            raise GraphError(f"edge {src!r}->{dst!r} must have non-negative cost, got {cost}")
        self._succ[src][dst] = float(cost)
        self._pred[dst][src] = float(cost)
        self._zero_comm = None
        self._pred_edges.pop(dst, None)

    def set_task_cost(self, task: TaskId, cost: float) -> None:
        if task not in self._cost:
            raise GraphError(f"unknown task {task!r}")
        if cost <= 0:
            raise GraphError(f"task {task!r} must have positive cost, got {cost}")
        self._cost[task] = float(cost)

    def set_edge_cost(self, src: TaskId, dst: TaskId, cost: float) -> None:
        if dst not in self._succ.get(src, {}):
            raise GraphError(f"unknown edge {src!r} -> {dst!r}")
        if cost < 0:
            raise GraphError(f"edge cost must be non-negative, got {cost}")
        self._succ[src][dst] = float(cost)
        self._pred[dst][src] = float(cost)
        self._zero_comm = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self._cost)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def tasks(self) -> List[TaskId]:
        """All task ids in insertion order."""
        return list(self._cost)

    def task_index(self, task: TaskId) -> int:
        """Position of ``task`` in graph (insertion) order — the order
        :meth:`tasks` returns. O(1); used for deterministic tie-breaks."""
        try:
            return self._index[task]
        except KeyError:
            raise GraphError(f"unknown task {task!r}") from None

    def edges(self) -> List[Edge]:
        """All edges in deterministic (source-insertion) order."""
        return [(u, v) for u in self._cost for v in self._succ[u]]

    def has_task(self, task: TaskId) -> bool:
        return task in self._cost

    def has_edge(self, src: TaskId, dst: TaskId) -> bool:
        return dst in self._succ.get(src, {})

    def pred_edges(self, task: TaskId) -> tuple:
        """Cached ``((pred, (pred, task)), ...)`` pairs for every
        incoming edge — lets hot loops index route tables without
        allocating a fresh edge tuple per predecessor per visit."""
        e = self._pred_edges.get(task)
        if e is None:
            e = self._pred_edges[task] = tuple(
                (u, (u, task)) for u in self._pred[task]
            )
        return e

    def has_zero_cost_edge(self) -> bool:
        """True when any message has nominal cost 0 (cached; such hops
        have zero duration on every link, which the incremental settle
        engine's cycle-growth argument cannot handle — it falls back to
        the full pass for these graphs)."""
        if self._zero_comm is None:
            self._zero_comm = any(
                c == 0.0 for s in self._succ.values() for c in s.values()
            )
        return self._zero_comm

    def cost(self, task: TaskId) -> float:
        """Nominal execution cost ``tau_i``."""
        try:
            return self._cost[task]
        except KeyError:
            raise GraphError(f"unknown task {task!r}") from None

    def comm_cost(self, src: TaskId, dst: TaskId) -> float:
        """Nominal communication cost ``c_ij`` of message ``(src, dst)``."""
        try:
            return self._succ[src][dst]
        except KeyError:
            raise GraphError(f"unknown edge {src!r} -> {dst!r}") from None

    def successors(self, task: TaskId) -> List[TaskId]:
        try:
            return list(self._succ[task])
        except KeyError:
            raise GraphError(f"unknown task {task!r}") from None

    def predecessors(self, task: TaskId) -> List[TaskId]:
        try:
            return list(self._pred[task])
        except KeyError:
            raise GraphError(f"unknown task {task!r}") from None

    def in_degree(self, task: TaskId) -> int:
        return len(self._pred[task])

    def out_degree(self, task: TaskId) -> int:
        return len(self._succ[task])

    def sources(self) -> List[TaskId]:
        """Tasks with no predecessors (entry tasks)."""
        return [t for t in self._cost if not self._pred[t]]

    def sinks(self) -> List[TaskId]:
        """Tasks with no successors (exit tasks)."""
        return [t for t in self._cost if not self._succ[t]]

    def total_exec_cost(self) -> float:
        return sum(self._cost.values())

    def total_comm_cost(self) -> float:
        return sum(c for s in self._succ.values() for c in s.values())

    def mean_exec_cost(self) -> float:
        return self.total_exec_cost() / self.n_tasks if self.n_tasks else 0.0

    def mean_comm_cost(self) -> float:
        return self.total_comm_cost() / self.n_edges if self.n_edges else 0.0

    # ------------------------------------------------------------------
    # orderings
    # ------------------------------------------------------------------
    def topological_order(self) -> List[TaskId]:
        """Kahn topological order (deterministic: insertion order ties).

        Raises :class:`CycleError` if the graph has a directed cycle.
        """
        indeg = {t: len(self._pred[t]) for t in self._cost}
        ready = [t for t in self._cost if indeg[t] == 0]
        order: List[TaskId] = []
        head = 0
        while head < len(ready):
            t = ready[head]
            head += 1
            order.append(t)
            for s in self._succ[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != self.n_tasks:
            stuck = [t for t, d in indeg.items() if d > 0]
            raise CycleError(f"task graph {self.name!r} contains a cycle", stuck)
        return order

    def is_topological(self, order: Iterable[TaskId]) -> bool:
        """True when ``order`` lists every task once, predecessors first."""
        pos = {}
        for i, t in enumerate(order):
            if t in pos or t not in self._cost:
                return False
            pos[t] = i
        if len(pos) != self.n_tasks:
            return False
        return all(pos[u] < pos[v] for u, v in self.edges())

    def ancestors(self, task: TaskId) -> set:
        """All transitive predecessors of ``task`` (excluding itself)."""
        seen: set = set()
        stack = list(self._pred[task])
        while stack:
            t = stack.pop()
            if t not in seen:
                seen.add(t)
                stack.extend(self._pred[t])
        return seen

    def descendants(self, task: TaskId) -> set:
        """All transitive successors of ``task`` (excluding itself)."""
        seen: set = set()
        stack = list(self._succ[task])
        while stack:
            t = stack.pop()
            if t not in seen:
                seen.add(t)
                stack.extend(self._succ[t])
        return seen

    def independent(self, a: TaskId, b: TaskId) -> bool:
        """True when neither ``a < b`` nor ``b < a`` in the partial order."""
        if a == b:
            return False
        return b not in self.descendants(a) and a not in self.descendants(b)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "TaskGraph":
        g = TaskGraph(name=name or self.name)
        for t, c in self._cost.items():
            g.add_task(t, c)
        for u, v in self.edges():
            g.add_edge(u, v, self._succ[u][v])
        g.components_independent = self.components_independent
        return g

    def __contains__(self, task: TaskId) -> bool:
        return task in self._cost

    def __iter__(self) -> Iterator[TaskId]:
        return iter(self._cost)

    def __len__(self) -> int:
        return self.n_tasks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskGraph({self.name!r}, n={self.n_tasks}, e={self.n_edges})"
