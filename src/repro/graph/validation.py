"""Structural validation of task graphs.

The paper assumes a *connected* DAG (``n-1 <= e < n^2``). Generators in
:mod:`repro.workloads` guarantee this; :func:`validate_graph` enforces it
for user-supplied graphs.
"""

from __future__ import annotations

from typing import List

from repro.errors import CycleError, DisconnectedGraphError, GraphError
from repro.graph.model import TaskGraph


def check_dag(graph: TaskGraph) -> None:
    """Raise :class:`CycleError` unless the graph is acyclic."""
    graph.topological_order()


def weak_components(graph: TaskGraph) -> List[List]:
    """Weakly-connected components (edge direction ignored), ordered by
    first member in task-insertion order; members keep insertion order."""
    assigned = {}
    components: List[List] = []
    for root in graph.tasks():
        if root in assigned:
            continue
        members = [root]
        assigned[root] = len(components)
        stack = [root]
        while stack:
            t = stack.pop()
            for nb in graph.successors(t) + graph.predecessors(t):
                if nb not in assigned:
                    assigned[nb] = len(components)
                    members.append(nb)
                    stack.append(nb)
        components.append(sorted(members, key=graph.task_index))
    return components


def check_connected(graph: TaskGraph) -> None:
    """Raise unless the graph is weakly connected (ignoring edge direction)."""
    tasks = graph.tasks()
    if not tasks:
        return
    components = weak_components(graph)
    if len(components) > 1:
        missing = [t for comp in components[1:] for t in comp]
        raise DisconnectedGraphError(
            f"graph {graph.name!r} is not weakly connected; "
            f"{len(missing)} unreachable task(s), e.g. {missing[:5]}"
        )


def validate_graph(graph: TaskGraph, require_connected: bool = True) -> None:
    """Full structural check: non-empty, acyclic, (optionally) connected.

    A graph marked ``components_independent`` (the ``components`` bridge
    policy: its weak components are separate programs deliberately
    co-scheduled on one machine) is exempt from the connectivity check.
    """
    if graph.n_tasks == 0:
        raise GraphError("empty task graph")
    check_dag(graph)
    if require_connected and not graph.components_independent:
        check_connected(graph)
