"""Task-graph interchange: read and write external workload formats.

The generators in :mod:`repro.workloads` cover the paper's two synthetic
suites; this module is the front door for everything else. The formats
are funneled through one registry (:data:`FORMATS`) with
filename/content sniffing and strict validation against
:mod:`repro.graph.validation`:

* **stg** — the Standard Task Graph format of Kasahara's benchmark
  suite (one line per task: ``id cost n_preds pred...``). Plain STG
  carries no communication costs and no task names; the writer emits
  ``#@`` comment directives (ignored by other STG readers) so that
  ``read(write(g))`` round-trips ids and exact float costs. Zero-cost
  dummy entry/exit tasks, customary in published STG files, are
  stripped on read (the model requires positive execution costs).
* **dot** — Graphviz digraphs. The writer stores exact costs in
  ``cost=`` / ``comm=`` attributes next to the human-readable labels;
  the reader also accepts foreign DOT (and the display-oriented
  :func:`repro.graph.io.to_dot` output) by falling back to labels and
  ``default_cost`` / ``default_comm``.
* **trace** — a JSON "workflow trace" that preserves heterogeneity:
  each task may carry a per-processor execution-cost vector
  (``costs``) instead of a scalar nominal cost, so a platform-bound
  workload survives the round trip without being re-sampled.
  :meth:`ExternalWorkload.bind` turns it back into a
  :class:`~repro.network.system.HeterogeneousSystem` via the exact
  cost table.

* **dax** — Pegasus DAX XML, the classic scientific-workflow
  description (Montage, CyberShake, Epigenomics releases). Job
  ``runtime`` attributes map to execution costs; the communication
  cost of every parent→child edge sums the sizes of the files the
  parent outputs and the child inputs. The writer emits one synthetic
  file per edge (plus a ``reproid`` attribute foreign tools ignore),
  so round trips are lossless.
* **wfcommons** — WfCommons JSON workflow instances (wfformat), both
  the modern ``specification``/``execution`` split and the legacy flat
  task list, with the same runtime→cost and file-size→comm mapping as
  DAX.

The cache-native :func:`repro.graph.io.graph_to_json` dialect is also
registered (**json**) so ``repro convert`` can reach it.

Imports that are not weakly connected (e.g. published STG files whose
only connectors were the stripped dummies) can be repaired with
``bridge="epsilon"`` on :func:`load_workload` — see
:func:`bridge_components`.

Everything a reader returns is an :class:`ExternalWorkload`: the graph,
the optional per-processor cost table, and the content hash used by
:mod:`repro.workloads.external` to build cache keys.

Examples
--------
>>> from repro.graph.model import TaskGraph
>>> g = TaskGraph(name="demo")
>>> g.add_task("a", 4.0); g.add_task("b", 2.0); g.add_edge("a", "b", 1.5)
>>> h = read_stg(write_stg(g)).graph
>>> graphs_equal(g, h)
True
>>> h.name, h.cost("b"), h.comm_cost("a", "b")
('demo', 2.0, 1.5)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.errors import ConfigurationError, GraphError
from repro.graph.io import _parse_id, graph_from_json, graph_to_json
from repro.graph.model import TaskGraph, TaskId
from repro.graph.validation import validate_graph

__all__ = [
    "ExternalWorkload",
    "GraphFormat",
    "FORMATS",
    "format_names",
    "sniff_format",
    "load_workload",
    "loads_workload",
    "save_workload",
    "dumps_workload",
    "convert_file",
    "relabel_tasks",
    "graphs_equal",
    "content_hash",
    "read_stg",
    "write_stg",
    "read_dot",
    "write_dot",
    "read_trace",
    "write_trace",
    "trace_to_dict",
    "trace_from_dict",
    "read_dax",
    "write_dax",
    "read_wfcommons",
    "write_wfcommons",
    "bridge_components",
    "BRIDGE_POLICIES",
]

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


# ----------------------------------------------------------------------
# the common container readers return
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExternalWorkload:
    """An imported task graph, plus whatever platform data the file had.

    ``exec_costs`` is ``None`` for platform-independent formats (stg,
    dot, json); trace files with per-task ``costs`` vectors populate it
    with the *actual* execution cost of every task on every processor,
    exactly as read — heterogeneity is preserved, never re-sampled.

    Examples
    --------
    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("tiny"); g.add_task(0, 5.0); g.add_task(1, 3.0)
    >>> g.add_edge(0, 1, 2.0)
    >>> wl = ExternalWorkload(graph=g)
    >>> wl.n_procs is None
    True
    >>> from repro.network.topology import chain
    >>> system = wl.bind(chain(2), het_range=(1.0, 2.0), seed=0)
    >>> system.n_procs
    2
    """

    graph: TaskGraph
    #: task id -> per-processor actual execution costs (trace files only)
    exec_costs: Optional[Mapping[TaskId, Tuple[float, ...]]] = None
    #: where the workload came from ("<memory>" when built from text)
    source: str = "<memory>"
    #: registry name of the format it was read from
    fmt: str = "trace"
    #: sha256 of the raw file text ("" when built programmatically)
    content_hash: str = ""

    @property
    def n_procs(self) -> Optional[int]:
        """Processor count implied by the cost vectors (``None`` if the
        format carried no platform data)."""
        if self.exec_costs is None:
            return None
        return len(next(iter(self.exec_costs.values())))

    def bind(
        self,
        topology,
        het_range: Tuple[float, float] = (1.0, 50.0),
        link_het_range: Optional[Tuple[float, float]] = None,
        seed: int = 0,
    ):
        """Bind the workload to ``topology`` as a
        :class:`~repro.network.system.HeterogeneousSystem`.

        With per-processor cost vectors the topology size must match and
        the vectors are used verbatim (``from_exec_table``); otherwise
        execution factors are sampled from ``het_range`` exactly like
        the generated suites.
        """
        from repro.network.system import HeterogeneousSystem, LinkHeterogeneity
        from repro.util.rng import RngStream

        if self.exec_costs is None:
            return HeterogeneousSystem.sample(
                self.graph,
                topology,
                het_range=het_range,
                link_het_range=link_het_range,
                seed=seed,
            )
        if topology.n_procs != self.n_procs:
            raise ConfigurationError(
                f"workload {self.graph.name!r} carries {self.n_procs}-processor "
                f"cost vectors but topology {topology.name!r} has "
                f"{topology.n_procs} processors"
            )
        if link_het_range is None:
            return HeterogeneousSystem.from_exec_table(
                self.graph, topology, self.exec_costs
            )
        llo, lhi = link_het_range
        return HeterogeneousSystem.from_exec_table(
            self.graph,
            topology,
            self.exec_costs,
            link_mode=LinkHeterogeneity.PER_MESSAGE_LINK,
            link_factor_range=(llo, lhi),
            link_seed=RngStream(seed).fork("link-factors").seed,
        )


def _as_graph(obj) -> TaskGraph:
    """Accept a TaskGraph, an ExternalWorkload, or a HeterogeneousSystem."""
    if isinstance(obj, TaskGraph):
        return obj
    if isinstance(obj, ExternalWorkload):
        return obj.graph
    graph = getattr(obj, "graph", None)
    if isinstance(graph, TaskGraph):
        return graph
    raise GraphError(f"cannot interpret {type(obj).__name__} as a task graph")


def _is_interchange_id(task) -> bool:
    """True for the id types every interchange format can carry: int or
    str (bool is an int subclass but would not survive a round trip)."""
    return isinstance(task, (int, str)) and not isinstance(task, bool)


def _id_repr(task: TaskId) -> str:
    """Repr of an int/str task id, rejecting everything else up front.

    The repr is a Python literal, so :func:`repro.graph.io._parse_id`
    inverts it exactly (escapes and embedded newlines included) and the
    one-line-per-record formats stay line-based."""
    if not _is_interchange_id(task):
        raise GraphError(
            f"interchange formats support int and str task ids; got "
            f"{task!r} ({type(task).__name__}) — relabel with "
            f"relabel_tasks() first"
        )
    return repr(task)


def _num(x: float) -> str:
    """Exact, round-trippable text for a float (shortest repr)."""
    return repr(float(x))


def content_hash(text: str) -> str:
    """sha256 hex digest of the raw file text.

    >>> content_hash("42\\n")[:12]
    '084c799cd551'
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# STG — Standard Task Graph (Kasahara suite) with #@ extensions
# ----------------------------------------------------------------------

def write_stg(obj) -> str:
    """Serialize a graph to STG text (with ``#@`` fidelity directives).

    The body is plain Kasahara STG — task count, then one
    ``index cost n_preds pred...`` line per task in insertion order —
    readable by any STG consumer. Trailing ``#@`` comments record the
    graph name, non-index task ids, and exact communication costs so
    :func:`read_stg` reconstructs the graph losslessly. Per-processor
    cost vectors (trace workloads) are not representable; only the
    nominal graph is written.

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("pair"); g.add_task(0, 2.0); g.add_task(1, 4.0)
    >>> g.add_edge(0, 1, 3.0)
    >>> print(write_stg(g))
    # STG written by repro.graph.interchange (directives: #@)
    2
    0 2.0 0
    1 4.0 1 0
    #@ name "pair"
    #@ comm 0 1 3.0
    """
    graph = _as_graph(obj)
    tasks = graph.tasks()
    index = {t: i for i, t in enumerate(tasks)}
    for t in tasks:
        _id_repr(t)  # reject non-int/str ids before emitting anything
    lines = ["# STG written by repro.graph.interchange (directives: #@)"]
    lines.append(str(len(tasks)))
    for t in tasks:
        preds = [str(index[p]) for p in graph.predecessors(t)]
        lines.append(
            f"{index[t]} {_num(graph.cost(t))} {len(preds)}"
            + ("" if not preds else " " + " ".join(preds))
        )
    # JSON-encoded so empty names and embedded newlines survive the
    # line-based format
    lines.append(f"#@ name {json.dumps(graph.name)}")
    for t in tasks:
        if t != index[t]:
            lines.append(f"#@ task {index[t]} {_id_repr(t)}")
    for u, v in graph.edges():
        lines.append(f"#@ comm {index[u]} {index[v]} {_num(graph.comm_cost(u, v))}")
    return "\n".join(lines)


def read_stg(
    text: str,
    name: Optional[str] = None,
    default_comm: float = 1.0,
    strip_dummies: bool = True,
) -> ExternalWorkload:
    """Parse STG text into an :class:`ExternalWorkload`.

    Accepts both layouts found in the wild: a declared count matching
    the task lines exactly, or the Kasahara convention of ``count + 2``
    lines where the first and last tasks are zero-cost dummy entry/exit
    nodes. Zero-cost source/sink tasks are stripped when
    ``strip_dummies`` (the model requires positive costs); a zero-cost
    *interior* task is an error. Edges found only in the task lines get
    ``default_comm`` as communication cost; ``#@ comm`` directives give
    exact per-edge costs.

    >>> wl = read_stg("2\\n0 10 0\\n1 20 1 0\\n", default_comm=5.0)
    >>> wl.graph.comm_cost(0, 1)
    5.0
    """
    if default_comm < 0:
        raise GraphError(f"default_comm must be >= 0, got {default_comm}")
    directives: List[Tuple[str, str]] = []
    body: List[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("#@"):
            parts = line[2:].strip().split(None, 1)
            if len(parts) != 2:
                raise GraphError(f"malformed STG directive: {raw!r}")
            directives.append((parts[0], parts[1]))
        elif not line or line.startswith("#"):
            continue
        else:
            body.append(line)
    if not body:
        raise GraphError("STG text has no task lines")
    try:
        declared = int(body[0])
    except ValueError:
        raise GraphError(f"STG must start with a task count, got {body[0]!r}") from None
    task_lines = body[1:]
    if len(task_lines) not in (declared, declared + 2):
        raise GraphError(
            f"STG declares {declared} tasks but has {len(task_lines)} task "
            f"lines (expected {declared} or, with dummy entry/exit, "
            f"{declared + 2})"
        )

    costs: Dict[int, float] = {}
    preds: Dict[int, List[int]] = {}
    order: List[int] = []
    for line in task_lines:
        fields = line.split()
        if len(fields) < 3:
            raise GraphError(f"malformed STG task line: {line!r}")
        try:
            idx = int(fields[0])
            cost = float(fields[1])
            n_preds = int(fields[2])
        except ValueError:
            raise GraphError(f"malformed STG task line: {line!r}") from None
        if idx in costs:
            raise GraphError(f"duplicate STG task index {idx}")
        if len(fields) != 3 + n_preds:
            raise GraphError(
                f"STG task {idx} declares {n_preds} predecessors but "
                f"lists {len(fields) - 3}"
            )
        try:
            plist = [int(f) for f in fields[3:]]
        except ValueError:
            raise GraphError(f"malformed STG predecessor list: {line!r}") from None
        costs[idx] = cost
        preds[idx] = plist
        order.append(idx)
    for idx, plist in preds.items():
        for p in plist:
            if p not in costs:
                raise GraphError(f"STG task {idx} references unknown task {p}")

    # apply directives before stripping so renames survive
    graph_name = name
    id_of: Dict[int, TaskId] = {}
    comm: Dict[Tuple[int, int], float] = {}
    for key, value in directives:
        if key == "name":
            if graph_name is None:
                try:
                    decoded = json.loads(value)
                except ValueError:
                    decoded = value  # hand-written unquoted name
                graph_name = decoded if isinstance(decoded, str) else value
        elif key == "task":
            parts = value.split(None, 1)
            if len(parts) != 2:
                raise GraphError(f"malformed #@ task directive: {value!r}")
            try:
                id_of[int(parts[0])] = _parse_id(parts[1])
            except ValueError:
                raise GraphError(
                    f"malformed #@ task directive: {value!r}"
                ) from None
        elif key == "comm":
            parts = value.split()
            if len(parts) != 3:
                raise GraphError(f"malformed #@ comm directive: {value!r}")
            try:
                comm[(int(parts[0]), int(parts[1]))] = float(parts[2])
            except ValueError:
                raise GraphError(
                    f"malformed #@ comm directive: {value!r}"
                ) from None
        else:
            raise GraphError(f"unknown STG directive #@ {key}")

    succ_count = {idx: 0 for idx in order}
    for idx, plist in preds.items():
        for p in plist:
            succ_count[p] += 1
    if strip_dummies:
        # iteratively drop zero-cost entry/exit tasks (published STG
        # files pad with one of each; stripping can expose another)
        while True:
            dead = [
                idx for idx in order
                if costs[idx] == 0.0 and (not preds[idx] or succ_count[idx] == 0)
            ]
            if not dead:
                break
            for idx in dead:
                for p in preds[idx]:
                    if p in succ_count:  # pred may be dead in the same round
                        succ_count[p] -= 1
                order.remove(idx)
                del costs[idx], preds[idx], succ_count[idx]
            for idx in order:
                preds[idx] = [p for p in preds[idx] if p in costs]

    graph = TaskGraph(name=graph_name if graph_name is not None else "stg")
    for idx in order:
        if costs[idx] <= 0:
            raise GraphError(
                f"STG task {idx} has non-positive cost {costs[idx]!r}; the "
                f"model requires positive execution costs (zero-cost "
                f"entry/exit dummies are stripped automatically)"
            )
        graph.add_task(id_of.get(idx, idx), costs[idx])
    for idx in order:
        for p in preds[idx]:
            c = comm.get((p, idx), default_comm)
            graph.add_edge(id_of.get(p, p), id_of.get(idx, idx), c)
    return ExternalWorkload(graph=graph, fmt="stg", content_hash=content_hash(text))


# ----------------------------------------------------------------------
# DOT — Graphviz digraph with cost=/comm= attributes
# ----------------------------------------------------------------------

_DOT_BARE = r"[A-Za-z0-9_.\-]+"
_DOT_QUOTED = r'"(?:[^"\\]|\\.)*"'
# re.S: quoted ids/labels may contain literal newlines
_DOT_ID = re.compile(rf"({_DOT_QUOTED}|{_DOT_BARE})", re.S)
_DOT_ATTR = re.compile(rf"(\w+)\s*=\s*({_DOT_QUOTED}|[^,\s\]]+)", re.S)


def _split_attr_block(stmt: str) -> Tuple[str, str]:
    """Split a DOT statement into ``(core, attr text)`` at the first
    ``[`` that sits *outside* quoted ids (a quoted id may contain one);
    the attr block runs to the last ``]``."""
    in_quote = False
    escaped = False
    for i, ch in enumerate(stmt):
        if in_quote:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_quote = False
        elif ch == '"':
            in_quote = True
        elif ch == "[":
            end = stmt.rfind("]")
            return stmt[:i].strip(), stmt[i + 1:end if end > i else len(stmt)]
    return stmt.strip(), ""


def _split_arrows(core: str) -> List[str]:
    """Split an edge chain on ``->`` outside quoted ids (a quoted id may
    legally contain the arrow, e.g. ``"a->b" [cost=1.0]``)."""
    parts: List[str] = []
    current: List[str] = []
    in_quote = False
    escaped = False
    i = 0
    while i < len(core):
        ch = core[i]
        if in_quote:
            current.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_quote = False
        elif ch == '"':
            in_quote = True
            current.append(ch)
        elif core.startswith("->", i):
            parts.append("".join(current))
            current = []
            i += 2
            continue
        else:
            current.append(ch)
        i += 1
    parts.append("".join(current))
    return [p.strip() for p in parts]


def _dot_escape(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"')


def _dot_render_id(task: TaskId) -> str:
    """Ints render bare, strings quoted — the reader inverts this, so
    id *types* survive the round trip."""
    _id_repr(task)
    if isinstance(task, int):
        return str(task)
    return f'"{_dot_escape(task)}"'


def _dot_parse_id(token: str) -> TaskId:
    token = token.strip()
    if token.startswith('"'):
        return token[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    try:
        return int(token)
    except ValueError:
        return token


def write_dot(obj) -> str:
    """Serialize a graph to DOT with exact ``cost=`` / ``comm=`` attrs.

    Unlike the display-oriented :func:`repro.graph.io.to_dot` (whose
    ``%g`` labels are lossy), every cost is also stored as a full-repr
    attribute, so ``read_dot(write_dot(g))`` is exact. Integer ids
    render as bare numerals and string ids as quoted strings, which is
    how the reader tells them apart.

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("pair"); g.add_task("a", 2.0); g.add_task(1, 4.0)
    >>> g.add_edge("a", 1, 0.5)
    >>> print(write_dot(g))
    digraph "pair" {
      "a" [label="a\\n2" cost=2.0];
      1 [label="1\\n4" cost=4.0];
      "a" -> 1 [label="0.5" comm=0.5];
    }
    """
    graph = _as_graph(obj)
    lines = [f'digraph "{_dot_escape(graph.name)}" {{']
    for t in graph.tasks():
        lines.append(
            f'  {_dot_render_id(t)} [label="{_dot_escape(str(t))}'
            f'\\n{graph.cost(t):g}" cost={_num(graph.cost(t))}];'
        )
    for u, v in graph.edges():
        c = graph.comm_cost(u, v)
        lines.append(
            f"  {_dot_render_id(u)} -> {_dot_render_id(v)} "
            f'[label="{c:g}" comm={_num(c)}];'
        )
    lines.append("}")
    return "\n".join(lines)


def _dot_statements(text: str) -> Tuple[Optional[str], List[str]]:
    """Split DOT text into (graph name, statement strings)."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    m = re.search(rf"digraph\s*({_DOT_QUOTED}|{_DOT_BARE})?\s*\{{", text)
    if not m:
        raise GraphError("not a DOT digraph (no 'digraph ... {' found)")
    name = _dot_parse_id(m.group(1)) if m.group(1) else None
    end = text.rfind("}")
    body = text[m.end():end if end > m.end() else len(text)]
    # split on ';' / newline, but never inside a quoted string (labels
    # may contain either) or inside an attribute [...] block
    statements: List[str] = []
    current: List[str] = []
    in_quote = False
    escaped = False
    depth = 0
    for ch in body:
        if in_quote:
            current.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_quote = False
        elif ch == '"':
            in_quote = True
            current.append(ch)
        elif ch == "[":
            depth += 1
            current.append(ch)
        elif ch == "]":
            depth = max(0, depth - 1)
            current.append(ch)
        elif ch in ";\n" and depth == 0:
            stmt = "".join(current).strip()
            if stmt:
                statements.append(stmt)
            current = []
        else:
            current.append(ch)
    stmt = "".join(current).strip()
    if stmt:
        statements.append(stmt)
    return (str(name) if name is not None else None), statements


def read_dot(
    text: str,
    name: Optional[str] = None,
    default_cost: Optional[float] = None,
    default_comm: float = 0.0,
) -> ExternalWorkload:
    """Parse a DOT digraph into an :class:`ExternalWorkload`.

    Reads the :func:`write_dot` dialect exactly; for foreign DOT it
    falls back, per node/edge, to a trailing ``\\n<number>`` in the
    ``label`` (the :func:`repro.graph.io.to_dot` convention, lossy at
    ``%g`` precision) and then to ``default_cost`` / ``default_comm``.
    A node with no recoverable cost is an error unless ``default_cost``
    is given.

    >>> wl = read_dot('digraph d { 0 [cost=3.0]; 1 [cost=1.0]; 0 -> 1; }')
    >>> wl.graph.n_tasks, wl.graph.comm_cost(0, 1)
    (2, 0.0)
    """
    if default_comm < 0:
        raise GraphError(f"default_comm must be >= 0, got {default_comm}")
    dot_name, statements = _dot_statements(text)
    node_attrs: Dict[TaskId, Dict[str, str]] = {}
    node_order: List[TaskId] = []
    edges: List[Tuple[TaskId, TaskId, Dict[str, str]]] = []

    def note_node(task: TaskId, attrs: Dict[str, str]) -> None:
        if task not in node_attrs:
            node_attrs[task] = {}
            node_order.append(task)
        node_attrs[task].update(attrs)

    for stmt in statements:
        core, attr_text = _split_attr_block(stmt)
        attrs = {k: v for k, v in _DOT_ATTR.findall(attr_text)}
        if not core:
            continue
        if core in ("graph", "node", "edge"):
            continue  # default-attribute statements carry no structure
        parts = _split_arrows(core)
        if len(parts) > 1:
            ids = []
            for p in parts:
                m_id = _DOT_ID.fullmatch(p)
                if not m_id:
                    raise GraphError(f"cannot parse DOT edge endpoint {p!r}")
                ids.append(_dot_parse_id(m_id.group(1)))
            for u, v in zip(ids, ids[1:]):
                edges.append((u, v, attrs))
        elif "=" in core and not core.startswith('"'):
            continue  # bare graph attribute like rankdir=LR
        else:
            m_id = _DOT_ID.fullmatch(core)
            if not m_id:
                raise GraphError(f"cannot parse DOT statement {stmt!r}")
            note_node(_dot_parse_id(m_id.group(1)), attrs)
    for u, v, _ in edges:
        note_node(u, {})
        note_node(v, {})

    def _value(attrs: Dict[str, str], key: str, fallback: Optional[float]) -> Optional[float]:
        if key in attrs:
            try:
                return float(_dot_parse_id(attrs[key]))
            except ValueError:
                raise GraphError(
                    f"DOT attribute {key}={attrs[key]!r} is not a number"
                ) from None
        label = attrs.get("label")
        if label is not None:
            tail = str(_dot_parse_id(label)).split("\\n")[-1]
            try:
                return float(tail)
            except ValueError:
                pass
        return fallback

    if name is None:
        name = dot_name if dot_name is not None else "dot"
    graph = TaskGraph(name=name)
    for t in node_order:
        cost = _value(node_attrs[t], "cost", default_cost)
        if cost is None:
            raise GraphError(
                f"DOT node {t!r} has no cost= attribute or numeric label; "
                f"pass default_cost to import cost-less DOT files"
            )
        graph.add_task(t, cost)
    for u, v, attrs in edges:
        graph.add_edge(u, v, _value(attrs, "comm", default_comm))
    return ExternalWorkload(graph=graph, fmt="dot", content_hash=content_hash(text))


# ----------------------------------------------------------------------
# trace — JSON workflow trace with per-processor cost vectors
# ----------------------------------------------------------------------

def trace_to_dict(obj) -> Dict[str, Any]:
    """The plain-dict form of the JSON workflow-trace schema.

    This is :func:`write_trace` without the final ``json.dumps`` — the
    building block :mod:`repro.schedule.io` embeds in schedule bundles.

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("t"); g.add_task(0, 1.5)
    >>> trace_to_dict(g)["tasks"]
    [{'id': 0, 'cost': 1.5}]
    """
    graph = _as_graph(obj)
    exec_costs: Optional[Mapping[TaskId, Tuple[float, ...]]] = None
    if isinstance(obj, ExternalWorkload):
        exec_costs = obj.exec_costs
    elif not isinstance(obj, TaskGraph):  # HeterogeneousSystem-like
        exec_costs = {t: obj.exec_cost_row(t) for t in graph.tasks()}
    for t in graph.tasks():
        _id_repr(t)
    doc: Dict[str, Any] = {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "name": graph.name,
    }
    if exec_costs is not None:
        doc["n_procs"] = len(next(iter(exec_costs.values())))
        doc["tasks"] = [
            {"id": t, "costs": list(exec_costs[t])} for t in graph.tasks()
        ]
    else:
        doc["tasks"] = [
            {"id": t, "cost": graph.cost(t)} for t in graph.tasks()
        ]
    doc["edges"] = [
        {"src": u, "dst": v, "comm": graph.comm_cost(u, v)}
        for u, v in graph.edges()
    ]
    return doc


def write_trace(obj, indent: Optional[int] = 2) -> str:
    """Serialize to the JSON workflow-trace schema.

    Accepts a :class:`~repro.graph.model.TaskGraph` (scalar ``cost`` per
    task), an :class:`ExternalWorkload`, or a
    :class:`~repro.network.system.HeterogeneousSystem` — the latter two
    emit per-processor ``costs`` vectors when they have them, so a
    bound platform's heterogeneity is preserved verbatim.

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("t"); g.add_task(0, 1.5)
    >>> print(write_trace(g, indent=None))
    {"format": "repro-trace", "version": 1, "name": "t", "tasks": [{"id": 0, "cost": 1.5}], "edges": []}
    """
    return json.dumps(trace_to_dict(obj), indent=indent)


def trace_from_dict(doc, name: Optional[str] = None) -> ExternalWorkload:
    """Rebuild an :class:`ExternalWorkload` from :func:`trace_to_dict`
    output — :func:`read_trace` without the JSON parsing, the building
    block :mod:`repro.schedule.io` uses for schedule bundles.
    ``content_hash`` is empty because there is no file text to hash.

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("t"); g.add_task(0, 1.5)
    >>> trace_from_dict(trace_to_dict(g)).graph.cost(0)
    1.5
    """
    if not isinstance(doc, dict) or doc.get("format") != TRACE_FORMAT:
        raise GraphError(
            f"not a {TRACE_FORMAT} document (format={doc.get('format')!r} "
            "if it parsed at all)" if isinstance(doc, dict)
            else f"not a {TRACE_FORMAT} document"
        )
    if doc.get("version") != TRACE_VERSION:
        raise GraphError(f"unsupported trace version {doc.get('version')!r}")
    tasks = doc.get("tasks")
    if not isinstance(tasks, list) or not tasks:
        raise GraphError("trace has no tasks")
    has_vectors = any("costs" in t for t in tasks)
    has_scalars = any("cost" in t for t in tasks)
    if has_vectors and has_scalars:
        raise GraphError("trace mixes scalar 'cost' and vector 'costs' tasks")
    if not has_vectors and not has_scalars:
        raise GraphError("trace tasks carry neither 'cost' nor 'costs'")
    n_procs = doc.get("n_procs")
    if has_vectors:
        if not isinstance(n_procs, int) or n_procs <= 0:
            raise GraphError(
                "trace with per-processor 'costs' vectors must declare a "
                "positive integer 'n_procs'"
            )
    graph = TaskGraph(name=name or str(doc.get("name", "trace")))
    exec_costs: Dict[TaskId, Tuple[float, ...]] = {}
    for entry in tasks:
        if not isinstance(entry, dict) or "id" not in entry:
            raise GraphError(f"malformed trace task entry {entry!r}")
        tid = entry["id"]
        if not _is_interchange_id(tid):
            raise GraphError(f"trace task id must be int or str, got {tid!r}")
        if has_vectors:
            row = entry.get("costs")
            if not isinstance(row, list) or len(row) != n_procs:
                raise GraphError(
                    f"task {tid!r}: 'costs' must be a list of {n_procs} numbers"
                )
            try:
                row_t = tuple(float(c) for c in row)
            except (TypeError, ValueError):
                raise GraphError(
                    f"task {tid!r}: 'costs' must be numbers, got {row!r}"
                ) from None
            if any(c <= 0 for c in row_t):
                raise GraphError(f"task {tid!r}: execution costs must be positive")
            graph.add_task(tid, min(row_t))
            exec_costs[tid] = row_t
        else:
            try:
                cost = float(entry["cost"])
            except (TypeError, ValueError):
                raise GraphError(
                    f"task {tid!r}: 'cost' must be a number, got "
                    f"{entry['cost']!r}"
                ) from None
            graph.add_task(tid, cost)
    for entry in doc.get("edges", []):
        if not isinstance(entry, dict) or "src" not in entry or "dst" not in entry:
            raise GraphError(f"malformed trace edge entry {entry!r}")
        try:
            comm = float(entry.get("comm", 0.0))
        except (TypeError, ValueError):
            raise GraphError(
                f"edge {entry.get('src')!r}->{entry.get('dst')!r}: 'comm' "
                f"must be a number, got {entry.get('comm')!r}"
            ) from None
        graph.add_edge(entry["src"], entry["dst"], comm)
    return ExternalWorkload(
        graph=graph,
        exec_costs=exec_costs or None,
        fmt="trace",
    )


def read_trace(text: str, name: Optional[str] = None) -> ExternalWorkload:
    """Parse a JSON workflow trace into an :class:`ExternalWorkload`.

    Strict: the document must declare ``"format": "repro-trace"`` and a
    supported version; tasks must uniformly use scalar ``cost`` or
    vector ``costs`` (vectors all of length ``n_procs``); ids must be
    JSON ints or strings. With vectors, the graph's nominal cost is the
    vector minimum — "cost on the fastest processor", matching the
    paper's convention — and the full table lands in ``exec_costs``.

    >>> wl = read_trace(
    ...     '{"format": "repro-trace", "version": 1, "n_procs": 2,'
    ...     ' "tasks": [{"id": "a", "costs": [4.0, 2.0]}], "edges": []}')
    >>> wl.graph.cost("a"), wl.exec_costs["a"], wl.n_procs
    (2.0, (4.0, 2.0), 2)
    """
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise GraphError(f"trace is not valid JSON: {exc}") from None
    workload = trace_from_dict(doc, name=name)
    return dataclasses.replace(workload, content_hash=content_hash(text))


# ----------------------------------------------------------------------
# DAX — Pegasus abstract-workflow XML (scientific workflows)
# ----------------------------------------------------------------------

_DAX_NS = "http://pegasus.isi.edu/schema/DAX"


def _xml_local(tag: str) -> str:
    """Element tag without its ``{namespace}`` prefix."""
    return tag.rsplit("}", 1)[-1]


def _positive_scales(runtime_scale: float, size_scale: float, default_comm: float, what: str) -> None:
    if runtime_scale <= 0:
        raise GraphError(f"{what}: runtime_scale must be > 0, got {runtime_scale}")
    if size_scale <= 0:
        raise GraphError(f"{what}: size_scale must be > 0, got {size_scale}")
    if default_comm < 0:
        raise GraphError(f"{what}: default_comm must be >= 0, got {default_comm}")


def write_dax(obj) -> str:
    """Serialize a graph to Pegasus DAX XML.

    Jobs carry ``runtime`` (the exact execution cost) and one synthetic
    file per outgoing edge whose ``size`` is the exact communication
    cost, so :func:`read_dax`'s runtime→cost and shared-file→comm
    mapping inverts the writer losslessly. A ``reproid`` attribute
    (ignored by Pegasus tools) preserves non-``ID%05d`` task ids and
    their int/str type.

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("w"); g.add_task("a", 2.0); g.add_task("b", 4.0)
    >>> g.add_edge("a", "b", 3.0)
    >>> wl = read_dax(write_dax(g))
    >>> graphs_equal(g, wl.graph), wl.graph.name
    (True, 'w')
    """
    from xml.sax.saxutils import quoteattr

    graph = _as_graph(obj)
    tasks = graph.tasks()
    index = {t: i for i, t in enumerate(tasks)}
    for t in tasks:
        _id_repr(t)  # reject non-int/str ids before emitting anything

    def jid(t: TaskId) -> str:
        return f"ID{index[t]:05d}"

    def fid(u: TaskId, v: TaskId) -> str:
        return f"e{index[u]}_{index[v]}"

    n_children = sum(1 for t in tasks if graph.predecessors(t))
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<adag xmlns="{_DAX_NS}" version="2.1" name={quoteattr(graph.name)} '
        f'jobCount="{len(tasks)}" fileCount="{graph.n_edges}" '
        f'childCount="{n_children}">',
    ]
    for t in tasks:
        lines.append(
            f'  <job id="{jid(t)}" name={quoteattr(str(t))} '
            f'runtime="{_num(graph.cost(t))}" reproid={quoteattr(_id_repr(t))}>'
        )
        for p in graph.predecessors(t):
            lines.append(
                f'    <uses file="{fid(p, t)}" link="input" '
                f'size="{_num(graph.comm_cost(p, t))}"/>'
            )
        for s in graph.successors(t):
            lines.append(
                f'    <uses file="{fid(t, s)}" link="output" '
                f'size="{_num(graph.comm_cost(t, s))}"/>'
            )
        lines.append("  </job>")
    for t in tasks:
        preds = graph.predecessors(t)
        if not preds:
            continue
        lines.append(f'  <child ref="{jid(t)}">')
        for p in preds:
            lines.append(f'    <parent ref="{jid(p)}"/>')
        lines.append("  </child>")
    lines.append("</adag>")
    return "\n".join(lines)


def read_dax(
    text: str,
    name: Optional[str] = None,
    runtime_scale: float = 1.0,
    size_scale: float = 1.0,
    default_comm: float = 0.0,
) -> ExternalWorkload:
    """Parse a Pegasus DAX XML workflow into an :class:`ExternalWorkload`.

    Execution cost is the job's ``runtime`` attribute times
    ``runtime_scale`` (a job without a positive runtime is an error —
    DAX carries no other cost signal). The communication cost of each
    ``<child>``/``<parent>`` edge is the summed ``size`` of every file
    the parent declares as ``link="output"`` and the child as
    ``link="input"`` (times ``size_scale``); edges sharing no file get
    ``default_comm``. Both DAX 2.x (``<uses file=...>``) and 3.x
    (``<uses name=...>``) spellings are accepted, any XML namespace is
    ignored, and a ``reproid`` attribute written by :func:`write_dax`
    restores the original task id and type.

    >>> wl = read_dax(
    ...     '<adag name="d"><job id="A" runtime="2"/>'
    ...     '<job id="B" runtime="3"/>'
    ...     '<child ref="B"><parent ref="A"/></child></adag>',
    ...     default_comm=1.5)
    >>> wl.graph.tasks(), wl.graph.comm_cost("A", "B")
    (['A', 'B'], 1.5)
    """
    import xml.etree.ElementTree as ET

    _positive_scales(runtime_scale, size_scale, default_comm, "DAX")
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise GraphError(f"DAX is not well-formed XML: {exc}") from None
    if _xml_local(root.tag) != "adag":
        raise GraphError(
            f"not a DAX document (root element <{_xml_local(root.tag)}>, "
            f"expected <adag>)"
        )
    order: List[str] = []
    tid_of: Dict[str, TaskId] = {}
    cost: Dict[str, float] = {}
    inputs: Dict[str, Dict[str, float]] = {}
    outputs: Dict[str, Dict[str, float]] = {}
    edges: List[Tuple[str, str]] = []
    for el in root:
        tag = _xml_local(el.tag)
        if tag == "job":
            jid = el.get("id")
            if not jid:
                raise GraphError("DAX job without an id attribute")
            if jid in cost:
                raise GraphError(f"duplicate DAX job id {jid!r}")
            runtime = el.get("runtime")
            if runtime is None:
                raise GraphError(
                    f"DAX job {jid!r} has no runtime attribute; runtimes "
                    f"are the only execution-cost signal a DAX carries"
                )
            try:
                c = float(runtime) * runtime_scale
            except ValueError:
                raise GraphError(
                    f"DAX job {jid!r}: runtime={runtime!r} is not a number"
                ) from None
            if c <= 0:
                raise GraphError(
                    f"DAX job {jid!r} has non-positive runtime {runtime!r}; "
                    f"the model requires positive execution costs"
                )
            reproid = el.get("reproid")
            if reproid is not None:
                try:
                    tid = _parse_id(reproid)
                except ValueError:
                    raise GraphError(
                        f"DAX job {jid!r}: malformed reproid {reproid!r}"
                    ) from None
            else:
                tid = jid
            order.append(jid)
            cost[jid] = c
            tid_of[jid] = tid
            inputs[jid] = {}
            outputs[jid] = {}
            for use in el:
                if _xml_local(use.tag) != "uses":
                    continue
                fname = use.get("file") or use.get("name")
                if fname is None:
                    continue
                try:
                    size = float(use.get("size", 0.0))
                except ValueError:
                    raise GraphError(
                        f"DAX job {jid!r}: size of file {fname!r} is not "
                        f"a number"
                    ) from None
                link = (use.get("link") or "").lower()
                if link == "input":
                    inputs[jid][fname] = size
                elif link == "output":
                    outputs[jid][fname] = size
        elif tag == "child":
            ref = el.get("ref")
            if ref is None:
                raise GraphError("DAX <child> element without a ref attribute")
            for par in el:
                if _xml_local(par.tag) != "parent":
                    continue
                pref = par.get("ref")
                if pref is None:
                    raise GraphError(
                        f"DAX <parent> under child {ref!r} has no ref attribute"
                    )
                edges.append((pref, ref))
    if not order:
        raise GraphError("DAX document has no jobs")
    if name is None:
        name = root.get("name")
        if name is None:
            name = "dax"
    graph = TaskGraph(name=name)
    for jid in order:
        graph.add_task(tid_of[jid], cost[jid])
    seen_edges: set = set()
    for pref, ref in edges:
        if pref not in cost:
            raise GraphError(f"DAX child {ref!r} references unknown parent {pref!r}")
        if ref not in cost:
            raise GraphError(f"DAX <child ref={ref!r}> references an unknown job")
        if (pref, ref) in seen_edges:
            continue  # repeated parent/child declarations are legal DAX
        seen_edges.add((pref, ref))
        shared = [f for f in outputs[pref] if f in inputs[ref]]
        comm = (
            sum(outputs[pref][f] for f in shared) * size_scale
            if shared else default_comm
        )
        graph.add_edge(tid_of[pref], tid_of[ref], comm)
    return ExternalWorkload(graph=graph, fmt="dax", content_hash=content_hash(text))


# ----------------------------------------------------------------------
# WfCommons — JSON workflow instances (wfformat)
# ----------------------------------------------------------------------

WFCOMMONS_SCHEMA_VERSION = "1.5"


#: node name of the synthetic execution machine written on export —
#: graph costs are nominal *reference-machine* costs (paper §2.1), so
#: the execution block reports one reference node running every task
WFCOMMONS_REFERENCE_MACHINE = "repro_reference"


def write_wfcommons(obj, indent: Optional[int] = 2) -> str:
    """Serialize a graph to a WfCommons JSON workflow instance.

    Emits the modern split layout: structure (parents/children and one
    synthetic file per edge) under ``workflow.specification``, exact
    runtimes under ``workflow.execution``. File ``sizeInBytes`` carries
    the exact communication cost, so :func:`read_wfcommons` inverts the
    writer losslessly; ids are written as native JSON values, so int
    and str ids keep their types.

    The execution block carries the machine metadata external WfCommons
    tools expect of an instance: a ``machines`` table (one synthetic
    reference node — nominal costs are reference-machine costs), each
    task's ``machines`` assignment, and the serial
    ``makespanInSeconds`` of running every task on that node.

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("w"); g.add_task(0, 2.0); g.add_task("b", 4.0)
    >>> g.add_edge(0, "b", 3.0)
    >>> wl = read_wfcommons(write_wfcommons(g))
    >>> graphs_equal(g, wl.graph), wl.graph.name
    (True, 'w')
    """
    graph = _as_graph(obj)
    tasks = graph.tasks()
    index = {t: i for i, t in enumerate(tasks)}
    for t in tasks:
        _id_repr(t)

    def fid(u: TaskId, v: TaskId) -> str:
        return f"e{index[u]}_{index[v]}"

    doc: Dict[str, Any] = {
        "name": graph.name,
        "schemaVersion": WFCOMMONS_SCHEMA_VERSION,
        "workflow": {
            "specification": {
                "tasks": [
                    {
                        "id": t,
                        "parents": list(graph.predecessors(t)),
                        "children": list(graph.successors(t)),
                        "inputFiles": [fid(p, t) for p in graph.predecessors(t)],
                        "outputFiles": [fid(t, s) for s in graph.successors(t)],
                    }
                    for t in tasks
                ],
                "files": [
                    {"id": fid(u, v), "sizeInBytes": graph.comm_cost(u, v)}
                    for u, v in graph.edges()
                ],
            },
            "execution": {
                "makespanInSeconds": graph.total_exec_cost(),
                "machines": [
                    {
                        "nodeName": WFCOMMONS_REFERENCE_MACHINE,
                        "cpu": {"coreCount": 1},
                    },
                ],
                "tasks": [
                    {
                        "id": t,
                        "runtimeInSeconds": graph.cost(t),
                        "machines": [WFCOMMONS_REFERENCE_MACHINE],
                    }
                    for t in tasks
                ],
            },
        },
    }
    return json.dumps(doc, indent=indent)


def _wf_file_size(entry: Mapping, what: str) -> float:
    size = entry.get("sizeInBytes", entry.get("size", 0.0))
    try:
        return float(size or 0.0)
    except (TypeError, ValueError):
        raise GraphError(f"{what}: file size {size!r} is not a number") from None


def read_wfcommons(
    text: str,
    name: Optional[str] = None,
    runtime_scale: float = 1.0,
    size_scale: float = 1.0,
    default_comm: float = 0.0,
) -> ExternalWorkload:
    """Parse a WfCommons JSON workflow instance.

    Accepts both wfformat layouts found in the wild: the modern split
    (``workflow.specification.tasks`` + ``workflow.execution.tasks``,
    schema >= 1.4) and the legacy flat list (``workflow.tasks`` with
    inline ``runtime``/``files``). Execution cost is
    ``runtimeInSeconds`` (or ``runtime``) times ``runtime_scale`` and
    must be positive; the communication cost of every parent→child edge
    sums the sizes of the files the parent outputs and the child
    inputs (times ``size_scale``), falling back to ``default_comm``
    when no file is shared.

    >>> wl = read_wfcommons('{"name": "w", "workflow": {"tasks": ['
    ...     '{"name": "a", "runtime": 2.0, "parents": []},'
    ...     '{"name": "b", "runtime": 3.0, "parents": ["a"]}]}}',
    ...     default_comm=0.5)
    >>> wl.graph.tasks(), wl.graph.comm_cost("a", "b")
    (['a', 'b'], 0.5)
    """
    _positive_scales(runtime_scale, size_scale, default_comm, "WfCommons")
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise GraphError(f"WfCommons document is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("workflow"), dict):
        raise GraphError("not a WfCommons document (no 'workflow' object)")
    wf = doc["workflow"]

    def task_key(entry, prefer: Tuple[str, str]) -> TaskId:
        if not isinstance(entry, dict):
            raise GraphError(f"malformed WfCommons task entry {entry!r}")
        tid = entry.get(prefer[0], entry.get(prefer[1]))
        if tid is None:
            raise GraphError(f"WfCommons task entry without id/name: {entry!r}")
        if not _is_interchange_id(tid):
            raise GraphError(f"WfCommons task id must be int or str, got {tid!r}")
        return tid

    def task_cost(tid: TaskId, runtime) -> float:
        if runtime is None:
            raise GraphError(
                f"WfCommons task {tid!r} has no runtime; runtimes are the "
                f"only execution-cost signal a workflow instance carries"
            )
        try:
            c = float(runtime) * runtime_scale
        except (TypeError, ValueError):
            raise GraphError(
                f"WfCommons task {tid!r}: runtime {runtime!r} is not a number"
            ) from None
        if c <= 0:
            raise GraphError(
                f"WfCommons task {tid!r} has non-positive runtime "
                f"{runtime!r}; the model requires positive execution costs"
            )
        return c

    order: List[TaskId] = []
    cost: Dict[TaskId, float] = {}
    parents: Dict[TaskId, List] = {}
    children: Dict[TaskId, List] = {}
    inputs: Dict[TaskId, Dict[str, float]] = {}
    outputs: Dict[TaskId, Dict[str, float]] = {}

    spec = wf.get("specification")
    if isinstance(spec, dict) and isinstance(spec.get("tasks"), list):
        # modern layout: structure under specification, runtimes under
        # execution, file sizes in a shared table
        sizes: Dict[str, float] = {}
        for f in spec.get("files") or []:
            if isinstance(f, dict) and (f.get("id") or f.get("name")) is not None:
                sizes[f.get("id", f.get("name"))] = _wf_file_size(f, "WfCommons")
        runtimes: Dict[TaskId, Any] = {}
        execution = wf.get("execution")
        for e in (execution or {}).get("tasks", []) if isinstance(execution, dict) else []:
            if isinstance(e, dict):
                runtimes[e.get("id", e.get("name"))] = e.get(
                    "runtimeInSeconds", e.get("runtime")
                )
        for entry in spec["tasks"]:
            tid = task_key(entry, ("id", "name"))
            if tid in cost:
                raise GraphError(f"duplicate WfCommons task id {tid!r}")
            runtime = runtimes.get(
                tid, entry.get("runtimeInSeconds", entry.get("runtime"))
            )
            cost[tid] = task_cost(tid, runtime)
            order.append(tid)
            parents[tid] = list(entry.get("parents") or [])
            children[tid] = list(entry.get("children") or [])
            inputs[tid] = {f: sizes.get(f, 0.0) for f in entry.get("inputFiles") or []}
            outputs[tid] = {f: sizes.get(f, 0.0) for f in entry.get("outputFiles") or []}
    elif isinstance(wf.get("tasks"), list):
        # legacy flat layout: runtimes and files inline on each task.
        # Identity is the *name* here — legacy instances list parents/
        # children by name even when tasks also carry a surrogate id
        for entry in wf["tasks"]:
            tid = task_key(entry, ("name", "id"))
            if tid in cost:
                raise GraphError(f"duplicate WfCommons task id {tid!r}")
            runtime = entry.get("runtimeInSeconds", entry.get("runtime"))
            cost[tid] = task_cost(tid, runtime)
            order.append(tid)
            parents[tid] = list(entry.get("parents") or [])
            children[tid] = list(entry.get("children") or [])
            ins: Dict[str, float] = {}
            outs: Dict[str, float] = {}
            for f in entry.get("files") or []:
                if not isinstance(f, dict):
                    continue
                fname = f.get("id", f.get("name"))
                if fname is None:
                    continue
                link = (f.get("link") or "").lower()
                if link == "input":
                    ins[fname] = _wf_file_size(f, f"WfCommons task {tid!r}")
                elif link == "output":
                    outs[fname] = _wf_file_size(f, f"WfCommons task {tid!r}")
            inputs[tid] = ins
            outputs[tid] = outs
    else:
        raise GraphError(
            "WfCommons workflow carries neither 'specification.tasks' "
            "nor a flat 'tasks' list"
        )

    graph_name = name if name is not None else doc.get("name")
    graph = TaskGraph(
        name=graph_name if isinstance(graph_name, str) else "wfcommons"
    )
    for tid in order:
        graph.add_task(tid, cost[tid])
    pairs: List[Tuple[TaskId, TaskId]] = []
    seen: set = set()
    for tid in order:
        for p in parents[tid]:
            if p not in cost:
                raise GraphError(
                    f"WfCommons task {tid!r} references unknown parent {p!r}"
                )
            if (p, tid) not in seen:
                seen.add((p, tid))
                pairs.append((p, tid))
    for tid in order:
        for ch in children[tid]:
            if ch not in cost:
                raise GraphError(
                    f"WfCommons task {tid!r} references unknown child {ch!r}"
                )
            if (tid, ch) not in seen:
                seen.add((tid, ch))
                pairs.append((tid, ch))
    for u, v in pairs:
        shared = [f for f in outputs[u] if f in inputs[v]]
        comm = (
            sum(outputs[u][f] for f in shared) * size_scale
            if shared else default_comm
        )
        graph.add_edge(u, v, comm)
    return ExternalWorkload(
        graph=graph, fmt="wfcommons", content_hash=content_hash(text)
    )


# ----------------------------------------------------------------------
# the cache-native json dialect (graph/io.py), for convert completeness
# ----------------------------------------------------------------------

def _read_json(text: str, name: Optional[str] = None) -> ExternalWorkload:
    graph = graph_from_json(text)
    if name is not None:
        graph.name = name
    return ExternalWorkload(graph=graph, fmt="json", content_hash=content_hash(text))


def _write_json(obj) -> str:
    return graph_to_json(_as_graph(obj))


# ----------------------------------------------------------------------
# registry + sniffing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GraphFormat:
    """One interchange format: how to read, write and recognize it."""

    name: str
    extensions: Tuple[str, ...]
    reader: Callable[..., ExternalWorkload]
    writer: Callable[[Any], str]
    sniffer: Callable[[str], bool]
    description: str


def _sniff_stg(text: str) -> bool:
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        return bool(re.fullmatch(r"\d+", line))
    return False


def _sniff_dot(text: str) -> bool:
    return re.search(r"\bdigraph\b", text) is not None


def _json_doc(text: str) -> Optional[dict]:
    if not text.lstrip().startswith("{"):
        return None
    try:
        doc = json.loads(text)
    except ValueError:
        return None
    return doc if isinstance(doc, dict) else None


def _sniff_trace(text: str) -> bool:
    doc = _json_doc(text)
    return doc is not None and doc.get("format") == TRACE_FORMAT


def _sniff_dax(text: str) -> bool:
    return "<adag" in text


def _sniff_wfcommons(text: str) -> bool:
    doc = _json_doc(text)
    if doc is None:
        return False
    wf = doc.get("workflow")
    return isinstance(wf, dict) and ("tasks" in wf or "specification" in wf)


def _sniff_json(text: str) -> bool:
    doc = _json_doc(text)
    return (
        doc is not None
        and "format" not in doc
        and "tasks" in doc
        and "version" in doc
    )


#: the interchange registry, keyed by format name
FORMATS: Dict[str, GraphFormat] = {
    "stg": GraphFormat(
        "stg", (".stg",), read_stg, write_stg, _sniff_stg,
        "Standard Task Graph (Kasahara) with #@ fidelity directives",
    ),
    "dot": GraphFormat(
        "dot", (".dot", ".gv"), read_dot, write_dot, _sniff_dot,
        "Graphviz digraph with exact cost=/comm= attributes",
    ),
    "trace": GraphFormat(
        "trace", (".trace.json", ".trace"), read_trace, write_trace, _sniff_trace,
        "JSON workflow trace (optional per-processor cost vectors)",
    ),
    "json": GraphFormat(
        "json", (".json",), _read_json, _write_json, _sniff_json,
        "repro.graph.io cache-native JSON dict",
    ),
    "dax": GraphFormat(
        "dax", (".dax",), read_dax, write_dax, _sniff_dax,
        "Pegasus DAX XML workflow (runtime -> cost, shared file sizes -> comm)",
    ),
    "wfcommons": GraphFormat(
        "wfcommons", (".wfcommons.json",), read_wfcommons, write_wfcommons,
        _sniff_wfcommons,
        "WfCommons JSON workflow instance (runtime -> cost, file sizes -> comm)",
    ),
}


def format_names() -> Tuple[str, ...]:
    """Registered format names, in registry order.

    >>> format_names()
    ('stg', 'dot', 'trace', 'json', 'dax', 'wfcommons')
    """
    return tuple(FORMATS)


def _formats_by_extension(filename: str) -> List[Tuple[int, str]]:
    """``(matched suffix length, format name)`` for every format whose
    extension matches ``filename``, longest suffix first — the shared
    tie-break for sniffing and for :func:`save_workload` (so
    ``x.trace.json`` resolves to ``trace`` over ``json`` in both)."""
    lowered = filename.lower()
    scored = []
    for f in FORMATS.values():
        lengths = [len(ext) for ext in f.extensions if lowered.endswith(ext)]
        if lengths:
            scored.append((max(lengths), f.name))
    scored.sort(key=lambda s: -s[0])
    return scored


def sniff_format(text: str, filename: Optional[str] = None) -> str:
    """Identify the format of ``text`` (filename extension helps but the
    content decides — ``.json`` may be a trace or a plain graph dict).

    >>> sniff_format("digraph g { }")
    'dot'
    >>> sniff_format("3\\n", filename="graphs/app.stg")
    'stg'
    """
    candidates = [f.name for f in FORMATS.values() if f.sniffer(text)]
    if len(candidates) == 1:
        return candidates[0]
    if filename:
        scored = _formats_by_extension(filename)
        if candidates:
            scored = [s for s in scored if s[1] in candidates]
        if scored and (len(scored) == 1 or scored[0][0] > scored[1][0]):
            return scored[0][1]
    if candidates:
        raise GraphError(
            f"ambiguous graph format (matches {candidates}); "
            f"pass fmt= explicitly"
        )
    raise GraphError(
        f"cannot determine graph format"
        + (f" of {filename!r}" if filename else "")
        + f"; known formats: {list(FORMATS)}"
    )


#: import policies for graphs that are not weakly connected: "none"
#: rejects them (unless require_connected=False), "epsilon" inserts
#: minimal-cost connector edges via :func:`bridge_components`, and
#: "components" keeps the components exactly as imported — no connector
#: edges — and marks the graph so validation and the schedulers treat
#: them as independent programs co-scheduled on one machine
BRIDGE_POLICIES = ("none", "epsilon", "components")

#: communication cost of an epsilon connector edge (zero is the true
#: minimum — the engines support zero-cost edges explicitly)
BRIDGE_COMM = 0.0


def bridge_components(graph: TaskGraph, comm: float = BRIDGE_COMM) -> TaskGraph:
    """Connect a disconnected DAG with minimal-cost connector edges.

    Published STG corpora sometimes use the zero-cost entry/exit
    dummies as the *only* link between otherwise-independent chains;
    stripping the dummies (required — the model needs positive task
    costs) then breaks the schedulers' connected-DAG assumption. This
    repairs such graphs: the first source task of the first component
    becomes a hub, and one ``hub -> first source of component`` edge of
    communication cost ``comm`` (default 0.0) is added per remaining
    component. The bridge edges serialize each bridged component behind
    the hub task's completion — a distortion the zero communication
    cost keeps as small as the precedence model allows.

    Returns ``graph`` itself (not a copy) when it is already weakly
    connected.

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph("two"); g.add_task("a", 1.0); g.add_task("b", 2.0)
    >>> h = bridge_components(g)
    >>> h.edges(), h.comm_cost("a", "b")
    ([('a', 'b')], 0.0)
    """
    from repro.graph.validation import weak_components

    if comm < 0:
        raise GraphError(f"bridge comm cost must be >= 0, got {comm}")
    components = weak_components(graph)
    if len(components) <= 1:
        return graph

    def first_source(members):
        # bridging runs before the DAG check, so a cyclic component
        # (which has no source) must fail cleanly here, not later
        source = next(
            (t for t in members if not graph.predecessors(t)), None
        )
        if source is None:
            raise GraphError(
                f"cannot bridge {graph.name!r}: a component has no source "
                f"task, so the graph contains a cycle"
            )
        return source

    out = graph.copy()
    hub = first_source(components[0])
    for members in components[1:]:
        out.add_edge(hub, first_source(members), comm)
    return out


def _apply_bridge(workload: ExternalWorkload, bridge: str) -> ExternalWorkload:
    if bridge not in BRIDGE_POLICIES:
        raise GraphError(
            f"unknown bridge policy {bridge!r}; known: {list(BRIDGE_POLICIES)}"
        )
    if bridge == "none":
        return workload
    if bridge == "components":
        # no hub edges: the weak components stay exactly as imported and
        # are scheduled as independent programs sharing the machine — no
        # serialization behind a hub task, at the price of leaving the
        # paper's connected-DAG assumption (the flag exempts the graph
        # from the connectivity check engine-wide)
        from repro.graph.validation import weak_components

        if len(weak_components(workload.graph)) <= 1:
            return workload
        marked = workload.graph.copy()
        marked.components_independent = True
        return dataclasses.replace(workload, graph=marked)
    bridged = bridge_components(workload.graph)
    if bridged is workload.graph:
        return workload
    return dataclasses.replace(workload, graph=bridged)


def loads_workload(
    text: str,
    fmt: Optional[str] = None,
    validate: bool = True,
    require_connected: bool = True,
    bridge: str = "none",
    **reader_kwargs,
) -> ExternalWorkload:
    """Read a workload from in-memory text (see :func:`load_workload`)."""
    if fmt is None:
        fmt = sniff_format(text)
    try:
        handler = FORMATS[fmt]
    except KeyError:
        raise GraphError(
            f"unknown graph format {fmt!r}; known: {list(FORMATS)}"
        ) from None
    if reader_kwargs:
        # options are format-specific (default_comm means nothing to a
        # trace, which carries explicit costs) — pass through only what
        # this reader understands, so callers can set options that
        # apply "wherever relevant" without pre-sniffing the format.
        # A kwarg no registered reader accepts is a typo, not an
        # inapplicable option — reject it instead of silently dropping.
        import inspect

        known = {
            name
            for f in FORMATS.values()
            for name in inspect.signature(f.reader).parameters
        }
        unknown = sorted(set(reader_kwargs) - known)
        if unknown:
            raise GraphError(
                f"unknown reader option(s) {unknown}; no registered "
                f"format accepts them"
            )
        accepted = inspect.signature(handler.reader).parameters
        reader_kwargs = {k: v for k, v in reader_kwargs.items() if k in accepted}
    workload = handler.reader(text, **reader_kwargs)
    workload = _apply_bridge(workload, bridge)
    if validate:
        validate_graph(workload.graph, require_connected=require_connected)
    return workload


def load_workload(
    path: str,
    fmt: Optional[str] = None,
    validate: bool = True,
    require_connected: bool = True,
    bridge: str = "none",
    **reader_kwargs,
) -> ExternalWorkload:
    """Read a task-graph file, sniffing the format unless ``fmt`` given.

    The graph is validated strictly (non-empty, acyclic and — unless
    ``require_connected=False`` — weakly connected, the paper's
    standing assumption) before it is returned. ``bridge="epsilon"``
    repairs a disconnected import first (see
    :func:`bridge_components`); ``bridge="components"`` instead marks
    the weak components as independent co-scheduled programs, adding
    no edges. Reader keyword options
    (``default_comm``, ``strip_dummies``, ``default_cost``,
    ``runtime_scale``, ...) pass through to the format's reader.
    """
    with open(path) as fh:
        text = fh.read()
    if fmt is None:
        fmt = sniff_format(text, filename=path)
    workload = loads_workload(
        text, fmt, validate=validate,
        require_connected=require_connected, bridge=bridge, **reader_kwargs,
    )
    return dataclasses.replace(workload, source=path)


def dumps_workload(obj, fmt: str) -> str:
    """Serialize a graph/workload/system to ``fmt`` text."""
    try:
        handler = FORMATS[fmt]
    except KeyError:
        raise GraphError(
            f"unknown graph format {fmt!r}; known: {list(FORMATS)}"
        ) from None
    return handler.writer(obj)


def save_workload(obj, path: str, fmt: Optional[str] = None) -> str:
    """Write a graph/workload/system to ``path``; format from extension
    unless given. Returns the format name used."""
    if fmt is None:
        scored = _formats_by_extension(path)
        if not scored:
            raise GraphError(
                f"cannot infer a graph format from {path!r}; pass fmt="
            )
        if len(scored) > 1 and scored[0][0] == scored[1][0]:
            raise GraphError(
                f"extension of {path!r} is ambiguous "
                f"({[name for _, name in scored]}); pass fmt="
            )
        fmt = scored[0][1]
    text = dumps_workload(obj, fmt)
    with open(path, "w") as fh:
        fh.write(text)
    return fmt


def convert_file(
    src: str,
    dst: str,
    from_fmt: Optional[str] = None,
    to_fmt: Optional[str] = None,
    validate: bool = True,
    require_connected: bool = True,
    bridge: str = "none",
    **reader_kwargs,
) -> Tuple[str, str, ExternalWorkload]:
    """Convert ``src`` to ``dst`` between any two registered formats.

    Returns ``(input format, output format, workload)``. Conversion to
    a format that cannot carry per-processor cost vectors (everything
    but ``trace``) keeps only the nominal graph.
    """
    workload = load_workload(
        src, fmt=from_fmt, validate=validate,
        require_connected=require_connected, bridge=bridge, **reader_kwargs,
    )
    out_fmt = save_workload(workload, dst, fmt=to_fmt)
    return workload.fmt, out_fmt, workload


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def relabel_tasks(
    graph: TaskGraph,
    rename: Optional[Callable[[TaskId], TaskId]] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """Copy ``graph`` with every task id passed through ``rename``.

    The default rename makes any graph interchange-safe: int/str ids
    pass through, everything else (e.g. the tuple ids of the generated
    regular applications) becomes a compact string.

    >>> from repro.workloads.forkjoin import fork_join
    >>> g = relabel_tasks(fork_join(1, 2))
    >>> g.tasks()
    ['J_0', 'F_1', 'W_1_0', 'W_1_1', 'J_1']
    """
    if rename is None:
        def rename(t: TaskId) -> TaskId:
            if _is_interchange_id(t):
                return t
            if isinstance(t, tuple):
                return "_".join(str(part) for part in t)
            return str(t)
    mapping = {t: rename(t) for t in graph.tasks()}
    if len(set(mapping.values())) != len(mapping):
        raise GraphError("relabel_tasks: rename collapsed distinct task ids")
    out = TaskGraph(name=name or graph.name)
    for t in graph.tasks():
        out.add_task(mapping[t], graph.cost(t))
    for u, v in graph.edges():
        out.add_edge(mapping[u], mapping[v], graph.comm_cost(u, v))
    return out


def graphs_equal(a: TaskGraph, b: TaskGraph, check_name: bool = False) -> bool:
    """Exact structural equality: same task ids in the same insertion
    order with identical costs, and the same edge set with identical
    communication costs. (Edge *order* is not compared — STG groups
    edges by destination, so only the set survives every round trip.)

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph(); g.add_task(0, 1.0)
    >>> graphs_equal(g, g.copy())
    True
    """
    if check_name and a.name != b.name:
        return False
    if a.tasks() != b.tasks():
        return False
    if any(a.cost(t) != b.cost(t) for t in a.tasks()):
        return False
    ea = {(u, v): a.comm_cost(u, v) for u, v in a.edges()}
    eb = {(u, v): b.comm_cost(u, v) for u, v in b.edges()}
    return ea == eb
