"""Task-graph substrate: DAG model, level analysis, CP/IB/OB partition, IO."""

from repro.graph.model import TaskGraph
from repro.graph.analysis import (
    GraphAnalysis,
    b_levels,
    t_levels,
    critical_path,
    cp_length,
    granularity,
)
from repro.graph.partition import TaskClass, classify_tasks
from repro.graph.validation import (
    check_dag,
    check_connected,
    validate_graph,
    weak_components,
)
from repro.graph.io import (
    graph_to_dict,
    graph_from_dict,
    graph_to_json,
    graph_from_json,
    to_networkx,
    from_networkx,
    to_dot,
)
from repro.graph.interchange import (
    ExternalWorkload,
    FORMATS,
    format_names,
    sniff_format,
    load_workload,
    loads_workload,
    save_workload,
    dumps_workload,
    convert_file,
    relabel_tasks,
    graphs_equal,
    bridge_components,
)

__all__ = [
    "TaskGraph",
    "GraphAnalysis",
    "b_levels",
    "t_levels",
    "critical_path",
    "cp_length",
    "granularity",
    "TaskClass",
    "classify_tasks",
    "check_dag",
    "check_connected",
    "validate_graph",
    "weak_components",
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
    "to_networkx",
    "from_networkx",
    "to_dot",
    "ExternalWorkload",
    "FORMATS",
    "format_names",
    "sniff_format",
    "load_workload",
    "loads_workload",
    "save_workload",
    "dumps_workload",
    "convert_file",
    "relabel_tasks",
    "graphs_equal",
    "bridge_components",
]
