"""repro — reproduction of Kwok & Ahmad (ICPP 1999).

*Link Contention-Constrained Scheduling and Mapping of Tasks and Messages
to a Network of Heterogeneous Processors.*

The package implements the paper's BSA (Bubble Scheduling and Allocation)
algorithm and everything it stands on: a task-graph substrate, an
arbitrary-topology heterogeneous network model with links as first-class
contended resources, the DLS baseline it is evaluated against, workload
generators for both experimental suites, and a harness that regenerates
every figure of the evaluation.

Quickstart
----------
>>> from repro import (
...     random_graph, HeterogeneousSystem, hypercube,
...     schedule_bsa, schedule_dls, validate_schedule,
... )
>>> graph = random_graph(60, granularity=1.0, seed=1)
>>> system = HeterogeneousSystem.sample(graph, hypercube(16), seed=1)
>>> bsa = schedule_bsa(system)
>>> dls = schedule_dls(system)
>>> validate_schedule(bsa)
"""

from repro.errors import (
    ReproError,
    GraphError,
    CycleError,
    DisconnectedGraphError,
    TopologyError,
    RoutingError,
    SchedulingError,
    InvalidScheduleError,
    ConfigurationError,
    WorkloadError,
)
from repro.graph import (
    TaskGraph,
    GraphAnalysis,
    b_levels,
    t_levels,
    critical_path,
    cp_length,
    granularity,
    TaskClass,
    classify_tasks,
    validate_graph,
)
from repro.network import (
    Topology,
    ring,
    chain,
    hypercube,
    clique,
    fully_connected,
    star,
    mesh2d,
    binary_tree,
    random_topology,
    paper_topologies,
    HeterogeneousSystem,
    LinkHeterogeneity,
    RoutingTable,
    ecube_path,
)
from repro.schedule import (
    Schedule,
    TaskSlot,
    MessageHop,
    Route,
    settle,
    validate_schedule,
    schedule_violations,
    ScheduleMetrics,
    compute_metrics,
    render_gantt,
    critical_chain,
    chain_breakdown,
    schedule_to_json,
    schedule_from_json,
)
from repro.core import (
    BSAOptions,
    BSAScheduler,
    schedule_bsa,
    select_pivot,
    serialize,
    serial_injection,
    PivotSelection,
)
from repro.baselines import (
    DLSOptions,
    schedule_dls,
    schedule_heft,
    schedule_cpop,
    schedule_etf,
    schedule_serial,
    schedule_round_robin,
)
from repro.workloads import (
    gaussian_elimination,
    lu_decomposition,
    laplace_solver,
    mean_value_analysis,
    fft_butterfly,
    fork_join,
    random_layered_graph,
    apply_granularity,
    regular_graph,
    random_graph,
    external_cell,
    resolve_external,
)
from repro.graph.interchange import (
    ExternalWorkload,
    load_workload,
    loads_workload,
    save_workload,
    dumps_workload,
    convert_file,
    sniff_format,
    format_names,
    relabel_tasks,
    graphs_equal,
)

__version__ = "1.1.0"

__all__ = [
    # errors
    "ReproError", "GraphError", "CycleError", "DisconnectedGraphError",
    "TopologyError", "RoutingError", "SchedulingError",
    "InvalidScheduleError", "ConfigurationError", "WorkloadError",
    # graph
    "TaskGraph", "GraphAnalysis", "b_levels", "t_levels", "critical_path",
    "cp_length", "granularity", "TaskClass", "classify_tasks",
    "validate_graph",
    # network
    "Topology", "ring", "chain", "hypercube", "clique", "fully_connected",
    "star", "mesh2d", "binary_tree", "random_topology", "paper_topologies",
    "HeterogeneousSystem", "LinkHeterogeneity", "RoutingTable", "ecube_path",
    # schedule
    "Schedule", "TaskSlot", "MessageHop", "Route", "settle",
    "validate_schedule", "schedule_violations", "ScheduleMetrics",
    "compute_metrics", "render_gantt", "critical_chain",
    "chain_breakdown", "schedule_to_json", "schedule_from_json",
    # core (BSA)
    "BSAOptions", "BSAScheduler", "schedule_bsa", "select_pivot",
    "serialize", "serial_injection", "PivotSelection",
    # baselines
    "DLSOptions", "schedule_dls", "schedule_heft", "schedule_cpop",
    "schedule_etf", "schedule_serial", "schedule_round_robin",
    # workloads
    "gaussian_elimination", "lu_decomposition", "laplace_solver",
    "mean_value_analysis", "fft_butterfly", "fork_join",
    "random_layered_graph", "apply_granularity",
    "regular_graph", "random_graph",
    "external_cell", "resolve_external",
    # interchange
    "ExternalWorkload", "load_workload", "loads_workload",
    "save_workload", "dumps_workload", "convert_file", "sniff_format",
    "format_names", "relabel_tasks", "graphs_equal",
    "__version__",
]
