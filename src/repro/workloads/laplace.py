"""Laplace equation solver task graph (wavefront over a square grid).

The classic "Laplace" graph in the task-scheduling benchmark literature
(e.g. CASCH) is an ``s x s`` grid computed as a wavefront: point ``(i, j)``
depends on its north ``(i-1, j)`` and west ``(i, j-1)`` neighbors —
a diamond-shaped DAG with a single entry ``(0, 0)`` and single exit
``(s-1, s-1)``.

Task count: ``s^2`` — s = 7 gives 49 tasks, 22 gives 484. All points do
the same stencil work, so execution weights are uniform.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph
from repro.workloads.base import scale_exec_costs


def laplace_size(s: int) -> int:
    """Number of tasks for grid side ``s``."""
    if s < 2:
        raise WorkloadError(f"laplace grid needs s >= 2, got {s}")
    return s * s


def laplace_solver(s: int, mean_exec: float = 150.0) -> TaskGraph:
    """Build the ``s x s`` wavefront Laplace DAG."""
    if s < 2:
        raise WorkloadError(f"laplace grid needs s >= 2, got {s}")
    g = TaskGraph(name=f"laplace(s={s})")
    for i in range(s):
        for j in range(s):
            g.add_task(("L", i, j), 1.0)
    for i in range(s):
        for j in range(s):
            if i + 1 < s:
                g.add_edge(("L", i, j), ("L", i + 1, j), 1.0)
            if j + 1 < s:
                g.add_edge(("L", i, j), ("L", i, j + 1), 1.0)
    return scale_exec_costs(g, mean_exec)
