"""Fork-join task graph — extension workload.

A sequence of parallel sections: a fork task scatters to ``width``
independent workers, a join task gathers them, repeated ``depth`` times.
This is the cleanest stress test for the link substrate — every fork and
join pushes ``width`` messages through the forker's links at once, so
contention (not dependency depth) dominates.

Task count: ``depth * (width + 2) + 1``. Workers carry the weight; the
fork/join coordination tasks are light (relative weights 4:1).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph
from repro.workloads.base import scale_exec_costs

_WORKER_WEIGHT = 4.0
_COORD_WEIGHT = 1.0


def forkjoin_size(depth: int, width: int) -> int:
    """Number of tasks for ``depth`` sections of ``width`` workers."""
    if depth < 1 or width < 1:
        raise WorkloadError(f"fork-join needs depth,width >= 1, got {depth},{width}")
    return depth * (width + 2) + 1


def fork_join(depth: int, width: int, mean_exec: float = 150.0) -> TaskGraph:
    """Build ``depth`` chained fork-join sections of ``width`` workers."""
    if depth < 1 or width < 1:
        raise WorkloadError(f"fork-join needs depth,width >= 1, got {depth},{width}")
    g = TaskGraph(name=f"forkjoin(d={depth},w={width})")
    g.add_task(("J", 0), _COORD_WEIGHT)  # the program entry doubles as join 0
    for d in range(1, depth + 1):
        g.add_task(("F", d), _COORD_WEIGHT)
        g.add_edge(("J", d - 1), ("F", d), 1.0)
        for w in range(width):
            g.add_task(("W", d, w), _WORKER_WEIGHT)
            g.add_edge(("F", d), ("W", d, w), 1.0)
        g.add_task(("J", d), _COORD_WEIGHT)
        for w in range(width):
            g.add_edge(("W", d, w), ("J", d), 1.0)
    return scale_exec_costs(g, mean_exec)
