"""Workload generators for the paper's two task-graph suites."""

from repro.workloads.base import scale_exec_costs, ensure_connected
from repro.workloads.gaussian import gaussian_elimination, gaussian_size
from repro.workloads.lu import lu_decomposition, lu_size
from repro.workloads.laplace import laplace_solver, laplace_size
from repro.workloads.mva import mean_value_analysis, mva_size
from repro.workloads.fft import fft_butterfly, fft_size
from repro.workloads.forkjoin import fork_join, forkjoin_size
from repro.workloads.random_graphs import random_layered_graph
from repro.workloads.granularity import apply_granularity
from repro.workloads.suites import (
    REGULAR_APPS,
    regular_graph,
    random_graph,
    paper_sizes,
    paper_granularities,
)
from repro.workloads.external import (
    EXTERNAL_SUITE,
    app_token,
    external_cell,
    resolve_external,
)

__all__ = [
    "scale_exec_costs",
    "ensure_connected",
    "gaussian_elimination",
    "gaussian_size",
    "lu_decomposition",
    "lu_size",
    "laplace_solver",
    "laplace_size",
    "mean_value_analysis",
    "mva_size",
    "fft_butterfly",
    "fft_size",
    "fork_join",
    "forkjoin_size",
    "random_layered_graph",
    "apply_granularity",
    "REGULAR_APPS",
    "regular_graph",
    "random_graph",
    "paper_sizes",
    "paper_granularities",
    "EXTERNAL_SUITE",
    "app_token",
    "external_cell",
    "resolve_external",
]
