"""LU-decomposition task graph (classic O(N^2)-task structure).

Step ``k`` (k = 1..N-1) factors the pivot ``D(k)``, then computes the
``k``-th column of L — tasks ``C(k, i)`` for i = k+1..N — and the ``k``-th
row of U — tasks ``R(k, j)``. The first column/row tasks of step ``k``
feed the next diagonal; the rest feed their same-index successors:

    D(k) -> C(k, i), R(k, j)
    C(k, k+1), R(k, k+1) -> D(k+1)
    C(k, i) -> C(k+1, i)   (i > k+1)
    R(k, j) -> R(k+1, j)   (j > k+1)

Task count: ``(N-1)(N+1) = N^2 - 1`` — dimension 7 gives 48 tasks, 22
gives 483. Diagonal tasks are heavier (they include the reciprocal /
pivot test); relative weights D:C:R = 3:1:1.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph
from repro.workloads.base import scale_exec_costs

_DIAG_WEIGHT = 3.0
_PANEL_WEIGHT = 1.0


def lu_size(n_dim: int) -> int:
    """Number of tasks for matrix dimension ``n_dim``."""
    if n_dim < 2:
        raise WorkloadError(f"LU decomposition needs N >= 2, got {n_dim}")
    return n_dim * n_dim - 1


def lu_decomposition(n_dim: int, mean_exec: float = 150.0) -> TaskGraph:
    """Build the LU-decomposition DAG for matrix dimension ``n_dim``."""
    if n_dim < 2:
        raise WorkloadError(f"LU decomposition needs N >= 2, got {n_dim}")
    g = TaskGraph(name=f"lu(N={n_dim})")
    for k in range(1, n_dim):
        g.add_task(("D", k), _DIAG_WEIGHT)
        for i in range(k + 1, n_dim + 1):
            g.add_task(("C", k, i), _PANEL_WEIGHT)
            g.add_task(("R", k, i), _PANEL_WEIGHT)
    for k in range(1, n_dim):
        for i in range(k + 1, n_dim + 1):
            g.add_edge(("D", k), ("C", k, i), 1.0)
            g.add_edge(("D", k), ("R", k, i), 1.0)
        if k + 1 < n_dim:
            g.add_edge(("C", k, k + 1), ("D", k + 1), 1.0)
            g.add_edge(("R", k, k + 1), ("D", k + 1), 1.0)
            for i in range(k + 2, n_dim + 1):
                g.add_edge(("C", k, i), ("C", k + 1, i), 1.0)
                g.add_edge(("R", k, i), ("R", k + 1, i), 1.0)
    return scale_exec_costs(g, mean_exec)
