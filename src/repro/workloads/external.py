"""External task-graph files as first-class workload families.

A graph file imported through :mod:`repro.graph.interchange` becomes a
regular citizen of the experiment harness: :func:`external_cell` wraps
it in a :class:`~repro.experiments.config.Cell` with ``suite
="external"``, so it flows through ``run_cell`` / ``run_cells`` (and
the sharded :class:`~repro.experiments.cache.ResultCache`) exactly like
the generated suites.

Cache correctness hinges on the *app token*:
``<path>#<sha256[:12]>[!<overlay>]``. The content hash is baked into
the cell — and therefore into the cache key — so editing the file
changes the key instead of silently serving stale results, and
:func:`resolve_external` refuses to build a system when the file on
disk no longer matches the token. Tokens carry the path because pool
workers rebuild every cell from scratch in their own process: the file
system is the only channel they share with the parent. The optional
``!overlay`` suffix is a :class:`repro.corpus.overlays.Overlay` token
(bridge / CCR / granularity / heterogeneity transforms), applied by
:func:`resolve_external` after loading — because it sits inside the
app token, every overlay parameter is cache-key-visible too.

Examples
--------
>>> import tempfile, os
>>> from repro.graph.interchange import write_stg
>>> from repro.workloads.suites import random_graph
>>> d = tempfile.mkdtemp()
>>> path = os.path.join(d, "g.stg")
>>> with open(path, "w") as fh:
...     _ = fh.write(write_stg(random_graph(20, seed=1)))
>>> cell = external_cell(path, algorithm="heft", topology="ring", n_procs=4)
>>> cell.suite, cell.algorithm, cell.size
('external', 'heft', 20)
>>> resolve_external(cell.app).graph.n_tasks
20
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graph.interchange import ExternalWorkload, load_workload
from repro.corpus.overlays import Overlay, apply_overlay, parse_overlay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard; see external_cell
    from repro.experiments.config import Cell

__all__ = [
    "EXTERNAL_SUITE",
    "app_token",
    "split_token",
    "parse_token",
    "resolve_external",
    "external_cell",
]

#: the Cell.suite value that routes to this provider
EXTERNAL_SUITE = "external"

#: hex digits of the content hash embedded in app tokens / cache keys
_HASH_LEN = 12

#: per-process memo: app token -> loaded workload (files are immutable
#: per token by construction — a content change makes a new token)
_loaded: Dict[str, ExternalWorkload] = {}


def app_token(
    path: str,
    workload: Optional[ExternalWorkload] = None,
    overlay: Optional[Overlay] = None,
) -> str:
    """The cache-key identity of a graph file:
    ``path#sha256[:12][!overlay]``.

    >>> token = 'examples/graphs/x.stg#0123456789ab'
    >>> split_token(token)
    ('examples/graphs/x.stg', '0123456789ab')
    """
    if workload is None:
        workload = load_workload(
            path, bridge=overlay.bridge if overlay is not None else "none"
        )
    token = f"{path}#{workload.content_hash[:_HASH_LEN]}"
    suffix = overlay.token() if overlay is not None else ""
    return f"{token}!{suffix}" if suffix else token


def parse_token(token: str) -> Tuple[str, Optional[str], Overlay]:
    """Split an app token into ``(path, hash-or-None, overlay)``.

    >>> path, digest, ovl = parse_token('x.stg#0123456789ab!bridge,ccr1')
    >>> path, digest, ovl.bridge, ovl.ccr
    ('x.stg', '0123456789ab', 'epsilon', 1.0)
    """
    path, digest, overlay_text = token, None, ""
    if "#" in token:
        path, rest = token.rsplit("#", 1)
        if "!" in rest:
            digest, overlay_text = rest.split("!", 1)
        else:
            digest = rest
        digest = digest or None
    return path, digest, parse_overlay(overlay_text)


def split_token(token: str) -> Tuple[str, Optional[str]]:
    """Split an app token into ``(path, hash-or-None)``."""
    path, digest, _ = parse_token(token)
    return path, digest


def resolve_external(token: str) -> ExternalWorkload:
    """Load (and memoize) the workload an app token points at, with the
    token's overlay (if any) applied.

    Raises :class:`~repro.errors.ConfigurationError` when the file's
    content hash no longer matches the token — the guard that keeps a
    content-addressed cache entry from being recomputed against a
    different graph than the one that named it. (The hash pins the raw
    file text; overlays transform the loaded graph, never the hash.)
    """
    hit = _loaded.get(token)
    if hit is not None:
        return hit
    path, digest, overlay = parse_token(token)
    workload = load_workload(path, bridge=overlay.bridge)
    if digest is not None and workload.content_hash[:_HASH_LEN] != digest:
        raise ConfigurationError(
            f"external workload {path!r} changed on disk: token pins "
            f"content {digest}, file now hashes to "
            f"{workload.content_hash[:_HASH_LEN]} — rebuild the cell "
            f"(external_cell) to schedule the new content"
        )
    workload = apply_overlay(workload, overlay)
    _loaded[token] = workload
    return workload


def external_cell(
    path: str,
    algorithm: str,
    topology: str,
    n_procs: Optional[int] = None,
    het_lo: float = 1.0,
    het_hi: float = 50.0,
    system_seed: int = 0,
    duplex: str = "half",
    bandwidth_skew: float = 1.0,
    workload: Optional[ExternalWorkload] = None,
    overlay: Optional[Overlay] = None,
) -> "Cell":
    """Build the experiment cell that schedules a graph file.

    The file is read once to compute the token and fix the cell's
    informational ``size``. Workloads with per-processor cost vectors
    pin ``n_procs`` to the vector length (an explicit mismatching
    ``n_procs`` is an error, and the sampled-heterogeneity axes are
    ignored at bind time); scalar workloads default to 16 processors
    like the generated suites. External cells always carry
    ``granularity=1.0`` — the file's communication costs are taken
    verbatim unless an ``overlay`` transforms them, and every overlay
    parameter rides inside the app token (so inside the cache key).
    """
    # imported here, not at module level: experiments.runner imports
    # this module, so a top-level config import would be circular
    from repro.experiments.config import Cell

    if workload is None:
        workload = load_workload(
            path, bridge=overlay.bridge if overlay is not None else "none"
        )
    if (
        overlay is not None
        and overlay.het_range is not None
        and workload.n_procs is None
    ):
        raise ConfigurationError(
            f"{path!r} carries scalar costs; the overlay heterogeneity "
            f"re-sample only applies to per-processor cost vectors — "
            f"sweep scalar files through het_lo/het_hi instead"
        )
    if workload.n_procs is not None:
        if n_procs is not None and n_procs != workload.n_procs:
            raise ConfigurationError(
                f"{path!r} carries {workload.n_procs}-processor cost "
                f"vectors; n_procs={n_procs} cannot apply"
            )
        n_procs = workload.n_procs
    elif n_procs is None:
        n_procs = 16
    return Cell(
        suite=EXTERNAL_SUITE,
        app=app_token(path, workload, overlay),
        size=workload.graph.n_tasks,
        granularity=1.0,
        topology=topology,
        algorithm=algorithm,
        het_lo=het_lo,
        het_hi=het_hi,
        n_procs=n_procs,
        graph_seed=0,
        system_seed=system_seed,
        duplex=duplex,
        bandwidth_skew=bandwidth_skew,
    )
