"""Assembly of the paper's two experimental suites.

* Regular suite: Gaussian elimination, LU decomposition, Laplace solver,
  and mean value analysis, with sizes approximating 50..500 in steps of 50
  and granularities {0.1, 1.0, 10.0}. (The paper's text says "three graph
  types" but enumerates these four applications; we implement all four and
  let callers subset.)
* Random suite: layered random DAGs over the same sizes/granularities.

``regular_graph`` solves the structural parameter (matrix dimension / grid
side) whose task count is closest to the requested size — the same thing
the paper does when it "varies N such that the graph size varies from
approximately 50 to 500".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph
from repro.workloads.gaussian import gaussian_elimination, gaussian_size
from repro.workloads.granularity import apply_granularity
from repro.workloads.laplace import laplace_size, laplace_solver
from repro.workloads.lu import lu_decomposition, lu_size
from repro.workloads.mva import mean_value_analysis, mva_size
from repro.workloads.random_graphs import random_layered_graph

#: app name -> (builder(param, mean_exec), size(param)) — the paper's suite
REGULAR_APPS: Dict[str, Tuple[Callable, Callable]] = {
    "gauss": (gaussian_elimination, gaussian_size),
    "lu": (lu_decomposition, lu_size),
    "laplace": (laplace_solver, laplace_size),
    "mva": (mean_value_analysis, mva_size),
}

#: extension workloads beyond the paper's suite, addressable by
#: :func:`regular_graph` but never part of the paper-grid experiments.
#: FFT's structural parameter is the log2 of the point count; fork-join is
#: parameterized by depth at a fixed width of 8 workers.
EXTENSION_APPS: Dict[str, Tuple[Callable, Callable]] = {
    "fft": (
        lambda p, mean_exec=150.0: _fft(2 ** p, mean_exec),
        lambda p: _fft_size(2 ** p),
    ),
    "forkjoin": (
        lambda p, mean_exec=150.0: _forkjoin(p, 8, mean_exec),
        lambda p: _forkjoin_size(p, 8),
    ),
}


def _fft(n, mean_exec):
    from repro.workloads.fft import fft_butterfly

    return fft_butterfly(n, mean_exec)


def _fft_size(n):
    from repro.workloads.fft import fft_size

    return fft_size(n)


def _forkjoin(depth, width, mean_exec):
    from repro.workloads.forkjoin import fork_join

    return fork_join(depth, width, mean_exec)


def _forkjoin_size(depth, width):
    from repro.workloads.forkjoin import forkjoin_size

    return forkjoin_size(depth, width)


def paper_sizes() -> List[int]:
    """Graph sizes used in the paper: 50..500 step 50.

    >>> paper_sizes()[:3]
    [50, 100, 150]
    """
    return list(range(50, 501, 50))


def paper_granularities() -> List[float]:
    """Granularities used in the paper.

    >>> paper_granularities()
    [0.1, 1.0, 10.0]
    """
    return [0.1, 1.0, 10.0]


def _solve_param(size_fn: Callable[[int], int], target: int) -> int:
    """Smallest structural parameter whose task count is closest to target."""
    best_param, best_err = 2, abs(size_fn(2) - target)
    param = 2
    while size_fn(param) < 4 * target + 8:
        err = abs(size_fn(param) - target)
        if err < best_err:
            best_param, best_err = param, err
        param += 1
    return best_param


def regular_graph(
    app: str,
    approx_size: int,
    granularity: float = 1.0,
    seed: int = 0,
    mean_exec: float = 150.0,
) -> TaskGraph:
    """A regular-application graph of approximately ``approx_size`` tasks.

    Accepts the paper's four applications plus the extension workloads
    (``fft``, ``forkjoin``).

    >>> g = regular_graph("gauss", 50, granularity=1.0, seed=0)
    >>> g.name, g.n_tasks
    ('gauss(n=54,g=1)', 54)
    """
    registry = {**REGULAR_APPS, **EXTENSION_APPS}
    try:
        builder, size_fn = registry[app]
    except KeyError:
        raise WorkloadError(
            f"unknown regular app {app!r}; choose from {sorted(registry)}"
        ) from None
    param = _solve_param(size_fn, approx_size)
    graph = builder(param, mean_exec=mean_exec)
    apply_granularity(graph, granularity, seed=seed)
    graph.name = f"{app}(n={graph.n_tasks},g={granularity:g})"
    return graph


def random_graph(
    n_tasks: int,
    granularity: float = 1.0,
    seed: int = 0,
) -> TaskGraph:
    """A random-suite graph: exec U[100, 200], comm set by granularity.

    >>> g = random_graph(60, granularity=0.1, seed=4)
    >>> g.n_tasks, g.name
    (60, 'random(n=60,g=0.1,seed=4)')
    """
    graph = random_layered_graph(n_tasks, seed=seed)
    apply_granularity(graph, granularity, seed=seed)
    graph.name = f"random(n={n_tasks},g={granularity:g},seed={seed})"
    return graph
