"""Shared helpers for workload generators.

The paper's regular applications have *fixed structure and fixed relative
execution costs* (determined by the modeled algorithm); only communication
costs vary, via the granularity parameter. ``scale_exec_costs`` rescales a
graph's relative weights so the mean execution cost hits a target (the
paper uses ≈150), and ``ensure_connected`` patches rare disconnected
random graphs without breaking acyclicity.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph, TaskId
from repro.util.rng import RngStream


def scale_exec_costs(graph: TaskGraph, target_mean: float) -> TaskGraph:
    """Rescale all execution costs in place so their mean equals
    ``target_mean`` (relative magnitudes preserved).

    >>> from repro.graph.model import TaskGraph
    >>> g = TaskGraph(); g.add_task("a", 1.0); g.add_task("b", 3.0)
    >>> _ = scale_exec_costs(g, 150.0)
    >>> g.cost("a"), g.cost("b")
    (75.0, 225.0)
    """
    if target_mean <= 0:
        raise WorkloadError(f"target mean must be positive, got {target_mean}")
    mean = graph.mean_exec_cost()
    if mean <= 0:
        raise WorkloadError("graph has no positive-cost tasks to scale")
    factor = target_mean / mean
    for t in graph.tasks():
        graph.set_task_cost(t, graph.cost(t) * factor)
    return graph


def ensure_connected(
    graph: TaskGraph,
    layer_of: Dict[TaskId, int],
    rng: RngStream,
    comm_cost: float = 1.0,
) -> TaskGraph:
    """Make the graph weakly connected by bridging components.

    ``layer_of`` must topologically stratify tasks (edges only go from a
    lower to a strictly higher layer), so any added bridge keeps the graph
    acyclic.

    >>> from repro.graph.model import TaskGraph
    >>> from repro.util.rng import RngStream
    >>> g = TaskGraph()
    >>> for t in ("a", "b"): g.add_task(t, 1.0)
    >>> g = ensure_connected(g, {"a": 0, "b": 1}, RngStream(0))
    >>> g.n_edges
    1
    """
    comps = _weak_components(graph)
    if len(comps) <= 1:
        return graph
    comps.sort(key=len, reverse=True)
    main = comps[0]
    for comp in comps[1:]:
        main_list = sorted(main, key=lambda t: (layer_of[t], str(t)))
        comp_list = sorted(comp, key=lambda t: (layer_of[t], str(t)))
        # bridge from the main component into this component (or out of it)
        candidates = [
            (u, v)
            for u in main_list
            for v in comp_list[:1]
            if layer_of[u] < layer_of[v]
        ]
        if candidates:
            u, v = rng.choice(candidates)
        else:
            # component starts at layer <= everything in main: bridge outward
            u = comp_list[0]
            targets = [w for w in main_list if layer_of[w] > layer_of[u]]
            if not targets:
                raise WorkloadError("cannot bridge components without a cycle")
            v = rng.choice(targets)
        graph.add_edge(u, v, comm_cost)
        main |= comp
    return graph


def _weak_components(graph: TaskGraph) -> List[set]:
    seen: set = set()
    comps: List[set] = []
    for start in graph.tasks():
        if start in seen:
            continue
        comp = {start}
        stack = [start]
        while stack:
            t = stack.pop()
            for nb in graph.successors(t) + graph.predecessors(t):
                if nb not in comp:
                    comp.add(nb)
                    stack.append(nb)
        seen |= comp
        comps.append(comp)
    return comps
