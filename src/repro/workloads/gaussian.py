"""Gaussian elimination task graph (Cosnard et al. 1988).

For a matrix of dimension ``N``, elimination step ``k`` (k = 1..N-1)
consists of one *pivot* task ``P(k)`` (prepare pivot column) feeding
``N - k`` *update* tasks ``U(k, j)`` (eliminate column ``k`` from row
``j``); the update of row ``k+1`` feeds the next pivot and every other
update feeds its same-row update in step ``k+1``.

Task count: ``(N-1) + N(N-1)/2`` — matrix dimension 10 gives ~54 tasks,
31 gives ~495, matching the paper's 50..500 sweep.

Pivot tasks carry twice the relative weight of update tasks (a pivot
scans/normalizes a column; updates touch one row each); the mean is then
rescaled to ``mean_exec``.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph
from repro.workloads.base import scale_exec_costs

_PIVOT_WEIGHT = 2.0
_UPDATE_WEIGHT = 1.0


def gaussian_size(n_dim: int) -> int:
    """Number of tasks for matrix dimension ``n_dim``."""
    if n_dim < 2:
        raise WorkloadError(f"gaussian elimination needs N >= 2, got {n_dim}")
    return (n_dim - 1) + n_dim * (n_dim - 1) // 2


def gaussian_elimination(n_dim: int, mean_exec: float = 150.0) -> TaskGraph:
    """Build the Gaussian-elimination DAG for matrix dimension ``n_dim``.

    Communication costs are initialized to 1 and are expected to be set by
    :func:`repro.workloads.granularity.apply_granularity`.
    """
    if n_dim < 2:
        raise WorkloadError(f"gaussian elimination needs N >= 2, got {n_dim}")
    g = TaskGraph(name=f"gauss(N={n_dim})")
    for k in range(1, n_dim):
        g.add_task(("P", k), _PIVOT_WEIGHT)
        for j in range(k + 1, n_dim + 1):
            g.add_task(("U", k, j), _UPDATE_WEIGHT)
    for k in range(1, n_dim):
        for j in range(k + 1, n_dim + 1):
            g.add_edge(("P", k), ("U", k, j), 1.0)
        if k + 1 < n_dim:
            # row k+1's update completes the next pivot column
            g.add_edge(("U", k, k + 1), ("P", k + 1), 1.0)
            for j in range(k + 2, n_dim + 1):
                g.add_edge(("U", k, j), ("U", k + 1, j), 1.0)
    return scale_exec_costs(g, mean_exec)
