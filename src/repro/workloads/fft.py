"""Fast Fourier Transform (butterfly) task graph — extension workload.

The radix-2 FFT butterfly is the classic high-communication benchmark in
the scheduling literature (it appears in the CASCH suite the paper's
authors maintained): ``log2(P)`` rank stages over ``P`` points, where the
task for point ``i`` at stage ``s+1`` consumes point ``i`` and its
butterfly partner ``i ^ 2^s`` from stage ``s``, preceded by a recursive
bit-reversal permutation stage modeled as one input task per point.

Task count: ``P * (log2(P) + 1)`` — P=8 gives 32, P=32 gives 192,
P=64 gives 448. Uniform execution weights (each butterfly is one complex
multiply-add pair).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph
from repro.workloads.base import scale_exec_costs


def fft_size(n_points: int) -> int:
    """Number of tasks for a ``n_points``-point FFT (power of two)."""
    if n_points < 2 or (n_points & (n_points - 1)) != 0:
        raise WorkloadError(f"FFT needs a power-of-two size, got {n_points}")
    stages = n_points.bit_length() - 1
    return n_points * (stages + 1)


def fft_butterfly(n_points: int, mean_exec: float = 150.0) -> TaskGraph:
    """Build the radix-2 FFT butterfly DAG over ``n_points`` points."""
    if n_points < 2 or (n_points & (n_points - 1)) != 0:
        raise WorkloadError(f"FFT needs a power-of-two size, got {n_points}")
    stages = n_points.bit_length() - 1
    g = TaskGraph(name=f"fft(P={n_points})")
    for s in range(stages + 1):
        for i in range(n_points):
            g.add_task(("F", s, i), 1.0)
    for s in range(stages):
        stride = 1 << s
        for i in range(n_points):
            g.add_edge(("F", s, i), ("F", s + 1, i), 1.0)
            g.add_edge(("F", s, i ^ stride), ("F", s + 1, i), 1.0)
    return scale_exec_costs(g, mean_exec)
