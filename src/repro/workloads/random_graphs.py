"""Randomly structured task graphs (paper's second suite).

Layered construction: ``n`` tasks are split over roughly ``sqrt(n)``
layers of random width; every non-entry task draws one to three parents,
biased toward the adjacent layer, and extra forward edges are sprinkled to
reach a target average degree. Components, if any, are bridged so the
graph is weakly connected (the paper assumes connectivity).

Execution costs are uniform in [100, 200] per the paper; communication
costs are placeholders until
:func:`repro.workloads.granularity.apply_granularity` sets them.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph, TaskId
from repro.util.rng import RngStream
from repro.workloads.base import ensure_connected


def random_layered_graph(
    n_tasks: int,
    seed: int = 0,
    exec_range=(100.0, 200.0),
    extra_edge_factor: float = 1.0,
    max_parents: int = 3,
) -> TaskGraph:
    """Generate a connected random DAG with ``n_tasks`` tasks.

    ``extra_edge_factor`` scales the number of long-range edges added on
    top of the parent links (≈ ``factor * n`` extras), controlling density.
    """
    if n_tasks < 2:
        raise WorkloadError(f"random graph needs >= 2 tasks, got {n_tasks}")
    rng = RngStream(seed).fork("random-graph", n_tasks)
    lo, hi = exec_range
    if not (0 < lo <= hi):
        raise WorkloadError(f"bad execution range [{lo}, {hi}]")

    g = TaskGraph(name=f"random(n={n_tasks},seed={seed})")

    # layer widths: random split around sqrt(n) layers
    n_layers = max(2, int(round(math.sqrt(n_tasks))))
    widths = [1] * n_layers
    for _ in range(n_tasks - n_layers):
        widths[rng.randint(0, n_layers - 1)] += 1

    layer_of: Dict[TaskId, int] = {}
    layers: List[List[int]] = []
    tid = 0
    for layer, width in enumerate(widths):
        layers.append([])
        for _ in range(width):
            g.add_task(tid, rng.uniform(lo, hi))
            layer_of[tid] = layer
            layers[layer].append(tid)
            tid += 1

    # parent links: 1..max_parents parents, biased toward the previous layer
    for layer in range(1, n_layers):
        for t in layers[layer]:
            n_parents = rng.randint(1, max_parents)
            for _ in range(n_parents):
                src_layer = layer - 1 if rng.random() < 0.7 else rng.randint(0, layer - 1)
                parent = rng.choice(layers[src_layer])
                if not g.has_edge(parent, t):
                    g.add_edge(parent, t, 1.0)

    # extra forward edges for density
    n_extra = int(extra_edge_factor * n_tasks * 0.3)
    for _ in range(n_extra):
        a = rng.randint(0, n_tasks - 1)
        b = rng.randint(0, n_tasks - 1)
        if layer_of[a] < layer_of[b] and not g.has_edge(a, b):
            g.add_edge(a, b, 1.0)

    ensure_connected(g, layer_of, rng)
    return g
