"""Granularity control (paper §3).

The paper defines granularity as *average execution cost / average
communication cost*: granularity 0.1 means messages cost ~10x a task
(fine-grained), 10.0 means ~10% of a task (coarse-grained).

``apply_granularity`` redraws every edge cost from a uniform band around
the target mean, then rescales exactly so the achieved granularity equals
the request (the uniform draw alone would only hit it in expectation).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph
from repro.util.rng import RngStream


def apply_granularity(
    graph: TaskGraph,
    granularity: float,
    seed: int = 0,
    spread: float = 0.5,
) -> TaskGraph:
    """Set communication costs in place for the target ``granularity``.

    ``spread`` controls per-edge variation: costs are drawn uniformly from
    ``[(1-spread), (1+spread)] * mean`` before exact rescaling.
    """
    if granularity <= 0:
        raise WorkloadError(f"granularity must be positive, got {granularity}")
    if not (0 <= spread < 1):
        raise WorkloadError(f"spread must be in [0, 1), got {spread}")
    if graph.n_edges == 0:
        return graph
    rng = RngStream(seed).fork("granularity", graph.name, granularity)
    target_mean = graph.mean_exec_cost() / granularity
    for u, v in graph.edges():
        graph.set_edge_cost(
            u, v, rng.uniform((1 - spread) * target_mean, (1 + spread) * target_mean)
        )
    achieved_mean = graph.mean_comm_cost()
    correction = target_mean / achieved_mean
    for u, v in graph.edges():
        graph.set_edge_cost(u, v, graph.comm_cost(u, v) * correction)
    return graph
