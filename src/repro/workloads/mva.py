"""Mean value analysis (MVA) task graph.

Exact MVA for closed queueing networks iterates over population sizes:
the metrics for population ``i`` at queue ``j`` need the results for
population ``i-1`` at queues ``j`` and ``j-1`` — a lower-triangular
recurrence. The benchmark graph is therefore a triangular grid: task
``(i, j)`` for ``1 <= j <= i <= s`` with

    (i-1, j)   -> (i, j)     (same queue, previous population)
    (i-1, j-1) -> (i, j)     (previous queue, previous population)

Task count: ``s(s+1)/2`` — s = 10 gives 55 tasks, 31 gives 496. Uniform
execution weights.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.graph.model import TaskGraph
from repro.workloads.base import scale_exec_costs


def mva_size(s: int) -> int:
    """Number of tasks for triangle side ``s``."""
    if s < 2:
        raise WorkloadError(f"mva triangle needs s >= 2, got {s}")
    return s * (s + 1) // 2


def mean_value_analysis(s: int, mean_exec: float = 150.0) -> TaskGraph:
    """Build the triangular MVA DAG with side ``s``."""
    if s < 2:
        raise WorkloadError(f"mva triangle needs s >= 2, got {s}")
    g = TaskGraph(name=f"mva(s={s})")
    for i in range(1, s + 1):
        for j in range(1, i + 1):
            g.add_task(("M", i, j), 1.0)
    for i in range(2, s + 1):
        for j in range(1, i + 1):
            if j <= i - 1:
                g.add_edge(("M", i - 1, j), ("M", i, j), 1.0)
            if j - 1 >= 1:
                g.add_edge(("M", i - 1, j - 1), ("M", i, j), 1.0)
    return scale_exec_costs(g, mean_exec)
