"""Prefix-preserving schedule repair.

The committed-prefix contract: at event time ``T`` every slot and hop
with ``start < T`` has already begun executing and is immutable — its
``(proc, start, finish)`` never changes, byte for byte.  Only the
*tail* (``start >= T``) may move, and nothing in the tail may start
before ``T``.

The engine has three layers:

* :func:`tail_settle` — a frontier-aware variant of the full Kahn pass
  in :mod:`repro.schedule.settle`: frozen nodes contribute their
  current ``finish`` as constants and are never recomputed, every tail
  node is floored at the frontier, and each time write-back is
  recorded in the open :class:`~repro.schedule.schedule.ScheduleTxn`
  so a rejected repair rolls back bit-for-bit.  It deliberately does
  **not** resort occupant orders (resorts are not undo-logged); the
  caller resorts only after committing;
* placement primitives (:func:`place_dynamic`, :func:`alive_path`) —
  deterministic min-finish-time re-placement of one task over the
  alive processors, rebuilding its message routes while preserving
  every frozen hop prefix verbatim;
* :func:`cone_repair` / (in :mod:`repro.dynamic.replan`)
  ``replan_tail`` — the event-level drivers.  Both run inside one
  transaction and validate before committing; any failure (no alive
  route, contradictory orders, validator violations) rolls the
  schedule back to the exact pre-event state.

Failure semantics are drain-style (see :mod:`repro.dynamic.events`):
a dead processor/link stops accepting *new* work, so frozen slots and
hops on dead resources stay in place, and evacuating data *off* a dead
processor is allowed — :func:`alive_path` accepts a dead source but
never a dead intermediate or destination.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CycleError, RoutingError, SchedulingError
from repro.network.topology import Proc, Topology, link_id
from repro.schedule.linkplan import LinkPlanner, slot_start
from repro.schedule.schedule import Schedule
from repro.schedule.settle import _extract_cycle
from repro.schedule.validator import schedule_violations

__all__ = [
    "RepairResult",
    "alive_path",
    "tail_settle",
    "place_dynamic",
    "cone_repair",
]


@dataclass
class RepairResult:
    """Outcome of one repair (or replan) attempt."""

    ok: bool
    strategy: str  # "repair" | "replan"
    moved: List = field(default_factory=list)
    rerouted: List = field(default_factory=list)
    error: Optional[str] = None


# ---------------------------------------------------------------------------
# routing over the alive sub-topology


def alive_path(
    topology: Topology, src: Proc, dst: Proc, dead_procs=(), dead_links=()
) -> Optional[List[Proc]]:
    """Shortest alive path from ``src`` to ``dst``, or ``None``.

    Deterministic (BFS over the sorted ``neighbors`` lists).  ``src``
    may be dead — data already resident on a failed processor is
    allowed to drain off it — but every other node on the path,
    including ``dst``, must be alive, and no hop may use a dead link.
    """
    if dst in dead_procs:
        return None
    if src == dst:
        return [src]
    prev: Dict[Proc, Optional[Proc]] = {src: None}
    queue = deque([src])
    while queue:
        p = queue.popleft()
        for q in topology.neighbors(p):
            if q in prev or q in dead_procs:
                continue
            if link_id(p, q) in dead_links:
                continue
            prev[q] = p
            if q == dst:
                path = [q]
                while p is not None:
                    path.append(p)
                    p = prev[p]
                path.reverse()
                return path
            queue.append(q)
    return None


# ---------------------------------------------------------------------------
# frontier-aware settle


def tail_settle(schedule: Schedule, frontier: float) -> Schedule:
    """Settle every tail node (``start >= frontier``) in place.

    Frozen nodes are constants: they are never enqueued and their
    ``finish`` values enter the longest-path computation as initial
    floors.  Every tail node is additionally floored at ``frontier`` —
    a decision made at the event time cannot take effect earlier.
    Edges *into* frozen nodes are dropped: a settled prefix has no tail
    predecessor of a frozen node (positive durations force every
    constraint predecessor of a ``start < T`` node to start earlier
    still), so the drop can only be exercised within float tolerance,
    where the frozen times are already valid.

    Raises :class:`~repro.errors.CycleError` — *before* any write-back
    — when the tail orders are contradictory.  Write-backs that change
    a time are recorded in the open transaction's undo log, so callers
    can roll back an entire failed repair exactly.  Occupant orders are
    **not** resorted here: resorts are not undo-logged, so the caller
    must resort only after committing the transaction.
    """
    system = schedule.system
    graph = system.graph
    exec_cost = system.exec_cost
    comm_cost = system.comm_cost
    slots = schedule.slots
    routes = schedule.routes

    objs: List[object] = []
    duration: List[float] = []
    task_ids: Dict[object, int] = {}
    hop_ids: Dict[int, int] = {}
    i = 0
    for task, slot in slots.items():
        if slot.start < frontier:
            continue
        task_ids[task] = i
        objs.append(slot)
        c = slot.cost
        duration.append(c if c is not None else exec_cost(task, slot.proc))
        i += 1
    for route in routes.values():
        for hop in route.hops:
            if hop.start < frontier:
                continue
            hop_ids[id(hop)] = i
            objs.append(hop)
            c = hop.cost
            duration.append(c if c is not None else comm_cost(hop.edge, hop.link))
            i += 1

    n = i
    succ: List[List[int]] = [[] for _ in range(n)]
    indeg: List[int] = [0] * n
    start = [frontier] * n

    def dep(a: int, b: int) -> None:
        succ[a].append(b)
        indeg[b] += 1

    # processor order chains (frozen predecessors become floors)
    for order in schedule.proc_order.values():
        for a, b in zip(order, order[1:]):
            ib = task_ids.get(b)
            if ib is None:
                continue
            ia = task_ids.get(a)
            if ia is not None:
                dep(ia, ib)
            else:
                f = slots[a].finish
                if f > start[ib]:
                    start[ib] = f

    # link order chains
    for hops in schedule.link_order.values():
        for a, b in zip(hops, hops[1:]):
            ib = hop_ids.get(id(b))
            if ib is None:
                continue
            ia = hop_ids.get(id(a))
            if ia is not None:
                dep(ia, ib)
            else:
                f = a.finish
                if f > start[ib]:
                    start[ib] = f

    # message chains & task precedence
    slots_get = slots.get
    routes_get = routes.get
    for u, vs in graph._succ.items():
        u_slot = slots_get(u)
        if u_slot is None:
            continue
        for v in vs:
            v_slot = slots_get(v)
            if v_slot is None:
                continue
            prev_node = task_ids.get(u)
            prev_finish = u_slot.finish
            route = routes_get((u, v))
            if route is not None:
                for hop in route.hops:
                    hb = hop_ids.get(id(hop))
                    if hb is None:
                        prev_node = None
                        prev_finish = hop.finish
                        continue
                    if prev_node is not None:
                        dep(prev_node, hb)
                    elif prev_finish > start[hb]:
                        start[hb] = prev_finish
                    prev_node = hb
            iv = task_ids.get(v)
            if iv is None:
                continue  # edge into the committed prefix: dropped
            if prev_node is not None:
                dep(prev_node, iv)
            elif prev_finish > start[iv]:
                start[iv] = prev_finish

    ready = [k for k in range(n) if indeg[k] == 0]
    head = 0
    while head < len(ready):
        k = ready[head]
        head += 1
        finish = start[k] + duration[k]
        for j in succ[k]:
            if finish > start[j]:
                start[j] = finish
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    if head != n:
        blocked = [k for k in range(n) if indeg[k] > 0]
        cycle = _extract_cycle(succ, blocked, objs, schedule)
        raise CycleError(
            f"contradictory tail orders ({len(blocked)} nodes blocked); "
            f"cycle: {cycle}",
            blocked,
        )

    txn = schedule._txn
    times_append = txn.times.append if txn is not None else None
    for k in range(n):
        obj = objs[k]
        s = start[k]
        f = s + duration[k]
        if obj.start != s or obj.finish != f:
            if times_append is not None:
                times_append((obj, obj.start, obj.finish))
            obj.start = s
            obj.finish = f
    return schedule


# ---------------------------------------------------------------------------
# placement primitives


def _route_prefix(sched: Schedule, edge, frontier: float):
    """The frozen hop prefix of ``edge``'s route, or ``None``.

    Returns ``(procs, hop_starts, last_finish)`` where ``procs`` is the
    processor path covered by the frozen hops.  These hops have already
    transmitted (or are in flight) and must be recreated verbatim in
    any rebuilt route.
    """
    route = sched.routes.get(edge)
    if route is None or not route.hops:
        return None
    pre = [h for h in route.hops if h.start < frontier]
    if not pre:
        return None
    return (
        [pre[0].src] + [h.dst for h in pre],
        [h.start for h in pre],
        pre[-1].finish,
    )


def _pred_info(sched: Schedule, task, frontier: float):
    """``(pred, edge, frozen-prefix)`` for every scheduled predecessor."""
    graph = sched.system.graph
    info = []
    for u, e in graph.pred_edges(task):
        if u in sched.slots:
            info.append((u, e, _route_prefix(sched, e, frontier)))
    return info


def _choose_placement(sched, task, info, frontier, dead_procs, dead_links):
    """Min-finish-time alive processor for ``task`` (ties to lowest id).

    Pure estimate: per candidate, a fresh insertion-mode
    :class:`LinkPlanner` accumulates tentative reservations across the
    predecessors' continuation paths, mirroring what the commit will
    do, and the earliest feasible slot after the data-ready time wins.
    """
    system = sched.system
    topo = system.topology
    slots = sched.slots
    best = None
    for p in topo.processors:
        if p in dead_procs:
            continue
        cost = system.exec_cost(task, p)
        planner = LinkPlanner(sched, insertion=True)
        drt = frontier
        ok = True
        for u, e, prespec in info:
            if prespec is not None:
                procs, _, last_finish = prespec
                if procs[0] == p:
                    # the message already departed P{p} on frozen hops,
                    # which byte-identity forbids deleting; a consumer
                    # here would pair a non-local route with co-located
                    # tasks, which the validator rejects
                    ok = False
                    break
                r = procs[-1]
                ready = last_finish if last_finish > frontier else frontier
                if r == p:
                    arr = ready
                else:
                    path = alive_path(topo, r, p, dead_procs, dead_links)
                    if path is None:
                        ok = False
                        break
                    _, arr = planner.walk_path(e, path, ready)
            else:
                u_slot = slots[u]
                if u_slot.proc == p:
                    arr = u_slot.finish
                else:
                    path = alive_path(topo, u_slot.proc, p, dead_procs, dead_links)
                    if path is None:
                        ok = False
                        break
                    ready = u_slot.finish if u_slot.finish > frontier else frontier
                    _, arr = planner.walk_path(e, path, ready)
            if arr > drt:
                drt = arr
        if not ok:
            continue
        st = slot_start(sched, p, drt, cost, True)
        ft = st + cost
        if best is None or (ft, p) < (best[0], best[1]):
            best = (ft, p, st)
    if best is None:
        raise SchedulingError(
            f"no alive placement for task {task!r} "
            f"({len(dead_procs)} dead procs, {len(dead_links)} dead links)"
        )
    return best[1], best[2]


def _rebuild_in_route(sched, planner, edge, u, dest, prespec, frontier,
                      dead_procs, dead_links):
    """Re-route ``edge`` to ``dest``, preserving the frozen hop prefix."""
    topo = sched.system.topology
    if prespec is not None:
        procs, hop_starts, last_finish = prespec
        r = procs[-1]
        if r == dest:
            sched.set_route(edge, procs, hop_starts=hop_starts)
            return
        cont = alive_path(topo, r, dest, dead_procs, dead_links)
        if cont is None:
            raise SchedulingError(
                f"no alive continuation for message {edge} from P{r} to P{dest}"
            )
        ready = last_finish if last_finish > frontier else frontier
        cstarts, _ = planner.walk_path(edge, cont, ready)
        sched.set_route(edge, procs + cont[1:], hop_starts=hop_starts + cstarts)
        return
    u_slot = sched.slots[u]
    if u_slot.proc == dest:
        sched.mark_local(edge)
        return
    path = alive_path(topo, u_slot.proc, dest, dead_procs, dead_links)
    if path is None:
        raise SchedulingError(
            f"no alive route for message {edge} from P{u_slot.proc} to P{dest}"
        )
    ready = u_slot.finish if u_slot.finish > frontier else frontier
    starts, _ = planner.walk_path(edge, path, ready)
    sched.set_route(edge, path, hop_starts=starts)


def place_dynamic(sched, task, frontier, dead_procs, dead_links, pending):
    """(Re-)place one task on the alive system, rebuilding its routes.

    ``pending`` is the set of tasks still awaiting re-placement in this
    repair: out-routes to pending consumers are skipped (the consumer's
    own placement rebuilds them).  Planned starts only choose occupant
    order positions; :func:`tail_settle` computes the final times.
    """
    system = sched.system
    graph = system.graph
    topo = system.topology
    info = _pred_info(sched, task, frontier)
    if sched.is_scheduled(task):
        sched.remove_task(task)
    dest, st = _choose_placement(sched, task, info, frontier, dead_procs, dead_links)
    planner = LinkPlanner(sched, insertion=True)
    for u, e, prespec in info:
        _rebuild_in_route(sched, planner, e, u, dest, prespec, frontier,
                          dead_procs, dead_links)
    slot = sched.place_task(task, dest, start=st)
    ready_out = slot.finish if slot.finish > frontier else frontier
    for v in graph._succ[task]:
        if v in pending or v not in sched.slots:
            continue
        e = (task, v)
        vp = sched.proc_of(v)
        if vp == dest:
            sched.mark_local(e)
            continue
        path = alive_path(topo, dest, vp, dead_procs, dead_links)
        if path is None:
            raise SchedulingError(
                f"no alive route for message {e} from P{dest} to P{vp}"
            )
        starts, _ = planner.walk_path(e, path, ready_out)
        sched.set_route(e, path, hop_starts=starts)
    return dest


# ---------------------------------------------------------------------------
# reroutes


def needs_reroute(route, frontier, dead_procs, dead_links):
    """Index of the first tail hop using a dead resource, or ``None``.

    A tail hop *departing* a dead processor is legal (drain/evacuation);
    a tail hop *entering* one, or crossing a dead link, is not.
    """
    for k, h in enumerate(route.hops):
        if h.start < frontier:
            continue
        if link_id(h.src, h.dst) in dead_links or h.dst in dead_procs:
            return k
    return None


def _reroute_edge(sched, edge, k, frontier, dead_procs, dead_links):
    """Re-route ``edge`` around dead resources, keeping ``hops[:k]``."""
    topo = sched.system.topology
    u, v = edge
    hops = sched.routes[edge].hops
    keep = hops[:k]
    r = keep[-1].dst if keep else sched.proc_of(u)
    dst = sched.proc_of(v)
    keep_procs = [keep[0].src] + [h.dst for h in keep] if keep else [r]
    keep_starts = [h.start for h in keep]
    if r == dst:
        sched.set_route(edge, keep_procs, hop_starts=keep_starts)
        return
    cont = alive_path(topo, r, dst, dead_procs, dead_links)
    if cont is None:
        raise SchedulingError(
            f"no alive reroute for message {edge} from P{r} to P{dst}"
        )
    ready = keep[-1].finish if keep else sched.slots[u].finish
    if ready < frontier:
        ready = frontier
    planner = LinkPlanner(sched, insertion=True)
    starts, _ = planner.walk_path(edge, cont, ready)
    sched.set_route(edge, keep_procs + cont[1:], hop_starts=keep_starts + starts)


# ---------------------------------------------------------------------------
# the cone-repair driver


def cone_repair(sched, frontier, moves, reroutes, dead_procs, dead_links,
                strategy: str = "repair") -> RepairResult:
    """Repair only the affected cone: reroute stale messages, re-place
    the listed tasks (in the given order), settle the tail, validate.

    Runs inside one transaction.  Any failure — no alive path,
    contradictory tail orders, or validator violations — rolls the
    schedule back to the exact pre-call state (times, structure, and
    dict insertion order) and returns ``ok=False``.
    """
    txn = sched.begin_txn()
    try:
        for edge, k in reroutes:
            _reroute_edge(sched, edge, k, frontier, dead_procs, dead_links)
        pending = set(moves)
        for t in moves:
            place_dynamic(sched, t, frontier, dead_procs, dead_links, pending)
            pending.discard(t)
        tail_settle(sched, frontier)
    except (SchedulingError, RoutingError, CycleError) as exc:
        txn.rollback()
        return RepairResult(False, strategy,
                            error=f"{type(exc).__name__}: {exc}")
    return _finalize(sched, txn, strategy, list(moves),
                     [edge for edge, _ in reroutes])


def _finalize(sched, txn, strategy, moved, rerouted) -> RepairResult:
    violations = schedule_violations(sched)
    if violations:
        txn.rollback()
        return RepairResult(
            False, strategy,
            error=f"{len(violations)} violations, first: {violations[0]}",
        )
    sched.commit_txn()
    sched.resort_orders()
    return RepairResult(True, strategy, moved, rerouted, None)
