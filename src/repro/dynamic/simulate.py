"""Event-driven rescheduling over a virtual clock.

:func:`simulate` advances a committed-prefix frontier over a static
schedule: at each event time ``T`` everything that started before ``T``
is committed (byte-immutable), the event mutates the world (new task,
dead processor, dead link), and the tail is repaired —
:func:`~repro.dynamic.repair.cone_repair` first, full
:func:`~repro.dynamic.replan.replan_tail` as fallback.  When
``compare_replan`` is on, the replan oracle also runs on a throwaway
copy so every event reports repair-vs-replan quality (makespan ratio,
tasks moved, wall-clock).

Two invariants are enforced after every event (violations raise):

* the final schedule is validator-clean (checked inside the repair
  transaction before it commits);
* the committed prefix is *byte-identical* — every frozen slot and hop
  has exactly the ``(proc, start, finish)`` it had before the event.

The event log (:meth:`SimulationResult.event_log`) contains only
deterministic fields — wall-clock timings live in
:attr:`SimulationResult.timings` — so two runs of the same scenario
produce bit-identical logs regardless of machine, hotpath mode, or
``--jobs`` fan-out.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, SchedulingError
from repro.dynamic.events import (
    Event,
    FailureInjector,
    LinkFailure,
    ProcFailure,
    Scenario,
    TaskArrival,
    parse_scenario,
    sort_events,
)
from repro.dynamic.repair import cone_repair, needs_reroute
from repro.dynamic.replan import replan_tail
from repro.network.topology import link_id
from repro.schedule.schedule import Schedule

__all__ = [
    "EventRecord",
    "SimulationResult",
    "prefix_fingerprint",
    "affected_work",
    "simulate",
    "simulate_scenario",
    "EVENT_LOG_FORMAT",
    "EVENT_LOG_VERSION",
]

EVENT_LOG_FORMAT = "repro-event-log"
EVENT_LOG_VERSION = 1


def prefix_fingerprint(sched: Schedule, frontier: float):
    """Value fingerprint of the committed prefix (``start < frontier``).

    Sorted by ``repr`` so mixed int/str task ids compare, and so the
    fingerprint is independent of dict insertion positions — repairs
    may legitimately re-create a frozen hop at a different position in
    its link's order list, but never with different values.
    """
    slots = sorted(
        (repr(t), s.proc, s.start, s.finish)
        for t, s in sched.slots.items()
        if s.start < frontier
    )
    hops = sorted(
        (repr(e), h.src, h.dst, h.start, h.finish)
        for e, r in sched.routes.items()
        for h in r.hops
        if h.start < frontier
    )
    return (tuple(slots), tuple(hops))


def _apply_arrival(system, ev: TaskArrival) -> None:
    """Mutate graph + system for a task arrival (schedule untouched)."""
    graph = system.graph
    if graph.has_task(ev.task):
        raise ConfigurationError(
            f"arrival at t={ev.time:g}: task {ev.task!r} already exists"
        )
    graph.add_task(ev.task, ev.cost)
    for u, comm in ev.deps:
        graph.add_edge(u, ev.task, comm)
    row = ev.exec_row if ev.exec_row is not None else (ev.cost,) * system.n_procs
    system.add_task_costs(ev.task, row)


def affected_work(sched: Schedule, ev: Event, frontier: float,
                  dead_procs, dead_links):
    """The cone an event displaces: ``(moves, reroutes)``.

    ``moves`` are tasks to re-place, ordered ``(old start, graph
    index)`` so producers precede consumers; ``reroutes`` are
    ``(edge, first-bad-hop-index)`` pairs for routes of *unmoved*
    tasks whose tail hops touch a dead resource.  A moved task's own
    routes are rebuilt by its placement, so its edges are excluded.
    """
    graph = sched.system.graph
    if isinstance(ev, TaskArrival):
        return [ev.task], []
    moves: List = []
    if isinstance(ev, ProcFailure):
        moves = [
            t for t in sched.proc_order[ev.proc]
            if sched.slots[t].start >= frontier
        ]
        moves.sort(key=lambda t: (sched.slots[t].start, graph.task_index(t)))
    moving = set(moves)
    reroutes: List[Tuple] = []
    for e in graph.edges():
        u, v = e
        if u in moving or v in moving:
            continue
        route = sched.routes.get(e)
        if route is None or not route.hops:
            continue
        k = needs_reroute(route, frontier, dead_procs, dead_links)
        if k is not None:
            reroutes.append((e, k))
    return moves, reroutes


@dataclass(frozen=True)
class EventRecord:
    """Deterministic per-event outcome (no wall-clock fields)."""

    index: int
    etype: str
    time: float
    strategy: str  # "repair" | "replan" (fallback)
    fallback_error: Optional[str]
    tasks_moved: int
    edges_rerouted: int
    sl_after: float
    prefix_slots: int
    prefix_hops: int
    prefix_intact: bool
    sl_replan: Optional[float] = None
    replan_moved: Optional[int] = None

    def to_dict(self) -> Dict:
        d = {
            "index": self.index,
            "type": self.etype,
            "time": self.time,
            "strategy": self.strategy,
            "tasks_moved": self.tasks_moved,
            "edges_rerouted": self.edges_rerouted,
            "sl_after": self.sl_after,
            "prefix_slots": self.prefix_slots,
            "prefix_hops": self.prefix_hops,
            "prefix_intact": self.prefix_intact,
        }
        if self.fallback_error is not None:
            d["fallback_error"] = self.fallback_error
        if self.sl_replan is not None:
            d["sl_replan"] = self.sl_replan
            d["sl_ratio"] = self.sl_after / self.sl_replan
            d["replan_moved"] = self.replan_moved
        return d


@dataclass
class SimulationResult:
    schedule: Schedule
    records: List[EventRecord] = field(default_factory=list)
    #: per-event wall-clock: {"repair_s": float, "replan_s": float|None}
    timings: List[Dict] = field(default_factory=list)

    def event_log(self) -> Dict:
        """Deterministic log document (safe to ``cmp`` across runs)."""
        return {
            "format": EVENT_LOG_FORMAT,
            "version": EVENT_LOG_VERSION,
            "n_events": len(self.records),
            "final_sl": self.schedule.schedule_length(),
            "events": [r.to_dict() for r in self.records],
        }

    def log_json(self, indent: int = 2) -> str:
        return json.dumps(self.event_log(), indent=indent) + "\n"

    @property
    def repair_wall_s(self) -> float:
        return sum(t["repair_s"] for t in self.timings)

    @property
    def replan_wall_s(self) -> Optional[float]:
        vals = [t["replan_s"] for t in self.timings if t["replan_s"] is not None]
        return sum(vals) if vals else None


def simulate(schedule: Schedule, events: Sequence[Event],
             compare_replan: bool = True) -> SimulationResult:
    """Run ``events`` (sorted by time) against ``schedule`` in place.

    Returns the final schedule plus per-event records.  Raises
    :class:`~repro.errors.SchedulingError` if an event can neither be
    repaired nor replanned, or if a repair ever touches the committed
    prefix (which would be an engine bug — the invariant suite runs
    this check after every event).
    """
    sched = schedule
    system = sched.system
    dead_procs: set = set()
    dead_links: set = set()
    result = SimulationResult(schedule=sched)

    for index, ev in enumerate(sort_events(events)):
        frontier = ev.time
        if frontier < 0:
            raise ConfigurationError(f"event {index} has negative time {frontier}")
        if isinstance(ev, TaskArrival):
            _apply_arrival(system, ev)
        elif isinstance(ev, ProcFailure):
            if ev.proc not in system.topology.processors:
                raise ConfigurationError(f"unknown processor {ev.proc}")
            if ev.proc in dead_procs:
                raise ConfigurationError(f"processor {ev.proc} failed twice")
            dead_procs.add(ev.proc)
        elif isinstance(ev, LinkFailure):
            lid = link_id(*ev.link)
            if not system.topology.has_link(*lid):
                raise ConfigurationError(f"unknown link {lid}")
            if lid in dead_links:
                raise ConfigurationError(f"link {lid} failed twice")
            dead_links.add(lid)
        else:
            raise ConfigurationError(f"unknown event {ev!r}")

        before = prefix_fingerprint(sched, frontier)
        moves, reroutes = affected_work(sched, ev, frontier, dead_procs, dead_links)
        oracle = sched.copy() if compare_replan else None

        t0 = perf_counter()
        res = cone_repair(sched, frontier, moves, reroutes, dead_procs, dead_links)
        fallback_error = None
        if not res.ok:
            fallback_error = res.error
            res = replan_tail(sched, frontier, dead_procs, dead_links)
            if not res.ok:
                raise SchedulingError(
                    f"event {index} ({ev.kind} at t={frontier:g}) is "
                    f"unrepairable: {res.error}"
                )
        repair_s = perf_counter() - t0

        sl_replan = None
        replan_moved = None
        replan_s = None
        if oracle is not None:
            t0 = perf_counter()
            ores = replan_tail(oracle, frontier, dead_procs, dead_links)
            replan_s = perf_counter() - t0
            if ores.ok:
                sl_replan = oracle.schedule_length()
                replan_moved = len(ores.moved)

        after = prefix_fingerprint(sched, frontier)
        intact = after == before
        if not intact:
            raise SchedulingError(
                f"event {index} ({ev.kind} at t={frontier:g}): repair "
                f"mutated the committed prefix"
            )
        result.records.append(EventRecord(
            index=index,
            etype=ev.kind,
            time=frontier,
            strategy=res.strategy,
            fallback_error=fallback_error,
            tasks_moved=len(res.moved),
            edges_rerouted=len(res.rerouted),
            sl_after=sched.schedule_length(),
            prefix_slots=len(before[0]),
            prefix_hops=len(before[1]),
            prefix_intact=intact,
            sl_replan=sl_replan,
            replan_moved=replan_moved,
        ))
        result.timings.append({"repair_s": repair_s, "replan_s": replan_s})

    return result


def simulate_scenario(system, schedule: Schedule,
                      scenario: Union[Scenario, str],
                      compare_replan: bool = True) -> SimulationResult:
    """Inject a :class:`Scenario`'s events against a static schedule.

    The injection horizon is the static schedule length, so event
    times land inside the schedule's active window.
    """
    scn = parse_scenario(scenario) if isinstance(scenario, str) else scenario
    horizon = schedule.schedule_length()
    events = FailureInjector(system, scn, horizon).events()
    return simulate(schedule, events, compare_replan=compare_replan)
