"""Event-driven rescheduling: arrivals, failures, prefix-preserving repair.

The static schedulers in :mod:`repro.core` produce compile-time
schedules; this package makes them survive run time.  See
:mod:`repro.dynamic.events` for the event model and injection,
:mod:`repro.dynamic.repair` for the committed-prefix repair engine,
:mod:`repro.dynamic.replan` for the full-tail oracle, and
:mod:`repro.dynamic.simulate` for the event loop that drives them.
"""

from repro.dynamic.events import (
    EVENT_TRACE_FORMAT,
    EVENT_TRACE_VERSION,
    Event,
    FailureInjector,
    LinkFailure,
    ProcFailure,
    Scenario,
    TaskArrival,
    events_from_dict,
    events_to_dict,
    parse_scenario,
    read_event_trace,
    sort_events,
    write_event_trace,
)
from repro.dynamic.repair import (
    RepairResult,
    alive_path,
    cone_repair,
    place_dynamic,
    tail_settle,
)
from repro.dynamic.replan import replan_tail
from repro.dynamic.simulate import (
    EVENT_LOG_FORMAT,
    EVENT_LOG_VERSION,
    EventRecord,
    SimulationResult,
    affected_work,
    prefix_fingerprint,
    simulate,
    simulate_scenario,
)

__all__ = [
    "EVENT_TRACE_FORMAT",
    "EVENT_TRACE_VERSION",
    "EVENT_LOG_FORMAT",
    "EVENT_LOG_VERSION",
    "Event",
    "EventRecord",
    "FailureInjector",
    "LinkFailure",
    "ProcFailure",
    "RepairResult",
    "Scenario",
    "SimulationResult",
    "TaskArrival",
    "affected_work",
    "alive_path",
    "cone_repair",
    "events_from_dict",
    "events_to_dict",
    "parse_scenario",
    "place_dynamic",
    "prefix_fingerprint",
    "read_event_trace",
    "replan_tail",
    "simulate",
    "simulate_scenario",
    "sort_events",
    "tail_settle",
    "write_event_trace",
]
