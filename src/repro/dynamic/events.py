"""Typed runtime events and deterministic failure injection.

The static schedulers (``core/``) emit a compile-time schedule; this
module describes what can happen to it *at run time*:

* :class:`TaskArrival` — a new task joins the graph with dependencies
  on already-known tasks (an online job submission);
* :class:`ProcFailure` — a processor stops accepting *new* work at the
  event time.  Work that started earlier **drains**: the paper's model
  has no checkpointing, so re-executing a finished-or-running task
  would cascade into the committed prefix.  Fail-stop-for-new-work /
  drain-for-old-work keeps the committed prefix byte-identical, which
  is the invariant the repair engine is built around;
* :class:`LinkFailure` — a link stops accepting new messages; hops
  already in flight (started before the event) drain the same way.

Event *injection* is deterministic: :class:`FailureInjector` derives
every draw from a :class:`~repro.util.rng.RngStream` fork named by the
event kind and index, so a :class:`Scenario` token (``"f1l1a2s7"``)
fully determines the event list for a given system — scenario tokens
are cache-key material (see ``Cell.scenario``).

Event traces round-trip through a small JSON format
(``repro-event-trace`` version 1) so ``repro simulate`` can consume
hand-written or recorded traces as well as injected ones.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.network.topology import Link, Proc, Topology, link_id
from repro.util.rng import RngStream

__all__ = [
    "TaskArrival",
    "ProcFailure",
    "LinkFailure",
    "Event",
    "Scenario",
    "parse_scenario",
    "FailureInjector",
    "sort_events",
    "events_to_dict",
    "events_from_dict",
    "write_event_trace",
    "read_event_trace",
    "EVENT_TRACE_FORMAT",
    "EVENT_TRACE_VERSION",
]

EVENT_TRACE_FORMAT = "repro-event-trace"
EVENT_TRACE_VERSION = 1


@dataclass(frozen=True)
class TaskArrival:
    """A new task arrives at virtual time ``time``.

    ``deps`` lists ``(predecessor, comm_cost)`` pairs over tasks that
    already exist; an arrival can therefore never create a cycle.
    ``exec_row`` optionally pins per-processor execution costs; when
    absent the task costs ``cost`` on every processor.
    """

    time: float
    task: object
    cost: float
    deps: Tuple[Tuple[object, float], ...] = ()
    exec_row: Optional[Tuple[float, ...]] = None

    kind = "arrival"


@dataclass(frozen=True)
class ProcFailure:
    """Processor ``proc`` accepts no new work from ``time`` on."""

    time: float
    proc: Proc

    kind = "proc_failure"


@dataclass(frozen=True)
class LinkFailure:
    """Link ``link`` accepts no new messages from ``time`` on."""

    time: float
    link: Link

    kind = "link_failure"


Event = Union[TaskArrival, ProcFailure, LinkFailure]

_KIND_RANK = {"arrival": 0, "proc_failure": 1, "link_failure": 2}


def _event_sort_key(ev: Event):
    tail = (
        repr(ev.task)
        if isinstance(ev, TaskArrival)
        else repr(ev.proc) if isinstance(ev, ProcFailure) else repr(ev.link)
    )
    return (ev.time, _KIND_RANK[ev.kind], tail)


def sort_events(events: Sequence[Event]) -> List[Event]:
    """Deterministic simulation order: time, then kind, then payload."""
    return sorted(events, key=_event_sort_key)


# ---------------------------------------------------------------------------
# scenario tokens


_SCENARIO_RE = re.compile(r"\A(?:f(\d+))?(?:l(\d+))?(?:a(\d+))?s(\d+)\Z")


@dataclass(frozen=True)
class Scenario:
    """A seeded event-injection recipe, rendered as a compact token.

    The token (``f{procs}l{links}a{arrivals}s{seed}``, zero-count parts
    omitted) is what lands in ``Cell.key()`` — two scenarios that differ
    in any count or the seed can never alias one cache entry.

    >>> Scenario(1, 1, 2, 7).token()
    'f1l1a2s7'
    >>> parse_scenario("f1a2s7") == Scenario(1, 0, 2, 7)
    True
    """

    n_proc_failures: int = 0
    n_link_failures: int = 0
    n_arrivals: int = 0
    seed: int = 0

    def __post_init__(self):
        for name in ("n_proc_failures", "n_link_failures", "n_arrivals", "seed"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 0:
                raise ConfigurationError(
                    f"scenario {name} must be a non-negative int, got {v!r}"
                )

    def token(self) -> str:
        parts = []
        if self.n_proc_failures:
            parts.append(f"f{self.n_proc_failures}")
        if self.n_link_failures:
            parts.append(f"l{self.n_link_failures}")
        if self.n_arrivals:
            parts.append(f"a{self.n_arrivals}")
        parts.append(f"s{self.seed}")
        return "".join(parts)


def parse_scenario(text: str) -> Scenario:
    """Invert :meth:`Scenario.token`.

    >>> parse_scenario("f2s0")
    Scenario(n_proc_failures=2, n_link_failures=0, n_arrivals=0, seed=0)
    """
    m = _SCENARIO_RE.match(text or "")
    if not m:
        raise ConfigurationError(
            f"malformed scenario token {text!r} "
            f"(expected f<procs>l<links>a<arrivals>s<seed>, e.g. 'f1a2s0')"
        )
    f, l, a, s = (int(g) if g else 0 for g in m.groups())
    return Scenario(n_proc_failures=f, n_link_failures=l, n_arrivals=a, seed=s)


# ---------------------------------------------------------------------------
# deterministic injection


def _alive_connected(topology: Topology, dead_procs, dead_links) -> bool:
    """Are the alive processors still one component over alive links?"""
    alive = [p for p in topology.processors if p not in dead_procs]
    if not alive:
        return False
    seen = {alive[0]}
    stack = [alive[0]]
    while stack:
        p = stack.pop()
        for q in topology.neighbors(p):
            if q in dead_procs or q in seen:
                continue
            if link_id(p, q) in dead_links:
                continue
            seen.add(q)
            stack.append(q)
    return len(seen) == len(alive)


class FailureInjector:
    """Draw a :class:`Scenario`'s events deterministically for a system.

    Every draw forks the scenario seed by ``(kind, index)``, so the
    event list is a pure function of ``(system, scenario, horizon)`` —
    independent of call order, process, or hotpath mode.  Failure
    targets are restricted to choices that keep the alive processors
    connected (and at least two of them alive), so a repair always has
    somewhere to put the tail.
    """

    def __init__(self, system, scenario: Scenario, horizon: float):
        if horizon <= 0:
            raise ConfigurationError(
                f"injection horizon must be positive, got {horizon}"
            )
        self.system = system
        self.scenario = scenario
        self.horizon = float(horizon)

    def _time(self, kind: str, i: int) -> float:
        rng = RngStream(self.scenario.seed).fork("time", kind, i)
        return rng.uniform(0.1, 0.85) * self.horizon

    def events(self) -> List[Event]:
        scn = self.scenario
        system = self.system
        topo = system.topology
        graph = system.graph
        events: List[Event] = []

        dead_procs: set = set()
        dead_links: set = set()
        for i in range(scn.n_proc_failures):
            rng = RngStream(scn.seed).fork("proc", i)
            candidates = [
                p
                for p in topo.processors
                if p not in dead_procs
                and len(topo.processors) - len(dead_procs) - 1 >= 2
                and _alive_connected(topo, dead_procs | {p}, dead_links)
            ]
            if not candidates:
                raise ConfigurationError(
                    f"scenario {scn.token()!r} cannot fail {scn.n_proc_failures} "
                    f"processors of {topo.name!r} without disconnecting it"
                )
            p = rng.choice(candidates)
            dead_procs.add(p)
            events.append(ProcFailure(time=self._time("proc", i), proc=p))

        for i in range(scn.n_link_failures):
            rng = RngStream(scn.seed).fork("link", i)
            candidates = [
                l
                for l in topo.links
                if link_id(*l) not in dead_links
                and _alive_connected(topo, dead_procs, dead_links | {link_id(*l)})
            ]
            if not candidates:
                raise ConfigurationError(
                    f"scenario {scn.token()!r} cannot fail {scn.n_link_failures} "
                    f"links of {topo.name!r} without disconnecting it"
                )
            l = rng.choice(candidates)
            dead_links.add(link_id(*l))
            events.append(LinkFailure(time=self._time("link", i), link=link_id(*l)))

        base_tasks = list(graph.tasks())
        mean_exec = graph.mean_exec_cost()
        mean_comm = graph.mean_comm_cost() if graph.n_edges else mean_exec
        if mean_comm <= 0:
            mean_comm = mean_exec
        for i in range(scn.n_arrivals):
            rng = RngStream(scn.seed).fork("arrival", i)
            n_deps = min(len(base_tasks), 1 + i % 2)
            deps = tuple(
                (u, rng.uniform(0.5, 1.5) * mean_comm)
                for u in rng.sample(base_tasks, n_deps)
            )
            events.append(
                TaskArrival(
                    time=self._time("arrival", i),
                    task=f"dyn{i}",
                    cost=rng.uniform(0.5, 1.5) * mean_exec,
                    deps=deps,
                )
            )

        return sort_events(events)


# ---------------------------------------------------------------------------
# event-trace JSON


def _event_to_dict(ev: Event) -> Dict:
    if isinstance(ev, TaskArrival):
        doc: Dict = {
            "type": ev.kind,
            "time": ev.time,
            "task": ev.task,
            "cost": ev.cost,
            "deps": [[u, c] for u, c in ev.deps],
        }
        if ev.exec_row is not None:
            doc["exec_row"] = list(ev.exec_row)
        return doc
    if isinstance(ev, ProcFailure):
        return {"type": ev.kind, "time": ev.time, "proc": ev.proc}
    if isinstance(ev, LinkFailure):
        return {"type": ev.kind, "time": ev.time, "link": list(ev.link)}
    raise ConfigurationError(f"unknown event object {ev!r}")


def events_to_dict(events: Sequence[Event]) -> Dict:
    """Render events as a ``repro-event-trace`` JSON document."""
    return {
        "format": EVENT_TRACE_FORMAT,
        "version": EVENT_TRACE_VERSION,
        "events": [_event_to_dict(ev) for ev in sort_events(events)],
    }


def _task_id_from_json(tid):
    """JSON has no tuples, so list task ids (the generated workloads'
    ``('U', 1, 2)`` style) come back as lists — restore them."""
    return tuple(tid) if isinstance(tid, list) else tid


def _event_from_dict(doc: Dict) -> Event:
    try:
        etype = doc["type"]
        time = float(doc["time"])
        if etype == "arrival":
            exec_row = doc.get("exec_row")
            return TaskArrival(
                time=time,
                task=_task_id_from_json(doc["task"]),
                cost=float(doc["cost"]),
                deps=tuple(
                    (_task_id_from_json(u), float(c))
                    for u, c in doc.get("deps", [])
                ),
                exec_row=tuple(float(c) for c in exec_row) if exec_row else None,
            )
        if etype == "proc_failure":
            return ProcFailure(time=time, proc=int(doc["proc"]))
        if etype == "link_failure":
            a, b = doc["link"]
            return LinkFailure(time=time, link=link_id(int(a), int(b)))
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigurationError(f"malformed event record {doc!r}: {exc}") from None
    raise ConfigurationError(f"unknown event type {etype!r}")


def events_from_dict(doc: Dict) -> List[Event]:
    """Parse a ``repro-event-trace`` document back into typed events.

    Task ids that were tuples before JSON serialization (the generated
    workloads use them) come back as lists; they are restored to tuples
    here so they can be used as graph keys again.
    """
    if doc.get("format") != EVENT_TRACE_FORMAT:
        raise ConfigurationError(
            f"not an event trace (format={doc.get('format')!r}, "
            f"expected {EVENT_TRACE_FORMAT!r})"
        )
    if doc.get("version") != EVENT_TRACE_VERSION:
        raise ConfigurationError(
            f"unsupported event-trace version {doc.get('version')!r}"
        )
    events = doc.get("events")
    if not isinstance(events, list):
        raise ConfigurationError("event trace has no 'events' list")
    return sort_events([_event_from_dict(e) for e in events])


def write_event_trace(events: Sequence[Event], path: str, indent: int = 2) -> None:
    """Write events to ``path`` as a deterministic JSON trace file."""
    with open(path, "w") as fh:
        json.dump(events_to_dict(events), fh, indent=indent)
        fh.write("\n")


def read_event_trace(path: str) -> List[Event]:
    """Load an event-trace file written by :func:`write_event_trace`."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not valid JSON ({exc})") from None
    if not isinstance(doc, dict):
        raise ConfigurationError(f"{path}: event trace must be a JSON object")
    return events_from_dict(doc)
