"""Full tail replan — the repair engine's quality/cost oracle.

Where :func:`repro.dynamic.repair.cone_repair` touches only the tasks
an event actually displaced, :func:`replan_tail` throws away the whole
tail (every slot with ``start >= frontier``) and rebuilds it from
scratch with the same deterministic placement primitive.  It is a
strict superset of the cone repair's work, which gives the benchmark
its claim: repair wall-clock <= replan wall-clock by construction,
and the makespan ratio quantifies what the cheaper repair gives up.

It is also the fallback: when a cone repair cannot produce a
validator-clean schedule (e.g. the insertion estimates chase each
other into a contradictory order), the simulator replans the tail
instead — same frontier, same prefix-preservation guarantees.
"""

from __future__ import annotations

from repro.errors import CycleError, RoutingError, SchedulingError
from repro.dynamic.repair import (
    RepairResult,
    _finalize,
    place_dynamic,
    tail_settle,
)

__all__ = ["replan_tail"]


def replan_tail(sched, frontier, dead_procs, dead_links) -> RepairResult:
    """Remove and re-place every tail task (plus unscheduled arrivals).

    Tasks are re-placed in ``(old start, graph index)`` order — in a
    settled schedule a predecessor always starts strictly before its
    consumer, so data producers are re-placed first; arrivals (never
    scheduled, so no old start) go last, in graph-insertion order.
    Rolls back to the exact pre-call state on any failure.
    """
    graph = sched.system.graph
    tail = [t for t, s in sched.slots.items() if s.start >= frontier]
    tail.sort(key=lambda t: (sched.slots[t].start, graph.task_index(t)))
    newcomers = [t for t in graph.tasks() if t not in sched.slots]
    order = tail + newcomers

    txn = sched.begin_txn()
    try:
        for t in tail:
            sched.remove_task(t)
        pending = set(order)
        for t in order:
            place_dynamic(sched, t, frontier, dead_procs, dead_links, pending)
            pending.discard(t)
        tail_settle(sched, frontier)
    except (SchedulingError, RoutingError, CycleError) as exc:
        txn.rollback()
        return RepairResult(False, "replan",
                            error=f"{type(exc).__name__}: {exc}")
    return _finalize(sched, txn, "replan", order, [])
