"""Minimal ASCII table / series rendering for reports and benchmarks.

The experiment harness prints the same rows/series the paper plots; these
helpers keep that output aligned and diff-friendly without pulling in a
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def _fmt_cell(value, ndigits: int = 1) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:,.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    ndigits: int = 1,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows: List[List[str]] = [[_fmt_cell(c, ndigits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_series(
    x_label: str,
    xs: Sequence,
    series: "dict[str, Sequence[float]]",
    title: Optional[str] = None,
    ndigits: int = 1,
    ratio_of: Optional[tuple] = None,
) -> str:
    """Render one x-column plus one column per named series.

    ``ratio_of=(num, den)`` appends a ratio column ``num/den`` — used for
    the BSA/DLS improvement columns in the figure reproductions.
    """
    headers = [x_label] + list(series.keys())
    if ratio_of:
        num, den = ratio_of
        headers.append(f"{num}/{den}")
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [vals[i] if i < len(vals) else None for vals in series.values()]
        if ratio_of:
            num, den = ratio_of
            n, d = series[num][i], series[den][i]
            row.append(n / d if (n is not None and d) else None)
        rows.append(row)
    nd = 3 if ratio_of else ndigits
    return format_table(headers, rows, title=title, ndigits=nd)
