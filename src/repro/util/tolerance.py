"""Single source of truth for float tolerances.

Before this module existed, every layer carried its own literal:
``util/intervals.py`` compared reservations with ``EPS = 1e-9`` while
``schedule/validator.py`` hard-coded ``_TOL = 1e-6`` (and ``gantt.py``,
``cpop.py`` and ``graph/analysis.py`` had private copies). A schedule
could therefore pass the engine's overlap check yet be judged
differently by validation for discrepancies in the 1e-9..1e-6 band —
e.g. a hop starting 5e-7 before its data was ready would be *built*
by no engine but *accepted* by the validator. Unifying the constants
closes that band: the validator now rejects exactly what the engine
would never produce.

Constants
---------
``EPS``
    The engine's interval slack: two reservations are considered
    non-overlapping when they overlap by no more than ``EPS``. Also the
    slack used when comparing candidate finish times in BSA.
``TOL``
    The validator's acceptance tolerance for times and durations.
    Deliberately the *same value* as ``EPS`` so the engine and the
    validator agree on what "equal" means (the 1e-9..1e-6 gap was the
    bug). Kept as a separate name so the two roles stay documented.
``TIE_EPS``
    Tolerance for priority/level tie detection (critical-path walks,
    CPOP's critical-path membership test). Ties are compared on sums of
    input costs, the same magnitude regime as schedule times, so the
    same slack applies.
``DRT_EPS``
    The migration evaluator's epsilon-max slack when selecting the
    data-ready time and VIP among predecessor arrivals: an arrival must
    beat the running maximum by more than ``DRT_EPS`` to displace it.
    This one is *deliberately much tighter* than ``EPS`` (1e-12 vs
    1e-9): it only breaks exact-arithmetic ties, while BSA's candidate
    pruning compares *whole finish times* with the coarser ``EPS``
    margin — which therefore absorbs ``DRT_EPS`` noise by three orders
    of magnitude, keeping the pruned search bit-identical to exhaustive
    evaluation (see ``core/bsa.py::_evaluate_candidates_pruned``).
    Before this constant existed the value was hard-coded twice in
    ``core/migration.py``, invisible to exactly that soundness argument.

``EPS``/``TOL``/``TIE_EPS`` are intentionally equal today; they are
distinct names so a future recalibration of one role cannot silently
change another. ``DRT_EPS`` is intentionally smaller — see above.
"""

from __future__ import annotations

#: engine interval slack (overlap / gap comparisons)
EPS = 1e-9

#: validator acceptance tolerance — unified with the engine's EPS
TOL = EPS

#: tie-detection slack for priority / level comparisons
TIE_EPS = EPS

#: epsilon-max slack for DRT/VIP selection over predecessor arrivals
#: (must stay well below EPS — BSA's pruning margin absorbs it)
DRT_EPS = 1e-12
