"""Interval arithmetic for processor and link timelines.

A timeline is a list of non-overlapping, time-sorted :class:`Interval`
objects. The central operation is :func:`earliest_gap`: find the earliest
start ``>= ready`` at which an item of a given duration fits without
overlapping existing reservations — the "insertion" slot policy used by
BSA (and by the link substrate shared with the baselines).

All comparisons use an absolute slack ``EPS`` to absorb floating-point
noise: two reservations are considered non-overlapping when they overlap
by less than ``EPS``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

EPS = 1e-9


@dataclass(frozen=True)
class Interval:
    """A half-open reservation ``[start, finish)`` tagged with a payload."""

    start: float
    finish: float
    payload: object = None

    def __post_init__(self):
        if self.finish < self.start - EPS:
            raise ValueError(f"interval finishes before it starts: [{self.start}, {self.finish})")

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def overlaps(self, other: "Interval") -> bool:
        return intervals_overlap(self.start, self.finish, other.start, other.finish)


def intervals_overlap(s1: float, f1: float, s2: float, f2: float) -> bool:
    """True when ``[s1, f1)`` and ``[s2, f2)`` overlap by more than EPS."""
    return (min(f1, f2) - max(s1, s2)) > EPS


def earliest_gap(
    busy: Sequence,
    ready: float,
    duration: float,
) -> float:
    """Earliest start ``>= ready`` fitting ``duration`` among ``busy`` slots.

    ``busy`` is any sequence of objects with ``start``/``finish`` attributes
    (:class:`Interval`, task slots, message hops), sorted by start time and
    non-overlapping. Zero-duration items are placed at ``ready`` (they never
    conflict).
    """
    if duration < -EPS:
        raise ValueError(f"negative duration {duration}")
    if duration <= EPS:
        return max(ready, 0.0)
    t = max(ready, 0.0)
    for iv in busy:
        if iv.start - t >= duration - EPS:
            return t  # fits in the gap before this reservation
        if iv.finish > t:
            t = iv.finish
    return t


def insert_interval(busy: List[Interval], item: Interval) -> int:
    """Insert ``item`` into the sorted timeline ``busy``; return its index.

    Raises ``ValueError`` if the insertion would overlap an existing
    reservation — callers are expected to have used :func:`earliest_gap`.
    """
    lo, hi = 0, len(busy)
    while lo < hi:
        mid = (lo + hi) // 2
        if busy[mid].start < item.start:
            lo = mid + 1
        else:
            hi = mid
    idx = lo
    for neighbor in busy[max(0, idx - 1): idx + 1]:
        if neighbor.overlaps(item):
            raise ValueError(
                f"overlapping reservation: {item} vs {neighbor}"
            )
    busy.insert(idx, item)
    return idx


def total_busy(busy: Sequence[Interval]) -> float:
    """Total reserved time on a timeline (assumes non-overlapping)."""
    return sum(iv.duration for iv in busy)


def verify_disjoint(busy: Sequence[Interval]) -> Optional[Tuple[Interval, Interval]]:
    """Return the first overlapping pair in a start-sorted timeline, if any."""
    for a, b in zip(busy, busy[1:]):
        if a.overlaps(b):
            return (a, b)
    return None
