"""Interval arithmetic for processor and link timelines.

A timeline is a list of non-overlapping, time-sorted :class:`Interval`
objects. The central operation is :func:`earliest_gap`: find the earliest
start ``>= ready`` at which an item of a given duration fits without
overlapping existing reservations — the "insertion" slot policy used by
BSA (and by the link substrate shared with the baselines).

Two implementations coexist:

* the original object-walking :func:`earliest_gap` over any sequence with
  ``start``/``finish`` attributes (the *legacy* hot path, kept verbatim so
  the fast path can be benchmarked and equivalence-tested against it);
* :class:`Timeline` — an indexed view holding parallel ``starts`` /
  ``finishes`` float lists, answering the same query with a ``bisect``
  jump over every reservation that finishes before ``ready`` instead of a
  scan from time zero. On the long link timelines BSA builds this is the
  difference between O(n) and O(log n + k) per candidate evaluation.

Which one the schedulers use is controlled by the process-wide hot-path
mode (:func:`hotpath_mode` / :func:`set_hotpath_mode`, initialized from
``REPRO_HOTPATH``). Four modes exist: ``legacy`` (the original
linear-rescan reference code), ``fast`` (indexed timelines, memoized
routing/costs, candidate pruning, shallow snapshots), ``incremental``
(the default: everything in ``fast`` plus the change-driven settle
engine and the undo-log rollback in :mod:`repro.schedule.settle` /
:mod:`repro.schedule.schedule`), and ``array`` (everything in
``incremental`` plus the numpy-backed flat-array state in
:mod:`repro.schedule.arraystate`: vectorized timeline gap search,
dense cost matrices, and batched candidate evaluation — built for
n>=1000 graphs; requires numpy, the only mode that does). All modes
produce bit-identical schedules — enforced by
``benchmarks/bench_hotpath.py`` and ``tests/test_hotpath_equivalence.py``.

All comparisons use an absolute slack ``EPS`` to absorb floating-point
noise: two reservations are considered non-overlapping when they overlap
by less than ``EPS``. The constant lives in :mod:`repro.util.tolerance`
(one source of truth shared with the validator) and is re-exported here
for the many engine-side callers.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from dataclasses import dataclass, field
from itertools import accumulate
from typing import List, Optional, Sequence, Tuple

from repro.util.tolerance import EPS

#: hot-path modes: "incremental" (default) adds the change-driven settle
#: engine and undo-log rollback on top of "fast" (indexed structures and
#: memoized routing/cost lookups); "array" adds the numpy flat-array
#: state (vectorized gap search, dense cost matrices, batched candidate
#: evaluation) on top of "incremental"; "legacy" runs the original
#: linear-rescan code.
HOTPATH_MODES = ("incremental", "fast", "legacy", "array")


def _require_numpy(mode: str) -> None:
    """Raise a clean error when a numpy-backed mode is requested without
    numpy. Every other mode must keep working numpy-free, so this is the
    only place the engine ever imports it eagerly."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"REPRO_HOTPATH={mode!r} requires numpy, which is not "
            f"installed; install numpy or pick one of the numpy-free "
            f"modes {tuple(m for m in HOTPATH_MODES if m != 'array')}"
        ) from None


_hotpath_mode = os.environ.get("REPRO_HOTPATH", "incremental").strip().lower()
if _hotpath_mode not in HOTPATH_MODES:  # pragma: no cover - env typo guard
    _hotpath_mode = "incremental"
if _hotpath_mode == "array":
    _require_numpy(_hotpath_mode)


def hotpath_mode() -> str:
    """Current hot-path mode: ``"incremental"`` (default), ``"fast"``,
    ``"legacy"`` or ``"array"``."""
    return _hotpath_mode


def fast_path_enabled() -> bool:
    """True for every indexed-engine mode (``fast``, ``incremental`` and
    ``array``); each later engine is a strict superset of ``fast``."""
    return _hotpath_mode != "legacy"


def incremental_enabled() -> bool:
    """True when the change-driven settle engine and undo-log rollback
    are active (modes ``incremental`` and ``array`` — the array engine
    reuses the whole transactional substrate)."""
    return _hotpath_mode == "incremental" or _hotpath_mode == "array"


def array_enabled() -> bool:
    """True when the numpy flat-array engine is active (mode ``array``)."""
    return _hotpath_mode == "array"


def set_hotpath_mode(mode: str) -> str:
    """Switch the hot-path mode; returns the previous mode.

    Used by the equivalence bench/tests to time both implementations in
    one process. Not thread-safe — flip it only around whole runs.
    """
    global _hotpath_mode
    if mode not in HOTPATH_MODES:
        raise ValueError(f"hotpath mode must be one of {HOTPATH_MODES}, got {mode!r}")
    if mode == "array":
        _require_numpy(mode)
    previous = _hotpath_mode
    _hotpath_mode = mode
    return previous


@dataclass(frozen=True)
class Interval:
    """A half-open reservation ``[start, finish)`` tagged with a payload."""

    start: float
    finish: float
    payload: object = None

    def __post_init__(self):
        if self.finish < self.start - EPS:
            raise ValueError(f"interval finishes before it starts: [{self.start}, {self.finish})")

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def overlaps(self, other: "Interval") -> bool:
        return intervals_overlap(self.start, self.finish, other.start, other.finish)


def intervals_overlap(s1: float, f1: float, s2: float, f2: float) -> bool:
    """True when ``[s1, f1)`` and ``[s2, f2)`` overlap by more than EPS."""
    return (min(f1, f2) - max(s1, s2)) > EPS


def earliest_gap(
    busy: Sequence,
    ready: float,
    duration: float,
) -> float:
    """Earliest start ``>= ready`` fitting ``duration`` among ``busy`` slots.

    ``busy`` is any sequence of objects with ``start``/``finish`` attributes
    (:class:`Interval`, task slots, message hops), sorted by start time and
    non-overlapping. Zero-duration items are placed at ``ready`` (they never
    conflict).
    """
    if duration < -EPS:
        raise ValueError(f"negative duration {duration}")
    if duration <= EPS:
        return max(ready, 0.0)
    t = max(ready, 0.0)
    for iv in busy:
        if iv.start - t >= duration - EPS:
            return t  # fits in the gap before this reservation
        if iv.finish > t:
            t = iv.finish
    return t


def insert_interval(busy: List[Interval], item: Interval) -> int:
    """Insert ``item`` into the sorted timeline ``busy``; return its index.

    Raises ``ValueError`` if the insertion would overlap an existing
    reservation — callers are expected to have used :func:`earliest_gap`.
    """
    lo, hi = 0, len(busy)
    while lo < hi:
        mid = (lo + hi) // 2
        if busy[mid].start < item.start:
            lo = mid + 1
        else:
            hi = mid
    idx = lo
    for neighbor in busy[max(0, idx - 1): idx + 1]:
        if neighbor.overlaps(item):
            raise ValueError(
                f"overlapping reservation: {item} vs {neighbor}"
            )
    busy.insert(idx, item)
    return idx


class Timeline:
    """Indexed busy-timeline: parallel start/finish arrays + bisect queries.

    The arrays mirror a start-sorted, non-overlapping reservation list
    (task slots on a processor, message hops on a link). Tentative
    planners layer "what-if" reservations over a committed Timeline via
    :meth:`earliest_gap_merged` — a two-pointer walk over (this
    timeline, a small extras list) — instead of re-sorting merged object
    lists on every query.

    ``_maxf`` is the running maximum of ``finishes`` — non-decreasing by
    construction even when zero-duration reservations make the raw finish
    times locally non-monotonic — so :meth:`earliest_gap` can bisect past
    every reservation already finished by ``ready`` and scan only the
    tail. Skipped reservations finish at or before the scan time ``t``,
    so (for positive-duration queries) they can neither host the item nor
    advance ``t``: results are bit-identical to the legacy full scan.
    """

    __slots__ = ("starts", "finishes", "_maxf")

    def __init__(self, starts: Optional[List[float]] = None,
                 finishes: Optional[List[float]] = None):
        self.starts = starts if starts is not None else []
        self.finishes = finishes if finishes is not None else []
        # running maximum at C speed — this constructor runs once per
        # (resource, mutation) cache miss on the hottest planning path
        self._maxf: List[float] = list(accumulate(self.finishes, max))

    @classmethod
    def from_items(cls, items: Sequence) -> "Timeline":
        """Build from start-sorted objects with ``start``/``finish``."""
        return cls([iv.start for iv in items], [iv.finish for iv in items])

    def __len__(self) -> int:
        return len(self.starts)

    def last_finish(self) -> float:
        """Finish of the last reservation in start order (0 when empty)."""
        return self.finishes[-1] if self.finishes else 0.0

    def earliest_gap(self, ready: float, duration: float) -> float:
        """Earliest start ``>= ready`` fitting ``duration`` (see
        :func:`earliest_gap` — same contract, indexed implementation)."""
        if duration < -EPS:
            raise ValueError(f"negative duration {duration}")
        t = ready if ready > 0.0 else 0.0
        if duration <= EPS:
            return t
        starts, finishes = self.starts, self.finishes
        n = len(starts)
        i = bisect_right(self._maxf, t)
        while i < n:
            if starts[i] - t >= duration - EPS:
                return t
            f = finishes[i]
            if f > t:
                t = f
            i += 1
        return t

    def earliest_gap_merged(
        self,
        ready: float,
        duration: float,
        extra_starts: List[float],
        extra_finishes: List[float],
    ) -> float:
        """Earliest gap over the union of this timeline and a (small,
        start-sorted) tentative reservation list, without materializing
        the merge. Equivalent to the legacy ``sorted(busy + extra)`` scan:
        the two-pointer walk visits the union in start order with base
        reservations before tentative ones at equal starts — the same
        order a stable sort of ``committed + planned`` produces.
        """
        if duration < -EPS:
            raise ValueError(f"negative duration {duration}")
        t = ready if ready > 0.0 else 0.0
        if duration <= EPS:
            return t
        bs, bf = self.starts, self.finishes
        n = len(bs)
        i = bisect_right(self._maxf, t)
        j, m = 0, len(extra_starts)
        while i < n or j < m:
            if i < n and (j >= m or bs[i] <= extra_starts[j]):
                s, f = bs[i], bf[i]
                i += 1
            else:
                s, f = extra_starts[j], extra_finishes[j]
                j += 1
            if s - t >= duration - EPS:
                return t
            if f > t:
                t = f
        return t


def total_busy(busy: Sequence[Interval]) -> float:
    """Total reserved time on a timeline (assumes non-overlapping)."""
    return sum(iv.duration for iv in busy)


def verify_disjoint(busy: Sequence[Interval]) -> Optional[Tuple[Interval, Interval]]:
    """Return the first overlapping pair in a start-sorted timeline, if any."""
    for a, b in zip(busy, busy[1:]):
        if a.overlaps(b):
            return (a, b)
    return None
