"""Shared low-level utilities: seeded RNG helpers, interval math, tables."""

from repro.util.rng import RngStream, stable_uniform, stable_seed
from repro.util.intervals import (
    Interval,
    earliest_gap,
    insert_interval,
    intervals_overlap,
    total_busy,
)
from repro.util.tables import format_table, format_series

__all__ = [
    "RngStream",
    "stable_uniform",
    "stable_seed",
    "Interval",
    "earliest_gap",
    "insert_interval",
    "intervals_overlap",
    "total_busy",
    "format_table",
    "format_series",
]
