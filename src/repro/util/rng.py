"""Deterministic random-number helpers.

The library never touches the global :mod:`random` state. Every stochastic
component takes either an explicit seed or an :class:`RngStream`. Two
helpers provide *stable hashing RNG*: a value drawn for a key (e.g. the
heterogeneity factor of message ``(i, j)`` on link ``(x, y)``) is a pure
function of ``(seed, key)``, so factors can be materialized lazily without
storing an ``e × links`` matrix and are identical no matter the order in
which they are first requested.
"""

from __future__ import annotations

import hashlib
import random
import struct
from typing import Iterable, Sequence, Tuple


def stable_seed(*parts) -> int:
    """Derive a 64-bit seed deterministically from arbitrary hashable parts.

    Unlike ``hash()``, the result is stable across processes (no
    ``PYTHONHASHSEED`` dependence) because it goes through blake2b.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf8"))
        h.update(b"\x1f")
    return struct.unpack("<Q", h.digest())[0]


def stable_uniform(seed: int, key, lo: float, hi: float) -> float:
    """Deterministic uniform draw in ``[lo, hi]`` for ``(seed, key)``.

    The draw is independent of call order: it depends only on the seed and
    the key. Used for lazily materialized heterogeneity factors.
    """
    if hi < lo:
        raise ValueError(f"empty uniform range [{lo}, {hi}]")
    raw = stable_seed(seed, key)
    frac = raw / float(2**64 - 1)
    return lo + (hi - lo) * frac


class RngStream:
    """A named, forkable wrapper around :class:`random.Random`.

    ``fork(name)`` derives an independent child stream whose sequence
    depends only on the parent seed and the name — this keeps experiment
    cells reproducible even when the number of draws in sibling components
    changes.
    """

    def __init__(self, seed: int = 0, _label: str = "root"):
        self.seed = int(seed)
        self.label = _label
        self._rng = random.Random(self.seed)

    def fork(self, *name) -> "RngStream":
        """Derive an independent child stream identified by ``name``."""
        child_seed = stable_seed(self.seed, *name)
        return RngStream(child_seed, _label=f"{self.label}/{'/'.join(map(str, name))}")

    # -- thin delegation --------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def sample(self, seq: Sequence, k: int):
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngStream(seed={self.seed}, label={self.label!r})"
