"""The paper's contribution: BSA — Bubble Scheduling and Allocation."""

from repro.core.serialization import (
    PivotSelection,
    select_pivot,
    serialize,
    serial_injection,
)
from repro.core.routes import new_incoming_path, new_outgoing_path
from repro.core.bsa import BSAOptions, BSAScheduler, schedule_bsa

__all__ = [
    "PivotSelection",
    "select_pivot",
    "serialize",
    "serial_injection",
    "new_incoming_path",
    "new_outgoing_path",
    "BSAOptions",
    "BSAScheduler",
    "schedule_bsa",
]
