"""Incremental route maintenance for task migration (paper §2.3).

When a task migrates from pivot ``A`` to neighbor ``B``:

* each **incoming** message must now reach ``B``: its existing path
  (producer's processor ``... -> A``) is extended with the hop ``A -> B`` —
  unless the path already touches ``B``, in which case it is *truncated* at
  the **first** visit of ``B`` (the paper's "optimized routes": never
  double back), or the producer itself sits on ``B`` and the message
  becomes local;
* each **outgoing** message must now depart from ``B``: its path
  (``A -> ... -> consumer``) is prepended with ``B -> A`` — unless the path
  already touches ``B`` (truncate the front up to the **last** visit of
  ``B``) or the consumer sits on ``B`` (local).

The first/last-visit choice matters only for paths that touch ``B``
more than once (possible after repeated migrations with truncation
disabled, or on imported routes): cutting an incoming path at the *last*
visit — or an outgoing path at the *first* — would leave earlier/later
visits of ``B`` inside the kept segment, so the "truncated" route would
still revisit the task's new processor, wasting link capacity. Cutting
at the first (incoming) / last (outgoing) visit yields the shortest
prefix/suffix in which ``B`` appears exactly once. Either cut is a
prefix/suffix of the old path, so existing hop reservations are reused
unchanged.

These functions are pure path algebra on processor sequences; the
scheduler layers timing on top.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import RoutingError
from repro.network.topology import Proc


def new_incoming_path(
    old_path: Optional[Sequence[Proc]],
    producer_proc: Proc,
    old_proc: Proc,
    new_proc: Proc,
    truncate: bool = True,
) -> Optional[List[Proc]]:
    """New processor path for an incoming message after the consumer moves
    ``old_proc -> new_proc``.

    ``old_path`` is the current path (``None``/empty when the message is
    local, i.e. the producer is on ``old_proc``). Returns ``None`` when the
    message becomes local at ``new_proc``.
    """
    path = list(old_path) if old_path else [old_proc]
    if path[-1] != old_proc:
        raise RoutingError(
            f"incoming path {path} does not end at the consumer's processor {old_proc}"
        )
    if path[0] != producer_proc:
        raise RoutingError(
            f"incoming path {path} does not start at the producer's processor {producer_proc}"
        )
    if producer_proc == new_proc:
        return None
    if truncate and new_proc in path:
        # first visit: the shortest prefix reaching new_proc (a later cut
        # would keep earlier visits of new_proc inside the path)
        cut = path.index(new_proc)
        return path[: cut + 1]
    return path + [new_proc]


def new_outgoing_path(
    old_path: Optional[Sequence[Proc]],
    consumer_proc: Proc,
    old_proc: Proc,
    new_proc: Proc,
    truncate: bool = True,
) -> Optional[List[Proc]]:
    """New processor path for an outgoing message after the producer moves
    ``old_proc -> new_proc`` (mirror image of :func:`new_incoming_path`)."""
    path = list(old_path) if old_path else [old_proc]
    if path[0] != old_proc:
        raise RoutingError(
            f"outgoing path {path} does not start at the producer's processor {old_proc}"
        )
    if path[-1] != consumer_proc:
        raise RoutingError(
            f"outgoing path {path} does not end at the consumer's processor {consumer_proc}"
        )
    if consumer_proc == new_proc:
        return None
    if truncate and new_proc in path:
        # last visit: the shortest suffix departing from new_proc (an
        # earlier cut would keep later visits of new_proc inside the path)
        cut = _rindex(path, new_proc)
        return path[cut:]
    return [new_proc] + path


def _rindex(seq: Sequence[Proc], value: Proc) -> int:
    for i in range(len(seq) - 1, -1, -1):
        if seq[i] == value:
            return i
    raise ValueError(f"{value} not in path")
