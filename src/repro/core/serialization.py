"""BSA phase 1: pivot selection and CP-driven serialization (paper §2.2).

``select_pivot`` recomputes the critical path under each processor's
*actual* execution costs (communication costs stay nominal — no links are
assigned yet) and picks the processor with the shortest CP length.

``serialize`` produces the paper's serial injection order:

* CP tasks occupy the earliest possible positions;
* each CP task is preceded by its not-yet-listed ancestors (IB tasks),
  included recursively, larger b-level first (ties: smaller t-level, then
  later graph insertion — the last rule reproduces the paper's published
  order for its worked example, which requires picking T8 over T6 at a
  full b-level/t-level tie);
* OB tasks are appended last in descending b-level.

The resulting order is always a topological order (asserted in tests and
by a hypothesis property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError
from repro.graph.analysis import GraphAnalysis, b_levels, cp_length, t_levels
from repro.graph.model import TaskGraph, TaskId
from repro.graph.partition import TaskClass, classify_tasks
from repro.network.system import HeterogeneousSystem
from repro.network.topology import Proc
from repro.util.rng import RngStream


@dataclass(frozen=True)
class PivotSelection:
    """Outcome of pivot selection: the pivot and per-processor CP lengths."""

    pivot: Proc
    cp_lengths: Tuple[float, ...]
    cp_tasks: Tuple[TaskId, ...]       # CP under the pivot's actual costs
    serial_order: Tuple[TaskId, ...]


def select_pivot(
    system: HeterogeneousSystem,
    rng: Optional[RngStream] = None,
) -> PivotSelection:
    """Choose the first pivot processor and the serial injection order."""
    graph = system.graph
    lengths = []
    for p in system.topology.processors:
        lengths.append(cp_length(graph, system.exec_cost_fn(p)))
    pivot = min(range(len(lengths)), key=lambda p: (lengths[p], p))
    analysis = GraphAnalysis(graph, system.exec_cost_fn(pivot), rng)
    order = serialize(graph, system.exec_cost_fn(pivot), rng=rng, analysis=analysis)
    return PivotSelection(
        pivot=pivot,
        cp_lengths=tuple(lengths),
        cp_tasks=tuple(analysis.cp),
        serial_order=tuple(order),
    )


def serialize(
    graph: TaskGraph,
    exec_cost=None,
    rng: Optional[RngStream] = None,
    analysis: Optional[GraphAnalysis] = None,
) -> List[TaskId]:
    """The paper's SERIALIZATION procedure; returns the task order."""
    if graph.n_tasks == 0:
        return []
    if analysis is None:
        analysis = GraphAnalysis(graph, exec_cost, rng)
    bl, tl = analysis.b_level, analysis.t_level
    index = {t: k for k, t in enumerate(graph.tasks())}

    def pred_priority(t: TaskId):
        """Sort key: larger b-level, then smaller t-level, then later id."""
        return (-bl[t], tl[t], -index[t])

    order: List[TaskId] = []
    listed: set = set()

    def append(t: TaskId) -> None:
        order.append(t)
        listed.add(t)

    def include_with_ancestors(t: TaskId) -> None:
        """Append ``t`` after recursively appending its missing ancestors."""
        stack = [t]
        while stack:
            cur = stack[-1]
            missing = [p for p in graph.predecessors(cur) if p not in listed]
            if not missing:
                stack.pop()
                if cur not in listed:
                    append(cur)
            else:
                missing.sort(key=pred_priority)
                stack.append(missing[0])

    for cp_task in analysis.cp:
        include_with_ancestors(cp_task)

    # OB tasks: everything not an ancestor of (or on) the CP, by b-level desc
    remaining = [t for t in graph.tasks() if t not in listed]
    remaining.sort(key=lambda t: (-bl[t], tl[t], index[t]))
    for t in remaining:
        append(t)

    if len(order) != graph.n_tasks:
        raise SchedulingError(
            f"serialization produced {len(order)} of {graph.n_tasks} tasks"
        )
    return order


def serial_injection(
    system: HeterogeneousSystem,
    rng: Optional[RngStream] = None,
):
    """Pivot selection + the fully serialized schedule on that pivot.

    Returns ``(selection, schedule)`` where the schedule has every task on
    the pivot in serial order and every message local. This is BSA's
    starting state and also a useful worst-case reference point.
    """
    from repro.schedule.schedule import Schedule
    from repro.schedule.settle import settle

    selection = select_pivot(system, rng)
    sched = Schedule(system, algorithm="serial-injection")
    for task in selection.serial_order:
        sched.place_task(task, selection.pivot, start=0.0,
                         position=len(sched.proc_order[selection.pivot]))
    for edge in system.graph.edges():
        sched.mark_local(edge)
    settle(sched)
    return selection, sched
