"""The BSA main loop (paper §2.3, "BSA ALGORITHM").

1. Pick the first pivot (shortest actual-cost CP) and serialize the whole
   program onto it.
2. Visit every processor once, breadth-first from the first pivot.
3. While a processor is pivot, consider each task on it (in schedule
   order, which the serialization made topological): a task is examined
   when it starts later than its data-ready time or its VIP lives
   elsewhere; it migrates to the neighbor minimizing its finish time, or —
   when no neighbor strictly improves FT — to a neighbor that matches the
   current FT *and* hosts its VIP (so successors may improve later).

Options expose the paper's ambiguities and our ablations:

* ``migration_trigger``: ``"always"`` (default — the ICPP text's literal
  examination condition ``FT > DRT``, which is vacuously true for
  positive-cost tasks, so every task on the pivot is examined) or
  ``"st_gt_drt"`` (the journal formulation: examine only tasks that
  start strictly after their data is ready or whose VIP lives
  elsewhere). The default follows the source (ICPP 1999) paper; the
  journal variant is kept as an ablation. A regression test pins the
  default (``tests/test_bsa.py::TestOptions``).
* ``vip_follow``: disable the equal-FT VIP-following heuristic.
* ``insertion``: earliest-gap insertion vs pure append (ablation).
* ``truncate_routes``: disable route truncation (ablation; routes then
  always extend hop-by-hop, possibly doubling back).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, CycleError
from repro.graph.model import TaskId
from repro.graph.validation import validate_graph
from repro.network.routing import shortest_path
from repro.network.system import HeterogeneousSystem, LinkHeterogeneity
from repro.network.topology import Proc
from repro.obs import counters as _obs
from repro.core.migration import (
    MigrationPlan,
    commit_migration,
    current_drt_vip,
    evaluate_migration,
)
from repro.core.serialization import PivotSelection, serial_injection
from repro.schedule.linkplan import arrival_lower_bound
from repro.schedule.schedule import Schedule
from repro.util.intervals import (
    array_enabled,
    fast_path_enabled,
    incremental_enabled,
)
from repro.util.rng import RngStream
from repro.util.tolerance import EPS as _EPS

_TRIGGERS = ("st_gt_drt", "always")


@dataclass(frozen=True)
class BSAOptions:
    """Tunable knobs of the BSA scheduler (defaults follow the paper)."""

    #: "always" is the ICPP text's literal (and vacuously true) FT > DRT
    #: examination condition — the paper-faithful default; "st_gt_drt" is
    #: the journal formulation, kept as an ablation (see module docstring)
    migration_trigger: str = "always"
    vip_follow: bool = True
    insertion: bool = True
    truncate_routes: bool = True
    #: "shortest" (default) rebuilds message routes over on-demand BFS
    #: shortest paths on every migration; "incremental" is the ICPP text's
    #: literal hop-by-hop extension (ablation; routes wander and inflate
    #: communication — see EXPERIMENTS.md).
    route_mode: str = "shortest"
    #: "global" (default) lets a task migrate to *any* processor (messages
    #: still pay full multi-hop contention along shortest routes);
    #: "neighbors" is the ICPP text's literal one-hop scope (ablation; on
    #: sparse topologies the migration frontier freezes a few hops from
    #: the first pivot and most processors stay empty — see EXPERIMENTS.md).
    migration_scope: str = "global"
    #: how many breadth-first sweeps over all processors to run. The ICPP
    #: pseudocode describes a single sweep; ``0`` means "sweep until a full
    #: pass makes no migration" (capped at ``n_procs`` sweeps), which the
    #: prose's "this incremental scheduling by migration process is
    #: repeated" supports and which is required to reproduce the paper's
    #: relative results (see DESIGN.md interpretation notes).
    n_sweeps: int = 0
    seed: int = 0

    def __post_init__(self):
        if self.migration_trigger not in _TRIGGERS:
            raise ConfigurationError(
                f"migration_trigger must be one of {_TRIGGERS}, "
                f"got {self.migration_trigger!r}"
            )
        if self.n_sweeps < 0:
            raise ConfigurationError(f"n_sweeps must be >= 0, got {self.n_sweeps}")
        from repro.core.migration import ROUTE_MODES

        if self.route_mode not in ROUTE_MODES:
            raise ConfigurationError(
                f"route_mode must be one of {ROUTE_MODES}, got {self.route_mode!r}"
            )
        if self.migration_scope not in ("global", "neighbors"):
            raise ConfigurationError(
                f"migration_scope must be 'global' or 'neighbors', "
                f"got {self.migration_scope!r}"
            )
        if self.migration_scope == "global" and self.route_mode == "incremental":
            raise ConfigurationError(
                "migration_scope='global' requires route_mode='shortest' "
                "(incremental routes are only defined for one-hop moves)"
            )


@dataclass
class BSAStats:
    """Run statistics (exposed for tests, ablations and reports)."""

    pivot_sequence: List[Proc] = field(default_factory=list)
    first_pivot: Proc = -1
    n_examined: int = 0
    n_evaluated: int = 0
    #: candidates skipped by the fast path's exact lower-bound pruning
    #: (always 0 in legacy hot-path mode)
    n_pruned: int = 0
    n_migrations: int = 0
    n_vip_migrations: int = 0
    n_rejected_migrations: int = 0
    n_sweeps_run: int = 0
    serial_length: float = 0.0


class BSAScheduler:
    """Bubble Scheduling and Allocation over one bound system."""

    def __init__(self, system: HeterogeneousSystem, options: Optional[BSAOptions] = None):
        self.system = system
        self.options = options or BSAOptions()
        self.stats = BSAStats()
        self.selection: Optional[PivotSelection] = None

    def run(self) -> Schedule:
        """Produce a complete, settled schedule."""
        validate_graph(self.system.graph)
        rng = RngStream(self.options.seed).fork("bsa", self.system.graph.name)

        self.selection, sched = serial_injection(self.system, rng)
        sched.algorithm = "BSA"
        self.stats.first_pivot = self.selection.pivot
        self.stats.serial_length = sched.schedule_length()

        pivots = self.system.topology.bfs_order(self.selection.pivot)
        self.stats.pivot_sequence = pivots
        max_sweeps = self.options.n_sweeps or self.system.topology.n_procs
        until_stable = self.options.n_sweeps == 0

        # Per-task FT greed does not guarantee a shorter *makespan* (a
        # producer may migrate for its own finish time and strand a
        # consumer behind an expensive message), so keep the best schedule
        # seen at sweep boundaries — including the initial serialization.
        best = sched.copy()
        best_sl = sched.schedule_length()
        for sweep in range(max_sweeps):
            migrations_before = self.stats.n_migrations
            for pivot in pivots:
                self._run_phase(sched, pivot)
            self.stats.n_sweeps_run = sweep + 1
            sl = sched.schedule_length()
            if sl < best_sl - _EPS:
                best = sched.copy()
                best_sl = sl
            if until_stable and self.stats.n_migrations == migrations_before:
                break
        if _obs.ACTIVE:
            # fold the run's BSAStats into the process counter registry
            # once, at the end — zero per-candidate overhead
            s = self.stats
            _obs.inc("bsa.tasks_examined", s.n_examined)
            _obs.inc("bsa.candidates_evaluated", s.n_evaluated)
            _obs.inc("bsa.candidates_pruned", s.n_pruned)
            _obs.inc("bsa.migrations", s.n_migrations)
            _obs.inc("bsa.vip_migrations", s.n_vip_migrations)
            _obs.inc("bsa.rejected_migrations", s.n_rejected_migrations)
            _obs.inc("bsa.sweeps", s.n_sweeps_run)
        return best if best_sl < sched.schedule_length() - _EPS else sched

    # ------------------------------------------------------------------
    def _run_phase(self, sched: Schedule, pivot: Proc) -> None:
        if self.options.migration_scope == "global":
            neighbors = [p for p in self.system.topology.processors if p != pivot]
        else:
            neighbors = self.system.topology.neighbors(pivot)
        if not neighbors:
            return
        # snapshot: schedule order on the pivot at phase start (topological)
        for task in list(sched.proc_order[pivot]):
            if sched.proc_of(task) != pivot:
                continue  # defensive: cannot happen within a phase
            if not self._should_examine(sched, task, pivot):
                continue
            self.stats.n_examined += 1
            self._try_migrate(sched, task, pivot, neighbors)

    def _should_examine(self, sched: Schedule, task: TaskId, pivot: Proc) -> bool:
        if self.options.migration_trigger == "always":
            return True
        drt, vip = current_drt_vip(sched, task)
        slot = sched.slots[task]
        if slot.start > drt + _EPS:
            return True
        return vip is not None and sched.proc_of(vip) != pivot

    def _try_migrate(
        self,
        sched: Schedule,
        task: TaskId,
        pivot: Proc,
        neighbors: List[Proc],
    ) -> None:
        opts = self.options
        current_ft = sched.slots[task].finish
        vip = None
        if array_enabled():
            plans, best, vip = self._evaluate_candidates_array(
                sched, task, pivot, neighbors
            )
        elif fast_path_enabled():
            # the pruned evaluator already derives the VIP for its
            # must-evaluate rule; reuse it rather than re-scanning
            # predecessor arrivals below
            plans, best, vip = self._evaluate_candidates_pruned(
                sched, task, pivot, neighbors
            )
        else:
            plans = []
            for nb in neighbors:
                plans.append(
                    evaluate_migration(
                        sched, task, nb,
                        insertion=opts.insertion, truncate=opts.truncate_routes,
                        route_mode=opts.route_mode,
                    )
                )
                self.stats.n_evaluated += 1
            best = min(plans, key=lambda p: (p.ft, p.dst))
            if opts.vip_follow:
                _, vip = current_drt_vip(sched, task)

        # the array evaluator may mask out *every* candidate (each bound
        # already proves the plan cannot win) and return best=None; the
        # other evaluators always produce at least one plan
        if best is not None and best.ft < current_ft - _EPS:
            self._commit_transactional(sched, best)
            return

        if not opts.vip_follow:
            return
        if vip is None or sched.proc_of(vip) == pivot:
            return
        vip_proc = sched.proc_of(vip)
        for plan in plans:
            if plan.dst == vip_proc and plan.ft <= current_ft + _EPS:
                if self._commit_transactional(sched, plan):
                    self.stats.n_vip_migrations += 1
                return

    def _evaluate_candidates_pruned(
        self,
        sched: Schedule,
        task: TaskId,
        pivot: Proc,
        neighbors: List[Proc],
    ) -> Tuple[List[MigrationPlan], MigrationPlan, Optional[TaskId]]:
        """Evaluate candidate destinations with sound lower-bound pruning.

        Every plan's finish time satisfies ``ft >= DRT_lb +
        exec_cost(task, dst)``: each message arrives no earlier than its
        producer finishes plus (in the homogeneous-link shortest-route
        case) the queue-free store-and-forward chain over its exact hop
        count — hop durations and queueing delays are non-negative, and
        truncated incremental routes reuse hops settled after the
        producer. A candidate is skipped only when its bound exceeds the
        best evaluated finish time by more than ``_EPS``, which keeps the
        selected plan (and hence the schedule) bit-identical to
        exhaustive evaluation.

        Candidates are visited in ascending bound order so a strong
        incumbent is found early; the VIP's processor is always evaluated
        because the VIP-follow step needs its exact plan even when it
        cannot win on finish time.
        """
        opts = self.options
        system = self.system
        graph = system.graph
        slots = sched.slots
        topology = system.topology

        pred_info = [
            (sched.proc_of(k), slots[k].finish, graph.comm_cost(k, task))
            for k in graph.predecessors(task)
        ]
        # With homogeneous link factors AND uniform unit bandwidth every
        # hop of a message costs its nominal c_ij, and in "shortest" mode
        # the planned path has exactly dist(producer, dst) hops — so the
        # no-queueing arrival chain (see linkplan.arrival_lower_bound) is
        # a per-destination lower bound. Heterogeneous links, skewed
        # bandwidths (where a fast link makes hops *cheaper* than c_ij,
        # breaking the bound) or incremental routes fall back to the
        # producer-finish bound. Duplex mode is irrelevant: it only
        # changes queueing, which the bound already ignores.
        distance_bound = (
            opts.route_mode == "shortest"
            and system.link_mode is LinkHeterogeneity.HOMOGENEOUS
            and topology.uniform_bandwidth
        )
        finish_lb = 0.0
        for (_, f, _) in pred_info:
            if f > finish_lb:
                finish_lb = f

        vip: Optional[TaskId] = None
        vip_proc: Optional[Proc] = None
        if opts.vip_follow:
            _, vip = current_drt_vip(sched, task)
            if vip is not None:
                vip_proc = sched.proc_of(vip)

        exec_cost = system.exec_cost
        hop_distance = (
            (lambda p, nb: len(shortest_path(topology, p, nb)) - 1)
            if distance_bound else None
        )
        bounds = []
        for nb in neighbors:
            if distance_bound:
                drt_lb = arrival_lower_bound(pred_info, nb, hop_distance)
            else:
                drt_lb = finish_lb
            bounds.append((drt_lb + exec_cost(task, nb), nb))
        bounds.sort()

        plans: List[MigrationPlan] = []
        best: Optional[MigrationPlan] = None
        for bound, nb in bounds:
            # the EPS (1e-9) margin absorbs the evaluator's DRT_EPS
            # (1e-12) epsilon-max in DRT selection (both live in
            # util/tolerance.py); candidates inside the margin are simply
            # evaluated, so pruning never changes the selected plan
            if best is not None and nb != vip_proc and bound > best.ft + _EPS:
                self.stats.n_pruned += 1
                continue
            plan = evaluate_migration(
                sched, task, nb,
                insertion=opts.insertion, truncate=opts.truncate_routes,
                route_mode=opts.route_mode,
            )
            self.stats.n_evaluated += 1
            plans.append(plan)
            if best is None or (plan.ft, plan.dst) < (best.ft, best.dst):
                best = plan
        return plans, best, vip

    def _evaluate_candidates_array(
        self,
        sched: Schedule,
        task: TaskId,
        pivot: Proc,
        neighbors: List[Proc],
    ) -> Tuple[List[MigrationPlan], Optional[MigrationPlan], Optional[TaskId]]:
        """Batched candidate evaluation on the flat-array state.

        Per predecessor, one committed-state trie walk
        (:meth:`~repro.schedule.arraystate.ArrayState.arrival_bounds`)
        lower-bounds the message's arrival at *every* processor at once;
        a vectorized add of the task's execution-cost row turns those
        into per-candidate finish-time bounds, and boolean masks discard
        every candidate whose bound already proves its plan can neither
        beat the current finish time nor serve the VIP-follow step.
        Survivors are evaluated exactly, cheapest bound first, with the
        same incumbent prune as :meth:`_evaluate_candidates_pruned`.

        Soundness margin: the exact evaluator's DRT is an epsilon-max
        (within ``DRT_EPS`` = 1e-12 *below* the plain max), so a bound
        may overshoot the true plan finish time by at most ``DRT_EPS``;
        every mask and prune here leaves at least ``_EPS`` (1e-9) of
        slack, so a discarded candidate's exact plan provably loses every
        comparison ``_try_migrate`` performs — the selected migration
        (and the schedule) stays bit-identical to exhaustive evaluation.
        Unlike the distance bound in the pruned evaluator, the committed
        walk is valid for heterogeneous links and skewed bandwidths; it
        requires only shortest routes and the insertion slot policy
        (append-mode last-reservation finishes are not monotone under
        the planner's tentative extras), so the other ablations fall
        back to the pruned evaluator.
        """
        opts = self.options
        if opts.route_mode != "shortest" or not opts.insertion:
            return self._evaluate_candidates_pruned(sched, task, pivot, neighbors)

        import numpy as np

        from repro.schedule.arraystate import get_array_state

        system = self.system
        graph = system.graph
        slots = sched.slots
        state = get_array_state(system)

        vip: Optional[TaskId] = None
        vip_proc: Optional[Proc] = None
        if opts.vip_follow:
            _, vip = current_drt_vip(sched, task)
            if vip is not None:
                vip_proc = sched.proc_of(vip)

        current_ft = slots[task].finish
        proc_of = sched.proc_of

        drt_lb: Optional[np.ndarray] = None
        tl_memo: Dict = {}
        for k in graph.predecessors(task):
            kb = np.asarray(state.arrival_bounds(
                sched, (k, task), proc_of(k), slots[k].finish, opts.insertion,
                tl_memo,
            ))
            if drt_lb is None:
                drt_lb = kb
            else:
                np.maximum(drt_lb, kb, out=drt_lb)

        exec_row = state.exec_row(task)
        ft_bounds = exec_row if drt_lb is None else drt_lb + exec_row

        nb_arr = np.fromiter(neighbors, dtype=np.intp, count=len(neighbors))
        b = ft_bounds[nb_arr]
        keep = b < current_ft
        if vip_proc is not None:
            # the VIP-follow step needs the VIP processor's exact plan
            # whenever it could still tie the current finish time
            keep |= (nb_arr == vip_proc) & (b <= current_ft + 2 * _EPS)
        kept = int(np.count_nonzero(keep))
        self.stats.n_pruned += len(neighbors) - kept
        if kept == 0:
            return [], None, vip

        nb_kept = nb_arr[keep]
        b_kept = b[keep]
        # ascending (bound, dst) — the same visit order bounds.sort()
        # gives the pruned evaluator
        order = np.lexsort((nb_kept, b_kept))

        plans: List[MigrationPlan] = []
        best: Optional[MigrationPlan] = None
        for idx in order:
            nb = int(nb_kept[idx])
            if (
                best is not None
                and nb != vip_proc
                and b_kept[idx] > best.ft + _EPS
            ):
                self.stats.n_pruned += 1
                continue
            plan = evaluate_migration(
                sched, task, nb,
                insertion=opts.insertion, truncate=opts.truncate_routes,
                route_mode=opts.route_mode,
            )
            self.stats.n_evaluated += 1
            plans.append(plan)
            if best is None or (plan.ft, plan.dst) < (best.ft, best.dst):
                best = plan
        return plans, best, vip

    def _commit_transactional(self, sched: Schedule, plan: MigrationPlan) -> bool:
        """Commit a migration; revert and reject it if the resulting order
        constraints are contradictory (possible after multi-phase reroutes
        leave stale slot positions — rare, but must never corrupt state).

        Rollback machinery by engine mode: ``incremental`` records an
        undo log of the actual mutations (O(#mutations), no per-commit
        capture cost); ``fast`` captures a shallow container snapshot;
        ``legacy`` deep-copies the schedule.
        """
        if incremental_enabled():
            txn = sched.begin_txn()
            try:
                commit_migration(
                    sched, plan,
                    insertion=self.options.insertion,
                    truncate=self.options.truncate_routes,
                )
            except CycleError:
                txn.rollback()
                self.stats.n_rejected_migrations += 1
                return False
            sched.commit_txn()
            self.stats.n_migrations += 1
            return True

        if fast_path_enabled():
            snapshot = sched.snapshot()
            restore = sched.restore_snapshot
        else:
            snapshot = sched.copy()
            restore = sched.restore_from
        try:
            commit_migration(
                sched, plan,
                insertion=self.options.insertion,
                truncate=self.options.truncate_routes,
            )
        except CycleError:
            restore(snapshot)
            self.stats.n_rejected_migrations += 1
            return False
        self.stats.n_migrations += 1
        return True


def schedule_bsa(
    system: HeterogeneousSystem,
    options: Optional[BSAOptions] = None,
) -> Schedule:
    """Convenience wrapper: run BSA and return the schedule.

    The schedule is complete (every task placed, every message routed)
    and identical across the four ``REPRO_HOTPATH`` engine modes.

    >>> from repro.network.system import HeterogeneousSystem
    >>> from repro.network.topology import ring
    >>> from repro.workloads.suites import random_graph
    >>> system = HeterogeneousSystem.sample(
    ...     random_graph(12, seed=3), ring(4), seed=0)
    >>> schedule = schedule_bsa(system)
    >>> schedule.algorithm, len(schedule.slots)
    ('BSA', 12)
    """
    return BSAScheduler(system, options).run()
