"""Migration mechanics: candidate evaluation and committed moves (§2.3).

``evaluate_migration`` answers, without mutating anything: *if task* ``Ti``
*left the pivot for neighbor* ``Py``, *when would its messages arrive
(DRT), when could it start (ST), and when would it finish (FT)?* Message
finish times are computed against the current link timelines (the paper's
``ComputeMFT``), task start against the neighbor's processor timeline —
both with earliest-gap insertion (or pure append, for the ablation).

``commit_migration`` applies a chosen plan: the task slot moves, incoming
and outgoing routes are rebuilt, and a settle pass re-derives all times so
downstream occupants "bubble up" into freed space.

Route modes
-----------
* ``"incremental"`` — the ICPP text, literally: an incoming route is the
  historical path extended by the hop ``pivot -> neighbor`` (truncated
  when it would double back); outgoing routes get the reverse hop
  prepended. Routes *wander*: after several migrations a message may
  traverse many more links than the processor distance requires, paying
  full store-and-forward cost per hop.
* ``"shortest"`` (default) — whenever a task moves, its messages are
  re-routed over an on-demand BFS shortest path between the producer's
  and consumer's current processors (no precomputed routing table, per the
  paper's design goal). This realizes the paper's claim that migration
  yields "optimized routes"; with the literal incremental mode we measure
  per-route hop inflation up to ~1.2x and 2.7-3.8x longer schedules that
  invert the paper's BSA-vs-DLS results (see EXPERIMENTS.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SchedulingError
from repro.graph.model import TaskId
from repro.network.routing import shortest_path
from repro.network.topology import Proc, link_id
from repro.schedule.events import Edge
from repro.schedule.linkplan import LinkPlanner, slot_start
from repro.schedule.schedule import Schedule
from repro.schedule.settle import settle, settle_array, settle_incremental
from repro.util.intervals import array_enabled, incremental_enabled
from repro.util.tolerance import DRT_EPS

#: incoming-route plan kinds
_LOCAL, _TRUNCATE, _EXTEND, _REBUILD = "local", "truncate", "extend", "rebuild"

ROUTE_MODES = ("shortest", "incremental")


@dataclass
class InRoutePlan:
    """What happens to one incoming message if the migration commits."""

    kind: str                            # local | truncate | extend | rebuild
    path: Optional[List[Proc]]           # full new processor path (None = local)
    hop_starts: Optional[List[float]]    # starts for *new* hops (see kind)
    arrival: float                       # availability at the new processor


@dataclass
class MigrationPlan:
    """A fully evaluated candidate migration (not yet applied)."""

    task: TaskId
    src: Proc
    dst: Proc
    drt: float
    vip: Optional[TaskId]
    st: float
    ft: float
    route_mode: str
    in_plans: Dict[Edge, InRoutePlan] = field(default_factory=dict)


def current_drt_vip(sched: Schedule, task: TaskId) -> Tuple[float, Optional[TaskId]]:
    """Data-ready time and VIP of ``task`` in its *current* placement.

    The VIP (very important predecessor) is the predecessor whose message
    arrives last; ties (arrivals within ``DRT_EPS`` of the maximum)
    resolve to the earliest predecessor in graph order — which is *not*
    necessarily the first one ``graph.predecessors`` yields, since edge
    insertion order can differ from task insertion order (locked by
    ``tests/test_migration.py``'s diamond-graph tie test).
    """
    graph = sched.system.graph
    drt, vip = 0.0, None
    for k in graph.predecessors(task):
        arr = sched.arrival_time((k, task))
        if arr > drt + DRT_EPS:
            drt, vip = arr, k
        elif (
            vip is not None
            and arr >= drt - DRT_EPS
            and graph.task_index(k) < graph.task_index(vip)
        ):
            vip = k
    return drt, vip


def evaluate_migration(
    sched: Schedule,
    task: TaskId,
    dst: Proc,
    insertion: bool = True,
    truncate: bool = True,
    route_mode: str = "shortest",
) -> MigrationPlan:
    """Evaluate moving ``task`` from its current processor to ``dst``."""
    if route_mode not in ROUTE_MODES:
        raise ConfigurationError(f"route_mode must be one of {ROUTE_MODES}")
    system = sched.system
    graph = system.graph
    src = sched.proc_of(task)
    if src == dst:
        raise SchedulingError(f"task {task!r} is already on P{dst}")

    planner = LinkPlanner(sched, insertion)
    in_plans: Dict[Edge, InRoutePlan] = {}
    drt, vip = 0.0, None

    for k in graph.predecessors(task):
        edge = (k, task)
        producer_proc = sched.proc_of(k)
        if route_mode == "shortest":
            plan = _plan_in_shortest(sched, planner, edge, producer_proc, dst)
        else:
            plan = _plan_in_incremental(
                sched, planner, edge, producer_proc, src, dst, truncate
            )
        in_plans[edge] = plan
        if plan.arrival > drt + DRT_EPS:
            drt, vip = plan.arrival, k
        elif (
            vip is not None
            and plan.arrival >= drt - DRT_EPS
            and graph.task_index(k) < graph.task_index(vip)
        ):
            # same graph-order tie-break as current_drt_vip, so
            # MigrationPlan.vip agrees with the documented semantics
            vip = k

    cost = system.exec_cost(task, dst)
    st = slot_start(sched, dst, drt, cost, insertion)
    return MigrationPlan(
        task=task, src=src, dst=dst, drt=drt, vip=vip,
        st=st, ft=st + cost, route_mode=route_mode, in_plans=in_plans,
    )


def _plan_in_shortest(
    sched: Schedule,
    planner: LinkPlanner,
    edge: Edge,
    producer_proc: Proc,
    dst: Proc,
) -> InRoutePlan:
    """Fresh BFS route from the producer's processor to ``dst``."""
    producer_finish = sched.slots[edge[0]].finish
    if producer_proc == dst:
        return InRoutePlan(_LOCAL, None, None, producer_finish)
    path = shortest_path(sched.system.topology, producer_proc, dst)
    starts, arrival = planner.walk_path(edge, path, producer_finish)
    return InRoutePlan(_REBUILD, path, starts, arrival)


def _plan_in_incremental(
    sched: Schedule,
    planner: LinkPlanner,
    edge: Edge,
    producer_proc: Proc,
    src: Proc,
    dst: Proc,
    truncate: bool,
) -> InRoutePlan:
    """The ICPP text's route extension/truncation."""
    from repro.core.routes import new_incoming_path

    route = sched.routes.get(edge)
    old_path = route.procs if (route and not route.is_local) else None
    new_path = new_incoming_path(old_path, producer_proc, src, dst, truncate)

    if new_path is None:
        return InRoutePlan(_LOCAL, None, None, sched.slots[edge[0]].finish)
    if old_path is not None and len(new_path) < len(old_path):
        # truncated: the message already reaches dst partway along the route
        arrival = route.hops[len(new_path) - 2].finish
        return InRoutePlan(_TRUNCATE, new_path, None, arrival)
    # extended: one new hop src -> dst appended to the route
    ready = route.arrival if old_path is not None else sched.slots[edge[0]].finish
    duration = sched.system.comm_cost(edge, link_id(src, dst))
    start = planner.reserve(sched.system.topology.channel(src, dst), ready, duration)
    return InRoutePlan(_EXTEND, new_path, [start], start + duration)


def commit_migration(
    sched: Schedule,
    plan: MigrationPlan,
    insertion: bool = True,
    truncate: bool = True,
) -> None:
    """Apply ``plan`` to the schedule and settle times.

    In incremental hot-path mode the final settle recomputes only the
    affected cone, seeded by the transaction's mutation log (an
    anonymous transaction is opened if the caller didn't provide one);
    the schedule must therefore be settled on entry, which every BSA
    state is. Other modes run the full settle pass.
    """
    system = sched.system
    graph = system.graph
    task, src, dst = plan.task, plan.src, plan.dst
    if sched.proc_of(task) != src:
        raise SchedulingError(
            f"stale migration plan: {task!r} on P{sched.proc_of(task)}, plan expects P{src}"
        )

    own_txn = incremental_enabled() and sched.txn is None
    if own_txn:
        sched.begin_txn()
    try:
        # incoming messages ----------------------------------------------
        sched.remove_task(task)
        for edge, rp in plan.in_plans.items():
            route = sched.routes.get(edge)
            if rp.kind == _LOCAL:
                sched.mark_local(edge)
            elif rp.kind == _REBUILD:
                sched.set_route(edge, rp.path, hop_starts=rp.hop_starts)
            elif rp.kind == _TRUNCATE:
                starts = [h.start for h in route.hops[: len(rp.path) - 1]]
                sched.set_route(edge, rp.path, hop_starts=starts)
            else:  # extend
                starts = [h.start for h in route.hops] if (route and not route.is_local) else []
                sched.set_route(edge, rp.path, hop_starts=starts + rp.hop_starts)

        # outgoing messages ----------------------------------------------
        out_planner = LinkPlanner(sched, insertion)
        for j in graph.successors(task):
            if j not in sched.slots:
                continue  # partial schedules (not produced by BSA) tolerate this
            edge = (task, j)
            consumer_proc = sched.proc_of(j)
            if plan.route_mode == "shortest":
                _commit_out_shortest(sched, out_planner, edge, dst, consumer_proc, plan.ft)
            else:
                _commit_out_incremental(
                    sched, out_planner, edge, src, dst, consumer_proc, plan.ft, truncate
                )

        sched.place_task(task, dst, start=plan.st)
        txn = sched.txn
        if txn is not None and incremental_enabled():
            if array_enabled():
                settle_array(sched, txn.seed_tasks, txn.seed_hops)
            else:
                settle_incremental(sched, txn.seed_tasks, txn.seed_hops)
        else:
            settle(sched)
    finally:
        # an anonymous transaction must not leak; on error the schedule
        # stays partially mutated exactly as in the other modes — the
        # transactional caller (BSA) owns rollback, not us
        if own_txn and sched.txn is not None:
            sched.commit_txn()


def _commit_out_shortest(
    sched: Schedule,
    planner: LinkPlanner,
    edge: Edge,
    dst: Proc,
    consumer_proc: Proc,
    producer_finish: float,
) -> None:
    if consumer_proc == dst:
        sched.mark_local(edge)
        return
    path = shortest_path(sched.system.topology, dst, consumer_proc)
    starts, _ = planner.walk_path(edge, path, producer_finish)
    sched.set_route(edge, path, hop_starts=starts)


def _commit_out_incremental(
    sched: Schedule,
    planner: LinkPlanner,
    edge: Edge,
    src: Proc,
    dst: Proc,
    consumer_proc: Proc,
    producer_finish: float,
    truncate: bool,
) -> None:
    from repro.core.routes import new_outgoing_path

    route = sched.routes.get(edge)
    old_path = route.procs if (route and not route.is_local) else None
    new_path = new_outgoing_path(old_path, consumer_proc, src, dst, truncate)
    if new_path is None:
        sched.mark_local(edge)
    elif old_path is not None and len(new_path) < len(old_path):
        drop = len(old_path) - len(new_path)
        starts = [h.start for h in route.hops[drop:]]
        sched.set_route(edge, new_path, hop_starts=starts)
    else:
        # the prepended hop travels dst -> src (new proc toward old)
        duration = sched.system.comm_cost(edge, link_id(dst, src))
        start = planner.reserve(
            sched.system.topology.channel(dst, src), producer_finish, duration
        )
        old_starts = [h.start for h in route.hops] if old_path is not None else []
        sched.set_route(edge, new_path, hop_starts=[start] + old_starts)
