"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
* ``schedule``   — schedule one workload (generated, or an external
  graph file via ``--graph``) and print results;
* ``simulate``   — event-driven rescheduling: schedule a workload, then
  drive it through arrivals / processor failures / link failures (a
  seeded ``--scenario`` token or an ``--events`` trace JSON), printing
  repair-vs-replan quality per event;
* ``replay``     — audit a schedule bundle written by ``--export-bundle``
  (re-validate and summarize it);
* ``example``    — run the paper's worked example with a Gantt chart;
* ``run``        — execute an experiment sweep through the parallel
  engine (``--jobs N``) with progress and a summary report;
* ``pareto``     — multi-objective sweep: every algorithm on one
  workload, scored on makespan / energy / reliability / throughput,
  emitting the deterministic non-dominated front as JSON;
* ``experiment`` — regenerate a figure (fig3..fig7, runtime);
* ``convert``    — translate a task-graph file between the interchange
  formats (stg / dot / trace / json / dax / wfcommons), or normalize a
  topology file (``--topology``);
* ``corpus``     — scan / list / benchmark a whole directory of graph
  files (``scan``, ``ls``, ``bench``, ``report``) with cache-key-visible
  overlays (CCR / granularity / heterogeneity);
* ``ablation``   — compare BSA option variants on one workload;
* ``report``     — regenerate the full reproduction report;
* ``serve``      — run the scheduling service over HTTP (with
  ``GET /metrics`` and optional ``--log-file`` NDJSON request logs);
* ``profile``    — run one scheduling cell with the observability layer
  enabled and print the engine counter / span tables;
* ``trace``      — export a schedule bundle (or live span records) as
  Chrome ``chrome://tracing`` JSON;
* ``info``       — library / scale / cache information.

Flag choices (``--algorithm``, ``--topology``, ``--format``) are derived
from the live registries — ``ALGORITHM_NAMES`` / ``TOPOLOGY_NAMES`` in
:mod:`repro.experiments.config` and :data:`repro.graph.interchange.
FORMATS` — and a docs test pins the README to them.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.errors import ReproError


def _schedule_request_from_args(args):
    """The one CLI-flags -> :class:`ScheduleRequest` mapping (shared by
    ``schedule`` and, via the simulate variant, ``simulate``)."""
    from repro.service.requests import ScheduleRequest

    return ScheduleRequest(
        graph_path=args.graph, format=getattr(args, "format", None),
        bridge=args.bridge, workload=args.workload, size=args.size,
        granularity=args.granularity, topology=args.topology,
        topology_file=getattr(args, "topology_file", None),
        n_procs=args.procs, seed=args.seed, duplex=args.duplex,
        bandwidth_skew=args.bandwidth_skew, algorithm=args.algorithm,
    )


def _cmd_schedule(args) -> int:
    from repro.service.pipeline import execute

    if args.graph:
        ignored = [
            flag for flag, default in
            (("--workload", "random"), ("--size", 100), ("--granularity", 1.0))
            if getattr(args, flag.lstrip("-")) != default
        ]
        if ignored:
            print(f"note: generator flags ({', '.join(ignored)}) are ignored "
                  f"with --graph — the file's structure and costs are used "
                  f"verbatim", file=sys.stderr)
    resp = execute(_schedule_request_from_args(args),
                   want_schedule=bool(args.gantt))
    s = resp.summary
    print(f"workload : {s['graph']} ({s['n_tasks']} tasks, "
          f"{s['n_edges']} edges)")
    print(f"platform : {s['topology']}")
    print(f"algorithm: {s['algorithm']}")
    print(f"SL       : {s['schedule_length']:.1f}")
    print(f"comm     : {s['total_comm_cost']:.1f} over {s['n_hops']} hops")
    print(f"speedup  : {s['speedup']:.2f}  (efficiency {s['efficiency']:.2%})")
    if args.gantt:
        from repro.schedule.gantt import render_gantt

        print()
        print(render_gantt(resp.extra["schedule"], height=args.gantt_height))
    if args.export_bundle:
        # the response carries the canonical bundle bytes — the same
        # string the HTTP service returns for this request
        with open(args.export_bundle, "w") as fh:
            fh.write(resp.bundle_text)
        print(f"bundle written to {args.export_bundle} (audit with "
              f"`repro replay {args.export_bundle}`)", file=sys.stderr)
    return 0


def _cmd_simulate(args) -> int:
    from repro.service.pipeline import execute
    from repro.service.requests import SimulateRequest

    req = SimulateRequest(
        graph_path=args.graph, bridge=args.bridge, workload=args.workload,
        size=args.size, granularity=args.granularity,
        topology=args.topology, n_procs=args.procs, seed=args.seed,
        duplex=args.duplex, bandwidth_skew=args.bandwidth_skew,
        algorithm=args.algorithm, scenario=args.scenario,
        events_path=args.events, compare_replan=not args.no_replan,
    )
    resp = execute(req)
    s = resp.summary
    sim = resp.extra["sim"]
    print(f"workload : {s['graph']} ({s['n_tasks']} tasks, "
          f"{s['n_edges']} edges)")
    print(f"platform : {s['topology']}; algorithm {s['algorithm']}")
    source = args.events if args.events else f"scenario {args.scenario}"
    print(f"static SL: {s['static_sl']:.1f}; {s['n_events']} event(s) "
          f"from {source}")
    for r in sim.records:
        line = (f"  [{r.index}] t={r.time:<9.1f} {r.etype:<12} -> "
                f"{r.strategy:<6} moved={r.tasks_moved:<3} "
                f"rerouted={r.edges_rerouted:<3} SL={r.sl_after:.1f}")
        if r.sl_replan is not None:
            line += (f"  (replan SL {r.sl_replan:.1f}, "
                     f"ratio {r.sl_after / r.sl_replan:.3f})")
        print(line)
    print(f"final SL : {sim.schedule.schedule_length():.1f} "
          f"(validator-clean, committed prefix intact)")
    # wall-clock is machine telemetry, not part of the deterministic output
    if sim.timings:
        note = f"repair wall {sim.repair_wall_s * 1e3:.1f} ms"
        if sim.replan_wall_s is not None:
            note += f", replan oracle wall {sim.replan_wall_s * 1e3:.1f} ms"
        print(note, file=sys.stderr)
    if args.log:
        with open(args.log, "w") as fh:
            fh.write(sim.log_json())
        print(f"event log written to {args.log}", file=sys.stderr)
    if args.export_bundle:
        from repro.schedule.io import relabel_schedule, write_bundle

        write_bundle(relabel_schedule(sim.schedule), args.export_bundle, indent=2)
        print(f"bundle written to {args.export_bundle} (audit with "
              f"`repro replay {args.export_bundle}`)", file=sys.stderr)
    return 0


def _cmd_replay(args) -> int:
    from repro.errors import InvalidScheduleError, SchedulingError
    from repro.schedule.io import read_bundle
    from repro.schedule.metrics import compute_metrics
    from repro.schedule.validator import schedule_violations

    try:
        sched = read_bundle(args.bundle)
    except ValueError as exc:
        # malformed JSON surfaces like any other unusable bundle
        raise SchedulingError(f"{args.bundle}: {exc}") from None
    violations = schedule_violations(sched)
    if violations:
        # exits 1 through the error table (the audit verdict), with the
        # individual findings in the payload/detail
        raise InvalidScheduleError(violations)
    system = sched.system
    metrics = compute_metrics(sched)
    print(f"replay OK: {args.bundle}")
    print(f"workload : {system.graph.name} ({system.graph.n_tasks} tasks, "
          f"{system.graph.n_edges} edges)")
    print(f"platform : {system.topology.name}")
    print(f"algorithm: {sched.algorithm}")
    print(f"SL       : {metrics.schedule_length:.1f}")
    print(f"comm     : {metrics.total_comm_cost:.1f} over {metrics.n_hops} hops")
    if args.gantt:
        from repro.schedule.gantt import render_gantt

        print()
        print(render_gantt(sched, height=args.gantt_height))
    return 0


def _cmd_example(args) -> int:
    from repro.experiments.paper_example import run_paper_example

    result = run_paper_example()
    sel = result["selection"]
    print("Paper worked example (Figure 1 graph, Table 1 costs, 4-proc ring)")
    print(f"CP lengths per processor : {[round(x) for x in sel.cp_lengths]}")
    print(f"first pivot              : P{sel.pivot + 1} (index {sel.pivot})")
    print(f"serial order             : {', '.join(sel.serial_order)}")
    print(f"serialized SL on pivot   : {result['serial_schedule_length']:.0f}")
    print(f"BSA schedule length      : {result['metrics'].schedule_length:.0f}")
    print(f"total communication      : {result['metrics'].total_comm_cost:.0f}")
    print(f"migrations               : {result['stats'].n_migrations} "
          f"(of which VIP-follow: {result['stats'].n_vip_migrations})")
    print()
    print(result["gantt"])
    return 0


def _cmd_run(args) -> int:
    """Execute a sweep through the parallel engine and report."""
    from repro.experiments.config import SCALES, current_scale
    from repro.experiments.figures import figure_cells
    from repro.experiments.runner import run_cells

    scale = SCALES[args.scale] if args.scale else current_scale()
    # runtime first: its cells overlap fig4/fig6's, and computing them in
    # a later parallel sweep would cache contention-inflated runtimes
    names = (
        ["runtime", "fig3", "fig4", "fig5", "fig6", "fig7"]
        if args.sweep == "all" else [args.sweep]
    )
    failed = False
    for name in names:
        cells = figure_cells(name, scale=scale)
        # runtime cells are timing measurements: computing them under
        # pool contention would cache inflated runtimes, so they always
        # run serially regardless of --jobs
        jobs = 1 if name == "runtime" else args.jobs
        note = " (serial: timing sweep)" if (name == "runtime" and args.jobs > 1) else ""
        print(f"sweep {name} @ scale {scale.name}: "
              f"{len(cells)} cells, jobs={jobs}{note}")
        _, report = run_cells(
            cells,
            jobs=jobs,
            use_cache=not args.no_cache,
            progress=lambda msg: print(f"  {msg}"),
            raise_on_error=False,  # failures are rendered in the summary
        )
        print(report.summary())
        failed = failed or bool(report.failures)
    return 1 if failed else 0


def _cmd_pareto(args) -> int:
    from repro.service.pipeline import execute
    from repro.service.requests import ParetoRequest

    req = ParetoRequest(
        workload=args.workload, size=args.size,
        granularity=args.granularity, topology=args.topology,
        n_procs=args.procs, seed=args.seed, duplex=args.duplex,
        bandwidth_skew=args.bandwidth_skew,
        algorithms=tuple(args.algorithms or ()),
        objectives=tuple(args.objectives or ()),
    )
    say = lambda msg: print(f"  {msg}", file=sys.stderr)  # noqa: E731
    resp = execute(req, jobs=args.jobs,
                   use_cache=not args.no_cache, progress=say)
    front = ", ".join(resp.summary["front"])
    print(f"front: {front} "
          f"({len(resp.summary['front'])}/{len(resp.summary['points'])} "
          f"non-dominated)", file=sys.stderr)
    # stdout carries only the canonical artifact — the same bytes
    # `POST /pareto` returns for this request
    print(resp.bundle_text, end="")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(resp.bundle_text)
        print(f"pareto artifact written to {args.out}", file=sys.stderr)
    return 0


def _cmd_experiment(args) -> int:
    from repro.experiments import figures as F
    from repro.experiments.reporting import (
        render_figure,
        render_improvement_summary,
        render_panels,
    )
    from repro.experiments.config import SCALES

    scale = SCALES[args.scale] if args.scale else None
    name = args.figure
    if name in ("fig3", "fig4", "fig5", "fig6"):
        fn = {"fig3": F.figure3, "fig4": F.figure4,
              "fig5": F.figure5, "fig6": F.figure6}[name]
        panels = fn(scale=scale, jobs=args.jobs)
        print(render_panels(panels))
        print()
        print(render_improvement_summary(panels))
    elif name == "fig7":
        print(render_figure(F.figure7(scale=scale, jobs=args.jobs)))
    elif name == "runtime":
        print(render_figure(F.runtime_study(scale=scale, jobs=args.jobs), ndigits=3))
    else:
        print(f"unknown figure {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_ablation(args) -> int:
    from repro.experiments.config import Cell
    from repro.experiments.runner import _SCHEDULERS, build_cell_system
    from repro.schedule.validator import validate_schedule
    from repro.util.tables import format_table

    cell = Cell(
        suite="random", app="random", size=args.size,
        granularity=args.granularity, topology=args.topology,
        algorithm="bsa", graph_seed=args.seed, system_seed=args.seed,
        duplex=args.duplex, bandwidth_skew=args.bandwidth_skew,
    )
    system = build_cell_system(cell)
    rows = []
    base_sl = None
    for name, scheduler in _SCHEDULERS.items():
        sched = scheduler(system)
        validate_schedule(sched)
        sl = sched.schedule_length()
        if name == "bsa":
            base_sl = sl
        rows.append([name, sl, None])
    rows = [[name, sl, sl / base_sl] for name, sl, _ in rows]
    print(format_table(
        ["variant", "SL", "vs bsa"],
        rows,
        title=(f"ablation — random n={args.size}, {args.topology}16, "
               f"g={args.granularity:g}, seed={args.seed}"),
        ndigits=3,
    ))
    return 0


def _cmd_convert(args) -> int:
    from repro.service.pipeline import execute
    from repro.service.requests import ConvertRequest

    req = ConvertRequest(
        src=args.src, dst=args.dst,
        from_fmt=args.from_fmt, to_fmt=args.to_fmt,
        validate_graph=not args.no_validate,
        require_connected=not args.allow_disconnected,
        bridge=args.bridge,
        default_comm=args.default_comm, default_cost=args.default_cost,
        topology=args.topology,
    )
    resp = execute(req)
    s = resp.summary
    if s["mode"] == "topology":
        print(f"{args.src} -> {args.dst}: topology {s['topology']} — "
              f"{s['n_procs']} processors, {s['n_links']} links")
        return 0
    vectors = (
        f", {s['n_procs']}-processor cost vectors" if s["n_procs"] else ""
    )
    if s["to"] != "trace" and s["n_procs"]:
        print(f"note: {s['to']!r} cannot carry per-processor cost vectors; "
              f"only the nominal graph was written", file=sys.stderr)
    print(f"{args.src} ({s['from']}) -> {args.dst} ({s['to']}): "
          f"{s['graph']} — {s['n_tasks']} tasks, {s['n_edges']} edges{vectors}")
    return 0


def _corpus_overlays(args):
    from repro.corpus.overlays import overlay_grid

    return overlay_grid(
        ccrs=args.ccr or (),
        granularities=args.granularity or (),
        het_ranges=[tuple(h) for h in (args.het or [])],
        het_seed=args.het_seed,
    )


def _cmd_corpus_scan(args) -> int:
    from repro.corpus.manifest import scan_corpus

    manifest = scan_corpus(args.dir)
    if args.out:
        manifest.save(args.out)
        print(f"manifest of {len(manifest)} file(s) written to {args.out}")
    else:
        print(manifest.to_json())
    return 0


def _cmd_corpus_ls(args) -> int:
    from repro.corpus.manifest import scan_corpus
    from repro.util.tables import format_table

    manifest = scan_corpus(args.dir)
    rows = [
        [
            e.path, e.fmt, e.n_tasks, e.n_edges, e.components,
            e.ccr, e.n_procs if e.n_procs is not None else "-",
            e.content_hash[:12],
        ]
        for e in manifest.entries
    ]
    print(format_table(
        ["file", "format", "tasks", "edges", "components", "ccr", "procs",
         "content"],
        rows,
        title=f"corpus {manifest.directory} — {len(manifest)} graph file(s)",
        ndigits=3,
    ))
    return 0


def _run_corpus_bench(args, telemetry: bool) -> int:
    from repro import obs
    from repro.corpus.bench import corpus_bench
    from repro.util.intervals import hotpath_mode

    say = (lambda msg: obs.telemetry(f"  {msg}")) if telemetry else None
    report_text, sweep = corpus_bench(
        args.dir,
        overlays=_corpus_overlays(args),
        topologies=tuple(args.topologies),
        algorithms=tuple(args.algorithms),
        n_procs=args.procs,
        system_seed=args.seed,
        jobs=args.jobs,
        use_cache=not getattr(args, "no_cache", False),
        progress=say,
        objectives=",".join(args.objectives or ()),
    )
    if telemetry:
        # execution telemetry (timings, cache hits) goes to stderr: the
        # stdout/--out report is the deterministic artifact
        obs.telemetry(sweep.summary())
    # cache provenance is telemetry too — stderr keeps the report
    # byte-identical across library versions, engine modes, and job
    # counts
    obs.telemetry(
        f"provenance: repro {__version__}, engine {hotpath_mode()}, "
        f"jobs {max(1, args.jobs)}, {sweep.stale} stale cache entr"
        f"{'y' if sweep.stale == 1 else 'ies'} recomputed"
    )
    print(report_text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report_text + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    return 1 if sweep.failures else 0


def _cmd_corpus_bench(args) -> int:
    return _run_corpus_bench(args, telemetry=True)


def _cmd_corpus_report(args) -> int:
    return _run_corpus_bench(args, telemetry=False)


def _cmd_report(args) -> int:
    from repro.experiments.config import SCALES
    from repro.experiments.report import generate_report

    scale = SCALES[args.scale] if args.scale else None
    text = generate_report(scale=scale, include_example=not args.no_example)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_serve(args) -> int:
    import os

    from repro.service.http import serve

    api_key = args.api_key or os.environ.get("REPRO_API_KEY") or None
    return serve(
        host=args.host, port=args.port, api_key=api_key, jobs=args.jobs,
        async_threshold=args.async_threshold,
        use_cache=not args.no_cache,
        log_file=args.log_file, obs_counters=args.obs,
    )


def _cmd_trace(args) -> int:
    import json

    from repro.errors import SchedulingError
    from repro.obs.chrometrace import schedule_trace, trace_to_json

    try:
        with open(args.bundle) as fh:
            data = json.load(fh)
    except ValueError as exc:
        raise SchedulingError(f"{args.bundle}: {exc}") from None
    doc = schedule_trace(data)
    text = trace_to_json(doc)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        n = len(doc["traceEvents"])
        print(f"chrome trace ({n} events) written to {args.out} — open "
              f"via chrome://tracing or https://ui.perfetto.dev",
              file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_profile(args) -> int:
    from repro import obs
    from repro.service.pipeline import execute
    from repro.util.tables import format_table

    obs.enable()
    obs.reset()
    obs.reset_spans()
    resp = execute(_schedule_request_from_args(args), use_cache=False)
    s = resp.summary
    print(f"profile  : {s['graph']} ({s['n_tasks']} tasks) on "
          f"{s['topology']}, algorithm {s['algorithm']}")
    print(f"SL       : {s['schedule_length']:.1f}  "
          f"(wall {resp.extra['wall_ms']:.1f} ms)")
    print()
    snap = obs.snapshot()
    print(format_table(
        ["counter", "value"],
        [[name, value] for name, value in snap.items() if value],
        title="engine counters (deterministic; zero-valued omitted)",
    ))
    spans: dict = {}
    order: list = []
    for rec in obs.span_records():
        name = rec["name"]
        if name not in spans:
            spans[name] = [0, 0.0]
            order.append(name)
        spans[name][0] += 1
        spans[name][1] += rec["dur_s"]
    print()
    print(format_table(
        ["span", "count", "total ms", "mean ms"],
        [
            [name, n, total * 1e3, total * 1e3 / n]
            for name, (n, total) in ((k, spans[k]) for k in order)
        ],
        title="spans (wall-clock; machine telemetry)",
        ndigits=3,
    ))
    if args.trace:
        from repro.obs.chrometrace import spans_to_trace, trace_to_json

        doc = spans_to_trace(obs.span_records(), counters=snap)
        with open(args.trace, "w") as fh:
            fh.write(trace_to_json(doc))
        print(f"span trace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_info(args) -> int:
    import os

    from repro.experiments.cache import default_cache
    from repro.experiments.config import current_scale

    scale = current_scale()
    cache = default_cache()
    from repro.graph.interchange import format_names

    print(f"repro {__version__} — BSA/DLS reproduction (Kwok & Ahmad, ICPP 1999)")
    print(f"scale     : {scale.name} (REPRO_SCALE={os.environ.get('REPRO_SCALE', '<unset>')})")
    print(f"  sizes        : {list(scale.sizes)}")
    print(f"  granularities: {list(scale.granularities)}")
    print(f"  topologies   : {list(scale.topologies)}")
    print(f"  algorithms   : {list(scale.algorithms)}")
    print(f"cache     : {cache.path} ({len(cache)} cells)")
    print(f"formats   : {', '.join(format_names())} "
          f"(repro convert / repro schedule --graph)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    # flag choices come from the live registries so the CLI can never
    # drift from what the library actually accepts (docs-tested)
    from repro.experiments.config import ALGORITHM_NAMES, TOPOLOGY_NAMES
    from repro.graph.interchange import format_names
    from repro.objectives.registry import OBJECTIVE_NAMES

    parser = argparse.ArgumentParser(
        prog="repro",
        description="BSA link-contention scheduling reproduction (Kwok & Ahmad, ICPP 1999)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument("--json", dest="json_errors", action="store_true",
                        help="on failure, print the structured error "
                             "payload {error, kind, detail, violations?} "
                             "as JSON on stdout instead of prose on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="schedule one workload")
    p.add_argument("--algorithm", "-a", default="bsa",
                   choices=list(ALGORITHM_NAMES))
    p.add_argument("--workload", "-w", default="random",
                   choices=["random", "gauss", "lu", "laplace", "mva"])
    p.add_argument("--graph", metavar="FILE", default=None,
                   help="schedule this task-graph file instead of a "
                        "generated workload (stg/dot/trace/json; format "
                        "sniffed unless --format is given). Trace files "
                        "with per-processor cost vectors bind their own "
                        "heterogeneity and pin the processor count")
    p.add_argument("--format", default=None, choices=list(format_names()),
                   help="interchange format of --graph (default: sniff)")
    p.add_argument("--bridge", default="none",
                   choices=["none", "epsilon", "components"],
                   help="repair a disconnected --graph import: 'epsilon' "
                        "inserts minimal-cost connector edges, 'components' "
                        "co-schedules the weak components as independent "
                        "programs (default: reject it)")
    p.add_argument("--size", "-n", type=int, default=100)
    p.add_argument("--granularity", "-g", type=float, default=1.0)
    p.add_argument("--topology", "-t", default="hypercube",
                   choices=list(TOPOLOGY_NAMES))
    p.add_argument("--topology-file", metavar="FILE", default=None,
                   help="schedule on the platform in this repro-topology "
                        "JSON file (see `repro convert --topology`) instead "
                        "of a built-in --topology family; the file pins the "
                        "processor count and link specs")
    p.add_argument("--procs", "-p", type=int, default=None,
                   help="processor count (default: 16, or the vector "
                        "length of a --graph trace file)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duplex", default="half", choices=["half", "full"],
                   help="link duplex mode: 'half' shares one timeline per "
                        "link (paper default), 'full' gives each direction "
                        "its own timeline")
    p.add_argument("--bandwidth-skew", type=float, default=1.0,
                   help="sample per-link bandwidth from U[1, SKEW] "
                        "(default 1.0 = the paper's uniform links); hop "
                        "duration is comm cost / bandwidth")
    p.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p.add_argument("--gantt-height", type=int, default=40)
    p.add_argument("--export-bundle", metavar="FILE", default=None,
                   help="write the validated schedule as a self-contained "
                        "JSON bundle (audit it with `repro replay`)")
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser(
        "simulate",
        help="event-driven rescheduling: arrivals and failures against a "
             "static schedule, with prefix-preserving repair",
    )
    p.add_argument("--algorithm", "-a", default="bsa",
                   choices=list(ALGORITHM_NAMES))
    p.add_argument("--workload", "-w", default="random",
                   choices=["random", "gauss", "lu", "laplace", "mva"])
    p.add_argument("--graph", metavar="FILE", default=None,
                   help="simulate on this task-graph file instead of a "
                        "generated workload")
    p.add_argument("--bridge", default="none",
                   choices=["none", "epsilon", "components"],
                   help="repair a disconnected --graph import")
    p.add_argument("--size", "-n", type=int, default=100)
    p.add_argument("--granularity", "-g", type=float, default=1.0)
    p.add_argument("--topology", "-t", default="hypercube",
                   choices=list(TOPOLOGY_NAMES))
    p.add_argument("--procs", "-p", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duplex", default="half", choices=["half", "full"])
    p.add_argument("--bandwidth-skew", type=float, default=1.0)
    p.add_argument("--scenario", default="f1a1s0",
                   help="seeded injection token "
                        "f<proc-failures>l<link-failures>a<arrivals>s<seed> "
                        "(default: f1a1s0); ignored with --events")
    p.add_argument("--events", metavar="FILE", default=None,
                   help="read events from this repro-event-trace JSON file "
                        "instead of injecting --scenario")
    p.add_argument("--no-replan", action="store_true",
                   help="skip the full-tail replan oracle (faster; no "
                        "repair-vs-replan quality columns)")
    p.add_argument("--log", metavar="FILE", default=None,
                   help="write the deterministic event log JSON to FILE")
    p.add_argument("--export-bundle", metavar="FILE", default=None,
                   help="write the final schedule as a JSON bundle "
                        "(audit it with `repro replay`)")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "replay",
        help="re-validate and summarize a schedule bundle "
             "(from `--export-bundle`)",
    )
    p.add_argument("bundle", help="schedule bundle JSON file")
    p.add_argument("--gantt", action="store_true",
                   help="print an ASCII Gantt chart")
    p.add_argument("--gantt-height", type=int, default=40)
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("example", help="run the paper's worked example")
    p.set_defaults(func=_cmd_example)

    p = sub.add_parser("run", help="execute an experiment sweep (parallel)")
    p.add_argument("sweep", nargs="?", default="all",
                   choices=["fig3", "fig4", "fig5", "fig6", "fig7",
                            "runtime", "all"])
    p.add_argument("--scale", choices=["smoke", "default", "full"], default=None)
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes (default: 1, serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every cell, ignore and skip the cache")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "pareto",
        help="multi-objective sweep: every algorithm on one workload, "
             "scored on makespan/energy/reliability/throughput, with "
             "the deterministic non-dominated front",
    )
    p.add_argument("--workload", "-w", default="random",
                   choices=["random", "gauss", "lu", "laplace", "mva"])
    p.add_argument("--size", "-n", type=int, default=100)
    p.add_argument("--granularity", "-g", type=float, default=1.0)
    p.add_argument("--topology", "-t", default="hypercube",
                   choices=list(TOPOLOGY_NAMES))
    p.add_argument("--procs", "-p", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duplex", default="half", choices=["half", "full"])
    p.add_argument("--bandwidth-skew", type=float, default=1.0)
    p.add_argument("--algorithms", "-a", nargs="+", default=None,
                   choices=list(ALGORITHM_NAMES),
                   help="schedulers to compare (default: all)")
    p.add_argument("--objectives", "-O", nargs="+", default=None,
                   choices=list(OBJECTIVE_NAMES),
                   help="objectives to score (default: all; at least two)")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes (default: 1, serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every point, ignore and skip the cache")
    p.add_argument("--out", "-o", default=None,
                   help="also write the artifact JSON to this file")
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser("experiment", help="regenerate a figure")
    p.add_argument("figure", choices=["fig3", "fig4", "fig5", "fig6", "fig7", "runtime"])
    p.add_argument("--scale", choices=["smoke", "default", "full"], default=None)
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes for the cell sweep")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "convert", help="translate a task-graph file between formats"
    )
    p.add_argument("src", help="input graph file")
    p.add_argument("dst", help="output graph file")
    p.add_argument("--from", dest="from_fmt", default=None,
                   choices=list(format_names()),
                   help="input format (default: sniff content/extension)")
    p.add_argument("--to", dest="to_fmt", default=None,
                   choices=list(format_names()),
                   help="output format (default: from the dst extension)")
    p.add_argument("--default-comm", type=float, default=None,
                   help="communication cost for edges the input format "
                        "does not annotate (stg/dot; default 1.0 for stg)")
    p.add_argument("--default-cost", type=float, default=None,
                   help="execution cost for DOT nodes without a cost "
                        "attribute or numeric label")
    p.add_argument("--no-validate", action="store_true",
                   help="skip the structural (DAG/connectivity) check")
    p.add_argument("--allow-disconnected", action="store_true",
                   help="accept graphs that are not weakly connected")
    p.add_argument("--bridge", default="none",
                   choices=["none", "epsilon", "components"],
                   help="repair a disconnected import before validation: "
                        "'epsilon' inserts minimal-cost connector edges, "
                        "'components' marks the weak components as "
                        "independent co-scheduled programs")
    p.add_argument("--topology", action="store_true",
                   help="treat SRC/DST as repro-topology JSON platform "
                        "files (validate + normalize) instead of task graphs")
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser(
        "corpus",
        help="scan and benchmark a directory of graph files",
    )
    corpus_sub = p.add_subparsers(dest="corpus_command", required=True)

    def _add_corpus_dir(sp):
        sp.add_argument("dir", nargs="?", default=None,
                        help="corpus directory (default: examples/corpus)")

    ps = corpus_sub.add_parser(
        "scan", help="scan a corpus into a content-hashed JSON manifest"
    )
    _add_corpus_dir(ps)
    ps.add_argument("--out", "-o", default=None,
                    help="write the manifest JSON to this file")
    ps.set_defaults(func=_cmd_corpus_scan)

    ps = corpus_sub.add_parser(
        "ls", help="list a corpus (format, sizes, CCR, components, hash)"
    )
    _add_corpus_dir(ps)
    ps.set_defaults(func=_cmd_corpus_ls)

    def _add_corpus_sweep_flags(sp):
        _add_corpus_dir(sp)
        sp.add_argument("--topologies", "-t", nargs="+",
                        default=["ring", "hypercube"],
                        choices=list(TOPOLOGY_NAMES),
                        help="topology families to sweep (default: ring "
                             "hypercube)")
        sp.add_argument("--algorithms", "-a", nargs="+",
                        default=list(ALGORITHM_NAMES),
                        choices=list(ALGORITHM_NAMES),
                        help="schedulers to compare (default: all)")
        sp.add_argument("--procs", "-p", type=int, default=8,
                        help="processor count for scalar files (trace-like "
                             "files pin their own; default: 8)")
        sp.add_argument("--seed", type=int, default=0,
                        help="system seed for sampled heterogeneity")
        sp.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (default: 1, serial)")
        sp.add_argument("--ccr", type=float, nargs="*", default=None,
                        help="overlay axis: rescale each file's comm costs "
                             "to these CCR targets")
        sp.add_argument("--granularity", "-g", type=float, nargs="*",
                        default=None,
                        help="overlay axis: multiply comm costs by these "
                             "factors")
        sp.add_argument("--het", type=float, nargs=2, action="append",
                        metavar=("LO", "HI"), default=None,
                        help="overlay axis: re-sample exec vectors from "
                             "U[LO, HI] (vector files; scalar files route "
                             "through the cell het axes); repeatable")
        sp.add_argument("--het-seed", type=int, default=0,
                        help="seed of the heterogeneity overlay re-sample")
        sp.add_argument("--objectives", "-O", nargs="+", default=None,
                        choices=list(OBJECTIVE_NAMES),
                        help="also score these objectives per cell and "
                             "append the per-criterion mean table")
        sp.add_argument("--out", "-o", default=None,
                        help="also write the aggregate report to this file")

    ps = corpus_sub.add_parser(
        "bench",
        help="run the corpus sweep (with progress/telemetry on stderr) "
             "and print the deterministic aggregate ordering report",
    )
    _add_corpus_sweep_flags(ps)
    ps.add_argument("--no-cache", action="store_true",
                    help="recompute every cell, ignore and skip the cache")
    ps.set_defaults(func=_cmd_corpus_bench)

    ps = corpus_sub.add_parser(
        "report",
        help="render the aggregate ordering report (serving cached cells, "
             "computing only what is missing; no telemetry)",
    )
    _add_corpus_sweep_flags(ps)
    ps.set_defaults(func=_cmd_corpus_report)

    p = sub.add_parser("ablation", help="compare BSA option variants on one workload")
    p.add_argument("--size", "-n", type=int, default=60)
    p.add_argument("--granularity", "-g", type=float, default=1.0)
    p.add_argument("--topology", "-t", default="hypercube",
                   choices=list(TOPOLOGY_NAMES))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duplex", default="half", choices=["half", "full"],
                   help="link duplex mode (see 'schedule --duplex')")
    p.add_argument("--bandwidth-skew", type=float, default=1.0,
                   help="per-link bandwidth drawn from U[1, SKEW]")
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("report", help="regenerate the full reproduction report")
    p.add_argument("--scale", choices=["smoke", "default", "full"], default=None)
    p.add_argument("--out", "-o", default=None,
                   help="write markdown to this file (default: stdout)")
    p.add_argument("--no-example", action="store_true",
                   help="skip the worked example section")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "serve",
        help="run the scheduling service over HTTP (stdlib-only): "
             "/health /version /schedule /convert /sweep /pareto "
             "/jobs/<id>",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8321,
                   help="TCP port (default: 8321; 0 picks a free port)")
    p.add_argument("--api-key", default=None,
                   help="require this X-API-Key header on every request "
                        "except /health (default: the REPRO_API_KEY env "
                        "var, or no gating)")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes for /sweep grids (default: 1)")
    p.add_argument("--async-threshold", type=int, default=8,
                   help="sweeps larger than this many cells return 202 + "
                        "a job id to poll at /jobs/<id> (default: 8)")
    p.add_argument("--no-cache", action="store_true",
                   help="compute every request fresh; never read or "
                        "write the result cache")
    p.add_argument("--log-file", metavar="FILE", default=None,
                   help="append one NDJSON record per request (method, "
                        "path, status, wall_ms, cache disposition) to "
                        "FILE")
    p.add_argument("--obs", action="store_true",
                   help="enable the deterministic engine counters so "
                        "GET /metrics reports live scheduler totals "
                        "(small overhead; responses stay byte-identical)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace",
        help="export a schedule bundle as Chrome chrome://tracing JSON "
             "(processors as threads, message hops as flow arrows)",
    )
    p.add_argument("bundle", help="schedule bundle JSON file "
                                  "(from `--export-bundle`)")
    p.add_argument("--out", "-o", default=None,
                   help="write the trace JSON to this file "
                        "(default: stdout)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run one scheduling cell with observability enabled and "
             "print the engine counter / span tables",
    )
    p.add_argument("--algorithm", "-a", default="bsa",
                   choices=list(ALGORITHM_NAMES))
    p.add_argument("--workload", "-w", default="random",
                   choices=["random", "gauss", "lu", "laplace", "mva"])
    p.add_argument("--graph", metavar="FILE", default=None,
                   help="profile this task-graph file instead of a "
                        "generated workload")
    p.add_argument("--size", "-n", type=int, default=100)
    p.add_argument("--granularity", "-g", type=float, default=1.0)
    p.add_argument("--topology", "-t", default="hypercube",
                   choices=list(TOPOLOGY_NAMES))
    p.add_argument("--procs", "-p", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="also write the recorded spans as Chrome trace "
                        "JSON to FILE")
    p.set_defaults(func=_cmd_profile,
                   duplex="half", bandwidth_skew=1.0, bridge="none",
                   format=None, topology_file=None)

    p = sub.add_parser("info", help="library and scale information")
    p.set_defaults(func=_cmd_info)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as exc:
        # every library failure exits through the service error table:
        # one documented exit code per error class, and an optional
        # machine-readable payload (repro --json ...)
        from repro.service.errors import error_payload, exit_code_for

        payload = error_payload(exc)
        if getattr(args, "json_errors", False):
            import json

            print(json.dumps(payload, indent=2))
        else:
            print(f"repro {args.command}: {payload['detail']}",
                  file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
