"""Command-line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
* ``schedule``   — schedule one generated workload and print results;
* ``example``    — run the paper's worked example with a Gantt chart;
* ``run``        — execute an experiment sweep through the parallel
  engine (``--jobs N``) with progress and a summary report;
* ``experiment`` — regenerate a figure (fig3..fig7, runtime);
* ``info``       — library / scale / cache information.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _cmd_schedule(args) -> int:
    from repro.experiments.config import Cell
    from repro.experiments.runner import build_cell_system
    from repro.baselines import schedule_cpop, schedule_dls, schedule_heft
    from repro.core.bsa import BSAOptions, schedule_bsa
    from repro.schedule.gantt import render_gantt
    from repro.schedule.metrics import compute_metrics
    from repro.schedule.validator import validate_schedule

    suite = "regular" if args.workload != "random" else "random"
    cell = Cell(
        suite=suite, app=args.workload, size=args.size,
        granularity=args.granularity, topology=args.topology,
        algorithm=args.algorithm, n_procs=args.procs,
        graph_seed=args.seed, system_seed=args.seed,
        duplex=args.duplex, bandwidth_skew=args.bandwidth_skew,
    )
    system = build_cell_system(cell)
    schedulers = {
        "bsa": lambda s: schedule_bsa(s, BSAOptions(seed=args.seed)),
        "dls": schedule_dls,
        "heft": schedule_heft,
        "cpop": schedule_cpop,
    }
    sched = schedulers[args.algorithm](system)
    validate_schedule(sched)
    metrics = compute_metrics(sched)
    print(f"workload : {system.graph.name} ({system.graph.n_tasks} tasks, "
          f"{system.graph.n_edges} edges)")
    print(f"platform : {system.topology.name}")
    print(f"algorithm: {sched.algorithm}")
    print(f"SL       : {metrics.schedule_length:.1f}")
    print(f"comm     : {metrics.total_comm_cost:.1f} over {metrics.n_hops} hops")
    print(f"speedup  : {metrics.speedup:.2f}  (efficiency {metrics.efficiency:.2%})")
    if args.gantt:
        print()
        print(render_gantt(sched, height=args.gantt_height))
    return 0


def _cmd_example(args) -> int:
    from repro.experiments.paper_example import run_paper_example

    result = run_paper_example()
    sel = result["selection"]
    print("Paper worked example (Figure 1 graph, Table 1 costs, 4-proc ring)")
    print(f"CP lengths per processor : {[round(x) for x in sel.cp_lengths]}")
    print(f"first pivot              : P{sel.pivot + 1} (index {sel.pivot})")
    print(f"serial order             : {', '.join(sel.serial_order)}")
    print(f"serialized SL on pivot   : {result['serial_schedule_length']:.0f}")
    print(f"BSA schedule length      : {result['metrics'].schedule_length:.0f}")
    print(f"total communication      : {result['metrics'].total_comm_cost:.0f}")
    print(f"migrations               : {result['stats'].n_migrations} "
          f"(of which VIP-follow: {result['stats'].n_vip_migrations})")
    print()
    print(result["gantt"])
    return 0


def _cmd_run(args) -> int:
    """Execute a sweep through the parallel engine and report."""
    from repro.experiments.config import SCALES, current_scale
    from repro.experiments.figures import figure_cells
    from repro.experiments.runner import run_cells

    scale = SCALES[args.scale] if args.scale else current_scale()
    # runtime first: its cells overlap fig4/fig6's, and computing them in
    # a later parallel sweep would cache contention-inflated runtimes
    names = (
        ["runtime", "fig3", "fig4", "fig5", "fig6", "fig7"]
        if args.sweep == "all" else [args.sweep]
    )
    failed = False
    for name in names:
        cells = figure_cells(name, scale=scale)
        # runtime cells are timing measurements: computing them under
        # pool contention would cache inflated runtimes, so they always
        # run serially regardless of --jobs
        jobs = 1 if name == "runtime" else args.jobs
        note = " (serial: timing sweep)" if (name == "runtime" and args.jobs > 1) else ""
        print(f"sweep {name} @ scale {scale.name}: "
              f"{len(cells)} cells, jobs={jobs}{note}")
        _, report = run_cells(
            cells,
            jobs=jobs,
            use_cache=not args.no_cache,
            progress=lambda msg: print(f"  {msg}"),
            raise_on_error=False,  # failures are rendered in the summary
        )
        print(report.summary())
        failed = failed or bool(report.failures)
    return 1 if failed else 0


def _cmd_experiment(args) -> int:
    from repro.experiments import figures as F
    from repro.experiments.reporting import (
        render_figure,
        render_improvement_summary,
        render_panels,
    )
    from repro.experiments.config import SCALES

    scale = SCALES[args.scale] if args.scale else None
    name = args.figure
    if name in ("fig3", "fig4", "fig5", "fig6"):
        fn = {"fig3": F.figure3, "fig4": F.figure4,
              "fig5": F.figure5, "fig6": F.figure6}[name]
        panels = fn(scale=scale, jobs=args.jobs)
        print(render_panels(panels))
        print()
        print(render_improvement_summary(panels))
    elif name == "fig7":
        print(render_figure(F.figure7(scale=scale, jobs=args.jobs)))
    elif name == "runtime":
        print(render_figure(F.runtime_study(scale=scale, jobs=args.jobs), ndigits=3))
    else:
        print(f"unknown figure {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_ablation(args) -> int:
    from repro.experiments.config import Cell
    from repro.experiments.runner import _SCHEDULERS, build_cell_system
    from repro.schedule.validator import validate_schedule
    from repro.util.tables import format_table

    cell = Cell(
        suite="random", app="random", size=args.size,
        granularity=args.granularity, topology=args.topology,
        algorithm="bsa", graph_seed=args.seed, system_seed=args.seed,
        duplex=args.duplex, bandwidth_skew=args.bandwidth_skew,
    )
    system = build_cell_system(cell)
    rows = []
    base_sl = None
    for name, scheduler in _SCHEDULERS.items():
        sched = scheduler(system)
        validate_schedule(sched)
        sl = sched.schedule_length()
        if name == "bsa":
            base_sl = sl
        rows.append([name, sl, None])
    rows = [[name, sl, sl / base_sl] for name, sl, _ in rows]
    print(format_table(
        ["variant", "SL", "vs bsa"],
        rows,
        title=(f"ablation — random n={args.size}, {args.topology}16, "
               f"g={args.granularity:g}, seed={args.seed}"),
        ndigits=3,
    ))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.config import SCALES
    from repro.experiments.report import generate_report

    scale = SCALES[args.scale] if args.scale else None
    text = generate_report(scale=scale, include_example=not args.no_example)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_info(args) -> int:
    import os

    from repro.experiments.cache import default_cache
    from repro.experiments.config import current_scale

    scale = current_scale()
    cache = default_cache()
    print(f"repro {__version__} — BSA/DLS reproduction (Kwok & Ahmad, ICPP 1999)")
    print(f"scale     : {scale.name} (REPRO_SCALE={os.environ.get('REPRO_SCALE', '<unset>')})")
    print(f"  sizes        : {list(scale.sizes)}")
    print(f"  granularities: {list(scale.granularities)}")
    print(f"  topologies   : {list(scale.topologies)}")
    print(f"  algorithms   : {list(scale.algorithms)}")
    print(f"cache     : {cache.path} ({len(cache)} cells)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BSA link-contention scheduling reproduction (Kwok & Ahmad, ICPP 1999)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("schedule", help="schedule one workload")
    p.add_argument("--algorithm", "-a", default="bsa",
                   choices=["bsa", "dls", "heft", "cpop"])
    p.add_argument("--workload", "-w", default="random",
                   choices=["random", "gauss", "lu", "laplace", "mva"])
    p.add_argument("--size", "-n", type=int, default=100)
    p.add_argument("--granularity", "-g", type=float, default=1.0)
    p.add_argument("--topology", "-t", default="hypercube",
                   choices=["ring", "hypercube", "clique", "random",
                            "torus", "fattree"])
    p.add_argument("--procs", "-p", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duplex", default="half", choices=["half", "full"],
                   help="link duplex mode: 'half' shares one timeline per "
                        "link (paper default), 'full' gives each direction "
                        "its own timeline")
    p.add_argument("--bandwidth-skew", type=float, default=1.0,
                   help="sample per-link bandwidth from U[1, SKEW] "
                        "(default 1.0 = the paper's uniform links); hop "
                        "duration is comm cost / bandwidth")
    p.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    p.add_argument("--gantt-height", type=int, default=40)
    p.set_defaults(func=_cmd_schedule)

    p = sub.add_parser("example", help="run the paper's worked example")
    p.set_defaults(func=_cmd_example)

    p = sub.add_parser("run", help="execute an experiment sweep (parallel)")
    p.add_argument("sweep", nargs="?", default="all",
                   choices=["fig3", "fig4", "fig5", "fig6", "fig7",
                            "runtime", "all"])
    p.add_argument("--scale", choices=["smoke", "default", "full"], default=None)
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes (default: 1, serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="recompute every cell, ignore and skip the cache")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("experiment", help="regenerate a figure")
    p.add_argument("figure", choices=["fig3", "fig4", "fig5", "fig6", "fig7", "runtime"])
    p.add_argument("--scale", choices=["smoke", "default", "full"], default=None)
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes for the cell sweep")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("ablation", help="compare BSA option variants on one workload")
    p.add_argument("--size", "-n", type=int, default=60)
    p.add_argument("--granularity", "-g", type=float, default=1.0)
    p.add_argument("--topology", "-t", default="hypercube",
                   choices=["ring", "hypercube", "clique", "random",
                            "torus", "fattree"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--duplex", default="half", choices=["half", "full"],
                   help="link duplex mode (see 'schedule --duplex')")
    p.add_argument("--bandwidth-skew", type=float, default=1.0,
                   help="per-link bandwidth drawn from U[1, SKEW]")
    p.set_defaults(func=_cmd_ablation)

    p = sub.add_parser("report", help="regenerate the full reproduction report")
    p.add_argument("--scale", choices=["smoke", "default", "full"], default=None)
    p.add_argument("--out", "-o", default=None,
                   help="write markdown to this file (default: stdout)")
    p.add_argument("--no-example", action="store_true",
                   help="skip the worked example section")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("info", help="library and scale information")
    p.set_defaults(func=_cmd_info)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
