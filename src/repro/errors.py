"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. are never
wrapped).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a task graph (cycle, unknown task, ...)."""


class CycleError(GraphError):
    """A directed cycle was found where a DAG is required.

    Attributes
    ----------
    nodes:
        A list of node identifiers known to participate in (or be blocked
        behind) the cycle; useful for debugging order-based schedules.
    """

    def __init__(self, message: str, nodes=None):
        super().__init__(message)
        self.nodes = list(nodes) if nodes is not None else []


class DisconnectedGraphError(GraphError):
    """The task graph is not weakly connected (the paper assumes it is)."""


class TopologyError(ReproError):
    """Invalid processor network description."""


class RoutingError(ReproError):
    """No route exists between two processors, or a route is malformed."""


class SchedulingError(ReproError):
    """An algorithm could not produce a schedule."""


class InvalidScheduleError(ReproError):
    """A schedule violates a correctness constraint.

    Raised by :func:`repro.schedule.validator.validate_schedule` with a
    human-readable list of violations.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        preview = "\n  - ".join(self.violations[:25])
        more = "" if len(self.violations) <= 25 else f"\n  (+{len(self.violations) - 25} more)"
        super().__init__(f"invalid schedule ({len(self.violations)} violations):\n  - {preview}{more}")


class ConfigurationError(ReproError):
    """Invalid experiment or algorithm configuration."""


class WorkloadError(ReproError):
    """A workload generator received unusable parameters."""
