"""``repro serve`` — the scheduling service over HTTP, stdlib-only.

A :class:`ThreadingHTTPServer` front end over
:func:`repro.service.pipeline.execute`. No new dependencies: transport
is ``http.server``, auth is an optional shared-secret ``X-API-Key``
header compared with :func:`hmac.compare_digest`.

Endpoints
---------
* ``GET /health`` — liveness (never auth-gated): status, version,
  engine mode.
* ``GET /version`` — library version plus the live registries
  (formats, algorithms, topologies) a client can build requests from.
* ``POST /schedule`` — a :class:`ScheduleRequest` JSON body; the
  response body is the canonical schedule bundle, byte-identical to
  ``repro schedule --export-bundle`` for the same request. Metadata
  rides in headers: ``X-Repro-Cache`` (``hit``/``miss``/``off``),
  ``X-Repro-Request-Key``.
* ``POST /convert`` — an inline :class:`ConvertRequest` (``graph`` +
  ``to_fmt``); the response body is the converted document, with
  ``X-Repro-From``/``X-Repro-To`` headers. Path mode is CLI-only: the
  server never reads or writes client-named files.
* ``POST /sweep`` — a :class:`SweepRequest` Cell grid. Grids up to the
  server's ``--async-threshold`` run synchronously (200 + full result);
  larger grids return ``202`` with a job id immediately and run on the
  job worker over the existing process pool.
* ``POST /pareto`` — a :class:`ParetoRequest` multi-objective sweep;
  the response body is the canonical Pareto artifact JSON,
  byte-identical to ``repro pareto`` stdout for the same request.
* ``GET /jobs/<id>`` — poll an async job: status, then the full result
  payload (with cache/provenance metadata) once done, plus the job's
  ``wall_ms``.
* ``GET /metrics`` — Prometheus text exposition of the deterministic
  engine counters (:mod:`repro.obs.promtext`) plus transport gauges.
  Like ``/health`` it is never auth-gated: it is a monitoring surface,
  and it carries no request data.

Observability: every POST response carries an ``X-Repro-Wall-Ms``
header (the pipeline's measured wall time — telemetry rides in
headers, never the canonical body). With ``--log-file`` the server
appends one NDJSON record per request (method, path, status, request
key, cache disposition, wall ms) through :mod:`repro.obs.ndjson`;
``--obs`` turns on the deterministic counter registry that
``/metrics`` renders.

Errors are structured everywhere: the body is
``{error, kind, detail, violations?}`` from
:mod:`repro.service.errors`, with the table's HTTP status.
"""

from __future__ import annotations

import hmac
import json
import queue
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from repro import __version__, obs
from repro.errors import ConfigurationError
from repro.service.errors import error_payload, http_status_for
from repro.service.pipeline import execute
from repro.service.requests import (
    ConvertRequest,
    ParetoRequest,
    ScheduleRequest,
    SweepRequest,
)

__all__ = ["ReproServer", "make_server", "serve"]

#: default sweep size above which /sweep answers 202 + job id
DEFAULT_ASYNC_THRESHOLD = 8


class JobStore:
    """Async sweep jobs: one daemon worker drains a FIFO queue.

    A single worker is deliberate — sweeps parallelize *internally*
    through the runner's process pool, so running two large grids
    concurrently would just thrash the same cores.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Dict[str, Any]] = {}
        self._queue: "queue.Queue" = queue.Queue()
        self._count = 0
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-jobs", daemon=True
        )
        self._worker.start()

    def submit(self, request_key: str, n_cells: int, fn) -> str:
        with self._lock:
            self._count += 1
            job_id = f"job-{self._count:04d}"
            self._jobs[job_id] = {
                "id": job_id,
                "status": "queued",
                "request_key": request_key,
                "n_cells": n_cells,
                "result": None,
                "error": None,
            }
        self._queue.put((job_id, fn))
        return job_id

    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            return dict(job) if job is not None else None

    def _run(self) -> None:
        while True:
            job_id, fn = self._queue.get()
            with self._lock:
                self._jobs[job_id]["status"] = "running"
            try:
                with obs.span("job.sweep", job_id=job_id) as sp:
                    response = fn()
            except Exception as exc:  # noqa: BLE001 - reported to the poller
                with self._lock:
                    self._jobs[job_id]["status"] = "failed"
                    self._jobs[job_id]["error"] = error_payload(exc)
            else:
                with self._lock:
                    self._jobs[job_id]["status"] = "done"
                    self._jobs[job_id]["result"] = response.to_dict()
                    # surfaced in the poll payload; wall time is
                    # telemetry, so it rides beside the result, not in it
                    self._jobs[job_id]["wall_ms"] = round(
                        sp.elapsed_s * 1000.0, 3
                    )


class ReproServer(ThreadingHTTPServer):
    """The service process state shared by all handler threads."""

    daemon_threads = True

    def __init__(self, address, api_key: Optional[str] = None,
                 jobs: int = 1,
                 async_threshold: int = DEFAULT_ASYNC_THRESHOLD,
                 use_cache: bool = True, quiet: bool = False,
                 log_file: Optional[str] = None):
        super().__init__(address, _Handler)
        self.api_key = api_key
        self.jobs = max(1, jobs)
        self.async_threshold = max(0, async_threshold)
        self.use_cache = use_cache
        self.quiet = quiet
        self.log_file = log_file
        if log_file:
            obs.configure_log(log_file)
        self.job_store = JobStore()
        self.started_at = time.time()
        self._stats_lock = threading.Lock()
        self.requests_served = 0

    def count_request(self) -> int:
        with self._stats_lock:
            self.requests_served += 1
            return self.requests_served


class _Handler(BaseHTTPRequestHandler):
    server: ReproServer  # set by http.server
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt, *args):  # pragma: no cover - cosmetic
        if not self.server.quiet:
            sys.stderr.write(
                f"repro serve: {self.address_string()} {fmt % args}\n"
            )

    #: filled per request by the logging wrapper / handlers
    _log_status: Optional[int] = None
    _log_fields: Optional[Dict[str, Any]] = None

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json",
              headers: Optional[Dict[str, str]] = None) -> None:
        self._log_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, obj,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = (json.dumps(obj, indent=2) + "\n").encode("utf-8")
        self._send(status, body, headers=headers)

    def _send_error_payload(self, exc: BaseException) -> None:
        self._send_json(http_status_for(exc), error_payload(exc))

    def _authorized(self) -> bool:
        key = self.server.api_key
        if not key:
            return True
        given = self.headers.get("X-API-Key", "")
        return hmac.compare_digest(given.encode("utf-8"), key.encode("utf-8"))

    def _reject_unauthorized(self) -> None:
        self._send_json(401, {
            "error": "Unauthorized",
            "kind": "auth",
            "detail": "missing or invalid X-API-Key header",
        })

    def _not_found(self, what: str) -> None:
        self._send_json(404, {
            "error": "NotFound",
            "kind": "not-found",
            "detail": what,
        })

    def _read_request_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length > 0 else b""
        if not raw:
            raise ConfigurationError("request body is empty; expected JSON")
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ConfigurationError(
                f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(doc, dict):
            raise ConfigurationError(
                f"request body must be a JSON object, got "
                f"{type(doc).__name__}"
            )
        return doc

    def _wall_headers(self, response,
                      extra: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """Response headers + the pipeline's measured wall time."""
        headers = dict(extra or {})
        wall_ms = response.extra.get("wall_ms")
        if wall_ms is not None:
            headers["X-Repro-Wall-Ms"] = f"{wall_ms:.3f}"
        return headers

    def _dispatch_logged(self, method: str, fn) -> None:
        """Run a request handler; append one NDJSON record per request
        (a no-op without ``--log-file``). Wall time is measured around
        the whole handler, auth and serialization included."""
        self.server.count_request()
        self._log_status = None
        self._log_fields = {}
        with obs.span(f"http.{method}", path=self.path) as sp:
            fn()
        obs.log_json(
            event="request",
            ts=round(time.time(), 3),
            client=self.address_string(),
            method=method,
            path=self.path,
            status=self._log_status,
            wall_ms=round(sp.elapsed_s * 1000.0, 3),
            **(self._log_fields or {}),
        )

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch_logged("GET", self._do_get)

    def _do_get(self) -> None:
        from repro.util.intervals import hotpath_mode

        if self.path == "/metrics":
            # monitoring surface: open like /health, carries no request
            # data — just the counter registry and transport gauges
            from repro.obs.promtext import CONTENT_TYPE, render_metrics

            text = render_metrics(extra_gauges={
                "repro_http_requests": self.server.requests_served,
                "repro_http_uptime_seconds": round(
                    time.time() - self.server.started_at, 3),
            })
            self._send(200, text.encode("utf-8"), content_type=CONTENT_TYPE)
            return
        if self.path == "/health":
            # liveness stays open even when the API is key-gated
            self._send_json(200, {
                "status": "ok",
                "version": __version__,
                "engine_mode": hotpath_mode(),
            })
            return
        if not self._authorized():
            self._reject_unauthorized()
            return
        if self.path == "/version":
            from repro.experiments.cache import CACHE_VERSION
            from repro.experiments.config import (
                ALGORITHM_NAMES,
                TOPOLOGY_NAMES,
            )
            from repro.graph.interchange import format_names

            self._send_json(200, {
                "version": __version__,
                "cache_version": CACHE_VERSION,
                "engine_mode": hotpath_mode(),
                "formats": list(format_names()),
                "algorithms": list(ALGORITHM_NAMES),
                "topologies": list(TOPOLOGY_NAMES),
            })
            return
        if self.path.startswith("/jobs/"):
            job_id = self.path[len("/jobs/"):]
            job = self.server.job_store.get(job_id)
            if job is None:
                self._not_found(f"no such job {job_id!r}")
            else:
                self._log_fields["request_key"] = job.get("request_key")
                self._send_json(200, job)
            return
        self._not_found(f"no such endpoint GET {self.path}")

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch_logged("POST", self._do_post)

    def _do_post(self) -> None:
        if not self._authorized():
            self._reject_unauthorized()
            return
        try:
            if self.path == "/schedule":
                self._post_schedule()
            elif self.path == "/convert":
                self._post_convert()
            elif self.path == "/sweep":
                self._post_sweep()
            elif self.path == "/pareto":
                self._post_pareto()
            else:
                self._not_found(f"no such endpoint POST {self.path}")
        except Exception as exc:  # noqa: BLE001 - rendered structurally
            self._send_error_payload(exc)

    def _post_schedule(self) -> None:
        doc = self._read_request_body()
        request = ScheduleRequest.from_dict(doc)
        if request.graph_path is not None or request.topology_file is not None:
            raise ConfigurationError(
                "the HTTP service does not read server-side files; send "
                "the graph inline (graph=...) and the platform inline "
                "(topology_spec=...)"
            )
        response = execute(request, use_cache=self.server.use_cache)
        self._log_fields.update(request_key=response.request_key,
                                cache=response.cache)
        # the body IS the canonical bundle — byte-identical to the CLI's
        # --export-bundle file for the same request
        self._send(
            200, response.bundle_text.encode("utf-8"),
            headers=self._wall_headers(response, {
                "X-Repro-Cache": response.cache,
                "X-Repro-Request-Key": response.request_key,
            }),
        )

    def _post_convert(self) -> None:
        doc = self._read_request_body()
        request = ConvertRequest.from_dict(doc)
        if request.src is not None or request.dst is not None or request.topology:
            raise ConfigurationError(
                "the HTTP service does not read or write server-side "
                "files; send the document inline (graph=... + to_fmt=...)"
            )
        response = execute(request)
        self._log_fields.update(request_key=response.request_key,
                                cache=response.cache)
        self._send(
            200, response.extra["output"].encode("utf-8"),
            content_type="text/plain; charset=utf-8",
            headers=self._wall_headers(response, {
                "X-Repro-From": response.summary["from"],
                "X-Repro-To": response.summary["to"],
                "X-Repro-Request-Key": response.request_key,
            }),
        )

    def _post_pareto(self) -> None:
        doc = self._read_request_body()
        request = ParetoRequest.from_dict(doc)
        response = execute(request, use_cache=self.server.use_cache,
                           jobs=self.server.jobs)
        self._log_fields.update(request_key=response.request_key,
                                cache=response.cache)
        # the body IS the canonical Pareto artifact — byte-identical to
        # `repro pareto` stdout for the same request
        self._send(
            200, response.bundle_text.encode("utf-8"),
            headers=self._wall_headers(response, {
                "X-Repro-Cache": response.cache,
                "X-Repro-Request-Key": response.request_key,
            }),
        )

    def _post_sweep(self) -> None:
        doc = self._read_request_body()
        request = SweepRequest.from_dict(doc)
        n_cells = len(request.expand())
        server = self.server
        if n_cells > server.async_threshold:
            job_id = server.job_store.submit(
                request.idempotency_key(), n_cells,
                lambda: execute(request, use_cache=server.use_cache,
                                jobs=server.jobs),
            )
            self._log_fields.update(request_key=request.idempotency_key(),
                                    job_id=job_id)
            self._send_json(202, {
                "job_id": job_id,
                "poll": f"/jobs/{job_id}",
                "n_cells": n_cells,
                "request_key": request.idempotency_key(),
            })
            return
        response = execute(request, use_cache=server.use_cache,
                           jobs=server.jobs)
        self._log_fields.update(request_key=response.request_key,
                                cache=response.cache)
        self._send_json(200, response.to_dict(),
                        headers=self._wall_headers(response, {
                            "X-Repro-Cache": response.cache,
                            "X-Repro-Request-Key": response.request_key,
                        }))


def make_server(host: str = "127.0.0.1", port: int = 0,
                api_key: Optional[str] = None, jobs: int = 1,
                async_threshold: int = DEFAULT_ASYNC_THRESHOLD,
                use_cache: bool = True, quiet: bool = False,
                log_file: Optional[str] = None) -> ReproServer:
    """Bind a :class:`ReproServer` (``port=0`` picks a free port)."""
    return ReproServer(
        (host, port), api_key=api_key, jobs=jobs,
        async_threshold=async_threshold, use_cache=use_cache, quiet=quiet,
        log_file=log_file,
    )


def serve(host: str, port: int, api_key: Optional[str] = None,
          jobs: int = 1, async_threshold: int = DEFAULT_ASYNC_THRESHOLD,
          use_cache: bool = True, log_file: Optional[str] = None,
          obs_counters: bool = False) -> int:
    """Run the service until interrupted (the ``repro serve`` command)."""
    if obs_counters:
        obs.enable()
    server = make_server(host, port, api_key=api_key, jobs=jobs,
                         async_threshold=async_threshold, use_cache=use_cache,
                         log_file=log_file)
    bound_host, bound_port = server.server_address[:2]
    gate = "X-API-Key required" if api_key else "open"
    log_note = f", logging to {log_file}" if log_file else ""
    obs.telemetry(
        f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"({gate}; sweep jobs={max(1, jobs)}, "
        f"async threshold={async_threshold} cells{log_note})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
    return 0
