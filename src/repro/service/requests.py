"""Typed service requests with strict validation and idempotency keys.

Every way of asking the library for work — the CLI, the HTTP server, a
script importing :func:`repro.service.pipeline.execute` — builds one of
these request objects. They are deliberately *transport-agnostic*: plain
frozen dataclasses with JSON (de)serialization, so the same request can
arrive as CLI flags, an HTTP body, or a test literal and mean exactly
the same computation.

Validation is strict and fails early with
:class:`~repro.errors.ConfigurationError`: unknown fields are rejected
(a typo'd ``"algoritm"`` must not silently run the default), enum
fields are checked against the *live* registries
(:data:`~repro.experiments.config.ALGORITHM_NAMES`,
:data:`~repro.experiments.config.TOPOLOGY_NAMES`,
:func:`~repro.graph.interchange.format_names`), and numeric fields are
type- and range-checked (``bool`` is not an ``int`` here).

Idempotency keys reuse the token grammars the cache already trusts:
graph files/content hash to ``#sha256[:12]`` exactly like
:func:`repro.workloads.external.app_token`, overlays render their
canonical :meth:`~repro.corpus.overlays.Overlay.token`, scenarios their
``f..l..a..s..`` token, and generated workloads the
:meth:`~repro.experiments.config.Cell.key` spelling. Two requests with
the same key are the same computation — the pipeline serves the second
from the :class:`~repro.experiments.cache.ResultCache`.

Examples
--------
>>> req = ScheduleRequest(workload="gauss", size=30, topology="ring",
...                       n_procs=4, algorithm="heft")
>>> req.idempotency_key()
'schedule/gauss/n30/g1/ring4/dxhalf/bw1/heft/s0'
>>> ScheduleRequest.from_dict(req.to_dict()) == req
True
>>> ScheduleRequest.from_dict({"algoritm": "bsa"})
Traceback (most recent call last):
    ...
repro.errors.ConfigurationError: unknown ScheduleRequest field(s): ['algoritm']
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.errors import ConfigurationError

__all__ = [
    "ScheduleRequest",
    "ConvertRequest",
    "SweepRequest",
    "SimulateRequest",
    "ParetoRequest",
    "request_from_dict",
    "REQUEST_TYPES",
]

_BRIDGES = ("none", "epsilon", "components")
_DUPLEXES = ("half", "full")


# ----------------------------------------------------------------------
# field validation helpers
# ----------------------------------------------------------------------

def _want(kind: str, name: str, value, types, extra: str = ""):
    if isinstance(value, bool) and bool not in (
        types if isinstance(types, tuple) else (types,)
    ):
        raise ConfigurationError(
            f"{kind}.{name} must not be a boolean, got {value!r}"
        )
    if not isinstance(value, types):
        raise ConfigurationError(
            f"{kind}.{name} has the wrong type: got {type(value).__name__} "
            f"{value!r}{extra}"
        )
    return value


def _positive(kind: str, name: str, value) -> float:
    _want(kind, name, value, (int, float))
    if value <= 0:
        raise ConfigurationError(f"{kind}.{name} must be > 0, got {value!r}")
    return float(value)


def _choice(kind: str, name: str, value, choices) -> str:
    _want(kind, name, value, str)
    if value not in choices:
        raise ConfigurationError(
            f"{kind}.{name} must be one of {list(choices)}, got {value!r}"
        )
    return value


def _from_dict(cls, data) -> Any:
    """Strict dataclass hydration: unknown keys are an error."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"a {cls.__name__} must be a JSON object, got "
            f"{type(data).__name__}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names - {"type"})
    if unknown:
        raise ConfigurationError(
            f"unknown {cls.__name__} field(s): {unknown}"
        )
    kwargs = {k: v for k, v in data.items() if k in names}
    for name in ("apps", "sizes", "granularities", "topologies",
                 "algorithms", "graph_seeds", "system_seeds", "scenarios",
                 "objectives"):
        if name in kwargs and isinstance(kwargs[name], list):
            kwargs[name] = tuple(kwargs[name])
    req = cls(**kwargs)
    req.validate()
    return req


def _sha12(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def _overlay_token(overlay: str, bridge: str) -> str:
    """Canonicalize the request's overlay token with the bridge policy
    folded in (the grammar :mod:`repro.corpus.overlays` defines)."""
    from repro.corpus.overlays import parse_overlay

    ovl = parse_overlay(overlay)
    if bridge != "none":
        if ovl.bridge not in ("none", bridge):
            raise ConfigurationError(
                f"bridge={bridge!r} contradicts the overlay token's "
                f"bridge={ovl.bridge!r}"
            )
        ovl = dataclasses.replace(ovl, bridge=bridge)
    return ovl.token()


class _RequestBase:
    """Shared (de)serialization for all request dataclasses."""

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["type"] = self.TYPE
        return d

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict):
        return _from_dict(cls, data)

    @classmethod
    def from_json(cls, text: str):
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"request is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# schedule
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduleRequest(_RequestBase):
    """Schedule one workload on one platform with one algorithm.

    The workload is *either* an interchange document (``graph`` = inline
    text in any registered format, or ``graph_path`` = a file on the
    server's disk) *or* a generated family (``workload``/``size``/
    ``granularity`` — the CLI's default). The platform is a topology
    family name, or an inline repro-topology JSON dict
    (``topology_spec``), or a platform file (``topology_file``).
    """

    TYPE = "schedule"

    # --- workload ------------------------------------------------------
    graph: Optional[str] = None          # inline interchange text
    graph_path: Optional[str] = None     # file on disk (CLI --graph)
    format: Optional[str] = None         # interchange format (None = sniff)
    bridge: str = "none"                 # disconnected-import repair policy
    overlay: str = ""                    # corpus overlay token (ccr/gran/het)
    workload: str = "random"             # generated family when no graph
    size: int = 100
    granularity: float = 1.0
    # --- platform ------------------------------------------------------
    topology: str = "hypercube"
    topology_spec: Optional[dict] = None  # inline repro-topology JSON
    topology_file: Optional[str] = None   # platform file (CLI)
    n_procs: Optional[int] = None
    duplex: str = "half"
    bandwidth_skew: float = 1.0
    # --- algorithm -----------------------------------------------------
    algorithm: str = "bsa"
    seed: int = 0

    def validate(self) -> None:
        from repro.experiments.config import ALGORITHM_NAMES, TOPOLOGY_NAMES
        from repro.graph.interchange import format_names

        kind = type(self).__name__
        if self.graph is not None and self.graph_path is not None:
            raise ConfigurationError(
                f"{kind}: give either graph (inline text) or graph_path "
                f"(a file), not both"
            )
        if self.graph is not None:
            _want(kind, "graph", self.graph, str)
        if self.graph_path is not None:
            _want(kind, "graph_path", self.graph_path, str)
        if self.format is not None:
            _choice(kind, "format", self.format, format_names())
        _choice(kind, "bridge", self.bridge, _BRIDGES)
        _want(kind, "overlay", self.overlay, str)
        _want(kind, "workload", self.workload, str)
        _want(kind, "size", self.size, int)
        if self.size < 1:
            raise ConfigurationError(f"{kind}.size must be >= 1, got {self.size}")
        _positive(kind, "granularity", self.granularity)
        if self.topology_spec is not None and self.topology_file is not None:
            raise ConfigurationError(
                f"{kind}: give either topology_spec (inline) or "
                f"topology_file (a file), not both"
            )
        if self.topology_spec is not None:
            _want(kind, "topology_spec", self.topology_spec, dict)
        elif self.topology_file is not None:
            _want(kind, "topology_file", self.topology_file, str)
        else:
            _choice(kind, "topology", self.topology, TOPOLOGY_NAMES)
        if self.n_procs is not None:
            _want(kind, "n_procs", self.n_procs, int)
        _choice(kind, "duplex", self.duplex, _DUPLEXES)
        _positive(kind, "bandwidth_skew", self.bandwidth_skew)
        _choice(kind, "algorithm", self.algorithm, ALGORITHM_NAMES)
        _want(kind, "seed", self.seed, int)
        # a malformed overlay token should fail at validation time, not
        # halfway through a pipeline run
        _overlay_token(self.overlay, self.bridge)

    # -- idempotency ---------------------------------------------------
    def graph_token(self) -> str:
        """``#sha256[:12][!overlay]`` for file/inline graphs (the
        :func:`~repro.workloads.external.app_token` grammar minus the
        path — content addresses the graph, so the same bytes POSTed
        inline or read from any path are the same request), or the
        generated family's ``Cell``-style token."""
        ovl = _overlay_token(self.overlay, self.bridge)
        if self.graph is not None or self.graph_path is not None:
            text = self.graph
            if text is None:
                with open(self.graph_path) as fh:
                    text = fh.read()
            token = f"#{_sha12(text)}"
            return f"{token}!{ovl}" if ovl else token
        token = f"{self.workload}/n{self.size}/g{self.granularity:g}"
        return f"{token}!{ovl}" if ovl else token

    def platform_token(self) -> str:
        if self.topology_spec is not None or self.topology_file is not None:
            from repro.network.topology import Topology, load_topology

            if self.topology_spec is not None:
                topo = Topology.from_dict(self.topology_spec)
            else:
                topo = load_topology(self.topology_file)
            canon = json.dumps(topo.to_dict(), sort_keys=True)
            name = f"topo#{_sha12(canon)}"
        else:
            procs = self.n_procs if self.n_procs is not None else ""
            name = f"{self.topology}{procs}"
        return f"{name}/dx{self.duplex}/bw{self.bandwidth_skew:g}"

    def idempotency_key(self) -> str:
        return (
            f"schedule/{self.graph_token()}/{self.platform_token()}/"
            f"{self.algorithm}/s{self.seed}"
        )


# ----------------------------------------------------------------------
# convert
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ConvertRequest(_RequestBase):
    """Translate one interchange document to another format.

    Content mode (``graph`` inline text, ``to_fmt`` required) is the
    service form; path mode (``src``/``dst`` files) is the CLI form.
    ``topology=True`` switches to platform-file normalization.
    """

    TYPE = "convert"

    graph: Optional[str] = None     # inline input text (service mode)
    src: Optional[str] = None       # input file (CLI mode)
    dst: Optional[str] = None       # output file (CLI mode)
    from_fmt: Optional[str] = None  # None = sniff
    to_fmt: Optional[str] = None    # None = infer from dst extension
    default_comm: Optional[float] = None
    default_cost: Optional[float] = None
    validate_graph: bool = True
    require_connected: bool = True
    bridge: str = "none"
    topology: bool = False          # SRC/DST are platform JSON files

    def validate(self) -> None:
        from repro.graph.interchange import format_names

        kind = type(self).__name__
        if self.topology:
            if self.src is None or self.dst is None:
                raise ConfigurationError(
                    f"{kind}: topology mode needs src and dst files"
                )
            return
        if (self.graph is None) == (self.src is None):
            raise ConfigurationError(
                f"{kind}: give either graph (inline text) or src (a file)"
            )
        if self.graph is not None and self.to_fmt is None:
            raise ConfigurationError(
                f"{kind}: inline conversion needs to_fmt (there is no "
                f"destination filename to infer it from)"
            )
        for name, value in (("from_fmt", self.from_fmt), ("to_fmt", self.to_fmt)):
            if value is not None:
                _choice(kind, name, value, format_names())
        for name, value in (("default_comm", self.default_comm),
                            ("default_cost", self.default_cost)):
            if value is not None:
                _want(kind, name, value, (int, float))
        _choice(kind, "bridge", self.bridge, _BRIDGES)

    def idempotency_key(self) -> str:
        if self.graph is not None:
            src = f"#{_sha12(self.graph)}"
        else:
            src = self.src or "-"
        opts = (
            f"{self.from_fmt or 'sniff'}>{self.to_fmt or 'ext'}/"
            f"br{self.bridge}/v{int(self.validate_graph)}"
            f"{int(self.require_connected)}"
        )
        return f"convert/{src}/{opts}"


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepRequest(_RequestBase):
    """A Cell grid for the parallel sweep engine (the ``/sweep``
    endpoint and the remote spelling of ``repro run``-style grids).

    Axes multiply out exactly like
    :func:`repro.corpus.manifest.manifest_cells`: every combination of
    app x size x granularity x topology x algorithm x seeds x scenario
    becomes one :class:`~repro.experiments.config.Cell`.
    """

    TYPE = "sweep"

    suite: str = "random"                 # "random" | "regular"
    apps: Tuple[str, ...] = ("random",)
    sizes: Tuple[int, ...] = (100,)
    granularities: Tuple[float, ...] = (1.0,)
    topologies: Tuple[str, ...] = ("hypercube",)
    algorithms: Tuple[str, ...] = ("bsa",)
    n_procs: int = 16
    het_lo: float = 1.0
    het_hi: float = 50.0
    graph_seeds: Tuple[int, ...] = (0,)
    system_seeds: Tuple[int, ...] = (0,)
    duplex: str = "half"
    bandwidth_skew: float = 1.0
    scenarios: Tuple[str, ...] = ("",)

    def validate(self) -> None:
        from repro.experiments.config import ALGORITHM_NAMES, TOPOLOGY_NAMES

        kind = type(self).__name__
        _choice(kind, "suite", self.suite, ("random", "regular"))
        for name, value, elem in (
            ("apps", self.apps, str),
            ("sizes", self.sizes, int),
            ("granularities", self.granularities, (int, float)),
            ("topologies", self.topologies, str),
            ("algorithms", self.algorithms, str),
            ("graph_seeds", self.graph_seeds, int),
            ("system_seeds", self.system_seeds, int),
            ("scenarios", self.scenarios, str),
        ):
            if not isinstance(value, tuple) or not value:
                raise ConfigurationError(
                    f"{kind}.{name} must be a non-empty list"
                )
            for v in value:
                _want(kind, f"{name}[]", v, elem)
        for t in self.topologies:
            _choice(kind, "topologies[]", t, TOPOLOGY_NAMES)
        for a in self.algorithms:
            _choice(kind, "algorithms[]", a, ALGORITHM_NAMES)
        _want(kind, "n_procs", self.n_procs, int)
        _positive(kind, "het_lo", self.het_lo)
        _positive(kind, "het_hi", self.het_hi)
        _choice(kind, "duplex", self.duplex, _DUPLEXES)
        _positive(kind, "bandwidth_skew", self.bandwidth_skew)
        for s in self.scenarios:
            if s:
                from repro.dynamic import parse_scenario

                parse_scenario(s)  # raises ConfigurationError when bad

    def expand(self) -> List["Cell"]:  # noqa: F821 - late import below
        from repro.experiments.config import Cell

        cells = []
        for app in self.apps:
            for size in self.sizes:
                for gran in self.granularities:
                    for topology in self.topologies:
                        for algorithm in self.algorithms:
                            for gs in self.graph_seeds:
                                for ss in self.system_seeds:
                                    for scenario in self.scenarios:
                                        cells.append(Cell(
                                            suite=self.suite,
                                            app=app,
                                            size=size,
                                            granularity=float(gran),
                                            topology=topology,
                                            algorithm=algorithm,
                                            het_lo=self.het_lo,
                                            het_hi=self.het_hi,
                                            n_procs=self.n_procs,
                                            graph_seed=gs,
                                            system_seed=ss,
                                            duplex=self.duplex,
                                            bandwidth_skew=self.bandwidth_skew,
                                            scenario=scenario,
                                        ))
        return cells

    def idempotency_key(self) -> str:
        keys = "\n".join(cell.key() for cell in self.expand())
        return f"sweep/#{_sha12(keys)}/{len(keys.splitlines())}cells"


# ----------------------------------------------------------------------
# simulate
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SimulateRequest(_RequestBase):
    """Event-driven rescheduling: a :class:`ScheduleRequest`-shaped
    workload/platform plus a scenario token or an explicit event list.
    """

    TYPE = "simulate"

    graph: Optional[str] = None
    graph_path: Optional[str] = None
    format: Optional[str] = None
    bridge: str = "none"
    workload: str = "random"
    size: int = 100
    granularity: float = 1.0
    topology: str = "hypercube"
    n_procs: Optional[int] = None
    duplex: str = "half"
    bandwidth_skew: float = 1.0
    algorithm: str = "bsa"
    seed: int = 0
    scenario: str = "f1a1s0"
    events: Optional[str] = None          # inline repro-event-trace JSON
    events_path: Optional[str] = None     # event-trace file (CLI)
    compare_replan: bool = True

    def _as_schedule(self) -> ScheduleRequest:
        return ScheduleRequest(
            graph=self.graph, graph_path=self.graph_path, format=self.format,
            bridge=self.bridge, workload=self.workload, size=self.size,
            granularity=self.granularity, topology=self.topology,
            n_procs=self.n_procs, duplex=self.duplex,
            bandwidth_skew=self.bandwidth_skew, algorithm=self.algorithm,
            seed=self.seed,
        )

    def validate(self) -> None:
        self._as_schedule().validate()
        kind = type(self).__name__
        _want(kind, "scenario", self.scenario, str)
        if self.events is not None and self.events_path is not None:
            raise ConfigurationError(
                f"{kind}: give either events (inline) or events_path "
                f"(a file), not both"
            )
        if self.events is None and self.events_path is None:
            from repro.dynamic import parse_scenario

            parse_scenario(self.scenario)

    def idempotency_key(self) -> str:
        base = self._as_schedule().idempotency_key()[len("schedule/"):]
        if self.events is not None:
            suffix = f"ev#{_sha12(self.events)}"
        elif self.events_path is not None:
            with open(self.events_path) as fh:
                suffix = f"ev#{_sha12(fh.read())}"
        else:
            suffix = f"sc{self.scenario}"
        return f"simulate/{base}/{suffix}"


# ----------------------------------------------------------------------
# pareto
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ParetoRequest(_RequestBase):
    """A multi-objective Pareto sweep: one generated workload, every
    requested algorithm, scored against every requested objective (the
    ``repro pareto`` CLI and the ``/pareto`` endpoint).

    Empty ``algorithms``/``objectives`` mean "all of them" — the
    resolved spelling is what the idempotency key records, so the
    explicit and the defaulted request are the same computation.
    """

    TYPE = "pareto"

    workload: str = "random"             # random | gauss | lu | laplace | mva
    size: int = 100
    granularity: float = 1.0
    topology: str = "hypercube"
    n_procs: int = 16
    het_lo: float = 1.0
    het_hi: float = 50.0
    seed: int = 0
    duplex: str = "half"
    bandwidth_skew: float = 1.0
    algorithms: Tuple[str, ...] = ()     # () = every registered algorithm
    objectives: Tuple[str, ...] = ()     # () = every registered objective

    def resolved_algorithms(self) -> Tuple[str, ...]:
        from repro.experiments.config import ALGORITHM_NAMES

        return self.algorithms or ALGORITHM_NAMES

    def resolved_objectives(self) -> Tuple[str, ...]:
        from repro.objectives.registry import (
            OBJECTIVE_NAMES,
            parse_objectives,
        )

        return parse_objectives(self.objectives or OBJECTIVE_NAMES)

    def validate(self) -> None:
        from repro.experiments.config import ALGORITHM_NAMES, TOPOLOGY_NAMES
        from repro.errors import ConfigurationError as _CE

        kind = type(self).__name__
        _want(kind, "workload", self.workload, str)
        _want(kind, "size", self.size, int)
        if self.size < 1:
            raise _CE(f"{kind}.size must be >= 1, got {self.size}")
        _positive(kind, "granularity", self.granularity)
        _choice(kind, "topology", self.topology, TOPOLOGY_NAMES)
        _want(kind, "n_procs", self.n_procs, int)
        _positive(kind, "het_lo", self.het_lo)
        _positive(kind, "het_hi", self.het_hi)
        _want(kind, "seed", self.seed, int)
        _choice(kind, "duplex", self.duplex, _DUPLEXES)
        _positive(kind, "bandwidth_skew", self.bandwidth_skew)
        if not isinstance(self.algorithms, tuple):
            raise _CE(f"{kind}.algorithms must be a list")
        seen = set()
        for a in self.algorithms:
            _choice(kind, "algorithms[]", a, ALGORITHM_NAMES)
            if a in seen:
                raise _CE(f"{kind}: duplicate algorithm {a!r}")
            seen.add(a)
        if not isinstance(self.objectives, tuple):
            raise _CE(f"{kind}.objectives must be a list")
        resolved = self.resolved_objectives()  # rejects unknown/duplicates
        if len(resolved) < 2:
            raise _CE(
                f"{kind}: a Pareto sweep needs at least two objectives, "
                f"got {list(resolved)}"
            )

    def base_cell(self):
        """The algorithm-free cell every point of the sweep shares."""
        from repro.experiments.config import Cell

        suite = "regular" if self.workload != "random" else "random"
        return Cell(
            suite=suite, app=self.workload, size=self.size,
            granularity=self.granularity, topology=self.topology,
            algorithm=self.resolved_algorithms()[0],
            het_lo=self.het_lo, het_hi=self.het_hi,
            n_procs=self.n_procs,
            graph_seed=self.seed, system_seed=self.seed,
            duplex=self.duplex, bandwidth_skew=self.bandwidth_skew,
        )

    def idempotency_key(self) -> str:
        from repro.objectives.registry import objectives_token

        algos = ",".join(self.resolved_algorithms())
        return (
            f"pareto/{self.workload}/n{self.size}/g{self.granularity:g}/"
            f"{self.topology}{self.n_procs}/"
            f"het{self.het_lo:g}-{self.het_hi:g}/"
            f"dx{self.duplex}/bw{self.bandwidth_skew:g}/s{self.seed}/"
            f"a[{algos}]/o[{objectives_token(self.resolved_objectives())}]"
        )


#: request type registry for transport-level dispatch
REQUEST_TYPES: Dict[str, Type[_RequestBase]] = {
    cls.TYPE: cls
    for cls in (ScheduleRequest, ConvertRequest, SweepRequest,
                SimulateRequest, ParetoRequest)
}


def request_from_dict(data: dict):
    """Hydrate any request from a dict carrying a ``"type"`` tag."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"a service request must be a JSON object, got "
            f"{type(data).__name__}"
        )
    tag = data.get("type")
    cls = REQUEST_TYPES.get(tag)
    if cls is None:
        raise ConfigurationError(
            f"unknown request type {tag!r}; known: {sorted(REQUEST_TYPES)}"
        )
    return cls.from_dict(data)
