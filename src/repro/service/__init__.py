"""Scheduling-as-a-service: the transport-agnostic request pipeline.

This package is the single front door for "give me a schedule":

* :mod:`repro.service.requests` — typed request objects
  (:class:`ScheduleRequest`, :class:`ConvertRequest`,
  :class:`SweepRequest`, :class:`SimulateRequest`,
  :class:`ParetoRequest`) with strict JSON
  (de)serialization and canonical idempotency keys built from the same
  content-hash / overlay / scenario token grammar the experiment cache
  uses;
* :mod:`repro.service.errors` — the library-wide error table: every
  :class:`~repro.errors.ReproError` subclass maps to a stable machine
  kind, CLI exit code and HTTP status, and renders as a structured
  ``{error, kind, detail, violations?}`` payload;
* :mod:`repro.service.pipeline` — ``execute(request) -> ServiceResponse``,
  the one implementation of the graph-load -> bridge -> overlay ->
  topology -> scheduler -> validate -> bundle flow. The CLI and the HTTP
  server both call it, so their outputs are byte-identical by
  construction, and repeated requests are served from the
  :class:`~repro.experiments.cache.ResultCache` via the request's
  idempotency key (with provenance-checked entries);
* :mod:`repro.service.http` — ``repro serve``: a zero-dependency
  ``ThreadingHTTPServer`` speaking JSON over ``/health``, ``/version``,
  ``/schedule``, ``/convert``, ``/sweep``, ``/pareto`` and
  ``/jobs/<id>``.
"""

from repro.service.errors import (
    ERROR_TABLE,
    error_payload,
    error_spec,
    exit_code_for,
    http_status_for,
)
from repro.service.requests import (
    ConvertRequest,
    ParetoRequest,
    ScheduleRequest,
    SimulateRequest,
    SweepRequest,
    request_from_dict,
)
from repro.service.pipeline import ServiceResponse, execute

__all__ = [
    "ERROR_TABLE",
    "error_payload",
    "error_spec",
    "exit_code_for",
    "http_status_for",
    "ScheduleRequest",
    "ConvertRequest",
    "SweepRequest",
    "SimulateRequest",
    "ParetoRequest",
    "request_from_dict",
    "ServiceResponse",
    "execute",
]
