"""The library-wide error table: one place where every
:class:`~repro.errors.ReproError` subclass gets a stable machine-readable
identity.

Three consumers share it:

* the CLI — ``repro.cli.main`` catches library errors and exits with the
  table's **exit code** (every subclass has a distinct, documented one;
  ``repro --json ...`` prints the structured payload instead of prose);
* the HTTP server — ``repro serve`` renders failures as the table's
  **HTTP status** plus the same payload as the response body;
* tests and docs — the README's error-code table is pinned to
  :data:`ERROR_TABLE` by ``tests/test_docs.py``, so the documentation
  can never drift from the code.

The payload shape is ``{"error": <exception class>, "kind": <stable
kebab-case category>, "detail": <message>}`` plus ``"violations"`` (a
list of strings) when the failure is an
:class:`~repro.errors.InvalidScheduleError` carrying individual
validator findings.

Exit codes 0 (success) and 2 (usage / configuration) keep their
conventional meanings — ``argparse`` itself exits 2 on unparseable
flags, and a :class:`~repro.errors.ConfigurationError` is the library
spelling of the same problem. Exit 1 stays "the schedule is invalid"
(``repro replay`` has always used it for a failed audit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.errors import (
    ConfigurationError,
    CycleError,
    DisconnectedGraphError,
    GraphError,
    InvalidScheduleError,
    ReproError,
    RoutingError,
    SchedulingError,
    TopologyError,
    WorkloadError,
)

__all__ = [
    "ErrorSpec",
    "ERROR_TABLE",
    "error_spec",
    "error_payload",
    "exit_code_for",
    "http_status_for",
]


@dataclass(frozen=True)
class ErrorSpec:
    """How one error class presents at every transport boundary."""

    kind: str           # stable kebab-case category for machine matching
    exit_code: int      # CLI process exit code (distinct per class)
    http_status: int    # HTTP response status for ``repro serve``


#: the canonical mapping, most-derived classes listed first so a reader
#: can eyeball the precedence :func:`error_spec` resolves via the MRO.
#: OSError is included because "the file is unreadable" is a first-class
#: request failure for a library whose inputs are files.
ERROR_TABLE: Dict[Type[BaseException], ErrorSpec] = {
    InvalidScheduleError: ErrorSpec("invalid-schedule", 1, 500),
    ConfigurationError: ErrorSpec("configuration", 2, 400),
    CycleError: ErrorSpec("cycle", 5, 400),
    DisconnectedGraphError: ErrorSpec("disconnected", 6, 400),
    GraphError: ErrorSpec("graph", 4, 400),
    TopologyError: ErrorSpec("topology", 7, 400),
    RoutingError: ErrorSpec("routing", 8, 422),
    SchedulingError: ErrorSpec("scheduling", 9, 422),
    WorkloadError: ErrorSpec("workload", 10, 400),
    ReproError: ErrorSpec("error", 11, 500),
    OSError: ErrorSpec("io", 3, 400),
}


def error_spec(exc: BaseException) -> ErrorSpec:
    """The most specific :class:`ErrorSpec` for ``exc`` (MRO walk, so a
    future ``ReproError`` subclass without its own row inherits its
    parent's presentation instead of crashing the error path)."""
    for klass in type(exc).__mro__:
        spec = ERROR_TABLE.get(klass)
        if spec is not None:
            return spec
    return ErrorSpec("internal", 70, 500)


def error_payload(exc: BaseException) -> dict:
    """The structured ``{error, kind, detail, violations?}`` payload."""
    spec = error_spec(exc)
    payload = {
        "error": type(exc).__name__,
        "kind": spec.kind,
        "detail": str(exc),
    }
    violations = getattr(exc, "violations", None)
    if violations:
        payload["violations"] = [str(v) for v in violations]
    return payload


def exit_code_for(exc: BaseException) -> int:
    return error_spec(exc).exit_code


def http_status_for(exc: BaseException) -> int:
    return error_spec(exc).http_status
