"""``execute(request) -> ServiceResponse``: the one request pipeline.

Before this module existed the graph-load -> bridge -> overlay ->
topology -> scheduler -> validate -> bundle flow was re-implemented (with
drift) in ``repro schedule``, ``repro simulate``, ``repro convert`` and
the sweep engine. Now the CLI and the HTTP server both call
:func:`execute`, so for the same request their outputs are
*byte-identical by construction*: the canonical schedule artifact is a
single string — ``bundle_to_json(relabel_schedule(schedule), indent=2)
+ "\\n"`` — and both transports emit it verbatim.

Caching. Schedule responses are memoized in the
:class:`~repro.experiments.cache.ResultCache` under the request's
idempotency key (the same store the experiment cells use; key grammars
cannot collide because cell keys start with a suite name and service
keys with ``schedule/``). Every entry carries provenance
``{repro_version, engine_mode, request_key}``; an entry whose version or
request key disagrees is *stale* and recomputed rather than served.
``engine_mode`` is recorded for observability but deliberately not a
staleness criterion: byte-identity of schedules across the four
``REPRO_HOTPATH`` modes is the library's contract (enforced by
``tests/test_hotpath_equivalence.py``), so a bundle computed under one
mode is valid under all of them.

Thread-safety: :class:`ResultCache` is not thread-safe and the HTTP
server is threaded, so all cache access goes through a module lock.
Scheduling itself runs outside the lock — two racing identical requests
may both compute, but they compute the same bytes.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro import obs
from repro.errors import ConfigurationError, DisconnectedGraphError
from repro.service.requests import (
    ConvertRequest,
    ParetoRequest,
    ScheduleRequest,
    SimulateRequest,
    SweepRequest,
)

__all__ = ["ServiceResponse", "execute", "build_schedule_system"]

_cache_lock = threading.Lock()


@dataclass
class ServiceResponse:
    """What :func:`execute` returns, for any request type.

    ``summary`` is always JSON-safe (it is the HTTP job payload);
    ``extra`` may hold live objects (the ``Schedule``, the bound system,
    a ``SimulationResult``) for in-process callers like the CLI and is
    never serialized.
    """

    kind: str                     # the request's TYPE tag
    request_key: str              # canonical idempotency key
    cache: str                    # "hit" | "miss" | "off"
    summary: Dict[str, Any] = field(default_factory=dict)
    bundle_text: Optional[str] = None   # canonical schedule bundle JSON
    provenance: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe view (used by ``/jobs/<id>`` and sync HTTP sweeps)."""
        return {
            "kind": self.kind,
            "request_key": self.request_key,
            "cache": self.cache,
            "summary": self.summary,
            "provenance": self.provenance,
        }


# ----------------------------------------------------------------------
# system construction (shared by schedule and simulate)
# ----------------------------------------------------------------------

def build_schedule_system(req: ScheduleRequest):
    """Materialize the bound :class:`HeterogeneousSystem` for a request.

    This is the one implementation of the CLI's historical branch
    structure: platform file/spec beats the topology family; a graph
    file's cost vectors pin the processor count; a generated workload
    with a family topology routes through the Cell grid builder so
    ``repro schedule`` and the sweep engine build bit-identical systems.
    """
    from repro.experiments.config import Cell
    from repro.experiments.runner import build_cell_system, build_topology
    from repro.network.topology import apply_link_model

    file_topology = None
    if req.topology_spec is not None or req.topology_file is not None:
        from repro.network.topology import Topology, load_topology

        if req.topology_spec is not None:
            source = "inline topology"
            topo = Topology.from_dict(req.topology_spec)
        else:
            source = req.topology_file
            topo = load_topology(req.topology_file)
        if req.n_procs is not None and req.n_procs != topo.n_procs:
            raise ConfigurationError(
                f"{source} has {topo.n_procs} processors; "
                f"--procs {req.n_procs} cannot apply"
            )
        # with the default flags this is a no-op that keeps the file's
        # own link specs; explicit duplex/bandwidth-skew overlay them
        file_topology = apply_link_model(
            topo, duplex=req.duplex,
            bandwidth_skew=req.bandwidth_skew, seed=req.seed,
        )

    if req.graph is not None or req.graph_path is not None:
        from repro.corpus.overlays import apply_overlay, parse_overlay
        from repro.graph.interchange import load_workload, loads_workload

        overlay = parse_overlay(req.overlay)
        bridge = req.bridge if req.bridge != "none" else overlay.bridge
        # strict validation is not optional here: every scheduler
        # re-checks the connected-DAG assumption itself; what IS offered
        # is the epsilon repair policy (bridge="epsilon")
        try:
            if req.graph_path is not None:
                workload = load_workload(
                    req.graph_path, fmt=req.format, bridge=bridge
                )
                source = req.graph_path
            else:
                workload = loads_workload(
                    req.graph, fmt=req.format, bridge=bridge
                )
                source = "inline graph"
        except DisconnectedGraphError as exc:
            raise DisconnectedGraphError(
                f"{exc} — the schedulers assume a connected DAG "
                f"(paper §2.1); pass `--bridge epsilon` to insert "
                f"minimal-cost connector edges, `--bridge components` "
                f"to co-schedule the weak components as independent "
                f"programs, or use `repro convert --allow-disconnected` "
                f"to inspect the file"
            ) from None
        if overlay.transforms:
            workload = apply_overlay(workload, overlay)
        if (workload.n_procs is not None and req.n_procs is not None
                and req.n_procs != workload.n_procs):
            raise ConfigurationError(
                f"{source} carries {workload.n_procs}-processor "
                f"cost vectors; --procs {req.n_procs} cannot apply"
            )
        if file_topology is not None:
            topology = file_topology
        else:
            n_procs = (
                workload.n_procs if workload.n_procs is not None
                else req.n_procs if req.n_procs is not None
                else 16
            )
            topology = build_topology(req.topology, n_procs, seed=req.seed)
            topology = apply_link_model(
                topology, duplex=req.duplex,
                bandwidth_skew=req.bandwidth_skew, seed=req.seed,
            )
        return workload.bind(topology, seed=req.seed)

    if file_topology is not None:
        from repro.network.system import HeterogeneousSystem
        from repro.workloads.suites import random_graph, regular_graph

        if req.workload == "random":
            graph = random_graph(req.size, req.granularity, seed=req.seed)
        else:
            graph = regular_graph(
                req.workload, req.size, req.granularity, seed=req.seed
            )
        return HeterogeneousSystem.sample(graph, file_topology, seed=req.seed)

    suite = "regular" if req.workload != "random" else "random"
    cell = Cell(
        suite=suite, app=req.workload, size=req.size,
        granularity=req.granularity, topology=req.topology,
        algorithm=req.algorithm,
        n_procs=req.n_procs if req.n_procs is not None else 16,
        graph_seed=req.seed, system_seed=req.seed,
        duplex=req.duplex, bandwidth_skew=req.bandwidth_skew,
    )
    return build_cell_system(cell)


def _run_scheduler(req, system):
    from repro.core.bsa import BSAOptions, schedule_bsa
    from repro.experiments.runner import _SCHEDULERS
    from repro.schedule.validator import validate_schedule

    with obs.span("schedule.algorithm", algorithm=req.algorithm):
        if req.algorithm == "bsa":
            sched = schedule_bsa(system, BSAOptions(seed=req.seed))
        else:
            sched = _SCHEDULERS[req.algorithm](system)
    with obs.span("schedule.validate"):
        validate_schedule(sched)
    return sched


# ----------------------------------------------------------------------
# per-type executors
# ----------------------------------------------------------------------

def _execute_schedule(req: ScheduleRequest, cache, use_cache: bool,
                      want_schedule: bool) -> ServiceResponse:
    from repro.experiments.cache import (
        PROVENANCE_KEY,
        default_cache,
        is_stale,
        stamp_provenance,
    )
    from repro.schedule.io import bundle_to_json, relabel_schedule
    from repro.schedule.metrics import compute_metrics

    key = req.idempotency_key()
    if cache is None:
        cache = default_cache()
    # a cache hit cannot hand back the live Schedule object a Gantt
    # render needs, so want_schedule recomputes (deterministically —
    # the cached bytes and the recomputed bytes are the same bundle)
    if use_cache and not want_schedule:
        with _cache_lock:
            hit = cache.get(key)
        if hit is not None and not is_stale(hit, key):
            return ServiceResponse(
                kind=req.TYPE, request_key=key, cache="hit",
                summary=dict(hit["summary"]), bundle_text=hit["bundle"],
                provenance=dict(hit.get(PROVENANCE_KEY) or {}),
            )

    with obs.span("schedule.build_system"):
        system = build_schedule_system(req)
    sched = _run_scheduler(req, system)
    metrics = compute_metrics(sched)
    bundle_text = bundle_to_json(relabel_schedule(sched), indent=2) + "\n"
    summary = {
        "graph": system.graph.name,
        "n_tasks": system.graph.n_tasks,
        "n_edges": system.graph.n_edges,
        "topology": system.topology.name,
        "algorithm": sched.algorithm,
        "schedule_length": metrics.schedule_length,
        "total_comm_cost": metrics.total_comm_cost,
        "n_hops": metrics.n_hops,
        "speedup": metrics.speedup,
        "efficiency": metrics.efficiency,
    }
    resp = ServiceResponse(
        kind=req.TYPE, request_key=key,
        cache="miss" if use_cache else "off",
        summary=summary, bundle_text=bundle_text,
        extra={"schedule": sched, "system": system},
    )
    if use_cache:
        entry = stamp_provenance({"summary": summary, "bundle": bundle_text}, key)
        resp.provenance = dict(entry[PROVENANCE_KEY])
        with _cache_lock:
            cache.put(key, entry)
    return resp


def _execute_convert(req: ConvertRequest) -> ServiceResponse:
    from repro.graph.interchange import (
        convert_file,
        dumps_workload,
        loads_workload,
        save_workload,
        sniff_format,
    )

    key = req.idempotency_key()
    if req.topology:
        from repro.network.topology import load_topology, save_topology

        topo = load_topology(req.src)
        save_topology(topo, req.dst)
        return ServiceResponse(
            kind=req.TYPE, request_key=key, cache="off",
            summary={
                "mode": "topology", "src": req.src, "dst": req.dst,
                "topology": topo.name, "n_procs": topo.n_procs,
                "n_links": topo.n_links,
            },
        )

    kwargs = {}
    if req.default_comm is not None:
        kwargs["default_comm"] = req.default_comm
    if req.default_cost is not None:
        kwargs["default_cost"] = req.default_cost
    output = None
    if req.graph is not None:
        in_fmt = req.from_fmt or sniff_format(req.graph)
        workload = loads_workload(
            req.graph, fmt=in_fmt, validate=req.validate_graph,
            require_connected=req.require_connected, bridge=req.bridge,
            **kwargs,
        )
        out_fmt = req.to_fmt
        output = dumps_workload(workload, out_fmt)
        if req.dst is not None:
            with open(req.dst, "w") as fh:
                fh.write(output)
    else:
        in_fmt, out_fmt, workload = convert_file(
            req.src, req.dst,
            from_fmt=req.from_fmt, to_fmt=req.to_fmt,
            validate=req.validate_graph,
            require_connected=req.require_connected,
            bridge=req.bridge,
            **kwargs,
        )
    g = workload.graph
    return ServiceResponse(
        kind=req.TYPE, request_key=key, cache="off",
        summary={
            "mode": "graph", "src": req.src, "dst": req.dst,
            "from": in_fmt, "to": out_fmt,
            "graph": g.name, "n_tasks": g.n_tasks, "n_edges": g.n_edges,
            "n_procs": workload.n_procs,
        },
        extra={"workload": workload, "output": output},
    )


def _execute_sweep(req: SweepRequest, cache, use_cache: bool, jobs: int,
                   progress: Optional[Callable[[str], None]]) -> ServiceResponse:
    from repro.experiments.cache import provenance_stamp
    from repro.experiments.runner import run_cells

    key = req.idempotency_key()
    cells = req.expand()
    results, report = run_cells(
        cells, jobs=jobs, cache=cache, use_cache=use_cache,
        progress=progress, raise_on_error=False,
    )
    summary = {
        "n_cells": len(cells),
        "cells": {k: r.to_dict() for k, r in sorted(results.items())},
        "report": {
            "total": report.total,
            "unique": report.unique,
            "cache_hits": report.cache_hits,
            "stale": report.stale,
            "computed": report.computed,
            "failures": [list(f) for f in report.failures],
            "wall_s": report.wall_s,
            "jobs": report.jobs,
        },
    }
    return ServiceResponse(
        kind=req.TYPE, request_key=key,
        cache="off" if not use_cache
        else ("hit" if report.computed == 0 and not report.failures
              else "miss"),
        summary=summary,
        provenance=provenance_stamp(key),
        extra={"report": report},
    )


def _execute_pareto(req: ParetoRequest, cache, use_cache: bool, jobs: int,
                    progress: Optional[Callable[[str], None]]) -> ServiceResponse:
    from repro.experiments.cache import provenance_stamp
    from repro.experiments.pareto import pareto_to_json, run_pareto

    key = req.idempotency_key()
    doc, report = run_pareto(
        req.base_cell(),
        algorithms=req.resolved_algorithms(),
        objectives=req.resolved_objectives(),
        jobs=jobs, cache=cache, use_cache=use_cache, progress=progress,
    )
    # the canonical artifact rides in bundle_text: both transports (CLI
    # stdout, HTTP body) emit this exact string
    text = pareto_to_json(doc)
    summary = {
        "objectives": doc["objectives"],
        "senses": doc["senses"],
        "points": doc["points"],
        "front": doc["front"],
    }
    return ServiceResponse(
        kind=req.TYPE, request_key=key,
        cache="off" if not use_cache
        else ("hit" if report.computed == 0 else "miss"),
        summary=summary, bundle_text=text,
        provenance=provenance_stamp(key),
        extra={"doc": doc, "report": report},
    )


def _execute_simulate(req: SimulateRequest) -> ServiceResponse:
    from repro.dynamic import (
        FailureInjector,
        events_from_dict,
        parse_scenario,
        read_event_trace,
        simulate,
    )

    key = req.idempotency_key()
    system = build_schedule_system(req._as_schedule())
    sched = _run_scheduler(req, system)
    static_sl = sched.schedule_length()
    if req.events is not None:
        try:
            doc = json.loads(req.events)
        except ValueError as exc:
            raise ConfigurationError(
                f"inline event trace is not valid JSON: {exc}"
            ) from None
        events = events_from_dict(doc)
        source = "inline events"
    elif req.events_path is not None:
        events = read_event_trace(req.events_path)
        source = req.events_path
    else:
        scenario = parse_scenario(req.scenario)
        events = FailureInjector(system, scenario, static_sl).events()
        source = f"scenario {req.scenario}"
    sim = simulate(sched, events, compare_replan=req.compare_replan)
    summary = {
        "graph": system.graph.name,
        "n_tasks": system.graph.n_tasks,
        "n_edges": system.graph.n_edges,
        "topology": system.topology.name,
        "algorithm": sched.algorithm,
        "static_sl": static_sl,
        "final_sl": sim.schedule.schedule_length(),
        "n_events": len(sim.records),
        "events_source": source,
        "records": [r.to_dict() for r in sim.records],
    }
    return ServiceResponse(
        kind=req.TYPE, request_key=key, cache="off", summary=summary,
        extra={"schedule": sched, "system": system, "sim": sim,
               "static_sl": static_sl, "events_source": source},
    )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def execute(
    request,
    cache=None,
    use_cache: bool = True,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    want_schedule: bool = False,
) -> ServiceResponse:
    """Run any service request through the shared pipeline.

    ``cache=None`` uses the process default; ``use_cache=False``
    computes fresh and writes nothing. ``jobs`` is the sweep worker-pool
    width (ignored elsewhere). ``want_schedule`` guarantees
    ``extra["schedule"]`` holds a live :class:`Schedule` (bypassing a
    would-be cache hit) for callers that need the object, e.g. a Gantt
    render. Failures raise the library's exceptions — transports map
    them via :mod:`repro.service.errors`.
    """
    request.validate()
    kind = getattr(request, "TYPE", type(request).__name__)
    with obs.span("service.execute", kind=kind) as sp:
        if isinstance(request, ScheduleRequest):
            resp = _execute_schedule(request, cache, use_cache, want_schedule)
        elif isinstance(request, ConvertRequest):
            resp = _execute_convert(request)
        elif isinstance(request, SweepRequest):
            resp = _execute_sweep(request, cache, use_cache, jobs, progress)
        elif isinstance(request, SimulateRequest):
            resp = _execute_simulate(request)
        elif isinstance(request, ParetoRequest):
            resp = _execute_pareto(request, cache, use_cache, jobs, progress)
        else:
            raise ConfigurationError(
                f"not a service request: {type(request).__name__}"
            )
    # wall clock is transport telemetry, never part of the artifact —
    # it rides in extra (in-process) and headers (HTTP), never the body
    resp.extra["wall_s"] = sp.elapsed_s
    resp.extra["wall_ms"] = round(sp.elapsed_s * 1000.0, 3)
    return resp
