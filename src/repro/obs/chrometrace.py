"""Chrome ``chrome://tracing`` JSON export (also loads in Perfetto).

Two exporters share the format:

* :func:`spans_to_trace` — the span records collected by
  :mod:`repro.obs.spans` as duration events (one row per thread);
* :func:`schedule_trace` — the **committed schedule itself** as a
  Gantt: every processor is a thread row carrying its task slices,
  every directed link is a thread row carrying its message-hop
  slices, and every non-local message is a flow arrow from the
  producer's slice to the consumer's. Any schedule bundle (or bare
  schedule export) becomes an openable trace via ``repro trace``.

Schedule times are in the paper's abstract cost units; the export maps
one unit to one millisecond (``ts`` is microseconds in the format), so
relative proportions — the only meaningful quantity — are preserved.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import SchedulingError

__all__ = ["spans_to_trace", "schedule_trace", "trace_to_json"]

#: one schedule cost unit, in trace microseconds (renders as 1 ms)
_UNIT_US = 1000.0


def spans_to_trace(records: List[Dict[str, Any]],
                   counters: Optional[Dict[str, int]] = None) -> dict:
    """Span records (``obs.span_records()``) as a trace document."""
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": 1,
         "args": {"name": "repro spans"}},
    ]
    tids: Dict[str, int] = {}
    for rec in records:
        thread = rec.get("thread", "main")
        tid = tids.get(thread)
        if tid is None:
            tid = tids[thread] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "args": {"name": thread},
            })
        event = {
            "ph": "X",
            "name": rec["name"],
            "pid": 1,
            "tid": tid,
            "ts": rec["start_s"] * 1e6,
            "dur": rec["dur_s"] * 1e6,
        }
        if rec.get("attrs"):
            event["args"] = dict(rec["attrs"])
        events.append(event)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if counters:
        doc["otherData"] = {"counters": dict(counters)}
    return doc


def _schedule_doc(data: dict) -> dict:
    """Accept a full bundle or a bare ``schedule_to_dict`` export."""
    from repro.schedule.io import BUNDLE_FORMAT

    if not isinstance(data, dict):
        raise SchedulingError("trace input must be a JSON object")
    if data.get("format") == BUNDLE_FORMAT:
        data = data.get("schedule") or {}
    if "tasks" not in data or "messages" not in data:
        raise SchedulingError(
            "not a schedule bundle or schedule export "
            "(no tasks/messages sections)"
        )
    return data


def schedule_trace(data: dict) -> dict:
    """Gantt trace of a committed schedule (bundle or schedule dict)."""
    doc = _schedule_doc(data)
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": 1,
         "args": {"name": "processors"}},
        {"ph": "M", "name": "process_name", "pid": 2,
         "args": {"name": "links"}},
    ]

    proc_of: Dict[str, int] = {}
    procs_seen = set()
    for entry in doc["tasks"]:
        proc = int(entry["proc"])
        proc_of[entry["task"]] = proc
        if proc not in procs_seen:
            procs_seen.add(proc)
            events.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": proc,
                "args": {"name": f"P{proc}"},
            })
        events.append({
            "ph": "X",
            "name": str(entry["task"]),
            "cat": "task",
            "pid": 1,
            "tid": proc,
            "ts": entry["start"] * _UNIT_US,
            "dur": max(entry["finish"] - entry["start"], 0.0) * _UNIT_US,
        })

    link_tids: Dict[str, int] = {}
    flow_id = 0
    for msg in doc["messages"]:
        hops = msg.get("hops") or []
        name = f"{msg['edge'][0]}->{msg['edge'][1]}"
        for hop in hops:
            link = f"{hop['src']}->{hop['dst']}"
            tid = link_tids.get(link)
            if tid is None:
                tid = link_tids[link] = len(link_tids) + 1
                events.append({
                    "ph": "M", "name": "thread_name", "pid": 2, "tid": tid,
                    "args": {"name": link},
                })
            events.append({
                "ph": "X",
                "name": name,
                "cat": "message",
                "pid": 2,
                "tid": tid,
                "ts": hop["start"] * _UNIT_US,
                "dur": max(hop["finish"] - hop["start"], 0.0) * _UNIT_US,
            })
        if msg.get("local") or not hops:
            continue
        u, v = msg["edge"][0], msg["edge"][1]
        up, vp = proc_of.get(u), proc_of.get(v)
        if up is None or vp is None:
            continue
        flow_id += 1
        # flow arrow: leaves the producer's slice at the first hop's
        # departure, lands on the consumer's slice at the last arrival
        events.append({
            "ph": "s", "id": flow_id, "name": name, "cat": "message",
            "pid": 1, "tid": up, "ts": hops[0]["start"] * _UNIT_US,
        })
        events.append({
            "ph": "f", "bp": "e", "id": flow_id, "name": name,
            "cat": "message",
            "pid": 1, "tid": vp, "ts": hops[-1]["finish"] * _UNIT_US,
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "algorithm": doc.get("algorithm"),
            "graph": doc.get("graph"),
            "topology": doc.get("topology"),
            "schedule_length": doc.get("schedule_length"),
            "time_scale": "1 schedule unit = 1 ms",
        },
    }


def trace_to_json(doc: dict) -> str:
    """Serialize a trace document (stable key order, one trailing \\n)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
