"""Prometheus text exposition of the deterministic counters.

Rendered by ``GET /metrics`` on ``repro serve`` (text format version
0.0.4 — what every Prometheus scraper and ``promtool`` accept). Every
registered counter appears, zeros included, so a scrape's series set
is stable from the first request; the name mapping is mechanical
(``bsa.candidates_evaluated`` -> ``repro_bsa_candidates_evaluated_total``)
and a docs test pins the README table to it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs import counters as _counters

__all__ = ["metric_name", "render_metrics", "CONTENT_TYPE"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def metric_name(counter: str) -> str:
    """``section.name`` -> ``repro_section_name_total``."""
    return "repro_" + counter.replace(".", "_").replace("-", "_") + "_total"


def render_metrics(extra_gauges: Optional[Dict[str, float]] = None) -> str:
    """The full ``/metrics`` payload.

    ``extra_gauges`` lets the transport add its own non-deterministic
    gauges (request totals, uptime) without touching the registry.
    """
    from repro import __version__
    from repro.util.intervals import hotpath_mode

    lines = [
        "# HELP repro_build_info Library version and engine mode "
        "(value is always 1).",
        "# TYPE repro_build_info gauge",
        f'repro_build_info{{version="{__version__}",'
        f'engine_mode="{hotpath_mode()}"}} 1',
        "# HELP repro_obs_enabled Whether deterministic counter "
        "collection is on.",
        "# TYPE repro_obs_enabled gauge",
        f"repro_obs_enabled {int(_counters.ACTIVE)}",
    ]
    values = _counters.snapshot()
    for counter in sorted(_counters.COUNTERS):
        name = metric_name(counter)
        lines.append(f"# HELP {name} {_counters.COUNTERS[counter]}")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {values.get(counter, 0)}")
    for gauge, value in sorted((extra_gauges or {}).items()):
        lines.append(f"# TYPE {gauge} gauge")
        g = int(value) if float(value).is_integer() else value
        lines.append(f"{gauge} {g}")
    return "\n".join(lines) + "\n"
