"""Deterministic engine counters — the observability registry.

One process-local ``{name: int}`` map behind a module-level ``ACTIVE``
flag. The flag is the whole overhead story: every instrumentation site
in the engine reads ``_obs.ACTIVE`` (one module-attribute load and a
bool test) before touching the registry, so with observability off —
the default — the hot paths pay nothing measurable
(``benchmarks/bench_hotpath.py --obs-guard`` enforces it).

Counters are **deterministic by contract**: they count algorithmic
events (candidates evaluated, cone pops, rollbacks, cache
dispositions), never wall-clock or allocation artifacts. For a fixed
request and engine mode they are identical rep-to-rep and independent
of ``--jobs`` — worker processes return per-chunk deltas that the
parent merges, and integer addition commutes (see
``repro.experiments.runner``). That makes a pinned counter snapshot a
regression test for *how* a schedule was found, which makespan pins
cannot see.

Wall times are not counters; they live in :mod:`repro.obs.spans`.
"""

from __future__ import annotations

import os
from typing import Dict

__all__ = [
    "ACTIVE",
    "COUNTERS",
    "enabled",
    "enable",
    "disable",
    "inc",
    "snapshot",
    "reset",
    "merge",
]

_TRUE = ("1", "true", "yes", "on")

#: master switch. Read directly (``_obs.ACTIVE``) from hot code;
#: flipped by :func:`enable`/:func:`disable` (which also set the
#: ``REPRO_OBS`` env var so sweep worker processes inherit the state).
ACTIVE: bool = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUE

#: the registry of every deterministic counter the engine increments,
#: with operator-facing help text. ``/metrics`` and ``repro profile``
#: render exactly this set (zero-valued counters included), and a docs
#: test pins the README table to it.
COUNTERS: Dict[str, str] = {
    "bsa.tasks_examined":
        "pivot tasks examined for migration across all BSA sweeps",
    "bsa.candidates_evaluated":
        "exact candidate (task, processor) evaluations",
    "bsa.candidates_pruned":
        "candidates skipped by lower-bound / vectorized mask pruning",
    "bsa.migrations":
        "committed task migrations",
    "bsa.vip_migrations":
        "migrations that followed the VIP heuristic",
    "bsa.rejected_migrations":
        "trial migrations rolled back for not improving finish time",
    "bsa.sweeps":
        "BSA pivot sweeps run",
    "settle.incremental_runs":
        "change-driven cone settles completed without fallback",
    "settle.cone_pops":
        "worklist pops across incremental settles (total cone size)",
    "settle.budget_fallbacks":
        "incremental settles abandoned to the full pass (pop budget)",
    "settle.full_passes":
        "full Kahn settle passes (fast/legacy engines and fallbacks)",
    "txn.rollbacks":
        "schedule transactions rolled back via the undo log",
    "route.trie_hits":
        "array-engine route-trie cache hits",
    "route.trie_misses":
        "array-engine route-trie builds (cache misses)",
    "cache.hits":
        "ResultCache entries served (fresh provenance)",
    "cache.misses":
        "ResultCache lookups that found no entry",
    "cache.stale":
        "ResultCache entries recomputed for contradicting provenance",
}

_values: Dict[str, int] = {name: 0 for name in COUNTERS}


def enabled() -> bool:
    """Is the observability layer collecting?"""
    return ACTIVE


def enable() -> None:
    """Turn collection on, for this process *and* (via ``REPRO_OBS``)
    any worker process forked or spawned after this call."""
    global ACTIVE
    ACTIVE = True
    os.environ["REPRO_OBS"] = "1"


def disable() -> None:
    """Turn collection off again (counters keep their values; call
    :func:`reset` to zero them)."""
    global ACTIVE
    ACTIVE = False
    os.environ.pop("REPRO_OBS", None)


def inc(name: str, delta: int = 1) -> None:
    """Add ``delta`` to a counter. Callers guard with ``ACTIVE`` first;
    unknown names register on the fly (handy for tests/extensions)."""
    _values[name] = _values.get(name, 0) + delta


def snapshot() -> Dict[str, int]:
    """Name-sorted copy of every counter (zeros included)."""
    return {name: _values.get(name, 0)
            for name in sorted(set(COUNTERS) | set(_values))}


def reset() -> None:
    """Zero every counter (registered and dynamic)."""
    for name in list(_values):
        _values[name] = 0


def merge(delta: Dict[str, int]) -> None:
    """Fold a worker chunk's counter delta into this process's registry.

    Sums commute, so the merged totals are independent of chunk
    completion order — the property the ``--jobs`` identity tests pin.
    """
    for name, value in delta.items():
        _values[name] = _values.get(name, 0) + int(value)
