"""Structured NDJSON event log + the one stderr telemetry path.

Two channels, deliberately separate from every artifact:

* :func:`telemetry` — the human-facing stderr line (what the corpus
  bench and the CLI used to ``print(..., file=sys.stderr)`` directly).
  Always on: these lines are operator feedback, not collection. When a
  log sink is configured the same line is *also* recorded as an NDJSON
  ``{"event": "telemetry", ...}`` record.
* :func:`log_json` — one JSON object per line to the configured sink
  (``repro serve --log-file``). Keys are sorted, writes are
  lock-serialized and flushed per line, so a tail of the file is
  always parseable. Without a sink it is a no-op.

Nothing here ever reaches stdout, a cached entry, or a bundle — the
byte-identity contracts stay blind to logging.
"""

from __future__ import annotations

import json
import sys
import threading
from typing import Any, IO, Optional

__all__ = ["configure_log", "log_json", "log_path", "telemetry"]

_sink: Optional[IO[str]] = None
_sink_path: Optional[str] = None
_lock = threading.Lock()


def configure_log(path: Optional[str] = None,
                  stream: Optional[IO[str]] = None) -> None:
    """Open (append) or replace the NDJSON sink; ``None`` closes it."""
    global _sink, _sink_path
    with _lock:
        if _sink is not None and _sink_path is not None:
            try:
                _sink.close()
            except OSError:  # pragma: no cover - close-on-teardown race
                pass
        if stream is not None:
            _sink, _sink_path = stream, None
        elif path is not None:
            _sink, _sink_path = open(path, "a"), path
        else:
            _sink, _sink_path = None, None


def log_path() -> Optional[str]:
    """The configured log file path (``None`` for stream/off)."""
    return _sink_path


def log_json(**fields: Any) -> None:
    """Append one NDJSON record to the sink (no-op when unconfigured)."""
    if _sink is None:
        return
    line = json.dumps(fields, sort_keys=True, default=str)
    with _lock:
        if _sink is None:  # pragma: no cover - closed by a racing reconfigure
            return
        _sink.write(line + "\n")
        _sink.flush()


def telemetry(message: str) -> None:
    """One operator-facing stderr line (plus an NDJSON copy if logging)."""
    sys.stderr.write(message + "\n")
    log_json(event="telemetry", message=message)
