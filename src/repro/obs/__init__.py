"""``repro.obs`` — the zero-dependency observability layer.

Everything is **off by default** and gated by one module-level flag
(:data:`repro.obs.counters.ACTIVE`, set from the ``REPRO_OBS`` env var
at import, flipped by :func:`enable`/:func:`disable` or the CLI's
``--obs`` flags). Hot engine code guards every increment with that
flag, so the disabled overhead is one attribute load + bool test per
*event batch* — enforced within bench noise by
``benchmarks/bench_hotpath.py --obs-guard``.

Three kinds of signal, strictly out-of-band (stderr, files, HTTP
headers — never cached artifacts or bundles):

* **deterministic counters** (:mod:`repro.obs.counters`) — algorithmic
  event counts, identical rep-to-rep and across ``--jobs``;
* **spans** (:mod:`repro.obs.spans`) — nested wall-time scopes,
  exportable as Chrome ``chrome://tracing`` JSON
  (:mod:`repro.obs.chrometrace`, which also renders any committed
  schedule as a Gantt trace);
* **logs** (:mod:`repro.obs.ndjson`) — the stderr telemetry line and
  the NDJSON request log behind ``repro serve --log-file``;

plus the Prometheus text rendering for ``GET /metrics``
(:mod:`repro.obs.promtext`).

Entry points: ``repro profile`` (counter/span table for one cell),
``repro trace`` (bundle -> Chrome trace), ``repro serve --obs
--log-file``.
"""

from repro.obs.counters import (
    COUNTERS,
    disable,
    enable,
    enabled,
    inc,
    merge,
    reset,
    snapshot,
)
from repro.obs.ndjson import configure_log, log_json, log_path, telemetry
from repro.obs.spans import Span, reset_spans, span, span_records

__all__ = [
    "COUNTERS",
    "Span",
    "configure_log",
    "disable",
    "enable",
    "enabled",
    "inc",
    "log_json",
    "log_path",
    "merge",
    "reset",
    "reset_spans",
    "snapshot",
    "span",
    "span_records",
    "telemetry",
]
