"""Scoped wall-time spans: ``with obs.span("settle"): ...``.

A span always measures its own wall time (two ``perf_counter`` calls —
cheap enough for per-request/per-cell granularity, so callers that
used to keep ad-hoc ``t0 = perf_counter()`` pairs read
``sp.elapsed_s`` instead and there is exactly one timing code path).
The *record* — name, start, duration, nesting depth, thread — is kept
only while the layer is collecting (``counters.ACTIVE``), bounded by
``MAX_RECORDS`` so a long-lived server cannot grow without bound.

Spans nest through a per-thread stack; the records are what
``repro profile`` tabulates and :mod:`repro.obs.chrometrace` exports
as ``chrome://tracing`` JSON. Wall times are telemetry, never part of
any artifact — the byte-identity contracts do not see them.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs import counters as _counters

__all__ = ["Span", "span", "span_records", "reset_spans", "MAX_RECORDS"]

#: record-buffer bound; beyond it spans still time, but stop recording
MAX_RECORDS = 100_000

#: one clock epoch per process so record starts are comparable
_EPOCH = time.perf_counter()

_records: List[Dict[str, Any]] = []
_records_lock = threading.Lock()
_stack = threading.local()


class Span:
    """Context manager measuring one scoped region.

    ``elapsed_s`` is valid after exit whether or not collection is on.
    """

    __slots__ = ("name", "attrs", "_t0", "elapsed_s", "_depth")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs = attrs
        self.elapsed_s = 0.0
        self._t0 = 0.0
        self._depth = 0

    def __enter__(self) -> "Span":
        stack = getattr(_stack, "names", None)
        if stack is None:
            stack = _stack.names = []
        self._depth = len(stack)
        stack.append(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = time.perf_counter()
        self.elapsed_s = t1 - self._t0
        _stack.names.pop()
        if _counters.ACTIVE:
            record = {
                "name": self.name,
                "start_s": self._t0 - _EPOCH,
                "dur_s": self.elapsed_s,
                "depth": self._depth,
                "thread": threading.current_thread().name,
            }
            if self.attrs:
                record["attrs"] = dict(self.attrs)
            with _records_lock:
                if len(_records) < MAX_RECORDS:
                    _records.append(record)


def span(name: str, **attrs: Any) -> Span:
    """Open a scoped span (see module docstring)."""
    return Span(name, attrs or None)


def span_records() -> List[Dict[str, Any]]:
    """Copy of the recorded spans, in completion order."""
    with _records_lock:
        return [dict(r) for r in _records]


def reset_spans() -> None:
    """Drop every recorded span."""
    with _records_lock:
        _records.clear()
