"""Heterogeneous processor network substrate: topologies, factors, routing."""

from repro.network.topology import (
    Topology,
    ring,
    chain,
    hypercube,
    clique,
    fully_connected,
    star,
    mesh2d,
    binary_tree,
    random_topology,
    paper_topologies,
)
from repro.network.system import HeterogeneousSystem, LinkHeterogeneity
from repro.network.routing import (
    RoutingTable,
    shortest_path,
    build_routing_table,
    ecube_path,
)

__all__ = [
    "Topology",
    "ring",
    "chain",
    "hypercube",
    "clique",
    "fully_connected",
    "star",
    "mesh2d",
    "binary_tree",
    "random_topology",
    "paper_topologies",
    "HeterogeneousSystem",
    "LinkHeterogeneity",
    "RoutingTable",
    "shortest_path",
    "build_routing_table",
    "ecube_path",
]
