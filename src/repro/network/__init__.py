"""Heterogeneous processor network substrate: topologies, factors, routing."""

from repro.network.topology import (
    LinkSpec,
    Topology,
    apply_link_model,
    ring,
    chain,
    hypercube,
    clique,
    fat_tree,
    fully_connected,
    star,
    mesh2d,
    torus2d,
    binary_tree,
    random_topology,
    paper_topologies,
)
from repro.network.system import HeterogeneousSystem, LinkHeterogeneity
from repro.network.routing import (
    RoutingTable,
    shortest_path,
    build_routing_table,
    ecube_path,
)

__all__ = [
    "LinkSpec",
    "Topology",
    "apply_link_model",
    "ring",
    "chain",
    "hypercube",
    "clique",
    "fat_tree",
    "fully_connected",
    "star",
    "mesh2d",
    "torus2d",
    "binary_tree",
    "random_topology",
    "paper_topologies",
    "HeterogeneousSystem",
    "LinkHeterogeneity",
    "RoutingTable",
    "shortest_path",
    "build_routing_table",
    "ecube_path",
]
