"""Static routing: BFS shortest-path tables and E-cube (hypercube) routes.

The DLS baseline (and any routing-table scheduler) needs a pre-determined
route between every processor pair, exactly as the paper describes:
"the routing table has to be pre-determined, usually using shortest-path
algorithm, for the input target topology". We use BFS (all links count one
hop) with deterministic lexicographic tie-breaking, so tables are stable
across runs.

The paper also names **E-cube routing** as the canonical *static* policy
on hypercubes ("such as a hypercube that uses the E-cube routing
method"); :func:`ecube_path` implements it (dimension-ordered: correct
address bits from least-significant upward), and
``RoutingTable(topology, strategy="ecube")`` builds a table from it.

BSA deliberately needs *no* routing table — routes emerge from migration —
but the table is also used by the schedule *validator* to check that DLS
routes are shortest paths, and by tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import RoutingError
from repro.network.topology import Link, Proc, Topology, link_id
from repro.util.intervals import fast_path_enabled


class RoutingTable:
    """All-pairs next-hop table over a topology.

    ``strategy="bfs"`` (default) uses breadth-first shortest paths on any
    topology; ``strategy="ecube"`` uses dimension-ordered E-cube routing
    and requires a hypercube (every ``p ^ (1 << d)`` neighbor present);
    ``strategy="weighted"`` is cost-aware: Dijkstra over per-hop transfer
    time ``1 / bandwidth(link)``, so routes prefer fat links (ties break
    toward fewer hops, then lexicographically — deterministic tables).
    On a uniform-bandwidth topology "weighted" degrades to the BFS hop
    metric (identical hop counts; equal-length ties may resolve to a
    different route than BFS's discovery order).
    """

    STRATEGIES = ("bfs", "ecube", "weighted")

    def __init__(self, topology: Topology, strategy: str = "bfs"):
        if strategy not in self.STRATEGIES:
            raise RoutingError(f"unknown routing strategy {strategy!r}")
        self.topology = topology
        self.strategy = strategy
        # next_hop[src][dst] -> neighbor of src on the chosen shortest path
        self._next: Dict[Proc, Dict[Proc, Proc]] = {}
        # fast-path memo of materialized paths (the table is immutable)
        self._path_cache: Dict[Tuple[Proc, Proc], List[Proc]] = {}
        if strategy == "ecube":
            _check_hypercube(topology)
            for src in topology.processors:
                self._next[src] = {}
                for dst in topology.processors:
                    if src != dst:
                        self._next[src][dst] = _ecube_next_hop(src, dst)
        elif strategy == "weighted":
            for dst in topology.processors:
                self._build_to_weighted(dst)
        else:
            for dst in topology.processors:
                self._build_to(dst)

    def _build_to(self, dst: Proc) -> None:
        """BFS from ``dst``; parents give next hops toward ``dst``."""
        dist: Dict[Proc, int] = {dst: 0}
        toward: Dict[Proc, Proc] = {}
        frontier = [dst]
        while frontier:
            nxt: List[Proc] = []
            for p in frontier:
                for q in self.topology.neighbors(p):  # sorted => deterministic
                    if q not in dist:
                        dist[q] = dist[p] + 1
                        toward[q] = p
                        nxt.append(q)
            frontier = nxt
        for src, hop in toward.items():
            self._next.setdefault(src, {})[dst] = hop
        self._next.setdefault(dst, {})

    def _build_to_weighted(self, dst: Proc) -> None:
        """Dijkstra from ``dst`` over per-hop time ``1 / bandwidth``.

        Labels are ``(time, hops, proc)`` tuples, so equal-time routes
        prefer fewer hops and then the lexicographically smallest next
        hop — the table is deterministic for a fixed topology.
        """
        import heapq

        topo = self.topology
        best: Dict[Proc, Tuple[float, int]] = {dst: (0.0, 0)}
        toward: Dict[Proc, Proc] = {}
        heap: List[Tuple[float, int, Proc]] = [(0.0, 0, dst)]
        while heap:
            t, h, p = heapq.heappop(heap)
            if (t, h) != best.get(p):
                continue  # stale entry
            for q in topo.neighbors(p):  # sorted => deterministic
                cand = (t + 1.0 / topo.bandwidth(p, q), h + 1)
                cur = best.get(q)
                if cur is None or cand < cur or (cand == cur and p < toward[q]):
                    best[q] = cand
                    toward[q] = p
                    heapq.heappush(heap, (cand[0], cand[1], q))
        for src, hop in toward.items():
            self._next.setdefault(src, {})[dst] = hop
        self._next.setdefault(dst, {})

    def next_hop(self, src: Proc, dst: Proc) -> Proc:
        if src == dst:
            raise RoutingError(f"no hop needed from {src} to itself")
        try:
            return self._next[src][dst]
        except KeyError:
            raise RoutingError(f"no route from {src} to {dst}") from None

    def path(self, src: Proc, dst: Proc) -> List[Proc]:
        """Processor sequence ``src .. dst`` (length 1 when src == dst).

        On the fast hot path the materialized list is memoized (the table
        never changes after construction); the shared list must not be
        mutated by callers.
        """
        if src == dst:
            return [src]
        if fast_path_enabled():
            hit = self._path_cache.get((src, dst))
            if hit is not None:
                return hit
        path = [src]
        cur = src
        while cur != dst:
            cur = self.next_hop(cur, dst)
            path.append(cur)
            if len(path) > self.topology.n_procs:
                raise RoutingError(f"routing loop from {src} to {dst}")
        if fast_path_enabled():
            self._path_cache[(src, dst)] = path
        return path

    def links_on_path(self, src: Proc, dst: Proc) -> List[Link]:
        procs = self.path(src, dst)
        return [link_id(a, b) for a, b in zip(procs, procs[1:])]

    def hop_distance(self, src: Proc, dst: Proc) -> int:
        return len(self.path(src, dst)) - 1


def shortest_path(topology: Topology, src: Proc, dst: Proc) -> List[Proc]:
    """BFS shortest path (for callers that don't keep a table).

    On the fast hot path, paths are memoized per topology *instance*
    (the cache lives on the topology object, so it follows topology
    identity and can never leak across systems). Topologies are immutable
    after construction, which makes the memo safe. The returned list is
    shared — callers must not mutate it.
    """
    if src == dst:
        return [src]
    if not fast_path_enabled():
        return _bfs_path(topology, src, dst)
    cache: Dict[Tuple[Proc, Proc], List[Proc]] = topology.__dict__.setdefault(
        "_sp_cache", {}
    )
    path = cache.get((src, dst))
    if path is None:
        path = _bfs_path(topology, src, dst)
        cache[(src, dst)] = path
    return path


def _bfs_path(topology: Topology, src: Proc, dst: Proc) -> List[Proc]:
    """The original one-off BFS (deterministic: sorted neighbor order,
    first discovery wins — memoized and unmemoized paths are identical)."""
    prev: Dict[Proc, Proc] = {}
    seen = {src}
    frontier = [src]
    while frontier:
        nxt: List[Proc] = []
        for p in frontier:
            for q in topology.neighbors(p):
                if q not in seen:
                    seen.add(q)
                    prev[q] = p
                    if q == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(prev[path[-1]])
                        return list(reversed(path))
                    nxt.append(q)
        frontier = nxt
    raise RoutingError(f"no route from {src} to {dst}")


def build_routing_table(topology: Topology, strategy: str = "bfs") -> RoutingTable:
    """Convenience constructor mirroring the paper's wording."""
    return RoutingTable(topology, strategy=strategy)


# ----------------------------------------------------------------------
# E-cube (dimension-ordered) routing for hypercubes
# ----------------------------------------------------------------------

def _check_hypercube(topology: Topology) -> None:
    m = topology.n_procs
    if m < 2 or (m & (m - 1)) != 0:
        raise RoutingError(
            f"E-cube routing needs a power-of-two hypercube, got {m} processors"
        )
    dim = m.bit_length() - 1
    for p in range(m):
        for d in range(dim):
            if not topology.has_link(p, p ^ (1 << d)):
                raise RoutingError(
                    f"topology {topology.name!r} is not a hypercube: "
                    f"missing link ({p}, {p ^ (1 << d)})"
                )


def _ecube_next_hop(src: Proc, dst: Proc) -> Proc:
    """Correct the least-significant differing address bit."""
    diff = src ^ dst
    lowest = diff & -diff
    return src ^ lowest


def ecube_path(topology: Topology, src: Proc, dst: Proc) -> List[Proc]:
    """Dimension-ordered E-cube route on a hypercube.

    Deterministic, deadlock-free, and exactly ``popcount(src ^ dst)`` hops
    — the static policy the paper names for hypercubes.
    """
    _check_hypercube(topology)
    path = [src]
    cur = src
    while cur != dst:
        cur = _ecube_next_hop(cur, dst)
        path.append(cur)
    return path
