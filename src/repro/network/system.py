"""Binding of a task graph to a heterogeneous platform.

The paper models heterogeneity with per-(task, processor) factors
``h_ix`` (actual execution cost ``h_ix * tau_i``) and per-(message, link)
factors ``h'_ij,xy`` (actual communication cost ``h'_ij,xy * c_ij``).

:class:`HeterogeneousSystem` stores the *actual* execution cost of every
task on every processor (either sampled from U[1, H] factors as in the
experiments, or given explicitly as in Table 1) plus a link-heterogeneity
model. Link factors in the ``per_message_link`` mode are materialized
lazily via stable hashing so no ``e x links`` matrix is ever stored, and
the value drawn for a (message, link) pair does not depend on evaluation
order.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.graph.model import TaskGraph, TaskId
from repro.network.topology import Link, Proc, Topology, link_id
from repro.util.intervals import fast_path_enabled
from repro.util.rng import RngStream, stable_uniform


class LinkHeterogeneity(enum.Enum):
    """How link factors ``h'_ij,xy`` are generated."""

    HOMOGENEOUS = "homogeneous"          # h' = 1 for every message and link
    PER_LINK = "per_link"                # one factor per link, shared by messages
    PER_MESSAGE_LINK = "per_message_link"  # independent factor per (message, link)


class HeterogeneousSystem:
    """A task graph bound to a processor network with heterogeneity factors.

    Use :meth:`sample` for the paper's randomized experiments or
    :meth:`from_exec_table` for explicit cost tables (Table 1).
    """

    def __init__(
        self,
        graph: TaskGraph,
        topology: Topology,
        exec_costs: Mapping[TaskId, Sequence[float]],
        link_mode: LinkHeterogeneity = LinkHeterogeneity.HOMOGENEOUS,
        link_factor_range: Tuple[float, float] = (1.0, 1.0),
        link_seed: int = 0,
        per_link_factors: Optional[Mapping[Link, float]] = None,
    ):
        self.graph = graph
        self.topology = topology
        self.link_mode = link_mode
        self.link_factor_range = link_factor_range
        self.link_seed = link_seed
        self._exec: Dict[TaskId, Tuple[float, ...]] = {}
        for t in graph.tasks():
            if t not in exec_costs:
                raise ConfigurationError(f"no execution costs for task {t!r}")
            row = tuple(float(c) for c in exec_costs[t])
            if len(row) != topology.n_procs:
                raise ConfigurationError(
                    f"task {t!r}: expected {topology.n_procs} costs, got {len(row)}"
                )
            if any(c <= 0 for c in row):
                raise ConfigurationError(f"task {t!r}: execution costs must be positive")
            self._exec[t] = row
        self._per_link: Dict[Link, float] = dict(per_link_factors or {})
        if link_mode is LinkHeterogeneity.PER_LINK and not self._per_link:
            raise ConfigurationError("PER_LINK mode requires per_link_factors")
        # optional multi-criteria models (repro.objectives): a
        # PowerModel / ReliabilityModel bound to this platform. None
        # means "use the deterministic defaults" — evaluators fall back
        # to PowerModel.uniform / ReliabilityModel.uniform, so every
        # system has well-defined energy and reliability. Kept as plain
        # attributes (not constructor args) so the network layer stays
        # free of an objectives import.
        self.power_model = None       # Optional[PowerModel]
        self.failure_model = None     # Optional[ReliabilityModel]
        # fast-path memo for comm_cost: every factor source is a pure
        # function of (edge, link) for a fixed system, so caching is exact.
        self._comm_cache: Dict[Tuple[Tuple[TaskId, TaskId], Link], float] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def sample(
        cls,
        graph: TaskGraph,
        topology: Topology,
        het_range: Tuple[float, float] = (1.0, 50.0),
        link_het_range: Optional[Tuple[float, float]] = None,
        seed: int = 0,
        link_mode: LinkHeterogeneity = LinkHeterogeneity.PER_MESSAGE_LINK,
    ) -> "HeterogeneousSystem":
        """Sample factors like the paper's experiments.

        Execution factors ``h_ix ~ U[het_range]`` per (task, processor);
        each task's *fastest* processor is normalized to factor exactly
        ``lo`` so nominal costs mean "cost on the fastest processor" as the
        paper states. ``link_het_range=None`` gives homogeneous links
        (``h' = 1``), which the paper uses in its worked example; pass a
        range (e.g. ``(1, 50)``) to sample link factors too.
        """
        lo, hi = het_range
        if not (0 < lo <= hi):
            raise ConfigurationError(f"bad heterogeneity range [{lo}, {hi}]")
        rng = RngStream(seed).fork("exec-factors", graph.name, topology.n_procs)
        exec_costs: Dict[TaskId, Tuple[float, ...]] = {}
        for t in graph.tasks():
            factors = [rng.uniform(lo, hi) for _ in range(topology.n_procs)]
            # normalize: fastest processor runs the task at factor `lo`
            fastest = min(range(topology.n_procs), key=lambda p: factors[p])
            factors[fastest] = lo
            exec_costs[t] = tuple(f * graph.cost(t) for f in factors)
        if link_het_range is None:
            return cls(graph, topology, exec_costs,
                       link_mode=LinkHeterogeneity.HOMOGENEOUS)
        llo, lhi = link_het_range
        if not (0 < llo <= lhi):
            raise ConfigurationError(f"bad link heterogeneity range [{llo}, {lhi}]")
        return cls(
            graph,
            topology,
            exec_costs,
            link_mode=link_mode,
            link_factor_range=(llo, lhi),
            link_seed=RngStream(seed).fork("link-factors").seed,
        )

    @classmethod
    def from_exec_table(
        cls,
        graph: TaskGraph,
        topology: Topology,
        table: Mapping[TaskId, Sequence[float]],
        link_mode: LinkHeterogeneity = LinkHeterogeneity.HOMOGENEOUS,
        per_link_factors: Optional[Mapping[Link, float]] = None,
        link_factor_range: Tuple[float, float] = (1.0, 1.0),
        link_seed: int = 0,
    ) -> "HeterogeneousSystem":
        """Build from an explicit actual-execution-cost table (paper Table 1)."""
        return cls(
            graph,
            topology,
            table,
            link_mode=link_mode,
            per_link_factors=per_link_factors,
            link_factor_range=link_factor_range,
            link_seed=link_seed,
        )

    # ------------------------------------------------------------------
    # costs
    # ------------------------------------------------------------------
    def exec_cost(self, task: TaskId, proc: Proc) -> float:
        """Actual execution cost of ``task`` on ``proc`` (``h_ix * tau_i``)."""
        try:
            return self._exec[task][proc]
        except KeyError:
            raise ConfigurationError(f"unknown task {task!r}") from None
        except IndexError:
            raise ConfigurationError(
                f"processor {proc} out of range 0..{self.topology.n_procs - 1}"
            ) from None

    def exec_cost_row(self, task: TaskId) -> Tuple[float, ...]:
        """Actual cost of ``task`` on every processor."""
        return self._exec[task]

    def add_task_costs(self, task: TaskId, costs: Sequence[float]) -> None:
        """Register the cost row of a task added to the graph *after*
        construction (dynamic arrivals).  The task must already exist in
        the graph and must not have a row yet; validation matches the
        constructor's.
        """
        if not self.graph.has_task(task):
            raise ConfigurationError(
                f"cannot add costs for {task!r}: not in graph {self.graph.name!r}"
            )
        if task in self._exec:
            raise ConfigurationError(f"task {task!r} already has execution costs")
        row = tuple(float(c) for c in costs)
        if len(row) != self.topology.n_procs:
            raise ConfigurationError(
                f"task {task!r}: expected {self.topology.n_procs} costs, got {len(row)}"
            )
        if any(c <= 0 for c in row):
            raise ConfigurationError(f"task {task!r}: execution costs must be positive")
        self._exec[task] = row

    def exec_cost_fn(self, proc: Proc):
        """Cost accessor for a fixed processor (feeds level analysis)."""
        return lambda task: self.exec_cost(task, proc)

    def fastest_proc(self, task: TaskId) -> Proc:
        row = self._exec[task]
        return min(range(len(row)), key=lambda p: row[p])

    def median_exec_cost(self, task: TaskId) -> float:
        """Median over processors — DLS's machine-independent cost ``E*``."""
        row = sorted(self._exec[task])
        k = len(row)
        mid = k // 2
        if k % 2:
            return row[mid]
        return 0.5 * (row[mid - 1] + row[mid])

    def mean_exec_cost(self, task: TaskId) -> float:
        row = self._exec[task]
        return sum(row) / len(row)

    def link_factor(self, edge: Tuple[TaskId, TaskId], link: Link) -> float:
        """Heterogeneity factor ``h'_ij,xy`` for message ``edge`` on ``link``."""
        lid = link_id(*link)
        if not self.topology.has_link(*lid):
            raise TopologyError(f"no link {lid} in topology {self.topology.name!r}")
        if self.link_mode is LinkHeterogeneity.HOMOGENEOUS:
            return 1.0
        if self.link_mode is LinkHeterogeneity.PER_LINK:
            try:
                return self._per_link[lid]
            except KeyError:
                raise ConfigurationError(f"no factor for link {lid}") from None
        lo, hi = self.link_factor_range
        return stable_uniform(self.link_seed, ("link-het", edge, lid), lo, hi)

    def comm_cost(self, edge: Tuple[TaskId, TaskId], link: Link) -> float:
        """Actual hop duration of message ``edge`` on ``link``
        (``h' * c_ij / bandwidth``).

        Bandwidth comes from the link's :class:`~repro.network.topology.
        LinkSpec`; the default 1.0 divides out bit-exactly, so uniform
        topologies reproduce the paper's ``h' * c_ij`` unchanged.
        """
        if fast_path_enabled():
            key = (edge, link)
            hit = self._comm_cache.get(key)
            if hit is not None:
                return hit
            src, dst = edge
            cost = (
                self.link_factor(edge, link)
                * self.graph.comm_cost(src, dst)
                / self.topology.bandwidth(*link)
            )
            self._comm_cache[key] = cost
            return cost
        src, dst = edge
        return (
            self.link_factor(edge, link)
            * self.graph.comm_cost(src, dst)
            / self.topology.bandwidth(*link)
        )

    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        return self.topology.n_procs

    @property
    def per_link_factors(self) -> Dict[Link, float]:
        """Copy of the explicit per-link factor table (PER_LINK mode;
        empty otherwise) — exported by schedule bundles so a replayed
        system reproduces the exact link heterogeneity."""
        return dict(self._per_link)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HeterogeneousSystem(graph={self.graph.name!r}, "
            f"topology={self.topology.name!r}, links={self.link_mode.value})"
        )
