"""Processor network topologies.

A :class:`Topology` is an undirected, connected graph over processors
``0..m-1``. Links are *undirected half-duplex* resources identified by the
sorted pair ``(min(x, y), max(x, y))`` — one timeline per link, shared by
both directions, matching Figure 2 of the paper (one Gantt column per link
``L12..L41``).

Builders cover the paper's four experimental topologies (16-processor
ring, hypercube, clique, degree-bounded random) plus a few extras (chain,
star, 2-D mesh, binary tree) that are useful in examples and tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.util.rng import RngStream

Proc = int
Link = Tuple[int, int]


def link_id(x: Proc, y: Proc) -> Link:
    """Canonical (sorted) identifier of the undirected link between x and y."""
    if x == y:
        raise TopologyError(f"no self-link on processor {x}")
    return (x, y) if x < y else (y, x)


class Topology:
    """An undirected, connected processor network.

    Parameters
    ----------
    n_procs:
        Number of processors, identified ``0..n_procs-1``.
    links:
        Iterable of processor pairs. Duplicates (in either order) are
        rejected.
    name:
        Human-readable name used in reports and cache keys.
    """

    def __init__(self, n_procs: int, links: Iterable[Tuple[int, int]], name: str = "topology"):
        if n_procs <= 0:
            raise TopologyError(f"need at least one processor, got {n_procs}")
        self.name = name
        self.n_procs = n_procs
        self._adj: Dict[Proc, List[Proc]] = {p: [] for p in range(n_procs)}
        self._links: List[Link] = []
        seen = set()
        for x, y in links:
            self._check_proc(x)
            self._check_proc(y)
            lid = link_id(x, y)
            if lid in seen:
                raise TopologyError(f"duplicate link {lid}")
            seen.add(lid)
            self._links.append(lid)
            self._adj[x].append(y)
            self._adj[y].append(x)
        for p in self._adj:
            self._adj[p].sort()
        self._links.sort()
        if n_procs > 1:
            self._check_connected()

    def _check_proc(self, p: Proc) -> None:
        if not (0 <= p < self.n_procs):
            raise TopologyError(f"processor {p} out of range 0..{self.n_procs - 1}")

    def _check_connected(self) -> None:
        seen = {0}
        stack = [0]
        while stack:
            p = stack.pop()
            for q in self._adj[p]:
                if q not in seen:
                    seen.add(q)
                    stack.append(q)
        if len(seen) != self.n_procs:
            missing = sorted(set(range(self.n_procs)) - seen)
            raise TopologyError(
                f"topology {self.name!r} is disconnected; unreachable processors {missing[:8]}"
            )

    # ------------------------------------------------------------------
    @property
    def processors(self) -> List[Proc]:
        return list(range(self.n_procs))

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    @property
    def n_links(self) -> int:
        return len(self._links)

    def neighbors(self, p: Proc) -> List[Proc]:
        self._check_proc(p)
        return list(self._adj[p])

    def degree(self, p: Proc) -> int:
        self._check_proc(p)
        return len(self._adj[p])

    def has_link(self, x: Proc, y: Proc) -> bool:
        if x == y:
            return False
        return y in self._adj.get(x, ())

    def bfs_order(self, start: Proc) -> List[Proc]:
        """Breadth-first processor order from ``start`` (paper's
        ``BuildProcessorList``); neighbor ties resolved by index."""
        self._check_proc(start)
        order = [start]
        seen = {start}
        head = 0
        while head < len(order):
            p = order[head]
            head += 1
            for q in self._adj[p]:
                if q not in seen:
                    seen.add(q)
                    order.append(q)
        return order

    def diameter(self) -> int:
        """Longest shortest-path (in hops) over all processor pairs."""
        best = 0
        for src in range(self.n_procs):
            dist = {src: 0}
            frontier = [src]
            while frontier:
                nxt = []
                for p in frontier:
                    for q in self._adj[p]:
                        if q not in dist:
                            dist[q] = dist[p] + 1
                            nxt.append(q)
                frontier = nxt
            best = max(best, max(dist.values()))
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology({self.name!r}, m={self.n_procs}, links={self.n_links})"


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------

def ring(m: int, name: Optional[str] = None) -> Topology:
    """Ring of ``m`` processors (paper topology (a))."""
    if m < 3:
        raise TopologyError(f"ring needs >= 3 processors, got {m}")
    links = [(i, (i + 1) % m) for i in range(m)]
    return Topology(m, links, name or f"ring{m}")


def chain(m: int, name: Optional[str] = None) -> Topology:
    """Open chain (line) of ``m`` processors."""
    if m < 2:
        raise TopologyError(f"chain needs >= 2 processors, got {m}")
    links = [(i, i + 1) for i in range(m - 1)]
    return Topology(m, links, name or f"chain{m}")


def hypercube(m: int, name: Optional[str] = None) -> Topology:
    """Binary hypercube; ``m`` must be a power of two (paper topology (b))."""
    if m < 2 or (m & (m - 1)) != 0:
        raise TopologyError(f"hypercube size must be a power of two, got {m}")
    dim = m.bit_length() - 1
    links = []
    for p in range(m):
        for d in range(dim):
            q = p ^ (1 << d)
            if p < q:
                links.append((p, q))
    return Topology(m, links, name or f"hypercube{m}")


def clique(m: int, name: Optional[str] = None) -> Topology:
    """Fully connected network (paper topology (c))."""
    if m < 2:
        raise TopologyError(f"clique needs >= 2 processors, got {m}")
    links = [(i, j) for i in range(m) for j in range(i + 1, m)]
    return Topology(m, links, name or f"clique{m}")


#: Alias matching the paper's wording "fully-connected network".
fully_connected = clique


def star(m: int, name: Optional[str] = None) -> Topology:
    """Star: processor 0 is the hub."""
    if m < 2:
        raise TopologyError(f"star needs >= 2 processors, got {m}")
    return Topology(m, [(0, i) for i in range(1, m)], name or f"star{m}")


def mesh2d(rows: int, cols: int, name: Optional[str] = None) -> Topology:
    """2-D mesh of ``rows x cols`` processors."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"mesh needs >= 2 processors, got {rows}x{cols}")
    links = []
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            if c + 1 < cols:
                links.append((p, p + 1))
            if r + 1 < rows:
                links.append((p, p + cols))
    return Topology(rows * cols, links, name or f"mesh{rows}x{cols}")


def binary_tree(m: int, name: Optional[str] = None) -> Topology:
    """Complete binary tree layout over ``m`` processors (heap indexing)."""
    if m < 2:
        raise TopologyError(f"tree needs >= 2 processors, got {m}")
    links = [(((i + 1) // 2) - 1, i) for i in range(1, m)]
    return Topology(m, links, name or f"tree{m}")


def random_topology(
    m: int,
    min_degree: int = 2,
    max_degree: int = 8,
    seed: int = 0,
    name: Optional[str] = None,
) -> Topology:
    """Random connected topology with per-processor degree in
    ``[min_degree, max_degree]`` (paper topology (d): degrees 2..8).

    Construction: a random spanning tree guarantees connectivity, then
    random extra links are added while respecting ``max_degree``; finally
    processors under ``min_degree`` get extra links where capacity allows.
    """
    if m < 2:
        raise TopologyError(f"random topology needs >= 2 processors, got {m}")
    if not (1 <= min_degree <= max_degree):
        raise TopologyError(f"bad degree bounds [{min_degree}, {max_degree}]")
    if max_degree >= m:
        max_degree = m - 1
        min_degree = min(min_degree, max_degree)
    rng = RngStream(seed).fork("random-topology", m, min_degree, max_degree)

    degree = [0] * m
    links: set = set()

    def connect(x: int, y: int) -> bool:
        lid = link_id(x, y)
        if lid in links or x == y:
            return False
        links.add(lid)
        degree[x] += 1
        degree[y] += 1
        return True

    # random spanning tree (random permutation, attach to a random earlier node
    # that still has degree capacity; the root always has capacity early on)
    perm = list(range(m))
    rng.shuffle(perm)
    for i in range(1, m):
        candidates = [p for p in perm[:i] if degree[p] < max_degree]
        if not candidates:
            candidates = perm[:i]  # exceed max_degree rather than disconnect
        connect(perm[i], rng.choice(candidates))

    # densify toward min_degree and sprinkle extra links
    for p in range(m):
        attempts = 0
        while degree[p] < min_degree and attempts < 4 * m:
            q = rng.randint(0, m - 1)
            attempts += 1
            if q != p and degree[q] < max_degree:
                connect(p, q)
    extra_target = rng.randint(0, m)
    for _ in range(extra_target):
        x, y = rng.randint(0, m - 1), rng.randint(0, m - 1)
        if x != y and degree[x] < max_degree and degree[y] < max_degree:
            connect(x, y)

    return Topology(m, sorted(links), name or f"random{m}(seed={seed})")


def paper_topologies(m: int = 16, seed: int = 0) -> "dict[str, Topology]":
    """The four 16-processor topologies used in the paper's evaluation."""
    return {
        "ring": ring(m),
        "hypercube": hypercube(m),
        "clique": clique(m),
        "random": random_topology(m, 2, 8, seed=seed),
    }
