"""Processor network topologies and the heterogeneous link model.

A :class:`Topology` is an undirected, connected graph over processors
``0..m-1``. Links are identified by the sorted pair
``(min(x, y), max(x, y))`` and each carries a :class:`LinkSpec`:

* ``bandwidth`` — a throughput multiplier; a hop of nominal cost ``c``
  lasts ``c / bandwidth`` on the link (the default 1.0 reproduces the
  paper's uniform links bit-for-bit);
* ``duplex`` — ``"half"`` (paper default: one timeline per link, shared
  by both directions, matching Figure 2's one Gantt column per link
  ``L12..L41``) or ``"full"`` (one independent timeline per direction).

The scheduling substrate reserves time on *channels*: a half-duplex
link exposes one channel (its canonical link id), a full-duplex link two
(the ordered pairs ``(x, y)`` and ``(y, x)``). :meth:`Topology.channel`
maps a traversal direction to its timeline key.

Builders cover the paper's four experimental topologies (16-processor
ring, hypercube, clique, degree-bounded random) plus extras (chain,
star, 2-D mesh, 2-D torus, binary tree, fat tree) used in examples,
tests and the link-model ablations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.util.rng import RngStream, stable_uniform

Proc = int
Link = Tuple[int, int]

#: duplex modes a link can operate in
DUPLEX_MODES = ("half", "full")


def link_id(x: Proc, y: Proc) -> Link:
    """Canonical (sorted) identifier of the undirected link between x and y.

    >>> link_id(3, 1)
    (1, 3)
    """
    if x == y:
        raise TopologyError(f"no self-link on processor {x}")
    return (x, y) if x < y else (y, x)


@dataclass(frozen=True)
class LinkSpec:
    """Physical properties of one link.

    ``bandwidth`` scales throughput (hop duration = nominal cost /
    bandwidth); ``duplex`` selects whether the two directions share one
    timeline (``"half"``) or each get their own (``"full"``).
    """

    bandwidth: float = 1.0
    duplex: str = "half"

    def __post_init__(self):
        if not (self.bandwidth > 0):
            raise TopologyError(
                f"link bandwidth must be positive, got {self.bandwidth}"
            )
        if self.duplex not in DUPLEX_MODES:
            raise TopologyError(
                f"duplex must be one of {DUPLEX_MODES}, got {self.duplex!r}"
            )

    def to_dict(self) -> dict:
        return {"bandwidth": self.bandwidth, "duplex": self.duplex}

    @classmethod
    def from_dict(cls, d: Mapping) -> "LinkSpec":
        return cls(bandwidth=d.get("bandwidth", 1.0), duplex=d.get("duplex", "half"))


#: the paper's uniform link: unit bandwidth, half duplex
DEFAULT_LINK_SPEC = LinkSpec()


class Topology:
    """An undirected, connected processor network.

    Parameters
    ----------
    n_procs:
        Number of processors, identified ``0..n_procs-1``.
    links:
        Iterable of processor pairs. Duplicates (in either order) are
        rejected.
    name:
        Human-readable name used in reports and cache keys.
    link_specs:
        Optional mapping from (canonical or reversed) link pairs to
        :class:`LinkSpec`; unmapped links use ``default_spec``.
    default_spec:
        The :class:`LinkSpec` applied to links absent from
        ``link_specs`` (default: unit bandwidth, half duplex).
    """

    def __init__(
        self,
        n_procs: int,
        links: Iterable[Tuple[int, int]],
        name: str = "topology",
        link_specs: Optional[Mapping[Link, LinkSpec]] = None,
        default_spec: LinkSpec = DEFAULT_LINK_SPEC,
    ):
        if n_procs <= 0:
            raise TopologyError(f"need at least one processor, got {n_procs}")
        self.name = name
        self.n_procs = n_procs
        self._adj: Dict[Proc, List[Proc]] = {p: [] for p in range(n_procs)}
        self._links: List[Link] = []
        seen = set()
        for x, y in links:
            self._check_proc(x)
            self._check_proc(y)
            lid = link_id(x, y)
            if lid in seen:
                raise TopologyError(f"duplicate link {lid}")
            seen.add(lid)
            self._links.append(lid)
            self._adj[x].append(y)
            self._adj[y].append(x)
        for p in self._adj:
            self._adj[p].sort()
        self._links.sort()
        if n_procs > 1:
            self._check_connected()
        # --- link specs and channel map -------------------------------
        self._specs: Dict[Link, LinkSpec] = {l: default_spec for l in self._links}
        spec_seen = set()
        for pair, spec in (link_specs or {}).items():
            lid = link_id(*pair)
            if lid not in self._specs:
                raise TopologyError(f"spec for missing link {lid}")
            if lid in spec_seen:
                # both orientations of one link would silently overwrite
                # each other (dict order wins) — reject instead
                raise TopologyError(f"duplicate spec for link {lid}")
            spec_seen.add(lid)
            if not isinstance(spec, LinkSpec):
                raise TopologyError(f"link {lid}: spec must be a LinkSpec, got {spec!r}")
            self._specs[lid] = spec
        # directed (src, dst) -> timeline key; half-duplex links share the
        # canonical id in both directions, full-duplex get one key per
        # direction. Precomputed once — channel() is on the hot path.
        self._channel: Dict[Tuple[Proc, Proc], Tuple[Proc, Proc]] = {}
        self._channels: List[Tuple[Proc, Proc]] = []
        for lid in self._links:
            a, b = lid
            if self._specs[lid].duplex == "half":
                self._channel[(a, b)] = lid
                self._channel[(b, a)] = lid
                self._channels.append(lid)
            else:
                self._channel[(a, b)] = (a, b)
                self._channel[(b, a)] = (b, a)
                self._channels.append((a, b))
                self._channels.append((b, a))
        #: True when every link has unit bandwidth — the condition under
        #: which nominal comm costs equal hop durations (pruning bounds
        #: in BSA/DLS rely on this).
        self.uniform_bandwidth: bool = all(
            s.bandwidth == 1.0 for s in self._specs.values()
        )
        #: True when every link is half-duplex (the paper's model).
        self.all_half_duplex: bool = all(
            s.duplex == "half" for s in self._specs.values()
        )

    def _check_proc(self, p: Proc) -> None:
        if not (0 <= p < self.n_procs):
            raise TopologyError(f"processor {p} out of range 0..{self.n_procs - 1}")

    def _check_connected(self) -> None:
        seen = {0}
        stack = [0]
        while stack:
            p = stack.pop()
            for q in self._adj[p]:
                if q not in seen:
                    seen.add(q)
                    stack.append(q)
        if len(seen) != self.n_procs:
            missing = sorted(set(range(self.n_procs)) - seen)
            raise TopologyError(
                f"topology {self.name!r} is disconnected; unreachable processors {missing[:8]}"
            )

    # ------------------------------------------------------------------
    @property
    def processors(self) -> List[Proc]:
        return list(range(self.n_procs))

    @property
    def links(self) -> List[Link]:
        return list(self._links)

    @property
    def n_links(self) -> int:
        return len(self._links)

    def neighbors(self, p: Proc) -> List[Proc]:
        self._check_proc(p)
        return list(self._adj[p])

    def degree(self, p: Proc) -> int:
        self._check_proc(p)
        return len(self._adj[p])

    def has_link(self, x: Proc, y: Proc) -> bool:
        if x == y:
            return False
        return y in self._adj.get(x, ())

    # ------------------------------------------------------------------
    # link specs & channels
    # ------------------------------------------------------------------
    def spec(self, x: Proc, y: Proc) -> LinkSpec:
        """The :class:`LinkSpec` of the link between ``x`` and ``y``."""
        lid = link_id(x, y)
        try:
            return self._specs[lid]
        except KeyError:
            raise TopologyError(f"no link {lid} in topology {self.name!r}") from None

    def bandwidth(self, x: Proc, y: Proc) -> float:
        """Bandwidth multiplier of the link between ``x`` and ``y``."""
        return self.spec(x, y).bandwidth

    def duplex(self, x: Proc, y: Proc) -> str:
        """Duplex mode (``"half"`` | ``"full"``) of the link ``x``—``y``."""
        return self.spec(x, y).duplex

    def channel(self, src: Proc, dst: Proc) -> Tuple[Proc, Proc]:
        """Timeline key for traversing the link from ``src`` to ``dst``.

        Half-duplex links return the canonical (sorted) link id for both
        directions; full-duplex links return the ordered pair, so each
        direction reserves on its own timeline.
        """
        try:
            return self._channel[(src, dst)]
        except KeyError:
            raise TopologyError(
                f"no link between {src} and {dst} in topology {self.name!r}"
            ) from None

    def channels(self) -> List[Tuple[Proc, Proc]]:
        """All timeline keys: one per half-duplex link, two per
        full-duplex link (sorted by link, direction ``(a,b)`` first)."""
        return list(self._channels)

    def with_link_specs(
        self,
        link_specs: Optional[Mapping[Link, LinkSpec]] = None,
        default_spec: LinkSpec = DEFAULT_LINK_SPEC,
        name: Optional[str] = None,
    ) -> "Topology":
        """A copy of this topology with different link specs."""
        return Topology(
            self.n_procs,
            self._links,
            name=name or self.name,
            link_specs=link_specs,
            default_spec=default_spec,
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict export (links sorted; specs only when non-default)."""
        specs = {
            f"{a}-{b}": self._specs[(a, b)].to_dict()
            for (a, b) in self._links
            if self._specs[(a, b)] != DEFAULT_LINK_SPEC
        }
        out = {
            "name": self.name,
            "n_procs": self.n_procs,
            "links": [list(l) for l in self._links],
        }
        if specs:
            out["link_specs"] = specs
        return out

    @classmethod
    def from_dict(cls, d: Mapping) -> "Topology":
        """Rebuild a topology exported by :meth:`to_dict`."""
        specs: Dict[Link, LinkSpec] = {}
        for key, spec in (d.get("link_specs") or {}).items():
            a, b = key.split("-")
            specs[(int(a), int(b))] = LinkSpec.from_dict(spec)
        return cls(
            d["n_procs"],
            [tuple(l) for l in d["links"]],
            name=d.get("name", "topology"),
            link_specs=specs or None,
        )

    def bfs_order(self, start: Proc) -> List[Proc]:
        """Breadth-first processor order from ``start`` (paper's
        ``BuildProcessorList``); neighbor ties resolved by index."""
        self._check_proc(start)
        order = [start]
        seen = {start}
        head = 0
        while head < len(order):
            p = order[head]
            head += 1
            for q in self._adj[p]:
                if q not in seen:
                    seen.add(q)
                    order.append(q)
        return order

    def diameter(self) -> int:
        """Longest shortest-path (in hops) over all processor pairs."""
        best = 0
        for src in range(self.n_procs):
            dist = {src: 0}
            frontier = [src]
            while frontier:
                nxt = []
                for p in frontier:
                    for q in self._adj[p]:
                        if q not in dist:
                            dist[q] = dist[p] + 1
                            nxt.append(q)
                frontier = nxt
            best = max(best, max(dist.values()))
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology({self.name!r}, m={self.n_procs}, links={self.n_links})"


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------

# ----------------------------------------------------------------------
# file front door (sniffed JSON format, mirroring graph/interchange)
# ----------------------------------------------------------------------

TOPOLOGY_FORMAT = "repro-topology"
TOPOLOGY_FORMAT_VERSION = 1


def topology_to_json(topology: Topology, indent: Optional[int] = 2) -> str:
    """Serialize a topology to the sniffable JSON file format: a
    ``format``/``version`` envelope around :meth:`Topology.to_dict`.

    >>> print(topology_to_json(chain(2), indent=None))
    {"format": "repro-topology", "version": 1, "name": "chain2", "n_procs": 2, "links": [[0, 1]]}
    """
    doc = {
        "format": TOPOLOGY_FORMAT,
        "version": TOPOLOGY_FORMAT_VERSION,
        **topology.to_dict(),
    }
    return json.dumps(doc, indent=indent)


def topology_from_json(text: str) -> Topology:
    """Parse :func:`topology_to_json` output back into a
    :class:`Topology` (the constructor re-validates structure, so a
    hand-edited file with duplicate links or a disconnected network is
    rejected here).

    >>> topology_from_json(topology_to_json(ring(4))).n_procs
    4
    """
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise TopologyError(f"topology file is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or doc.get("format") != TOPOLOGY_FORMAT:
        raise TopologyError(
            f"not a {TOPOLOGY_FORMAT} document "
            + (f"(format={doc.get('format')!r})" if isinstance(doc, dict) else "")
        )
    if doc.get("version") != TOPOLOGY_FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format version {doc.get('version')!r}"
        )
    if "n_procs" not in doc or "links" not in doc:
        raise TopologyError("topology document needs 'n_procs' and 'links'")
    return Topology.from_dict(doc)


def is_topology_json(text: str) -> bool:
    """Content sniffer: does ``text`` look like a repro-topology file?

    >>> is_topology_json(topology_to_json(ring(4)))
    True
    >>> is_topology_json("digraph g { }")
    False
    """
    if not text.lstrip().startswith("{"):
        return False
    try:
        doc = json.loads(text)
    except ValueError:
        return False
    return isinstance(doc, dict) and doc.get("format") == TOPOLOGY_FORMAT


def save_topology(topology: Topology, path: str) -> None:
    """Write ``topology`` to ``path`` in the JSON file format."""
    with open(path, "w") as fh:
        fh.write(topology_to_json(topology) + "\n")


def load_topology(path: str) -> Topology:
    """Read a topology file written by :func:`save_topology` (or by
    hand — the format is :meth:`Topology.to_dict` plus an envelope)."""
    with open(path) as fh:
        return topology_from_json(fh.read())


def ring(m: int, name: Optional[str] = None) -> Topology:
    """Ring of ``m`` processors (paper topology (a)).

    >>> ring(4).links
    [(0, 1), (0, 3), (1, 2), (2, 3)]
    """
    if m < 3:
        raise TopologyError(f"ring needs >= 3 processors, got {m}")
    links = [(i, (i + 1) % m) for i in range(m)]
    return Topology(m, links, name or f"ring{m}")


def chain(m: int, name: Optional[str] = None) -> Topology:
    """Open chain (line) of ``m`` processors.

    >>> chain(3).links
    [(0, 1), (1, 2)]
    """
    if m < 2:
        raise TopologyError(f"chain needs >= 2 processors, got {m}")
    links = [(i, i + 1) for i in range(m - 1)]
    return Topology(m, links, name or f"chain{m}")


def hypercube(m: int, name: Optional[str] = None) -> Topology:
    """Binary hypercube; ``m`` must be a power of two (paper topology (b)).

    >>> hypercube(8).n_links, hypercube(8).diameter()
    (12, 3)
    """
    if m < 2 or (m & (m - 1)) != 0:
        raise TopologyError(f"hypercube size must be a power of two, got {m}")
    dim = m.bit_length() - 1
    links = []
    for p in range(m):
        for d in range(dim):
            q = p ^ (1 << d)
            if p < q:
                links.append((p, q))
    return Topology(m, links, name or f"hypercube{m}")


def clique(m: int, name: Optional[str] = None) -> Topology:
    """Fully connected network (paper topology (c)).

    >>> clique(4).n_links
    6
    """
    if m < 2:
        raise TopologyError(f"clique needs >= 2 processors, got {m}")
    links = [(i, j) for i in range(m) for j in range(i + 1, m)]
    return Topology(m, links, name or f"clique{m}")


#: Alias matching the paper's wording "fully-connected network".
fully_connected = clique


def star(m: int, name: Optional[str] = None) -> Topology:
    """Star: processor 0 is the hub.

    >>> star(5).degree(0)
    4
    """
    if m < 2:
        raise TopologyError(f"star needs >= 2 processors, got {m}")
    return Topology(m, [(0, i) for i in range(1, m)], name or f"star{m}")


def mesh2d(rows: int, cols: int, name: Optional[str] = None) -> Topology:
    """2-D mesh of ``rows x cols`` processors.

    >>> mesh2d(2, 3).n_links
    7
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError(f"mesh needs >= 2 processors, got {rows}x{cols}")
    links = []
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            if c + 1 < cols:
                links.append((p, p + 1))
            if r + 1 < rows:
                links.append((p, p + cols))
    return Topology(rows * cols, links, name or f"mesh{rows}x{cols}")


def torus2d(rows: int, cols: int, name: Optional[str] = None) -> Topology:
    """2-D torus: a ``rows x cols`` mesh with wrap-around links.

    Wrap links are only added when a dimension exceeds 2 (for dimension 2
    the wrap would duplicate the direct mesh link).

    >>> torus2d(3, 3).n_links    # 9 procs, degree 4 each
    18
    """
    if rows < 1 or cols < 1 or rows * cols < 3:
        raise TopologyError(f"torus needs >= 3 processors, got {rows}x{cols}")
    links = []
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            if cols > 1:
                if c + 1 < cols:
                    links.append((p, p + 1))
                elif cols > 2:
                    links.append((p, r * cols))            # row wrap
            if rows > 1:
                if r + 1 < rows:
                    links.append((p, p + cols))
                elif rows > 2:
                    links.append((p, c))                   # column wrap
    return Topology(rows * cols, links, name or f"torus{rows}x{cols}")


def fat_tree(
    m: int,
    branching: int = 2,
    bandwidth_base: float = 2.0,
    duplex: str = "half",
    name: Optional[str] = None,
) -> Topology:
    """Fat tree over ``m`` processors (complete ``branching``-ary tree
    layout, heap indexing): link bandwidth grows by ``bandwidth_base``
    per level toward the root, the classic remedy for root congestion.

    A link between depth-``d`` and depth-``d+1`` nodes has bandwidth
    ``bandwidth_base ** (max_depth - 1 - d)`` so leaf-level links have
    bandwidth 1 and capacity doubles (by default) every level up.

    >>> t = fat_tree(8)
    >>> t.bandwidth(0, 1), t.bandwidth(3, 7)
    (4.0, 1.0)
    """
    if m < 2:
        raise TopologyError(f"fat tree needs >= 2 processors, got {m}")
    if branching < 2:
        raise TopologyError(f"fat tree branching must be >= 2, got {branching}")
    if bandwidth_base <= 0:
        raise TopologyError(f"bandwidth base must be positive, got {bandwidth_base}")

    def depth(i: int) -> int:
        d = 0
        while i > 0:
            i = (i - 1) // branching
            d += 1
        return d

    links = [((i - 1) // branching, i) for i in range(1, m)]
    max_depth = max(depth(i) for i in range(m))
    specs = {
        link_id(parent, child): LinkSpec(
            bandwidth=float(bandwidth_base ** (max_depth - depth(child))),
            duplex=duplex,
        )
        for parent, child in links
    }
    return Topology(
        m, links, name or f"fattree{m}", link_specs=specs,
        default_spec=LinkSpec(duplex=duplex),
    )


def apply_link_model(
    topology: Topology,
    duplex: str = "half",
    bandwidth_skew: float = 1.0,
    seed: int = 0,
    name: Optional[str] = None,
) -> Topology:
    """Overlay a (duplex, bandwidth) model onto an existing topology.

    ``bandwidth_skew > 1`` samples each link's bandwidth independently
    and deterministically from ``U[1, bandwidth_skew]`` (stable per-link
    hashing: the draw for a link does not depend on evaluation order or
    on the other links). ``bandwidth_skew == 1`` keeps each link's
    *existing* bandwidth (so flipping a fat tree to full duplex preserves
    its fat links). ``duplex`` applies to every link. With both at their
    defaults the input topology is returned unchanged (same object).

    >>> t = apply_link_model(ring(4), duplex="full")
    >>> t.name, len(t.channels())
    ('ring4+full', 8)
    """
    if duplex not in DUPLEX_MODES:
        raise TopologyError(f"duplex must be one of {DUPLEX_MODES}, got {duplex!r}")
    if bandwidth_skew < 1.0:
        raise TopologyError(
            f"bandwidth_skew must be >= 1 (got {bandwidth_skew}); "
            "bandwidths are sampled from U[1, skew]"
        )
    if duplex == "half" and bandwidth_skew == 1.0 and topology.all_half_duplex:
        # true no-op: the requested model is already in effect (a
        # full-duplex base must still be converted, so it falls through)
        return topology
    specs = {}
    for lid in topology.links:
        bw = (
            topology.spec(*lid).bandwidth
            if bandwidth_skew == 1.0
            else stable_uniform(seed, ("link-bw", lid), 1.0, bandwidth_skew)
        )
        specs[lid] = LinkSpec(bandwidth=bw, duplex=duplex)
    suffix = f"+{duplex}" if duplex != "half" else ""
    if bandwidth_skew != 1.0:
        suffix += f"+bw{bandwidth_skew:g}"
    return topology.with_link_specs(
        specs, name=name or (topology.name + suffix)
    )


def binary_tree(m: int, name: Optional[str] = None) -> Topology:
    """Complete binary tree layout over ``m`` processors (heap indexing).

    >>> binary_tree(7).neighbors(0)
    [1, 2]
    """
    if m < 2:
        raise TopologyError(f"tree needs >= 2 processors, got {m}")
    links = [(((i + 1) // 2) - 1, i) for i in range(1, m)]
    return Topology(m, links, name or f"tree{m}")


def random_topology(
    m: int,
    min_degree: int = 2,
    max_degree: int = 8,
    seed: int = 0,
    name: Optional[str] = None,
) -> Topology:
    """Random connected topology with per-processor degree in
    ``[min_degree, max_degree]`` (paper topology (d): degrees 2..8).

    Construction: a random spanning tree guarantees connectivity, then
    random extra links are added while respecting ``max_degree``; finally
    processors under ``min_degree`` get extra links where capacity allows.

    >>> t = random_topology(16, 2, 8, seed=0)
    >>> t.n_procs, min(t.degree(p) for p in t.processors) >= 2
    (16, True)
    """
    if m < 2:
        raise TopologyError(f"random topology needs >= 2 processors, got {m}")
    if not (1 <= min_degree <= max_degree):
        raise TopologyError(f"bad degree bounds [{min_degree}, {max_degree}]")
    if max_degree >= m:
        max_degree = m - 1
        min_degree = min(min_degree, max_degree)
    rng = RngStream(seed).fork("random-topology", m, min_degree, max_degree)

    degree = [0] * m
    links: set = set()

    def connect(x: int, y: int) -> bool:
        lid = link_id(x, y)
        if lid in links or x == y:
            return False
        links.add(lid)
        degree[x] += 1
        degree[y] += 1
        return True

    # random spanning tree (random permutation, attach to a random earlier node
    # that still has degree capacity; the root always has capacity early on)
    perm = list(range(m))
    rng.shuffle(perm)
    for i in range(1, m):
        candidates = [p for p in perm[:i] if degree[p] < max_degree]
        if not candidates:
            candidates = perm[:i]  # exceed max_degree rather than disconnect
        connect(perm[i], rng.choice(candidates))

    # densify toward min_degree and sprinkle extra links
    for p in range(m):
        attempts = 0
        while degree[p] < min_degree and attempts < 4 * m:
            q = rng.randint(0, m - 1)
            attempts += 1
            if q != p and degree[q] < max_degree:
                connect(p, q)
    extra_target = rng.randint(0, m)
    for _ in range(extra_target):
        x, y = rng.randint(0, m - 1), rng.randint(0, m - 1)
        if x != y and degree[x] < max_degree and degree[y] < max_degree:
            connect(x, y)

    return Topology(m, sorted(links), name or f"random{m}(seed={seed})")


def paper_topologies(m: int = 16, seed: int = 0) -> "dict[str, Topology]":
    """The four 16-processor topologies used in the paper's evaluation.

    >>> sorted(paper_topologies())
    ['clique', 'hypercube', 'random', 'ring']
    """
    return {
        "ring": ring(m),
        "hypercube": hypercube(m),
        "clique": clique(m),
        "random": random_topology(m, 2, 8, seed=seed),
    }
