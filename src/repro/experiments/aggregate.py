"""Aggregation helpers for figure reproduction.

The paper averages schedule lengths across applications and granularities
(Figures 3/4) or across graph sizes (Figures 5/6); :func:`mean_by` is the
one grouping primitive all of those need.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Tuple


def mean_by(
    items: Iterable,
    key: Callable,
    value: Callable[[object], float],
) -> Dict[object, float]:
    """Group ``items`` by ``key`` and average ``value`` within groups."""
    sums: Dict[object, float] = defaultdict(float)
    counts: Dict[object, int] = defaultdict(int)
    for item in items:
        k = key(item)
        sums[k] += value(item)
        counts[k] += 1
    return {k: sums[k] / counts[k] for k in sums}


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (used for ratio summaries)."""
    if not values:
        return float("nan")
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))
