"""Experiment grid definitions and scale control.

The paper's full grid (sizes 50..500 step 50, granularities {0.1, 1, 10},
four 16-processor topologies, heterogeneity U[1, 50]) is expensive in pure
Python, so the harness supports three scales selected by the
``REPRO_SCALE`` environment variable:

* ``smoke``   — tiny: CI-sized sanity sweep (minutes of margin everywhere);
* ``default`` — trimmed sizes (<= 250) but the full factor structure;
* ``full``    — the paper's exact grid.

The *shape* conclusions (who wins, how gaps move with size, granularity,
connectivity, heterogeneity) are visible at every scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: every plain (non-ablation) scheduler the library ships. The paper's
#: figure reproductions compare BSA vs DLS (Scale.algorithms); the rest
#: are extensions. The CLI derives its --algorithm choices from this
#: tuple, and a docs test pins it to the runner registry and README.
ALGORITHM_NAMES = ("bsa", "dls", "heft", "cpop", "etf", "spdecomp")

#: every topology family build_topology() accepts: the paper's four
#: 16-processor networks plus the heterogeneous-link extensions. The
#: CLI derives its --topology choices from this tuple (docs-tested).
TOPOLOGY_NAMES = ("ring", "hypercube", "clique", "random", "torus", "fattree")


@dataclass(frozen=True)
class Cell:
    """One experiment cell: a (graph, platform, algorithm) combination.

    ``suite="external"`` cells schedule an imported graph file instead
    of a generated one: ``app`` is then a ``path#contenthash`` token
    (see :mod:`repro.workloads.external`), ``size`` is informational,
    and ``granularity`` stays 1.0 because the file's communication
    costs are used verbatim. The content hash inside the token keeps
    cache keys honest when the file changes.
    """

    suite: str                  # "regular" | "random" | "external"
    app: str                    # gauss/lu/laplace/mva, "random", or path#hash
    size: int                   # approximate task count
    granularity: float
    topology: str               # ring | hypercube | clique | random | torus | fattree
    algorithm: str              # bsa | dls | heft | cpop
    het_lo: float = 1.0
    het_hi: float = 50.0
    link_het: bool = False      # sample h' from the same range as h
    n_procs: int = 16
    graph_seed: int = 0
    system_seed: int = 0
    #: link model overlay: duplex mode applied to every link and the
    #: upper bound of the per-link U[1, skew] bandwidth draw (1.0 = the
    #: paper's uniform links; see network.topology.apply_link_model)
    duplex: str = "half"
    bandwidth_skew: float = 1.0
    #: online-rescheduling scenario token ("" = static cell; e.g.
    #: "f1a2s0" = 1 processor failure + 2 arrivals, injection seed 0 —
    #: see repro.dynamic.events.parse_scenario). Scenario cells report
    #: metrics of the *final* schedule after all events are repaired.
    scenario: str = ""
    #: extra objectives to evaluate on the committed schedule, as a
    #: comma-separated token ("" = makespan-only, the historical
    #: behaviour; e.g. "energy,reliability" — see
    #: repro.objectives.parse_objectives). The key() suffix uses the
    #: *canonical* spelling, so reordering the token never changes the
    #: cache key.
    objectives: str = ""

    def key(self) -> str:
        """Stable cache key (link-model axes appended only when
        non-default, so pre-existing cache entries stay addressable)."""
        from repro.objectives.registry import objectives_token

        base = (
            f"{self.suite}/{self.app}/n{self.size}/g{self.granularity:g}/"
            f"{self.topology}{self.n_procs}/{self.algorithm}/"
            f"het{self.het_lo:g}-{self.het_hi:g}/"
            f"lh{int(self.link_het)}/gs{self.graph_seed}/ss{self.system_seed}"
        )
        if self.duplex != "half" or self.bandwidth_skew != 1.0:
            base += f"/dx{self.duplex}/bw{self.bandwidth_skew:g}"
        if self.scenario:
            base += f"/sc{self.scenario}"
        if self.objectives:
            base += f"/obj{objectives_token(self.objectives)}"
        return base


@dataclass(frozen=True)
class Scale:
    """A resolution of the experiment grid."""

    name: str
    sizes: Tuple[int, ...]
    granularities: Tuple[float, ...]
    topologies: Tuple[str, ...]
    regular_apps: Tuple[str, ...]
    n_random_seeds: int
    het_sweep_sizes: Tuple[int, ...]        # Figure 7 graph sizes
    het_sweep_n_graphs: int                 # Figure 7 graphs per range
    het_ranges: Tuple[Tuple[float, float], ...]
    algorithms: Tuple[str, ...] = ("dls", "bsa")


SCALES: Dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        sizes=(50, 100),
        granularities=(0.1, 1.0, 10.0),
        topologies=("ring", "hypercube", "clique", "random"),
        regular_apps=("gauss", "laplace"),
        n_random_seeds=1,
        het_sweep_sizes=(100,),
        het_sweep_n_graphs=2,
        het_ranges=((1, 10), (1, 50), (1, 100), (1, 200)),
    ),
    "default": Scale(
        name="default",
        sizes=(50, 100, 150, 200, 250),
        granularities=(0.1, 1.0, 10.0),
        topologies=("ring", "hypercube", "clique", "random"),
        regular_apps=("gauss", "lu", "laplace", "mva"),
        n_random_seeds=2,
        het_sweep_sizes=(200,),
        het_sweep_n_graphs=4,
        het_ranges=((1, 10), (1, 50), (1, 100), (1, 200)),
    ),
    "full": Scale(
        name="full",
        sizes=tuple(range(50, 501, 50)),
        granularities=(0.1, 1.0, 10.0),
        topologies=("ring", "hypercube", "clique", "random"),
        regular_apps=("gauss", "lu", "laplace", "mva"),
        n_random_seeds=3,
        het_sweep_sizes=(500,),
        het_sweep_n_graphs=10,
        het_ranges=((1, 10), (1, 50), (1, 100), (1, 200)),
    ),
}


def current_scale(default: str = "default") -> Scale:
    """Scale selected by ``REPRO_SCALE`` (smoke / default / full)."""
    name = os.environ.get("REPRO_SCALE", default).strip().lower()
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"REPRO_SCALE={name!r} is not one of {sorted(SCALES)}"
        ) from None
