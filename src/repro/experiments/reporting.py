"""Rendering figure reproductions as ASCII tables.

The benches and the CLI print these; EXPERIMENTS.md embeds them. Keeping
output plain text makes results diffable and greppable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.aggregate import geometric_mean
from repro.experiments.figures import FigureSeries
from repro.util.tables import format_series


def render_figure(fig: FigureSeries, ndigits: int = 1) -> str:
    """One panel as a table (plus a ratio column when BSA & DLS present)."""
    ratio = None
    if "bsa" in fig.series and "dls" in fig.series:
        ratio = ("bsa", "dls")
    return format_series(
        fig.x_label, fig.xs, fig.series, title=fig.title,
        ndigits=ndigits, ratio_of=ratio,
    )


def render_panels(panels: Dict[str, FigureSeries]) -> str:
    """All four topology panels of a figure."""
    return "\n\n".join(render_figure(p) for p in panels.values())


def render_improvement_summary(
    panels: Dict[str, FigureSeries],
    base: str = "dls",
    ours: str = "bsa",
) -> str:
    """Geomean BSA/DLS ratio per topology — the paper's ~20% claim."""
    lines = [f"{ours.upper()} vs {base.upper()} (geomean SL ratio; < 1 means {ours.upper()} wins)"]
    for name, fig in panels.items():
        ratios = [
            o / b
            for o, b in zip(fig.series[ours], fig.series[base])
            if b
        ]
        gm = geometric_mean(ratios)
        lines.append(f"  {name:>10}: {gm:.3f}  (improvement {100 * (1 - gm):+.1f}%)")
    return "\n".join(lines)
