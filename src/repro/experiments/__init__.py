"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.config import (
    Cell,
    Scale,
    SCALES,
    current_scale,
    ALGORITHM_NAMES,
    TOPOLOGY_NAMES,
)
from repro.experiments.external import (
    corpus_paths,
    corpus_cells,
    corpus_table,
)
from repro.experiments.runner import (
    CellResult,
    SweepReport,
    build_cell_system,
    run_cell,
    run_cells,
)
from repro.experiments.cache import ResultCache
from repro.experiments.aggregate import mean_by
from repro.experiments.figures import (
    FigureSeries,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure_cells,
    runtime_study,
)
from repro.experiments.reporting import (
    render_figure,
    render_improvement_summary,
)
from repro.experiments.paper_example import (
    build_figure1_graph,
    build_paper_system,
    run_paper_example,
    TABLE1_EXEC_COSTS,
)

__all__ = [
    "Cell",
    "Scale",
    "SCALES",
    "current_scale",
    "ALGORITHM_NAMES",
    "TOPOLOGY_NAMES",
    "corpus_paths",
    "corpus_cells",
    "corpus_table",
    "CellResult",
    "SweepReport",
    "run_cell",
    "run_cells",
    "build_cell_system",
    "ResultCache",
    "mean_by",
    "FigureSeries",
    "figure_cells",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "runtime_study",
    "render_figure",
    "render_improvement_summary",
    "build_figure1_graph",
    "build_paper_system",
    "run_paper_example",
    "TABLE1_EXEC_COSTS",
]
