"""Reproduction of every figure in the paper's evaluation (§3).

Each ``figureN`` function runs (or fetches from cache) the cells that
figure needs and returns a :class:`FigureSeries` per topology — the same
series the paper plots:

* Figure 3 — regular graphs, average SL vs graph size (averaged over apps
  and granularities), per topology, DLS vs BSA.
* Figure 4 — same for random graphs.
* Figure 5 — regular graphs, average SL vs granularity (averaged over
  sizes), per topology.
* Figure 6 — same for random graphs.
* Figure 7 — random 500-task graphs on the hypercube, average SL vs
  heterogeneity range.
* ``runtime_study`` — scheduler wall-clock vs graph size (the paper notes
  both algorithms' running times "were about the same").

Figures 3 and 5 share cells (so do 4 and 6); the on-disk cache makes the
second aggregation free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.config import Cell, Scale, current_scale
from repro.experiments.runner import CellResult, run_cell, run_cells


@dataclass
class FigureSeries:
    """One panel: x values plus one named series per algorithm."""

    title: str
    x_label: str
    xs: List
    series: Dict[str, List[float]] = field(default_factory=dict)

    def improvement(self, base: str = "dls", ours: str = "bsa") -> List[float]:
        """Per-point improvement of ``ours`` over ``base`` (1 - ours/base)."""
        return [
            1.0 - o / b if b else float("nan")
            for o, b in zip(self.series[ours], self.series[base])
        ]


def _suite_cells(
    suite: str,
    scale: Scale,
    topology: str,
    algorithm: str,
) -> List[Cell]:
    cells: List[Cell] = []
    if suite == "regular":
        for app in scale.regular_apps:
            for size in scale.sizes:
                for gran in scale.granularities:
                    cells.append(
                        Cell(
                            suite="regular", app=app, size=size,
                            granularity=gran, topology=topology,
                            algorithm=algorithm,
                        )
                    )
    else:
        for seed in range(scale.n_random_seeds):
            for size in scale.sizes:
                for gran in scale.granularities:
                    cells.append(
                        Cell(
                            suite="random", app="random", size=size,
                            granularity=gran, topology=topology,
                            algorithm=algorithm, graph_seed=seed,
                        )
                    )
    return cells


def _het_cell_groups(scale: Scale) -> Dict[Tuple[str, Tuple[float, float]], List[Cell]]:
    """Figure 7's cells, grouped by (algorithm, het range) — the single
    source of its enumeration for both precompute and aggregation."""
    groups: Dict[Tuple[str, Tuple[float, float]], List[Cell]] = {}
    for algorithm in scale.algorithms:
        for (lo, hi) in scale.het_ranges:
            groups[(algorithm, (lo, hi))] = [
                Cell(
                    suite="random", app="random", size=size,
                    granularity=1.0, topology="hypercube",
                    algorithm=algorithm, het_lo=lo, het_hi=hi,
                    graph_seed=seed,
                )
                for seed in range(scale.het_sweep_n_graphs)
                for size in scale.het_sweep_sizes
            ]
    return groups


def _het_cells(scale: Scale) -> List[Cell]:
    return [c for cells in _het_cell_groups(scale).values() for c in cells]


def _suite_all_cells(suite: str, scale: Scale) -> List[Cell]:
    return [
        cell
        for topology in scale.topologies
        for algorithm in scale.algorithms
        for cell in _suite_cells(suite, scale, topology, algorithm)
    ]


def _runtime_cells(scale: Scale, topology: str = "hypercube") -> List[Cell]:
    return [
        Cell(
            suite="random", app="random", size=size, granularity=1.0,
            topology=topology, algorithm=algorithm,
        )
        for algorithm in scale.algorithms
        for size in scale.sizes
    ]


def figure_cells(name: str, scale: Optional[Scale] = None) -> List[Cell]:
    """Every cell a named figure aggregates (for sweep pre-computation)."""
    scale = scale or current_scale()
    if name in ("fig3", "fig5"):
        suite = "regular"
    elif name in ("fig4", "fig6"):
        suite = "random"
    elif name == "fig7":
        return _het_cells(scale)
    elif name == "runtime":
        return _runtime_cells(scale)
    else:
        raise ValueError(f"unknown figure {name!r}")
    return _suite_all_cells(suite, scale)


def _precompute(
    cells: List[Cell],
    jobs: int,
    cache: Optional[ResultCache],
) -> None:
    """Warm the cache for ``cells`` using the parallel sweep engine."""
    if jobs and jobs > 1:
        run_cells(cells, jobs=jobs, cache=cache)


def _size_figure(
    suite: str,
    title: str,
    scale: Optional[Scale],
    cache: Optional[ResultCache],
    by: str,
    jobs: int = 1,
) -> Dict[str, FigureSeries]:
    """Shared engine for figures 3-6 (``by`` is 'size' or 'granularity')."""
    scale = scale or current_scale()
    _precompute(_suite_all_cells(suite, scale), jobs, cache)
    panels: Dict[str, FigureSeries] = {}
    for topology in scale.topologies:
        xs: Sequence = scale.sizes if by == "size" else scale.granularities
        fig = FigureSeries(
            title=f"{title} — 16-processor {topology}",
            x_label="graph size" if by == "size" else "granularity",
            xs=list(xs),
        )
        for algorithm in scale.algorithms:
            cells = _suite_cells(suite, scale, topology, algorithm)
            groups: Dict[object, List[float]] = {x: [] for x in xs}
            for cell in cells:
                result = run_cell(cell, cache=cache)
                x = cell.size if by == "size" else cell.granularity
                groups[x].append(result.schedule_length)
            fig.series[algorithm] = [
                sum(groups[x]) / len(groups[x]) if groups[x] else float("nan")
                for x in xs
            ]
        panels[topology] = fig
    return panels


def figure3(scale: Optional[Scale] = None, cache: Optional[ResultCache] = None,
            jobs: int = 1):
    """Average SL vs graph size, regular graphs, four topologies."""
    return _size_figure("regular", "Fig.3 regular graphs: SL vs size", scale, cache, "size", jobs)


def figure4(scale: Optional[Scale] = None, cache: Optional[ResultCache] = None,
            jobs: int = 1):
    """Average SL vs graph size, random graphs, four topologies."""
    return _size_figure("random", "Fig.4 random graphs: SL vs size", scale, cache, "size", jobs)


def figure5(scale: Optional[Scale] = None, cache: Optional[ResultCache] = None,
            jobs: int = 1):
    """Average SL vs granularity, regular graphs, four topologies."""
    return _size_figure("regular", "Fig.5 regular graphs: SL vs granularity", scale, cache, "granularity", jobs)


def figure6(scale: Optional[Scale] = None, cache: Optional[ResultCache] = None,
            jobs: int = 1):
    """Average SL vs granularity, random graphs, four topologies."""
    return _size_figure("random", "Fig.6 random graphs: SL vs granularity", scale, cache, "granularity", jobs)


def figure7(scale: Optional[Scale] = None, cache: Optional[ResultCache] = None,
            jobs: int = 1) -> FigureSeries:
    """Average SL vs heterogeneity range (random graphs, hypercube)."""
    scale = scale or current_scale()
    groups = _het_cell_groups(scale)
    _precompute([c for cells in groups.values() for c in cells], jobs, cache)
    fig = FigureSeries(
        title="Fig.7 effect of heterogeneity — 16-processor hypercube",
        x_label="heterogeneity range hi",
        xs=[hi for (_, hi) in scale.het_ranges],
    )
    for algorithm in scale.algorithms:
        ys: List[float] = []
        for (lo, hi) in scale.het_ranges:
            values = [
                run_cell(cell, cache=cache).schedule_length
                for cell in groups[(algorithm, (lo, hi))]
            ]
            ys.append(sum(values) / len(values))
        fig.series[algorithm] = ys
    return fig


def runtime_study(
    scale: Optional[Scale] = None,
    cache: Optional[ResultCache] = None,
    topology: str = "hypercube",
    jobs: int = 1,
) -> FigureSeries:
    """Scheduler wall-clock vs graph size (paper's running-time remark).

    ``jobs`` is accepted for interface symmetry but deliberately
    ignored: timing cells concurrently would measure CPU contention, not
    scheduler cost, and the inflated numbers would be cached. Runtime
    cells always compute serially. (Runtimes are wall clock, so unlike
    schedule lengths they are not bit-reproducible across runs.)
    """
    del jobs
    scale = scale or current_scale()
    fig = FigureSeries(
        title=f"Scheduler runtime vs size — {topology} (random graphs, g=1)",
        x_label="graph size",
        xs=list(scale.sizes),
    )
    for algorithm in scale.algorithms:
        ys = []
        for size in scale.sizes:
            cell = Cell(
                suite="random", app="random", size=size, granularity=1.0,
                topology=topology, algorithm=algorithm,
            )
            ys.append(run_cell(cell, cache=cache).runtime_s)
        fig.series[algorithm] = ys
    return fig
