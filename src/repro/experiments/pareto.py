"""Pareto-front sweep: one workload, every scheduler, many objectives.

:func:`run_pareto` fixes a (graph, platform) cell and runs each
requested algorithm on it, scoring every committed schedule against the
requested objective set (:mod:`repro.objectives`). The result is a
deterministic artifact document: points in algorithm order, objective
values in canonical order, and the non-dominated front.

Determinism. Cells flow through :func:`~repro.experiments.runner.
run_cells`, whose results are independent of ``jobs`` and of the engine
mode (byte-identity contract), and front membership is a property of
the point *set* (see :func:`repro.objectives.pareto_front`) — so the
same request yields the same bytes from ``repro pareto``, from the
``/pareto`` service endpoint, under any ``REPRO_HOTPATH``, at any job
count. ``tests/test_hotpath_equivalence.py`` pins a golden front.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.experiments.config import ALGORITHM_NAMES, Cell
from repro.objectives.registry import (
    OBJECTIVE_SENSES,
    objectives_token,
    parse_objectives,
    pareto_front,
)

__all__ = ["PARETO_FORMAT", "PARETO_VERSION", "run_pareto", "pareto_to_json"]

PARETO_FORMAT = "repro-pareto"
PARETO_VERSION = 1


def _check_algorithms(algorithms: Sequence[str]) -> Tuple[str, ...]:
    algos = tuple(algorithms)
    if not algos:
        raise ConfigurationError("pareto sweep needs at least one algorithm")
    seen = set()
    for a in algos:
        if a not in ALGORITHM_NAMES:
            raise ConfigurationError(
                f"unknown algorithm {a!r}; known: {list(ALGORITHM_NAMES)}"
            )
        if a in seen:
            raise ConfigurationError(f"duplicate algorithm {a!r}")
        seen.add(a)
    return algos


def run_pareto(
    base_cell: Cell,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    objectives: Union[str, Sequence[str]] = "makespan,energy,reliability,throughput",
    jobs: int = 1,
    cache=None,
    use_cache: bool = True,
    progress: Optional[Callable[[str], None]] = None,
):
    """Run the Pareto sweep; returns ``(artifact document, SweepReport)``.

    ``base_cell`` fixes everything but the algorithm (its own
    ``algorithm``/``objectives`` fields are overwritten per point).
    Requires at least two objectives — a one-dimensional "front" is just
    an argmin and the sweep would silently degenerate.
    """
    from repro.experiments.runner import run_cells

    names = parse_objectives(objectives)
    if len(names) < 2:
        raise ConfigurationError(
            f"pareto sweep needs at least two objectives, got {list(names)}"
        )
    token = objectives_token(names)
    algos = _check_algorithms(algorithms)
    cells = [
        dataclasses.replace(base_cell, algorithm=a, objectives=token)
        for a in algos
    ]
    results, report = run_cells(
        cells, jobs=jobs, cache=cache, use_cache=use_cache, progress=progress,
    )
    labelled = []
    points = []
    for algo, cell in zip(algos, cells):
        values = results[cell.key()].objectives
        labelled.append((algo, values))
        points.append({
            "algorithm": algo,
            "cell": cell.key(),
            "values": {n: values[n] for n in names},
        })
    front = pareto_front(labelled, names)
    on_front = set(front)
    for p in points:
        p["on_front"] = p["algorithm"] in on_front
    doc = {
        "format": PARETO_FORMAT,
        "version": PARETO_VERSION,
        "objectives": list(names),
        "senses": {n: OBJECTIVE_SENSES[n] for n in names},
        "points": points,
        "front": front,
    }
    return doc, report


def pareto_to_json(doc: Dict) -> str:
    """The canonical byte form of a Pareto artifact (what ``repro
    pareto`` prints and ``POST /pareto`` returns)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
