"""On-disk memoization of experiment cells.

Figures 3/5 (and 4/6) re-aggregate the *same* runs by different axes, and
re-running benches shouldn't redo minutes of scheduling. Results are tiny
(a few floats per cell) so JSON keyed by
:meth:`repro.experiments.config.Cell.key` is plenty.

Two layouts:

* **single file** — ``ResultCache("path/to/results.json")``: everything in
  one JSON blob (the original layout; still used by tests and ad-hoc
  scripts);
* **sharded** — ``ResultCache(directory, shards=N)``: keys are hashed
  (crc32) over ``N`` shard files so a parallel sweep flushes only the
  shards it touched and a huge grid never rewrites one monolithic file.
  This is the default layout (``REPRO_CACHE_SHARDS``, default 8, under
  ``REPRO_CACHE_DIR``).

The cache is versioned: changing the library's algorithmic behavior
should bump ``CACHE_VERSION`` so stale numbers are never mixed in.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from typing import Dict, Iterable, Optional, Set, Tuple

CACHE_VERSION = 3

DEFAULT_SHARDS = 8


class ResultCache:
    """A dict-like JSON cache for cell results (single-file or sharded)."""

    def __init__(self, path: Optional[str] = None, shards: Optional[int] = None):
        legacy_file: Optional[str] = None
        if path is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
            path = os.path.join(root, "results")
            legacy_file = os.path.join(root, "results.json")
            if shards is None:
                try:
                    shards = int(os.environ.get("REPRO_CACHE_SHARDS",
                                                DEFAULT_SHARDS))
                except ValueError:  # typo'd env var — fall back, don't crash
                    shards = DEFAULT_SHARDS
        self.path = path
        self.n_shards = max(1, int(shards or 1))
        self.sharded = self.n_shards > 1
        self._shards: Dict[int, Dict[str, dict]] = {}
        self._loaded: Set[int] = set()
        self._dirty: Set[int] = set()
        if (
            legacy_file is not None
            and self.sharded
            and not os.path.isdir(self.path)
            and os.path.isfile(legacy_file)
        ):
            self._import_legacy(legacy_file)

    def _import_legacy(self, legacy_file: str) -> None:
        """Absorb a pre-sharding single-file cache (same CACHE_VERSION)
        into the shard maps so old results are not silently recomputed.
        Entries are marked dirty and persist on the next flush; the old
        file is left in place untouched."""
        try:
            with open(legacy_file) as fh:
                blob = json.load(fh)
        except (OSError, ValueError):
            return
        if blob.get("version") != CACHE_VERSION:
            return
        self._loaded.update(range(self.n_shards))
        for idx in range(self.n_shards):
            self._shards.setdefault(idx, {})
        for key, value in blob.get("results", {}).items():
            idx = self._shard_of(key)
            self._shards[idx][key] = value
            self._dirty.add(idx)

    # ------------------------------------------------------------------
    def _shard_of(self, key: str) -> int:
        if not self.sharded:
            return 0
        return zlib.crc32(key.encode("utf-8")) % self.n_shards

    def _shard_path(self, idx: int) -> str:
        if not self.sharded:
            return self.path
        return os.path.join(self.path, f"shard-{idx:02d}.json")

    def _load(self, idx: int) -> Dict[str, dict]:
        if idx in self._loaded:
            return self._shards.setdefault(idx, {})
        self._loaded.add(idx)
        data: Dict[str, dict] = {}
        try:
            with open(self._shard_path(idx)) as fh:
                blob = json.load(fh)
            if blob.get("version") == CACHE_VERSION:
                data = blob.get("results", {})
        except (OSError, ValueError):
            pass
        self._shards[idx] = data
        return data

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        return self._load(self._shard_of(key)).get(key)

    def put(self, key: str, value: dict, flush: bool = True) -> None:
        idx = self._shard_of(key)
        self._load(idx)[key] = value
        self._dirty.add(idx)
        if flush:
            self.flush()

    def put_many(self, items: Iterable[Tuple[str, dict]], flush: bool = True) -> None:
        """Insert many results, deferring I/O to one flush of the dirty
        shards — the bulk path used by the parallel runner."""
        for key, value in items:
            idx = self._shard_of(key)
            self._load(idx)[key] = value
            self._dirty.add(idx)
        if flush:
            self.flush()

    def flush(self) -> None:
        """Write every dirty shard (atomic per shard: tmp file + rename).

        A shard that fails to write (e.g. disk full) *stays dirty* so the
        next flush retries it — in-memory results are never silently
        dropped from persistence.
        """
        if not self._dirty:
            return
        directory = self.path if self.sharded else (os.path.dirname(self.path) or ".")
        os.makedirs(directory, exist_ok=True)
        written = []
        for idx in sorted(self._dirty):
            blob = {"version": CACHE_VERSION, "results": self._shards.get(idx, {})}
            try:
                fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            except OSError:
                continue
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(blob, fh)
                os.replace(tmp, self._shard_path(idx))
                written.append(idx)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self._dirty.difference_update(written)

    def __len__(self) -> int:
        return sum(
            len(self._load(idx)) for idx in range(self.n_shards)
        )


#: process-wide default cache instance
_default_cache: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache
