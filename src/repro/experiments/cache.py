"""On-disk memoization of experiment cells.

Figures 3/5 (and 4/6) re-aggregate the *same* runs by different axes, and
re-running benches shouldn't redo minutes of scheduling. Results are tiny
(a few floats per cell) so a single JSON file keyed by
:meth:`repro.experiments.config.Cell.key` is plenty. The cache is versioned:
changing the library's algorithmic behavior should bump
``CACHE_VERSION`` so stale numbers are never mixed in.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

CACHE_VERSION = 3


class ResultCache:
    """A dict-like JSON cache for cell results."""

    def __init__(self, path: Optional[str] = None):
        if path is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
            path = os.path.join(root, "results.json")
        self.path = path
        self._data: Dict[str, dict] = {}
        self._loaded = False

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        try:
            with open(self.path) as fh:
                blob = json.load(fh)
        except (OSError, ValueError):
            return
        if blob.get("version") == CACHE_VERSION:
            self._data = blob.get("results", {})

    def get(self, key: str) -> Optional[dict]:
        self._load()
        return self._data.get(key)

    def put(self, key: str, value: dict, flush: bool = True) -> None:
        self._load()
        self._data[key] = value
        if flush:
            self.flush()

    def flush(self) -> None:
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        blob = {"version": CACHE_VERSION, "results": self._data}
        # atomic-ish write: full tmp file then rename
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(blob, fh)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __len__(self) -> int:
        self._load()
        return len(self._data)


#: process-wide default cache instance
_default_cache: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache
