"""On-disk memoization of experiment cells.

Figures 3/5 (and 4/6) re-aggregate the *same* runs by different axes, and
re-running benches shouldn't redo minutes of scheduling. Results are tiny
(a few floats per cell) so JSON keyed by
:meth:`repro.experiments.config.Cell.key` is plenty.

Two layouts:

* **single file** — ``ResultCache("path/to/results.json")``: everything in
  one JSON blob (the original layout; still used by tests and ad-hoc
  scripts);
* **sharded** — ``ResultCache(directory, shards=N)``: keys are hashed
  (crc32) over ``N`` shard files so a parallel sweep flushes only the
  shards it touched and a huge grid never rewrites one monolithic file.
  This is the default layout (``REPRO_CACHE_SHARDS``, default 8, under
  ``REPRO_CACHE_DIR``) and applies to *any* non-``.json`` path:
  explicit directories honor ``REPRO_CACHE_SHARDS`` and import a
  sibling pre-sharding ``<directory>.json`` file exactly like the
  env-derived default does.

The cache is versioned: changing the library's algorithmic behavior
should bump ``CACHE_VERSION`` so stale numbers are never mixed in.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import zlib
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.obs import counters as _obs

CACHE_VERSION = 3

DEFAULT_SHARDS = 8

#: reserved key carrying an entry's provenance stamp. Result
#: deserializers must ignore ``__``-prefixed keys.
PROVENANCE_KEY = "__prov__"


def provenance_stamp(request_key: str) -> dict:
    """The ``{repro_version, engine_mode, request_key}`` stamp recorded
    with every cached artifact (the huldra-style provenance record)."""
    from repro import __version__
    from repro.util.intervals import hotpath_mode

    return {
        "repro_version": __version__,
        "engine_mode": hotpath_mode(),
        "request_key": request_key,
    }


def stamp_provenance(value: dict, request_key: str) -> dict:
    """Copy of ``value`` carrying a fresh provenance stamp."""
    out = dict(value)
    out[PROVENANCE_KEY] = provenance_stamp(request_key)
    return out


def provenance_of(value: Optional[dict]) -> Optional[dict]:
    if not isinstance(value, dict):
        return None
    return value.get(PROVENANCE_KEY)


def is_stale(value: dict, request_key: str) -> bool:
    """True when a cached entry's provenance contradicts the request —
    stale entries are recomputed, never served.

    Staleness means a *different library version* wrote the entry, or
    the entry was written under a *different request key* (a sharding or
    grammar bug). ``engine_mode`` is recorded but deliberately not a
    criterion: schedules are byte-identical across the ``REPRO_HOTPATH``
    modes by contract, so cross-mode serving is correct (and the corpus
    report stays byte-identical across modes). Entries written before
    provenance existed carry no stamp and are grandfathered —
    ``CACHE_VERSION`` gates those wholesale.
    """
    from repro import __version__

    prov = provenance_of(value)
    stale = False
    if prov is not None:
        if prov.get("repro_version") != __version__:
            stale = True
        elif prov.get("request_key") != request_key:
            stale = True
    if _obs.ACTIVE:
        # every get() that found an entry is followed by exactly one
        # is_stale() at each caller, so hit/stale tally here (misses
        # tally in ResultCache.get) and the three dispositions partition
        # the lookups
        _obs.inc("cache.stale" if stale else "cache.hits")
    return stale


class ResultCache:
    """A dict-like JSON cache for cell results (single-file or sharded)."""

    def __init__(self, path: Optional[str] = None, shards: Optional[int] = None):
        if path is None:
            root = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
            path = os.path.join(root, "results")
        # A ``.json`` path is the single-file layout; anything else is a
        # shard directory. Directory construction — default *or*
        # explicit — honors REPRO_CACHE_SHARDS (explicit ``shards=``
        # still wins); it used to be honored only for ``path=None``.
        # Exception: an existing *file* at an extension-less path is a
        # cache written under the old single-file default for that
        # spelling — keep reading/writing it as one rather than
        # shadowing it with a same-named directory.
        if shards is None and not path.endswith(".json"):
            if os.path.isfile(path):
                shards = 1
            else:
                try:
                    shards = int(os.environ.get("REPRO_CACHE_SHARDS",
                                                DEFAULT_SHARDS))
                except ValueError:  # typo'd env var — fall back, don't crash
                    shards = DEFAULT_SHARDS
        self.path = path
        self.n_shards = max(1, int(shards or 1))
        self.sharded = self.n_shards > 1
        self._shards: Dict[int, Dict[str, dict]] = {}
        self._loaded: Set[int] = set()
        self._dirty: Set[int] = set()
        self._flush_warned = False
        # a pre-sharding single-file cache sits next to the shard
        # directory under the same stem (<dir>.json) — import it for
        # explicit directories too, not just the env-derived default
        legacy_file = path + ".json"
        if (
            self.sharded
            and not os.path.isdir(self.path)
            and os.path.isfile(legacy_file)
        ):
            self._import_legacy(legacy_file)

    def _import_legacy(self, legacy_file: str) -> None:
        """Absorb a pre-sharding single-file cache (same CACHE_VERSION)
        into the shard maps so old results are not silently recomputed.
        Entries are marked dirty and persist on the next flush; the old
        file is left in place untouched."""
        try:
            with open(legacy_file) as fh:
                blob = json.load(fh)
        except (OSError, ValueError):
            return
        if blob.get("version") != CACHE_VERSION:
            return
        self._loaded.update(range(self.n_shards))
        for idx in range(self.n_shards):
            self._shards.setdefault(idx, {})
        for key, value in blob.get("results", {}).items():
            idx = self._shard_of(key)
            self._shards[idx][key] = value
            self._dirty.add(idx)

    # ------------------------------------------------------------------
    def _shard_of(self, key: str) -> int:
        if not self.sharded:
            return 0
        return zlib.crc32(key.encode("utf-8")) % self.n_shards

    def _shard_path(self, idx: int) -> str:
        if not self.sharded:
            return self.path
        return os.path.join(self.path, f"shard-{idx:02d}.json")

    def _load(self, idx: int) -> Dict[str, dict]:
        if idx in self._loaded:
            return self._shards.setdefault(idx, {})
        self._loaded.add(idx)
        data: Dict[str, dict] = {}
        try:
            with open(self._shard_path(idx)) as fh:
                blob = json.load(fh)
            if blob.get("version") == CACHE_VERSION:
                data = blob.get("results", {})
        except (OSError, ValueError):
            pass
        self._shards[idx] = data
        return data

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        value = self._load(self._shard_of(key)).get(key)
        if value is None and _obs.ACTIVE:
            _obs.inc("cache.misses")
        return value

    def put(self, key: str, value: dict, flush: bool = True) -> None:
        idx = self._shard_of(key)
        self._load(idx)[key] = value
        self._dirty.add(idx)
        if flush:
            self.flush()

    def put_many(self, items: Iterable[Tuple[str, dict]], flush: bool = True) -> None:
        """Insert many results, deferring I/O to one flush of the dirty
        shards — the bulk path used by the parallel runner."""
        for key, value in items:
            idx = self._shard_of(key)
            self._load(idx)[key] = value
            self._dirty.add(idx)
        if flush:
            self.flush()

    def flush(self) -> None:
        """Write every dirty shard (atomic per shard: tmp file + rename).

        A shard that fails to write (e.g. disk full) *stays dirty* so the
        next flush retries it — in-memory results are never silently
        dropped from persistence.
        """
        if not self._dirty:
            return
        directory = self.path if self.sharded else (os.path.dirname(self.path) or ".")
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            self._warn_once(directory, exc)
            return  # every shard stays dirty; the next flush retries
        written = []
        for idx in sorted(self._dirty):
            blob = {"version": CACHE_VERSION, "results": self._shards.get(idx, {})}
            try:
                fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            except OSError as exc:
                self._warn_once(directory, exc)
                continue
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(blob, fh)
                os.replace(tmp, self._shard_path(idx))
                written.append(idx)
            except OSError as exc:
                self._warn_once(directory, exc)
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self._dirty.difference_update(written)

    def _warn_once(self, directory: str, exc: OSError) -> None:
        """A persistently failing flush must not be silent: results stay
        in memory and every flush retries, but the operator should know
        persistence is off. One warning per cache instance."""
        if not self._flush_warned:
            self._flush_warned = True
            sys.stderr.write(
                f"repro: result-cache flush to {directory!r} failed "
                f"({exc}); results kept in memory, will retry on the "
                f"next flush\n"
            )

    def __len__(self) -> int:
        return sum(
            len(self._load(idx)) for idx in range(self.n_shards)
        )


#: process-wide default cache instance
_default_cache: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    global _default_cache
    if _default_cache is None:
        _default_cache = ResultCache()
    return _default_cache
