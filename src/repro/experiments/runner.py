"""Cell execution: build the (graph, platform), run the algorithm, validate.

Every cell result is validated with the strict schedule validator before it
is trusted or cached — a reproduction whose schedules silently violate the
contention model would be meaningless.

:func:`run_cell` runs one cell; :func:`run_cells` is the sweep engine: it
deduplicates cells, serves cache hits, and fans the misses out over a
``concurrent.futures`` process pool in deterministic chunks. Workers never
touch the on-disk cache — results flow back to the parent, which writes
them through the sharded cache in one flush per chunk — so a sweep's
outcome is bit-for-bit independent of ``jobs`` (each cell is a pure
function of its own seeds; see ``tests/test_parallel_determinism.py``).
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ConfigurationError
from repro.experiments.cache import (
    ResultCache,
    default_cache,
    is_stale,
    stamp_provenance,
)
from repro.experiments.config import Cell
from repro.network.system import HeterogeneousSystem
from repro.network.topology import (
    Topology,
    apply_link_model,
    clique,
    fat_tree,
    hypercube,
    random_topology,
    ring,
    torus2d,
)
from repro.baselines.cpop import schedule_cpop
from repro.baselines.dls import DLSOptions, schedule_dls
from repro.baselines.etf import schedule_etf
from repro.baselines.heft import schedule_heft
from repro.baselines.spdecomp import schedule_spdecomp
from repro.core.bsa import BSAOptions, schedule_bsa
from repro.objectives.registry import evaluate_objectives
from repro.schedule.metrics import compute_metrics
from repro.schedule.validator import validate_schedule
from repro.workloads.external import EXTERNAL_SUITE, resolve_external
from repro.workloads.suites import random_graph, regular_graph


@dataclass(frozen=True)
class CellResult:
    """Everything recorded about one cell run."""

    schedule_length: float
    total_comm_cost: float
    speedup: float
    normalized_sl: float
    runtime_s: float
    n_tasks: int
    n_edges: int
    #: events survived by a scenario cell (0 for static cells; absent
    #: from pre-existing cache entries, which deserialize to 0)
    n_events: int = 0
    #: extra objective values ({} for makespan-only cells; absent from
    #: pre-existing cache entries, which deserialize to {}). Keys are
    #: canonical objective names — see repro.objectives.
    objectives: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "CellResult":
        # ``__``-prefixed keys are cache metadata (provenance stamps),
        # not result fields
        return cls(**{k: v for k, v in d.items() if not k.startswith("__")})


def build_topology(name: str, n_procs: int, seed: int = 0) -> Topology:
    if name == "ring":
        return ring(n_procs)
    if name == "hypercube":
        return hypercube(n_procs)
    if name == "clique":
        return clique(n_procs)
    if name == "random":
        return random_topology(n_procs, 2, 8, seed=seed)
    if name == "torus":
        rows, cols = _near_square(n_procs)
        if rows < 2 or (rows == 2 and cols == 2):
            # a 1 x m "torus" is structurally a ring, and 2 x 2 is a
            # 4-cycle isomorphic to ring(4) — comparing either to
            # topology="ring" would silently compare identical networks
            raise ConfigurationError(
                f"torus needs a composite processor count >= 6, got {n_procs}"
            )
        return torus2d(rows, cols)
    if name == "fattree":
        return fat_tree(n_procs)
    raise ConfigurationError(f"unknown topology {name!r}")


def _near_square(m: int) -> Tuple[int, int]:
    """Most-square ``rows x cols`` factorization of ``m`` (rows <= cols)."""
    r = int(m ** 0.5)
    while r > 1 and m % r:
        r -= 1
    return r, m // r


def build_cell_system(cell: Cell) -> HeterogeneousSystem:
    """Materialize the graph and bound platform for a cell.

    ``suite="external"`` cells resolve their graph (and, for trace
    files, the exact per-processor cost table) from the file named by
    the cell's app token — see :mod:`repro.workloads.external`. Every
    other suite samples heterogeneity from the cell's seeds.
    """
    if cell.suite == "regular":
        graph = regular_graph(
            cell.app, cell.size, cell.granularity, seed=cell.graph_seed
        )
    elif cell.suite == "random":
        graph = random_graph(cell.size, cell.granularity, seed=cell.graph_seed)
    elif cell.suite == EXTERNAL_SUITE:
        graph = None  # the workload binds itself below
    else:
        raise ConfigurationError(f"unknown suite {cell.suite!r}")
    topology = build_topology(cell.topology, cell.n_procs, seed=cell.system_seed)
    # overlay the cell's link model; with the defaults this is a no-op
    # that returns the very same topology object (byte-identical runs)
    topology = apply_link_model(
        topology,
        duplex=cell.duplex,
        bandwidth_skew=cell.bandwidth_skew,
        seed=cell.system_seed,
    )
    link_range = (cell.het_lo, cell.het_hi) if cell.link_het else None
    if cell.suite == EXTERNAL_SUITE:
        workload = resolve_external(cell.app)
        return workload.bind(
            topology,
            het_range=(cell.het_lo, cell.het_hi),
            link_het_range=link_range,
            seed=cell.system_seed,
        )
    return HeterogeneousSystem.sample(
        graph,
        topology,
        het_range=(cell.het_lo, cell.het_hi),
        link_het_range=link_range,
        seed=cell.system_seed,
    )


#: algorithm registry. Plain names are the paper's comparison (BSA with
#: reproduction defaults vs Sih & Lee's DLS); suffixed names are ablation
#: variants referenced by the ablation benches and EXPERIMENTS.md.
_SCHEDULERS: Dict[str, Callable] = {
    "bsa": lambda system: schedule_bsa(system, BSAOptions()),
    "dls": lambda system: schedule_dls(system, DLSOptions()),
    "heft": schedule_heft,
    "cpop": schedule_cpop,
    "etf": schedule_etf,
    "spdecomp": schedule_spdecomp,
    # --- ablations -----------------------------------------------------
    "bsa-literal": lambda system: schedule_bsa(
        system,
        BSAOptions(
            migration_trigger="st_gt_drt",
            migration_scope="neighbors",
            route_mode="incremental",
            n_sweeps=1,
        ),
    ),
    "bsa-neighbors": lambda system: schedule_bsa(
        system, BSAOptions(migration_scope="neighbors")
    ),
    "bsa-incremental": lambda system: schedule_bsa(
        system,
        BSAOptions(migration_scope="neighbors", route_mode="incremental"),
    ),
    "bsa-1sweep": lambda system: schedule_bsa(system, BSAOptions(n_sweeps=1)),
    "bsa-novip": lambda system: schedule_bsa(system, BSAOptions(vip_follow=False)),
    "bsa-append": lambda system: schedule_bsa(system, BSAOptions(insertion=False)),
    "dls-insertion": lambda system: schedule_dls(
        system, DLSOptions(link_insertion=True)
    ),
    # cost-aware static routes: Dijkstra over per-hop time 1/bandwidth —
    # identical hop metric to "bfs" on uniform links, prefers fat links
    # on skewed/fat-tree topologies
    "dls-weighted": lambda system: schedule_dls(
        system, DLSOptions(routing_strategy="weighted")
    ),
}


def run_cell(
    cell: Cell,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    validate: bool = True,
) -> CellResult:
    """Run (or fetch) one cell. Schedules are validated before caching."""
    if cache is None:
        cache = default_cache()
    if use_cache:
        hit = cache.get(cell.key())
        if hit is not None and not is_stale(hit, cell.key()):
            return CellResult.from_dict(hit)

    system = build_cell_system(cell)
    try:
        scheduler = _SCHEDULERS[cell.algorithm]
    except KeyError:
        raise ConfigurationError(f"unknown algorithm {cell.algorithm!r}") from None

    with obs.span("cell.schedule", algorithm=cell.algorithm,
                  n=cell.size) as sp:
        schedule = scheduler(system)
    runtime = sp.elapsed_s
    if validate:
        validate_schedule(schedule)
    n_events = 0
    if cell.scenario:
        from repro.dynamic import simulate_scenario

        with obs.span("cell.simulate", scenario=cell.scenario) as sim_sp:
            sim = simulate_scenario(system, schedule, cell.scenario,
                                    compare_replan=False)
        runtime += sim_sp.elapsed_s
        n_events = len(sim.records)
        schedule = sim.schedule
    metrics = compute_metrics(schedule)
    # extra objectives score the same committed schedule the metrics
    # describe (for scenario cells: the final, post-repair schedule)
    objective_values = (
        evaluate_objectives(schedule, cell.objectives)
        if cell.objectives else {}
    )
    result = CellResult(
        schedule_length=metrics.schedule_length,
        total_comm_cost=metrics.total_comm_cost,
        speedup=metrics.speedup,
        normalized_sl=metrics.normalized_sl,
        runtime_s=runtime,
        n_tasks=system.graph.n_tasks,
        n_edges=system.graph.n_edges,
        n_events=n_events,
        objectives=objective_values,
    )
    if use_cache:
        cache.put(cell.key(), stamp_provenance(result.to_dict(), cell.key()))
    return result


# ----------------------------------------------------------------------
# parallel sweep engine
# ----------------------------------------------------------------------

@dataclass
class SweepReport:
    """What happened during one :func:`run_cells` sweep."""

    total: int = 0
    unique: int = 0
    cache_hits: int = 0
    #: cached entries whose provenance stamp contradicted the request
    #: (library version or request key mismatch) — recomputed, not served
    stale: int = 0
    computed: int = 0
    failures: List[Tuple[str, str]] = field(default_factory=list)
    wall_s: float = 0.0
    jobs: int = 1
    n_chunks: int = 0

    def summary(self) -> str:
        rate = self.computed / self.wall_s if self.wall_s > 0 else 0.0
        stale = f"{self.stale} stale, " if self.stale else ""
        lines = [
            f"sweep: {self.total} cells ({self.unique} unique), "
            f"{self.cache_hits} cache hits, {stale}{self.computed} computed "
            f"in {self.wall_s:.1f}s ({rate:.1f} cells/s, jobs={self.jobs}, "
            f"chunks={self.n_chunks})",
        ]
        for key, err in self.failures:
            lines.append(f"  FAILED {key}: {err}")
        return "\n".join(lines)


def _run_chunk(
    cells: Sequence[Cell],
    validate: bool,
    hotpath: str,
) -> Tuple[List[Tuple[str, dict]], Dict[str, int]]:
    """Worker entry: run a chunk of cells cache-free and return raw dicts
    plus the chunk's deterministic-counter delta.

    The hot-path mode is pinned explicitly so workers behave identically
    under any multiprocessing start method (workers inherit ``REPRO_OBS``
    through the environment, so the obs state is pinned the same way). A
    failing cell is reported as an ``{"__error__": ...}`` payload instead
    of poisoning the chunk. The counter delta is a before/after snapshot
    difference — worker processes are reused across chunks, so absolute
    values would double-count; per-chunk deltas summed in the parent are
    exactly the in-process totals, which keeps counters independent of
    ``jobs`` and chunking.
    """
    from repro.obs import counters as _obs
    from repro.util.intervals import set_hotpath_mode

    set_hotpath_mode(hotpath)
    before = _obs.snapshot() if _obs.ACTIVE else None
    out: List[Tuple[str, dict]] = []
    for cell in cells:
        try:
            result = run_cell(cell, use_cache=False, validate=validate)
            out.append((cell.key(), result.to_dict()))
        except Exception as exc:  # noqa: BLE001 - reported to the parent
            out.append((cell.key(), {"__error__": f"{type(exc).__name__}: {exc}"}))
    delta: Dict[str, int] = {}
    if before is not None:
        after = _obs.snapshot()
        delta = {
            name: value - before.get(name, 0)
            for name, value in after.items()
            if value != before.get(name, 0)
        }
    return out, delta


def _chunked(items: List[Cell], size: int) -> List[List[Cell]]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def run_cells(
    cells: Iterable[Cell],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    validate: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    raise_on_error: bool = True,
) -> Tuple[Dict[str, CellResult], SweepReport]:
    """Run a batch of cells, fanned out over ``jobs`` worker processes.

    Returns ``(results keyed by cell key, report)``. With ``jobs <= 1``
    everything runs in-process (no pool). Results — and, with the obs
    layer on, the deterministic counters — are independent of ``jobs``
    and of chunking: every cell is rebuilt from its own seeds in
    whichever process runs it, workers return per-chunk counter deltas
    the parent sums, and the parent alone writes the cache.
    """
    with obs.span("sweep.run_cells", jobs=max(1, jobs)) as sp:
        results, report = _run_cells_impl(
            cells, jobs=jobs, cache=cache, use_cache=use_cache,
            validate=validate, chunk_size=chunk_size, progress=progress,
        )
    report.wall_s = sp.elapsed_s
    if report.failures and raise_on_error:
        raise ConfigurationError(
            f"{len(report.failures)} cell(s) failed: "
            + "; ".join(f"{k}: {e}" for k, e in report.failures[:3])
        )
    return results, report


def _run_cells_impl(
    cells: Iterable[Cell],
    jobs: int,
    cache: Optional[ResultCache],
    use_cache: bool,
    validate: bool,
    chunk_size: Optional[int],
    progress: Optional[Callable[[str], None]],
) -> Tuple[Dict[str, CellResult], SweepReport]:
    from repro.util.intervals import hotpath_mode

    if cache is None:
        cache = default_cache()
    cells = list(cells)
    report = SweepReport(total=len(cells), jobs=max(1, jobs))
    say = progress or (lambda msg: None)

    unique: Dict[str, Cell] = {}
    for cell in cells:
        unique.setdefault(cell.key(), cell)
    report.unique = len(unique)

    results: Dict[str, CellResult] = {}
    misses: List[Cell] = []
    for key, cell in unique.items():
        hit = cache.get(key) if use_cache else None
        if hit is not None and is_stale(hit, key):
            report.stale += 1
            hit = None
        if hit is not None:
            results[key] = CellResult.from_dict(hit)
        else:
            misses.append(cell)
    report.cache_hits = len(results)
    if results:
        say(f"cache: {len(results)}/{len(unique)} cells already present")

    def _absorb(pairs: List[Tuple[str, dict]]) -> None:
        good = []
        for key, payload in pairs:
            if "__error__" in payload:
                report.failures.append((key, payload["__error__"]))
                continue
            results[key] = CellResult.from_dict(payload)
            good.append((key, stamp_provenance(payload, key)))
            report.computed += 1
        if use_cache and good:
            cache.put_many(good, flush=True)

    if misses:
        if jobs <= 1:
            done = 0
            for cell in misses:
                # in-process: counters incremented directly, delta unused
                pairs, _ = _run_chunk([cell], validate, hotpath_mode())
                _absorb(pairs)
                done += 1
                if done % 10 == 0 or done == len(misses):
                    say(f"computed {done}/{len(misses)} cells")
            report.n_chunks = len(misses)
        else:
            if chunk_size is None:
                chunk_size = max(1, -(-len(misses) // (jobs * 4)))
            chunks = _chunked(misses, chunk_size)
            report.n_chunks = len(chunks)
            mode = hotpath_mode()
            done_cells = 0
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                pending = {
                    pool.submit(_run_chunk, chunk, validate, mode): len(chunk)
                    for chunk in chunks
                }
                while pending:
                    finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for fut in finished:
                        n = pending.pop(fut)
                        pairs, delta = fut.result()
                        if delta:
                            obs.merge(delta)
                        _absorb(pairs)
                        done_cells += n
                        say(
                            f"computed {done_cells}/{len(misses)} cells "
                            f"({len(pending)} chunks in flight)"
                        )

    return results, report
