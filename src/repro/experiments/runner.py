"""Cell execution: build the (graph, platform), run the algorithm, validate.

Every cell result is validated with the strict schedule validator before it
is trusted or cached — a reproduction whose schedules silently violate the
contention model would be meaningless.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache, default_cache
from repro.experiments.config import Cell
from repro.network.system import HeterogeneousSystem
from repro.network.topology import (
    Topology,
    clique,
    hypercube,
    random_topology,
    ring,
)
from repro.baselines.cpop import schedule_cpop
from repro.baselines.dls import DLSOptions, schedule_dls
from repro.baselines.etf import schedule_etf
from repro.baselines.heft import schedule_heft
from repro.core.bsa import BSAOptions, schedule_bsa
from repro.schedule.metrics import compute_metrics
from repro.schedule.validator import validate_schedule
from repro.workloads.suites import random_graph, regular_graph


@dataclass(frozen=True)
class CellResult:
    """Everything recorded about one cell run."""

    schedule_length: float
    total_comm_cost: float
    speedup: float
    normalized_sl: float
    runtime_s: float
    n_tasks: int
    n_edges: int

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "CellResult":
        return cls(**d)


def build_topology(name: str, n_procs: int, seed: int = 0) -> Topology:
    if name == "ring":
        return ring(n_procs)
    if name == "hypercube":
        return hypercube(n_procs)
    if name == "clique":
        return clique(n_procs)
    if name == "random":
        return random_topology(n_procs, 2, 8, seed=seed)
    raise ConfigurationError(f"unknown topology {name!r}")


def build_cell_system(cell: Cell) -> HeterogeneousSystem:
    """Materialize the graph and bound platform for a cell."""
    if cell.suite == "regular":
        graph = regular_graph(
            cell.app, cell.size, cell.granularity, seed=cell.graph_seed
        )
    elif cell.suite == "random":
        graph = random_graph(cell.size, cell.granularity, seed=cell.graph_seed)
    else:
        raise ConfigurationError(f"unknown suite {cell.suite!r}")
    topology = build_topology(cell.topology, cell.n_procs, seed=cell.system_seed)
    link_range = (cell.het_lo, cell.het_hi) if cell.link_het else None
    return HeterogeneousSystem.sample(
        graph,
        topology,
        het_range=(cell.het_lo, cell.het_hi),
        link_het_range=link_range,
        seed=cell.system_seed,
    )


#: algorithm registry. Plain names are the paper's comparison (BSA with
#: reproduction defaults vs Sih & Lee's DLS); suffixed names are ablation
#: variants referenced by the ablation benches and EXPERIMENTS.md.
_SCHEDULERS: Dict[str, Callable] = {
    "bsa": lambda system: schedule_bsa(system, BSAOptions()),
    "dls": lambda system: schedule_dls(system, DLSOptions()),
    "heft": schedule_heft,
    "cpop": schedule_cpop,
    "etf": schedule_etf,
    # --- ablations -----------------------------------------------------
    "bsa-literal": lambda system: schedule_bsa(
        system,
        BSAOptions(
            migration_trigger="st_gt_drt",
            migration_scope="neighbors",
            route_mode="incremental",
            n_sweeps=1,
        ),
    ),
    "bsa-neighbors": lambda system: schedule_bsa(
        system, BSAOptions(migration_scope="neighbors")
    ),
    "bsa-incremental": lambda system: schedule_bsa(
        system,
        BSAOptions(migration_scope="neighbors", route_mode="incremental"),
    ),
    "bsa-1sweep": lambda system: schedule_bsa(system, BSAOptions(n_sweeps=1)),
    "bsa-novip": lambda system: schedule_bsa(system, BSAOptions(vip_follow=False)),
    "bsa-append": lambda system: schedule_bsa(system, BSAOptions(insertion=False)),
    "dls-insertion": lambda system: schedule_dls(
        system, DLSOptions(link_insertion=True)
    ),
}


def run_cell(
    cell: Cell,
    cache: Optional[ResultCache] = None,
    use_cache: bool = True,
    validate: bool = True,
) -> CellResult:
    """Run (or fetch) one cell. Schedules are validated before caching."""
    if cache is None:
        cache = default_cache()
    if use_cache:
        hit = cache.get(cell.key())
        if hit is not None:
            return CellResult.from_dict(hit)

    system = build_cell_system(cell)
    try:
        scheduler = _SCHEDULERS[cell.algorithm]
    except KeyError:
        raise ConfigurationError(f"unknown algorithm {cell.algorithm!r}") from None

    t0 = time.perf_counter()
    schedule = scheduler(system)
    runtime = time.perf_counter() - t0
    if validate:
        validate_schedule(schedule)
    metrics = compute_metrics(schedule)
    result = CellResult(
        schedule_length=metrics.schedule_length,
        total_comm_cost=metrics.total_comm_cost,
        speedup=metrics.speedup,
        normalized_sl=metrics.normalized_sl,
        runtime_s=runtime,
        n_tasks=system.graph.n_tasks,
        n_edges=system.graph.n_edges,
    )
    if use_cache:
        cache.put(cell.key(), result.to_dict())
    return result
