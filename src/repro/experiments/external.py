"""The external-workload experiment suite (EXPERIMENTS.md §7).

Schedules every graph file in a corpus directory — by default the
bundled mini-corpus under ``examples/graphs/`` — across the full
scheduler registry on a couple of topologies, through the same
``run_cells`` engine (and cache) as the paper sweeps.

The bundled corpus is deliberately small and diverse:

* ``forkjoin.stg``        — Standard Task Graph format, contention-heavy
  fork-join structure;
* ``series_parallel.dot`` — Graphviz DOT, series-parallel decomposition;
* ``ge_trace.json``       — JSON workflow trace of Gaussian elimination
  with 8-processor execution-cost vectors (heterogeneity read from the
  file, never re-sampled).

Reproduce the section table with::

    PYTHONPATH=src python examples/external_workloads.py

or cell-by-cell with ``repro schedule --graph examples/graphs/<file>``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.config import ALGORITHM_NAMES, Cell
from repro.experiments.runner import run_cells
from repro.graph.interchange import FORMATS
from repro.workloads.external import external_cell, split_token

#: default corpus location, relative to the repository root (the corpus
#: ships with the examples, not inside the installed package)
DEFAULT_CORPUS_DIR = os.path.join("examples", "graphs")

#: topologies §7 evaluates the corpus on
CORPUS_TOPOLOGIES: Tuple[str, ...] = ("ring", "hypercube")

#: processor count for corpus cells (the bundled trace carries
#: 8-processor cost vectors, so the whole suite runs on 8)
CORPUS_N_PROCS = 8


def corpus_paths(directory: Optional[str] = None) -> List[str]:
    """Every graph file in ``directory`` with a registered extension,
    sorted by name. Raises when the directory has no graph files (an
    empty corpus almost always means a wrong path)."""
    directory = directory or DEFAULT_CORPUS_DIR
    extensions = tuple(ext for f in FORMATS.values() for ext in f.extensions)
    try:
        names = sorted(os.listdir(directory))
    except OSError as exc:
        raise ConfigurationError(f"cannot list corpus {directory!r}: {exc}") from None
    paths = [
        os.path.join(directory, n)
        for n in names
        if n.lower().endswith(extensions)
    ]
    if not paths:
        raise ConfigurationError(
            f"corpus directory {directory!r} contains no graph files "
            f"(known extensions: {sorted(set(extensions))})"
        )
    return paths


def corpus_cells(
    directory: Optional[str] = None,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    topologies: Sequence[str] = CORPUS_TOPOLOGIES,
    n_procs: int = CORPUS_N_PROCS,
    system_seed: int = 0,
) -> List[Cell]:
    """The full §7 grid: every corpus file x algorithm x topology."""
    from repro.graph.interchange import load_workload

    cells: List[Cell] = []
    for path in corpus_paths(directory):
        workload = load_workload(path)  # parse/hash once per file, not per cell
        for topology in topologies:
            for algorithm in algorithms:
                cells.append(
                    external_cell(
                        path,
                        algorithm=algorithm,
                        topology=topology,
                        n_procs=n_procs,
                        system_seed=system_seed,
                        workload=workload,
                    )
                )
    return cells


def corpus_table(
    directory: Optional[str] = None,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    topologies: Sequence[str] = CORPUS_TOPOLOGIES,
    jobs: int = 1,
    use_cache: bool = True,
) -> str:
    """Run the §7 grid and render one schedule-length table per topology
    (rows: corpus files, columns: algorithms, plus the BSA/DLS ratio)."""
    from repro.util.tables import format_table

    cells = corpus_cells(directory, algorithms=algorithms, topologies=topologies)
    results, _ = run_cells(cells, jobs=jobs, use_cache=use_cache)
    by_axes = {
        (split_token(c.app)[0], c.topology, c.algorithm): c for c in cells
    }
    paths = corpus_paths(directory)
    sections: List[str] = []
    for topology in topologies:
        rows = []
        for path in paths:
            row: List[object] = [os.path.basename(path)]
            sl = {}
            for algorithm in algorithms:
                cell = by_axes[(path, topology, algorithm)]
                sl[algorithm] = results[cell.key()].schedule_length
                row.append(sl[algorithm])
            if "bsa" in sl and "dls" in sl:
                row.append(sl["bsa"] / sl["dls"])
            rows.append(row)
        headers = ["graph"] + list(algorithms)
        if "bsa" in algorithms and "dls" in algorithms:
            headers.append("bsa/dls")
        sections.append(
            format_table(
                headers,
                rows,
                title=f"external corpus — {topology}{CORPUS_N_PROCS}, SL per scheduler",
                ndigits=1,
            )
        )
    return "\n\n".join(sections)
