"""The paper's worked example: Figure 1 graph, Table 1 costs, 4-proc ring.

The ICPP scan's Figure 1 is not machine-readable, so the graph below is
*reconstructed* from the paper's narrative constraints:

* nominal critical path = <T1, T7, T9>;
* nominal serial order = T1, T2, T7, T4, T3, T8, T6, T9, T5;
* T6 and T8 tie on b-level; b(T4) > b(T3); T5 is the only OB task;
* 12 edges with communication-cost multiset {100, 60, 50, 50, 20, 10x7};
* per-processor CP lengths make P2 the first pivot (length 226 — which the
  published text itself reports).

With the edge set below, our implementation reproduces: the nominal CP,
the exact nominal serial order, pivot = P2, and CP lengths of 240 / 226
for P1/P2 exactly as published. The published P3/P4 lengths (235/260) are
not reachable under *any* cost assignment consistent with Table 1 — see
EXPERIMENTS.md for the arithmetic — and the paper's claimed CP set for P2
({T1,T2,T6,T9}) contradicts its own length 226 (= the <T1,T7,T9> path
under P2 costs). Those inconsistencies are documented, not imitated.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.bsa import BSAOptions, BSAScheduler
from repro.core.serialization import select_pivot, serial_injection
from repro.graph.model import TaskGraph
from repro.network.system import HeterogeneousSystem
from repro.network.topology import ring
from repro.schedule.gantt import render_gantt
from repro.schedule.metrics import compute_metrics
from repro.schedule.validator import validate_schedule

#: Table 1 — actual execution cost of each task on the four processors.
TABLE1_EXEC_COSTS: Dict[str, Tuple[float, float, float, float]] = {
    "T1": (39, 7, 2, 6),
    "T2": (21, 50, 57, 56),
    "T3": (15, 28, 39, 6),
    "T4": (54, 14, 16, 55),
    "T5": (45, 42, 97, 12),
    "T6": (15, 20, 57, 78),
    "T7": (33, 43, 51, 60),
    "T8": (51, 18, 47, 74),
    "T9": (8, 16, 15, 20),
}

#: (src, dst, nominal communication cost) — see module docstring.
FIGURE1_EDGES = (
    ("T1", "T2", 20),
    ("T1", "T3", 10),
    ("T1", "T4", 10),
    ("T1", "T5", 10),
    ("T1", "T7", 100),
    ("T2", "T6", 10),
    ("T2", "T7", 10),
    ("T3", "T8", 10),
    ("T4", "T8", 10),
    ("T6", "T9", 50),
    ("T7", "T9", 60),
    ("T8", "T9", 50),
)

#: nominal execution costs (fastest-processor reference costs).
FIGURE1_TASKS = {
    "T1": 40, "T2": 30, "T3": 30, "T4": 40, "T5": 50,
    "T6": 40, "T7": 40, "T8": 40, "T9": 10,
}


def build_figure1_graph() -> TaskGraph:
    """The reconstructed 9-task example graph."""
    g = TaskGraph(name="paper-figure1")
    for task, cost in FIGURE1_TASKS.items():
        g.add_task(task, cost)
    for src, dst, comm in FIGURE1_EDGES:
        g.add_edge(src, dst, comm)
    return g


def build_paper_system() -> HeterogeneousSystem:
    """Figure 1 graph bound to the 4-processor ring with Table 1 costs.

    Links are homogeneous (h' = 1), as the paper's example assumes.
    Processors P1..P4 map to indices 0..3; the ring's links are exactly
    the example's L12, L23, L34, L41.
    """
    return HeterogeneousSystem.from_exec_table(
        build_figure1_graph(), ring(4), TABLE1_EXEC_COSTS
    )


def run_paper_example(options: BSAOptions = None) -> dict:
    """Run the full worked example; returns everything §2 narrates."""
    system = build_paper_system()
    selection = select_pivot(system)
    _, serial_schedule = serial_injection(system)

    scheduler = BSAScheduler(system, options or BSAOptions())
    schedule = scheduler.run()
    validate_schedule(schedule)
    metrics = compute_metrics(schedule)

    return {
        "system": system,
        "selection": selection,
        "serial_schedule_length": serial_schedule.schedule_length(),
        "schedule": schedule,
        "metrics": metrics,
        "stats": scheduler.stats,
        "gantt": render_gantt(schedule, height=30, col_width=7),
    }
