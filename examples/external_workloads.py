#!/usr/bin/env python
"""External workloads: schedule the bundled interchange corpus.

Loads every graph file under ``examples/graphs/`` — a Standard Task
Graph (STG) fork-join, a Graphviz DOT series-parallel graph, and a JSON
workflow trace of Gaussian elimination carrying 8-processor
execution-cost vectors — and schedules each across the full scheduler
registry (BSA, DLS, HEFT, CPOP, ETF) on a ring and a hypercube of 8
processors. This regenerates the EXPERIMENTS.md §7 tables.

The trace file demonstrates the point of the trace format: its
heterogeneity is read from the file and used verbatim
(``HeterogeneousSystem.from_exec_table``), not re-sampled, so anyone
re-running this script schedules the *same* platform binding.

Run:  PYTHONPATH=src python examples/external_workloads.py
"""

import os
import sys

from repro.experiments.external import (
    CORPUS_N_PROCS,
    corpus_paths,
    corpus_table,
)
from repro.graph.interchange import load_workload


def main() -> None:
    corpus_dir = os.path.join(os.path.dirname(__file__), "graphs")
    print(f"corpus: {corpus_dir}")
    for path in corpus_paths(corpus_dir):
        workload = load_workload(path)
        platform = (
            f"{workload.n_procs}-proc cost vectors from the file"
            if workload.n_procs
            else f"heterogeneity sampled at bind time ({CORPUS_N_PROCS} procs)"
        )
        print(f"  {os.path.basename(path):22} [{workload.fmt:5}] "
              f"{workload.graph.n_tasks:3} tasks, "
              f"{workload.graph.n_edges:3} edges — {platform}")
    print()
    print(corpus_table(corpus_dir))


if __name__ == "__main__":
    sys.exit(main())
