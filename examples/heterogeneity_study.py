#!/usr/bin/env python
"""Effect of processor heterogeneity (paper Figure 7) — plus link factors.

Widens the execution-cost factor range from [1,10] (mildly heterogeneous)
to [1,200] (a few fast processors among many slow ones) on the hypercube,
then repeats the sweep with *link* heterogeneity switched on — the paper's
"unless otherwise stated" condition that its figures leave implicit.

Run:  python examples/heterogeneity_study.py
"""

from repro import (
    HeterogeneousSystem,
    hypercube,
    random_graph,
    schedule_bsa,
    schedule_dls,
    validate_schedule,
)
from repro.util.tables import format_table

RANGES = [(1, 10), (1, 50), (1, 100), (1, 200)]


def sweep(graph, link_het):
    rows = []
    for lo, hi in RANGES:
        sls = {"bsa": [], "dls": []}
        for seed in range(3):
            system = HeterogeneousSystem.sample(
                graph, hypercube(16), het_range=(lo, hi), seed=seed,
                link_het_range=(lo, hi) if link_het else None,
            )
            for name, scheduler in [("bsa", schedule_bsa), ("dls", schedule_dls)]:
                sched = scheduler(system)
                validate_schedule(sched)
                sls[name].append(sched.schedule_length())
        bsa = sum(sls["bsa"]) / len(sls["bsa"])
        dls = sum(sls["dls"]) / len(sls["dls"])
        rows.append([f"[{lo}, {hi}]", bsa, dls, bsa / dls])
    return rows


def main() -> None:
    graph = random_graph(100, granularity=1.0, seed=11)
    print(f"program: {graph.n_tasks} tasks, granularity 1.0, "
          "16-processor hypercube, 3 platform seeds per point\n")

    print(format_table(
        ["het range", "BSA SL", "DLS SL", "BSA/DLS"],
        sweep(graph, link_het=False),
        title="Execution heterogeneity only (links homogeneous)",
        ndigits=3,
    ))
    print()
    print(format_table(
        ["het range", "BSA SL", "DLS SL", "BSA/DLS"],
        sweep(graph, link_het=True),
        title="Execution AND link heterogeneity (h' sampled per message-link)",
        ndigits=3,
    ))
    print("\nPaper's Figure 7 shape: both algorithms slow down as the range")
    print("widens; BSA degrades more gracefully than DLS.")


if __name__ == "__main__":
    main()
