#!/usr/bin/env python
"""Post-hoc schedule analysis: why is this schedule as long as it is?

Schedules an FFT butterfly (a communication-heavy workload) with BSA and
DLS, then uses the analysis API to answer the practical questions:

* which chain of tasks and messages actually sets the makespan;
* how the makespan splits into execution, message transit, and queueing;
* what the schedule looks like exported as JSON (for external tooling).

Run:  python examples/schedule_analysis.py
"""

import json

from repro import (
    HeterogeneousSystem,
    chain_breakdown,
    critical_chain,
    fft_butterfly,
    hypercube,
    schedule_bsa,
    schedule_dls,
    schedule_to_json,
    validate_schedule,
)
from repro.workloads import apply_granularity
from repro.util.tables import format_table


def main() -> None:
    graph = fft_butterfly(16)
    apply_granularity(graph, 1.0, seed=7)
    system = HeterogeneousSystem.sample(graph, hypercube(16), het_range=(1, 20), seed=7)
    print(f"workload: {graph.name} — {graph.n_tasks} tasks, {graph.n_edges} messages\n")

    for name, scheduler in [("BSA", schedule_bsa), ("DLS", schedule_dls)]:
        sched = scheduler(system)
        validate_schedule(sched)
        bd = chain_breakdown(sched)
        print(f"--- {name}: schedule length {bd.schedule_length:.1f} ---")
        print(f"critical chain: {bd.n_tasks} tasks, {bd.n_hops} message hops")
        print(f"  execution  : {bd.exec_time:9.1f}  ({bd.exec_fraction:6.1%})")
        print(f"  messages   : {bd.message_wait:9.1f}  ({bd.comm_fraction:6.1%})")
        print(f"  queueing   : {bd.queue_wait:9.1f}")

        chain = critical_chain(sched)
        rows = [
            [str(l.task), f"P{l.proc}", l.start, l.finish,
             l.message_hops, l.message_wait]
            for l in chain[-6:]
        ]
        print(format_table(
            ["task", "proc", "start", "finish", "hops", "msg wait"],
            rows, title="last 6 links of the critical chain",
        ))
        print()

    sched = schedule_bsa(system)
    blob = json.loads(schedule_to_json(sched))
    print("JSON export summary:",
          f"{len(blob['tasks'])} task slots,",
          f"{len(blob['messages'])} messages,",
          f"algorithm={blob['algorithm']!r}, SL={blob['schedule_length']:.1f}")


if __name__ == "__main__":
    main()
