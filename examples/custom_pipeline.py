#!/usr/bin/env python
"""Bring your own graph: scheduling a hand-built media pipeline.

Shows the workflow a downstream user actually follows: describe *your*
application's tasks and data volumes, describe *your* cluster (here: two
fast nodes and six slow nodes on a switchless ring), pick a scheduler,
and inspect where everything landed — including importing a DAG from
networkx.

Run:  python examples/custom_pipeline.py
"""

from repro import (
    HeterogeneousSystem,
    TaskGraph,
    compute_metrics,
    critical_chain,
    render_gantt,
    ring,
    schedule_bsa,
    schedule_etf,
    validate_schedule,
)
from repro.graph.io import from_networkx


def build_pipeline() -> TaskGraph:
    """A small video-analytics pipeline: decode -> split -> analyze -> fuse."""
    g = TaskGraph(name="media-pipeline")
    g.add_task("decode", 40.0)
    g.add_task("audio", 25.0)
    g.add_task("frames", 60.0)
    for i in range(4):
        g.add_task(f"detect{i}", 80.0)
    g.add_task("speech", 70.0)
    g.add_task("fuse", 30.0)
    g.add_task("report", 10.0)

    g.add_edge("decode", "audio", 15.0)
    g.add_edge("decode", "frames", 45.0)
    for i in range(4):
        g.add_edge("frames", f"detect{i}", 25.0)
        g.add_edge(f"detect{i}", "fuse", 10.0)
    g.add_edge("audio", "speech", 20.0)
    g.add_edge("speech", "fuse", 10.0)
    g.add_edge("fuse", "report", 5.0)
    return g


def main() -> None:
    graph = build_pipeline()

    # platform: 8 nodes on a ring; nodes 0 and 1 are ~4x faster
    speed = [1.0, 1.0, 4.0, 4.0, 4.5, 5.0, 4.0, 4.5]
    table = {t: [graph.cost(t) * s for s in speed] for t in graph.tasks()}
    system = HeterogeneousSystem.from_exec_table(graph, ring(8), table)

    print(f"pipeline: {graph.n_tasks} tasks, {graph.n_edges} streams")
    for name, scheduler in [("BSA", schedule_bsa), ("ETF", schedule_etf)]:
        sched = scheduler(system)
        validate_schedule(sched)
        m = compute_metrics(sched)
        placements = {t: f"P{sched.proc_of(t)}" for t in graph.tasks()}
        print(f"\n{name}: SL={m.schedule_length:.1f}, "
              f"comm={m.total_comm_cost:.1f}, speedup={m.speedup:.2f}")
        print("  placement:", ", ".join(f"{t}->{p}" for t, p in placements.items()))
        chain = critical_chain(sched)
        print("  critical chain:", " -> ".join(str(l.task) for l in chain))

    # the same pipeline via networkx interop
    import networkx as nx

    nxg = nx.DiGraph()
    nxg.add_node("prep", cost=10.0)
    nxg.add_node("train", cost=200.0)
    nxg.add_node("eval", cost=50.0)
    nxg.add_edge("prep", "train", comm=30.0)
    nxg.add_edge("train", "eval", comm=5.0)
    imported = from_networkx(nxg, name="ml-mini")
    system2 = HeterogeneousSystem.from_exec_table(
        imported, ring(3), {t: [imported.cost(t)] * 3 for t in imported.tasks()}
    )
    sched2 = schedule_bsa(system2)
    validate_schedule(sched2)
    print(f"\nnetworkx import: {imported.name} scheduled, SL={sched2.schedule_length():.1f}")
    print()
    print(render_gantt(schedule_bsa(system), height=18, col_width=8, show_links=False))


if __name__ == "__main__":
    main()
