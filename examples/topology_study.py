#!/usr/bin/env python
"""Effect of processor connectivity on contention-aware scheduling.

Schedules the same program on six topologies — from a chain (weakest
connectivity) to a clique (strongest) — and reports schedule length, link
utilization, and hop counts. Reproduces the paper's observation that both
algorithms improve with connectivity, with BSA's edge largest on sparse
networks, and extends it with topologies the paper didn't evaluate.

Run:  python examples/topology_study.py
"""

from repro import (
    HeterogeneousSystem,
    binary_tree,
    chain,
    clique,
    compute_metrics,
    hypercube,
    mesh2d,
    random_graph,
    random_topology,
    ring,
    schedule_bsa,
    schedule_dls,
    validate_schedule,
)
from repro.util.tables import format_table


def main() -> None:
    graph = random_graph(80, granularity=1.0, seed=3)
    print(f"program: {graph.n_tasks} tasks, {graph.n_edges} messages, granularity 1.0\n")

    topologies = [
        chain(16),
        binary_tree(16),
        ring(16),
        mesh2d(4, 4),
        random_topology(16, 2, 8, seed=3),
        hypercube(16),
        clique(16),
    ]

    rows = []
    for topo in topologies:
        system = HeterogeneousSystem.sample(graph, topo, het_range=(1, 50), seed=3)
        bsa = schedule_bsa(system)
        dls = schedule_dls(system)
        validate_schedule(bsa)
        validate_schedule(dls)
        m = compute_metrics(bsa)
        rows.append([
            topo.name,
            topo.n_links,
            topo.diameter(),
            bsa.schedule_length(),
            dls.schedule_length(),
            bsa.schedule_length() / dls.schedule_length(),
            m.n_hops,
        ])
    print(format_table(
        ["topology", "links", "diam", "BSA SL", "DLS SL", "BSA/DLS", "BSA hops"],
        rows,
        title="Connectivity sweep — 16 processors, het U[1,50]",
        ndigits=3,
    ))
    print("\nExpect schedule lengths to fall as connectivity rises (more links")
    print("= less contention, shorter routes), per the paper's Figure 3/4 trend.")


if __name__ == "__main__":
    main()
