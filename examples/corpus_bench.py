#!/usr/bin/env python
"""Corpus benchmarking: sweep the bundled mini-corpus with overlays.

Scans ``examples/corpus/`` — a Pegasus DAX Montage-style mosaic, a
WfCommons Epigenomics-style instance, a dummy-bridged Kasahara STG
(three independent chains whose zero-cost dummies were the only
connectors; the epsilon bridge repairs it automatically) and an FFT
workflow trace with 8-processor cost vectors — and runs the manifest
through ``run_cells`` three ways:

1. the files as imported (native CCR);
2. a CCR overlay sweep (0.1 / 1 / 10), making imported structure
   sweepable exactly like the generated suites — the overlay token
   rides inside every cell's app token, so each point has its own
   cache key;
3. a heterogeneity re-sample overlay on the trace file's vectors.

Run:  PYTHONPATH=src python examples/corpus_bench.py
Equivalent CLI:  repro corpus bench examples/corpus --ccr 0.1 1 10
"""

import os
import sys

from repro.corpus.bench import corpus_bench
from repro.corpus.manifest import scan_corpus
from repro.corpus.overlays import Overlay, overlay_grid


def main() -> None:
    corpus_dir = os.path.join(os.path.dirname(__file__), "corpus")
    manifest = scan_corpus(corpus_dir)
    print(f"corpus: {corpus_dir}")
    for entry in manifest.entries:
        extras = []
        if entry.needs_bridge:
            extras.append(f"{entry.components} components -> epsilon bridge")
        if entry.n_procs:
            extras.append(f"{entry.n_procs}-proc cost vectors")
        print(f"  {os.path.basename(entry.path):38} [{entry.fmt:9}] "
              f"{entry.n_tasks:3} tasks, CCR {entry.ccr:6.2f}"
              + (f"  ({'; '.join(extras)})" if extras else ""))
    print()

    say = lambda msg: print(f"  {msg}", file=sys.stderr)  # noqa: E731

    print("=== native costs ===")
    report, _ = corpus_bench(manifest, topologies=("ring",), jobs=2,
                             progress=say)
    print(report)
    print()

    print("=== CCR overlay sweep (0.1 / 1 / 10) ===")
    report, _ = corpus_bench(
        manifest,
        overlays=overlay_grid(ccrs=[0.1, 1.0, 10.0]),
        topologies=("ring",),
        jobs=2,
        progress=say,
    )
    print(report)
    print()

    print("=== heterogeneity re-sample on the trace file ===")
    trace_only = type(manifest)(
        directory=manifest.directory,
        entries=tuple(e for e in manifest.entries if e.n_procs),
    )
    report, _ = corpus_bench(
        trace_only,
        overlays=[Overlay(het_range=(1.0, 10.0), het_seed=s) for s in (0, 1)],
        topologies=("ring", "hypercube"),
        jobs=2,
        progress=say,
    )
    print(report)


if __name__ == "__main__":
    main()
