#!/usr/bin/env python
"""The paper's worked example, end to end (Figure 1, Table 1, Figure 2).

Reproduces §2's narrative: per-processor critical-path lengths, selection
of P2 as the first pivot, the serialization order, the migration process,
and the final schedule — rendered as an ASCII Gantt chart in the style of
Figure 2 (one column per processor and per ring link).

Run:  python examples/paper_walkthrough.py
"""

from repro import classify_tasks, critical_path, schedule_dls
from repro.experiments.paper_example import (
    TABLE1_EXEC_COSTS,
    build_paper_system,
    run_paper_example,
)
from repro.util.tables import format_table


def main() -> None:
    system = build_paper_system()
    graph = system.graph

    print("=" * 72)
    print("Figure 1 task graph (reconstructed — see DESIGN.md for provenance)")
    print("=" * 72)
    rows = [
        [t, graph.cost(t),
         ", ".join(f"{s}({graph.comm_cost(t, s):g})" for s in graph.successors(t))]
        for t in graph.tasks()
    ]
    print(format_table(["task", "cost", "messages to (cost)"], rows))

    print()
    print("Table 1 — actual execution costs")
    print(format_table(
        ["task", "P1", "P2", "P3", "P4"],
        [[t, *TABLE1_EXEC_COSTS[t]] for t in graph.tasks()],
    ))

    cp = critical_path(graph)
    classes = classify_tasks(graph, cp)
    print(f"\nnominal critical path : {' -> '.join(cp)}")
    print("task classes          : " +
          ", ".join(f"{t}:{c.value.upper()}" for t, c in classes.items()))

    result = run_paper_example()
    sel = result["selection"]
    print(f"\nCP length on each processor: "
          f"{', '.join(f'P{i+1}={v:.0f}' for i, v in enumerate(sel.cp_lengths))}")
    print(f"first pivot               : P{sel.pivot + 1} (paper: P2)")
    print(f"serialization order       : {', '.join(sel.serial_order)}")
    print(f"serialized schedule length: {result['serial_schedule_length']:.0f}")

    stats = result["stats"]
    print(f"\nBSA migrations: {stats.n_migrations} "
          f"(VIP-following: {stats.n_vip_migrations}, "
          f"sweeps: {stats.n_sweeps_run})")
    print(f"final schedule length: {result['metrics'].schedule_length:.0f} "
          f"(paper reports 138 in its lenient timing model)")

    dls = schedule_dls(system)
    print(f"DLS on the same system: {dls.schedule_length():.0f}")

    print()
    print(result["gantt"])


if __name__ == "__main__":
    main()
