#!/usr/bin/env python
"""Quickstart: schedule a random task graph on a heterogeneous network.

Builds a 60-task random program, binds it to a 16-processor hypercube with
U[1,50] heterogeneity, runs BSA and the DLS baseline on the *same* platform,
validates both schedules against the full contention model, and prints a
side-by-side summary.

Run:  python examples/quickstart.py
"""

from repro import (
    HeterogeneousSystem,
    compute_metrics,
    hypercube,
    random_graph,
    schedule_bsa,
    schedule_dls,
    validate_schedule,
)


def main() -> None:
    # 1. a parallel program: 60 tasks, comm costs ~ exec costs (granularity 1)
    graph = random_graph(60, granularity=1.0, seed=42)
    print(f"program : {graph.name} — {graph.n_tasks} tasks, {graph.n_edges} messages")

    # 2. a platform: 16 processors in a hypercube, exec factors U[1, 50]
    system = HeterogeneousSystem.sample(
        graph, hypercube(16), het_range=(1, 50), seed=42
    )
    print(f"platform: {system.topology.name} — {system.topology.n_links} links")

    # 3. schedule with BSA (the paper's algorithm) and DLS (the baseline)
    results = {}
    for name, scheduler in [("BSA", schedule_bsa), ("DLS", schedule_dls)]:
        sched = scheduler(system)
        validate_schedule(sched)  # raises if any contention rule is violated
        results[name] = compute_metrics(sched)

    # 4. compare
    print(f"\n{'':14}{'BSA':>12}{'DLS':>12}")
    for label, attr in [
        ("schedule len", "schedule_length"),
        ("speedup", "speedup"),
        ("total comm", "total_comm_cost"),
        ("hops", "n_hops"),
    ]:
        b = getattr(results["BSA"], attr)
        d = getattr(results["DLS"], attr)
        print(f"{label:14}{b:12.1f}{d:12.1f}")
    ratio = results["BSA"].schedule_length / results["DLS"].schedule_length
    print(f"\nBSA/DLS schedule-length ratio: {ratio:.3f} "
          f"({'BSA' if ratio < 1 else 'DLS'} wins)")


if __name__ == "__main__":
    main()
