#!/usr/bin/env python
"""Scheduling a real numerical kernel: Gaussian elimination.

The paper's regular suite models matrix algorithms as task graphs; this
example builds the Gaussian-elimination DAG for a few matrix sizes, sweeps
the paper's three granularities, and shows how BSA and DLS compare as
communication gets more expensive — the regime where link contention
actually matters.

Run:  python examples/gaussian_elimination.py
"""

from repro import (
    HeterogeneousSystem,
    hypercube,
    schedule_bsa,
    schedule_dls,
    validate_schedule,
)
from repro.workloads import apply_granularity, gaussian_elimination
from repro.util.tables import format_table


def main() -> None:
    topology = hypercube(16)
    rows = []
    for n_dim in (8, 12, 16):
        for gran in (0.1, 1.0, 10.0):
            graph = gaussian_elimination(n_dim)
            apply_granularity(graph, gran, seed=1)
            system = HeterogeneousSystem.sample(
                graph, topology, het_range=(1, 50), seed=1
            )
            bsa = schedule_bsa(system)
            dls = schedule_dls(system)
            validate_schedule(bsa)
            validate_schedule(dls)
            rows.append([
                f"{n_dim}x{n_dim}",
                graph.n_tasks,
                gran,
                bsa.schedule_length(),
                dls.schedule_length(),
                bsa.schedule_length() / dls.schedule_length(),
            ])
    print(format_table(
        ["matrix", "tasks", "granularity", "BSA SL", "DLS SL", "BSA/DLS"],
        rows,
        title="Gaussian elimination on a 16-processor hypercube (het U[1,50])",
        ndigits=3,
    ))
    print("\ngranularity 0.1 = messages ~10x task cost (communication-bound);")
    print("granularity 10  = messages ~10% of task cost (computation-bound).")


if __name__ == "__main__":
    main()
