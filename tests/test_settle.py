"""Tests for the order-based settle (time derivation) engine."""

import pytest

from repro import Schedule, settle
from repro.errors import CycleError


class TestSettleBasics:
    def test_serial_chain_on_one_proc(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        for t in ["a", "b", "c", "d"]:
            s.place_task(t, 0, start=0.0, position=len(s.proc_order[0]))
        for e in homogeneous_system.graph.edges():
            s.mark_local(e)
        settle(s)
        # serial: a(10) b(20) c(30) d(10) back to back
        assert s.slots["a"].start == 0
        assert s.slots["b"].start == 10
        assert s.slots["c"].start == 30
        assert s.slots["d"].start == 60
        assert s.schedule_length() == 70

    def test_precedence_without_proc_contention(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        s.place_task("a", 0, start=0.0)
        s.place_task("b", 1, start=0.0)
        s.place_task("c", 2, start=0.0)
        s.place_task("d", 0, start=0.0)
        s.set_route(("a", "b"), [0, 1], hop_starts=[0.0])
        s.set_route(("a", "c"), [0, 2], hop_starts=[0.0])
        s.set_route(("b", "d"), [1, 0], hop_starts=[0.0])
        s.set_route(("c", "d"), [2, 0], hop_starts=[0.0])
        settle(s)
        # a: [0,10); msg a->b (5): [10,15); b: [15,35); msg b->d (25): [35,60)
        assert s.slots["b"].start == 15
        # c: a->c costs 15 -> arrives 25; c runs [25,55); c->d costs 5 -> 60
        assert s.slots["c"].start == 25
        assert s.slots["d"].start == pytest.approx(60)

    def test_link_contention_serializes_hops(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        s.place_task("a", 0, start=0.0)
        s.place_task("b", 1, start=0.0)
        s.place_task("c", 1, start=0.0)
        s.place_task("d", 1, start=0.0)
        # both messages from a cross link (0,1); order: a->b then a->c
        s.set_route(("a", "b"), [0, 1], hop_starts=[0.0])
        s.set_route(("a", "c"), [0, 1], hop_starts=[1.0])
        s.mark_local(("b", "d"))
        s.mark_local(("c", "d"))
        settle(s)
        hop_ab = s.routes[("a", "b")].hops[0]
        hop_ac = s.routes[("a", "c")].hops[0]
        assert hop_ab.start == 10  # after a finishes
        assert hop_ab.finish == 15
        assert hop_ac.start == 15  # link busy until then
        assert hop_ac.finish == 30  # comm cost 15

    def test_settle_is_idempotent(self, small_random_system):
        from repro.core.bsa import BSAOptions, schedule_bsa

        s = schedule_bsa(small_random_system, BSAOptions(n_sweeps=1))
        before = {t: (sl.start, sl.finish) for t, sl in s.slots.items()}
        settle(s)
        after = {t: (sl.start, sl.finish) for t, sl in s.slots.items()}
        assert before == after

    def test_bubble_up_after_removal(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        for t in ["a", "b", "c", "d"]:
            s.place_task(t, 0, start=0.0, position=len(s.proc_order[0]))
        for e in homogeneous_system.graph.edges():
            s.mark_local(e)
        settle(s)
        assert s.slots["d"].start == 60
        # remove c (30 units): b->d precedence remains; d bubbles up
        s.remove_task("c")
        # removing c deactivates its edge constraints (partial schedule)
        settle(s)
        assert s.slots["d"].start == 30  # right after b

    def test_cycle_detection(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        # d placed *before* a on the same processor, but a -> ... -> d in DAG
        s.place_task("d", 0, start=0.0, position=0)
        s.place_task("a", 0, start=10.0, position=1)
        s.place_task("b", 1, start=0.0)
        s.place_task("c", 1, start=0.0)
        s.set_route(("a", "b"), [0, 1], hop_starts=[0.0])
        s.mark_local(("a", "c"))  # wrong but irrelevant here
        s.set_route(("b", "d"), [1, 0], hop_starts=[0.0])
        s.set_route(("c", "d"), [1, 0], hop_starts=[0.0])
        with pytest.raises(CycleError) as err:
            settle(s)
        assert "cycle" in str(err.value)

    def test_partial_schedule_ok(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        s.place_task("a", 0, start=0.0)
        settle(s)  # b, c, d unscheduled: constraints inactive
        assert s.slots["a"].start == 0.0
