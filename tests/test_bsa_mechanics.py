"""White-box tests of BSA's decision rules on crafted instances."""

import pytest

from repro import HeterogeneousSystem, Schedule, TaskGraph, chain, ring, settle
from repro.core.bsa import BSAOptions, BSAScheduler
from repro.schedule.validator import schedule_violations


def _system(graph, topo, table):
    return HeterogeneousSystem.from_exec_table(graph, topo, table)


class TestVIPFollowing:
    def test_equal_ft_vip_migration_fires(self):
        """A task whose FT ties on its VIP's processor follows the VIP."""
        g = TaskGraph(name="uv")
        g.add_task("u", 10.0)
        g.add_task("v", 10.0)
        g.add_edge("u", "v", 0.0)  # free message: FTs tie exactly
        table = {"u": [10.0, 10.0, 10.0], "v": [10.0, 10.0, 10.0]}
        system = _system(g, ring(3), table)

        sched = Schedule(system, "handmade")
        sched.place_task("u", 1, start=0.0)
        sched.place_task("v", 0, start=10.0)
        sched.set_route(("u", "v"), [1, 0], hop_starts=[10.0])
        settle(sched)
        assert sched.slots["v"].finish == pytest.approx(20.0)

        scheduler = BSAScheduler(system, BSAOptions())
        scheduler._try_migrate(sched, "v", pivot=0, neighbors=[1, 2])
        # FT on P1 also 20 (u local) -> no strict improvement, but VIP is
        # there, so the equal-FT rule moves v to P1
        assert sched.proc_of("v") == 1
        assert scheduler.stats.n_vip_migrations == 1
        assert sched.routes[("u", "v")].is_local
        assert schedule_violations(sched) == []

    def test_vip_follow_disabled(self):
        g = TaskGraph(name="uv")
        g.add_task("u", 10.0)
        g.add_task("v", 10.0)
        g.add_edge("u", "v", 0.0)
        table = {"u": [10.0, 10.0, 10.0], "v": [10.0, 10.0, 10.0]}
        system = _system(g, ring(3), table)
        sched = Schedule(system, "handmade")
        sched.place_task("u", 1, start=0.0)
        sched.place_task("v", 0, start=10.0)
        sched.set_route(("u", "v"), [1, 0], hop_starts=[10.0])
        settle(sched)
        scheduler = BSAScheduler(system, BSAOptions(vip_follow=False))
        scheduler._try_migrate(sched, "v", pivot=0, neighbors=[1, 2])
        assert sched.proc_of("v") == 0  # stays put


class TestMigrationChoice:
    def test_picks_min_ft_neighbor(self):
        """Among improving neighbors, the smallest finish time wins."""
        g = TaskGraph(name="single+tail")
        g.add_task("t", 100.0)
        g.add_task("tail", 1.0)
        g.add_edge("t", "tail", 0.5)
        # pivot will be P0 by CP length (ties -> lowest index); P2 is best
        table = {"t": [100.0, 60.0, 40.0], "tail": [1.0, 1.0, 1.0]}
        system = _system(g, ring(3), table)
        sched = BSAScheduler(system, BSAOptions()).run()
        assert sched.proc_of("t") == 2

    def test_trigger_st_gt_drt_skips_tight_tasks(self):
        """With the journal trigger, a task starting at its DRT with its
        VIP co-located is never examined."""
        g = TaskGraph(name="chain2")
        g.add_task("a", 10.0)
        g.add_task("b", 10.0)
        g.add_edge("a", "b", 1.0)
        table = {"a": [10.0, 5.0, 10.0], "b": [10.0, 10.0, 5.0]}
        system = _system(g, ring(3), table)
        scheduler = BSAScheduler(
            system, BSAOptions(migration_trigger="st_gt_drt", n_sweeps=1)
        )
        sched = scheduler.run()
        assert schedule_violations(sched) == []
        # 'b' sits right behind 'a' on the pivot (ST == DRT, VIP local):
        # never examined, so it cannot chase its fast processor P2
        assert sched.proc_of("b") == sched.proc_of("a")

    def test_always_trigger_examines_everything(self):
        g = TaskGraph(name="chain2")
        g.add_task("a", 10.0)
        g.add_task("b", 10.0)
        g.add_edge("a", "b", 1.0)
        table = {"a": [10.0, 5.0, 10.0], "b": [10.0, 10.0, 5.0]}
        system = _system(g, ring(3), table)
        scheduler = BSAScheduler(system, BSAOptions(n_sweeps=1))
        scheduler.run()
        assert scheduler.stats.n_examined >= 2


class TestRejectedMigrations:
    def test_rejection_keeps_schedule_valid(self, small_random_system):
        """Even when commits are rejected (rolled back), the final schedule
        is valid and the stats record the rejections."""
        scheduler = BSAScheduler(small_random_system, BSAOptions())
        sched = scheduler.run()
        assert schedule_violations(sched) == []
        assert scheduler.stats.n_rejected_migrations >= 0  # bookkeeping exists


class TestSweepSemantics:
    def test_best_sweep_kept(self):
        """If later sweeps worsen the makespan, run() returns the best."""
        g = TaskGraph(name="pathological")
        g.add_task("p", 10.0)
        g.add_task("q", 10.0)
        g.add_edge("p", "q", 200.0)  # gigantic message: moving p hurts q
        table = {"p": [10.0, 1.0], "q": [10.0, 10.0]}
        system = _system(g, chain(2), table)
        scheduler = BSAScheduler(system, BSAOptions(n_sweeps=3))
        sched = scheduler.run()
        assert sched.schedule_length() <= scheduler.stats.serial_length + 1e-9
        assert schedule_violations(sched) == []
