"""Randomized invariant suite: the safety net for the hot-path refactor.

~50 seeded random (graph, topology, algorithm) combinations across the
paper's four topology families and all five schedulers. For every combo:

* the strict contention validator accepts the schedule (exclusive
  processors and links, store-and-forward chains, route contiguity);
* the reported makespan equals the latest task finish time, both on the
  live schedule and through the metrics pipeline;
* the serializer round-trips losslessly (export -> import -> export).

Everything is seeded, so a failure reproduces from the printed combo.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.runner import _SCHEDULERS, build_cell_system
from repro.schedule.io import schedule_from_dict, schedule_to_dict
from repro.schedule.metrics import compute_metrics
from repro.schedule.validator import validate_schedule

TOPOLOGIES = ("ring", "hypercube", "clique", "random")
ALGORITHMS = ("bsa", "dls", "heft", "cpop", "etf")


def _combos():
    """52 seeded combos: 2 variants per (topology, algorithm) pair plus a
    dozen heterogeneous-link extras."""
    combos = []
    i = 0
    for topology in TOPOLOGIES:
        for algorithm in ALGORITHMS:
            for variant in range(2):
                size = 18 + 4 * ((i + variant) % 4)
                gran = (0.1, 1.0, 10.0)[(i + variant) % 3]
                combos.append(
                    Cell(
                        suite="random", app="random", size=size,
                        granularity=gran, topology=topology,
                        algorithm=algorithm, n_procs=8,
                        graph_seed=i * 2 + variant,
                        system_seed=100 + i * 2 + variant,
                    )
                )
            i += 1
    # heterogeneous links exercise the PER_MESSAGE_LINK cost path
    for j, (topology, algorithm) in enumerate(
        [(t, a) for t in ("ring", "clique", "random") for a in ("bsa", "dls")]
        + [("hypercube", "bsa"), ("hypercube", "heft"),
           ("ring", "cpop"), ("clique", "etf"),
           ("random", "heft"), ("hypercube", "dls")]
    ):
        combos.append(
            Cell(
                suite="random", app="random", size=20 + 2 * (j % 3),
                granularity=1.0, topology=topology, algorithm=algorithm,
                link_het=True, n_procs=8,
                graph_seed=500 + j, system_seed=600 + j,
            )
        )
    return combos


COMBOS = _combos()


def test_combo_count():
    # the suite's contract: ~50 distinct seeded combos over all
    # topologies and all five schedulers
    assert len(COMBOS) >= 50
    assert {c.topology for c in COMBOS} == set(TOPOLOGIES)
    assert {c.algorithm for c in COMBOS} == set(ALGORITHMS)
    assert len({c.key() for c in COMBOS}) == len(COMBOS)


@pytest.mark.parametrize("cell", COMBOS, ids=lambda c: c.key())
def test_random_schedule_invariants(cell):
    system = build_cell_system(cell)
    sched = _SCHEDULERS[cell.algorithm](system)

    # every task scheduled, schedule valid under the contention model
    assert len(sched.slots) == system.graph.n_tasks
    validate_schedule(sched)

    # makespan == latest task finish, consistently across the APIs
    latest = max(slot.finish for slot in sched.slots.values())
    assert sched.schedule_length() == latest
    assert compute_metrics(sched).schedule_length == latest

    # serialization round-trips losslessly
    blob = schedule_to_dict(sched)
    assert blob["schedule_length"] == latest
    reimported = schedule_from_dict(blob, system)
    validate_schedule(reimported)
    assert schedule_to_dict(reimported) == blob
