"""Randomized invariant suite: the safety net for the hot-path refactor.

~50 seeded random (graph, topology, algorithm) combinations across the
paper's four topology families and all five schedulers, plus a
link-model sweep (duplex modes x bandwidth skews x all schedulers on
all six topology families). For every combo:

* the strict contention validator accepts the schedule (exclusive
  processors and links, store-and-forward chains, route contiguity);
* the reported makespan equals the latest task finish time, both on the
  live schedule and through the metrics pipeline;
* the serializer round-trips losslessly (export -> import -> export).

Everything is seeded, so a failure reproduces from the printed combo.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Cell
from repro.experiments.runner import _SCHEDULERS, build_cell_system
from repro.schedule.io import schedule_from_dict, schedule_to_dict
from repro.schedule.metrics import compute_metrics
from repro.schedule.validator import validate_schedule

TOPOLOGIES = ("ring", "hypercube", "clique", "random")
ALGORITHMS = ("bsa", "dls", "heft", "cpop", "etf")


def _combos():
    """52 seeded combos: 2 variants per (topology, algorithm) pair plus a
    dozen heterogeneous-link extras."""
    combos = []
    i = 0
    for topology in TOPOLOGIES:
        for algorithm in ALGORITHMS:
            for variant in range(2):
                size = 18 + 4 * ((i + variant) % 4)
                gran = (0.1, 1.0, 10.0)[(i + variant) % 3]
                combos.append(
                    Cell(
                        suite="random", app="random", size=size,
                        granularity=gran, topology=topology,
                        algorithm=algorithm, n_procs=8,
                        graph_seed=i * 2 + variant,
                        system_seed=100 + i * 2 + variant,
                    )
                )
            i += 1
    # heterogeneous links exercise the PER_MESSAGE_LINK cost path
    for j, (topology, algorithm) in enumerate(
        [(t, a) for t in ("ring", "clique", "random") for a in ("bsa", "dls")]
        + [("hypercube", "bsa"), ("hypercube", "heft"),
           ("ring", "cpop"), ("clique", "etf"),
           ("random", "heft"), ("hypercube", "dls")]
    ):
        combos.append(
            Cell(
                suite="random", app="random", size=20 + 2 * (j % 3),
                granularity=1.0, topology=topology, algorithm=algorithm,
                link_het=True, n_procs=8,
                graph_seed=500 + j, system_seed=600 + j,
            )
        )
    return combos


def _link_model_combos():
    """Duplex modes and bandwidth skews across all five schedulers and
    all six topology families (incl. torus and fat tree)."""
    combos = []
    link_models = [("full", 1.0), ("half", 6.0), ("full", 6.0)]
    topologies = TOPOLOGIES + ("torus", "fattree")
    i = 0
    for algorithm in ALGORITHMS:
        for topology in topologies:
            duplex, skew = link_models[i % len(link_models)]
            combos.append(
                Cell(
                    suite="random", app="random", size=18 + 3 * (i % 4),
                    granularity=(0.1, 1.0, 10.0)[i % 3], topology=topology,
                    algorithm=algorithm, n_procs=8,
                    graph_seed=900 + i, system_seed=1000 + i,
                    duplex=duplex, bandwidth_skew=skew,
                )
            )
            i += 1
    # a couple of combos stacking every axis: heterogeneous h' factors on
    # top of skewed-bandwidth full-duplex links
    for j, (topology, algorithm) in enumerate(
        [("torus", "bsa"), ("fattree", "dls"), ("random", "heft")]
    ):
        combos.append(
            Cell(
                suite="random", app="random", size=20,
                granularity=1.0, topology=topology, algorithm=algorithm,
                link_het=True, n_procs=8,
                graph_seed=1100 + j, system_seed=1200 + j,
                duplex="full", bandwidth_skew=4.0,
            )
        )
    return combos


COMBOS = _combos()
LINK_MODEL_COMBOS = _link_model_combos()


def test_combo_count():
    # the suite's contract: ~50 distinct seeded combos over all
    # topologies and all five schedulers
    assert len(COMBOS) >= 50
    assert {c.topology for c in COMBOS} == set(TOPOLOGIES)
    assert {c.algorithm for c in COMBOS} == set(ALGORITHMS)
    assert len({c.key() for c in COMBOS}) == len(COMBOS)


def test_link_model_combo_count():
    # the sweep's contract: every scheduler meets every topology family
    # (incl. torus/fattree) under a non-default link model
    assert len(LINK_MODEL_COMBOS) >= 30
    assert {c.algorithm for c in LINK_MODEL_COMBOS} == set(ALGORITHMS)
    assert {c.topology for c in LINK_MODEL_COMBOS} == set(
        TOPOLOGIES + ("torus", "fattree")
    )
    assert {(c.duplex, c.bandwidth_skew) for c in LINK_MODEL_COMBOS} == {
        ("full", 1.0), ("half", 6.0), ("full", 6.0), ("full", 4.0)
    }
    assert len({c.key() for c in LINK_MODEL_COMBOS}) == len(LINK_MODEL_COMBOS)


@pytest.mark.parametrize("cell", COMBOS + LINK_MODEL_COMBOS, ids=lambda c: c.key())
def test_random_schedule_invariants(cell):
    system = build_cell_system(cell)
    sched = _SCHEDULERS[cell.algorithm](system)

    # every task scheduled, schedule valid under the contention model
    assert len(sched.slots) == system.graph.n_tasks
    validate_schedule(sched)

    # makespan == latest task finish, consistently across the APIs
    latest = max(slot.finish for slot in sched.slots.values())
    assert sched.schedule_length() == latest
    assert compute_metrics(sched).schedule_length == latest

    # serialization round-trips losslessly
    blob = schedule_to_dict(sched)
    assert blob["schedule_length"] == latest
    reimported = schedule_from_dict(blob, system)
    validate_schedule(reimported)
    assert schedule_to_dict(reimported) == blob
