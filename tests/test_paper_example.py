"""End-to-end checks of the paper's worked example (§2.2, §2.4, Table 1).

These tests pin every number our reconstruction reproduces exactly and
document (in assertions) the divergences caused by the paper's own
internal inconsistencies — see EXPERIMENTS.md for the arithmetic.
"""

import pytest

from repro import (
    b_levels,
    cp_length,
    critical_path,
    schedule_bsa,
    t_levels,
    validate_schedule,
)
from repro.core.bsa import BSAOptions
from repro.experiments.paper_example import (
    FIGURE1_EDGES,
    FIGURE1_TASKS,
    TABLE1_EXEC_COSTS,
    build_figure1_graph,
    build_paper_system,
    run_paper_example,
)


class TestFigure1Reconstruction:
    def test_structure(self, paper_graph):
        assert paper_graph.n_tasks == 9
        assert paper_graph.n_edges == 12
        # comm-cost multiset from the figure: {100, 60, 50, 50, 20, 10 x 7}
        costs = sorted(
            paper_graph.comm_cost(u, v) for u, v in paper_graph.edges()
        )
        assert costs == [10, 10, 10, 10, 10, 10, 10, 20, 50, 50, 60, 100]

    def test_nominal_critical_path(self, paper_graph):
        assert critical_path(paper_graph) == ["T1", "T7", "T9"]
        assert cp_length(paper_graph) == 250

    def test_narrative_level_constraints(self, paper_graph):
        bl, tl = b_levels(paper_graph), t_levels(paper_graph)
        # "both T6 and T8 have the same value of b-level"
        assert bl["T6"] == bl["T8"]
        # T4 serialized before T3 => larger b-level
        assert bl["T4"] > bl["T3"]

    def test_t5_is_sink(self, paper_graph):
        assert paper_graph.successors("T5") == []


class TestTable1:
    def test_all_costs_recorded(self):
        assert len(TABLE1_EXEC_COSTS) == 9
        assert all(len(row) == 4 for row in TABLE1_EXEC_COSTS.values())

    def test_cp_lengths_per_processor(self, paper_system):
        lengths = [
            cp_length(paper_system.graph, paper_system.exec_cost_fn(p))
            for p in range(4)
        ]
        # paper publishes (240, 226, 235, 260); 240 and 226 match exactly.
        # 235/260 are unreachable under any assignment of Table 1 costs —
        # our reconstruction yields 228/246 (see EXPERIMENTS.md).
        assert [round(x) for x in lengths] == [240, 226, 228, 246]

    def test_pivot_is_p2_as_published(self, paper_system):
        from repro import select_pivot

        assert select_pivot(paper_system).pivot == 1


class TestWorkedExample:
    def test_full_run(self):
        result = run_paper_example()
        assert result["selection"].pivot == 1
        # serialized program on P2 = sum of column P2 of Table 1 = 238
        assert result["serial_schedule_length"] == pytest.approx(238.0)
        sl = result["metrics"].schedule_length
        # BSA must improve substantially on serialization (paper reports 138
        # in its lenient model; our strict contention model gives ~165-190
        # depending on options — assert the qualitative claim).
        assert sl < 238.0
        assert sl <= 200.0
        validate_schedule(result["schedule"])

    def test_gantt_renders(self):
        result = run_paper_example()
        gantt = result["gantt"]
        assert "P0" in gantt and "L0-1" in gantt
        assert "schedule length" in gantt

    def test_homogeneous_links(self, paper_system):
        for (u, v, _) in FIGURE1_EDGES:
            for link in paper_system.topology.links:
                assert paper_system.link_factor((u, v), link) == 1.0

    def test_bsa_beats_dls_on_example(self, paper_system):
        from repro import schedule_dls

        bsa = schedule_bsa(paper_system)
        dls = schedule_dls(paper_system)
        assert bsa.schedule_length() < dls.schedule_length()


class TestNominalCosts:
    def test_task_costs(self, paper_graph):
        for task, cost in FIGURE1_TASKS.items():
            assert paper_graph.cost(task) == cost

    def test_mean_exec_cost(self, paper_graph):
        assert paper_graph.mean_exec_cost() == pytest.approx(320 / 9)
