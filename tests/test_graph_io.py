"""Tests for graph serialization and interop."""

import pytest

from repro import TaskGraph
from repro.errors import GraphError
from repro.graph.io import (
    from_networkx,
    graph_from_dict,
    graph_from_json,
    graph_to_dict,
    graph_to_json,
    to_dot,
    to_networkx,
)


class TestDictRoundTrip:
    def test_round_trip_str_ids(self, diamond):
        back = graph_from_dict(graph_to_dict(diamond))
        assert back.tasks() == diamond.tasks()
        assert back.edges() == diamond.edges()
        assert back.cost("b") == diamond.cost("b")
        assert back.comm_cost("a", "c") == diamond.comm_cost("a", "c")

    def test_round_trip_int_ids(self):
        g = TaskGraph(name="ints")
        g.add_task(1, 5.0)
        g.add_task(2, 6.0)
        g.add_edge(1, 2, 3.0)
        back = graph_from_dict(graph_to_dict(g))
        assert back.tasks() == [1, 2]
        assert back.comm_cost(1, 2) == 3.0

    def test_json_round_trip(self, chain3):
        back = graph_from_json(graph_to_json(chain3))
        assert back.edges() == chain3.edges()

    def test_bad_version_rejected(self, chain3):
        data = graph_to_dict(chain3)
        data["version"] = 999
        with pytest.raises(GraphError):
            graph_from_dict(data)


class TestNetworkxInterop:
    def test_round_trip(self, diamond):
        nxg = to_networkx(diamond)
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 4
        back = from_networkx(nxg)
        assert set(back.tasks()) == set(diamond.tasks())
        assert back.comm_cost("b", "d") == 25.0

    def test_from_networkx_weight_fallback(self):
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_node("a", weight=3.0)
        nxg.add_node("b", weight=4.0)
        nxg.add_edge("a", "b", weight=2.0)
        g = from_networkx(nxg)
        assert g.cost("a") == 3.0
        assert g.comm_cost("a", "b") == 2.0

    def test_from_networkx_missing_cost_rejected(self):
        import networkx as nx

        nxg = nx.DiGraph()
        nxg.add_node("a")
        with pytest.raises(GraphError):
            from_networkx(nxg)


class TestDot:
    def test_dot_contains_nodes_and_edges(self, chain3):
        dot = to_dot(chain3)
        assert dot.startswith("digraph")
        assert '"x" -> "y"' in dot
        assert dot.count("->") == chain3.n_edges
