"""Tests for structural graph validation."""

import pytest

from repro import TaskGraph, validate_graph
from repro.errors import CycleError, DisconnectedGraphError, GraphError
from repro.graph.validation import check_connected, check_dag


class TestValidation:
    def test_valid_graph_passes(self, diamond):
        validate_graph(diamond)

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            validate_graph(TaskGraph())

    def test_single_task_ok(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        validate_graph(g)

    def test_disconnected_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_task("c", 1.0)
        g.add_edge("a", "b", 1.0)
        with pytest.raises(DisconnectedGraphError):
            check_connected(g)
        with pytest.raises(DisconnectedGraphError):
            validate_graph(g)
        validate_graph(g, require_connected=False)

    def test_cycle_rejected(self):
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_edge("a", "b", 1.0)
        g._succ["b"]["a"] = 1.0  # forge a cycle
        g._pred["a"]["b"] = 1.0
        with pytest.raises(CycleError):
            check_dag(g)

    def test_connected_via_reverse_edges(self):
        # weakly connected even though not strongly connected
        g = TaskGraph()
        g.add_task("a", 1.0)
        g.add_task("b", 1.0)
        g.add_task("c", 1.0)
        g.add_edge("a", "b", 1.0)
        g.add_edge("c", "b", 1.0)
        check_connected(g)
