"""The corpus subsystem: overlays, manifests, and the bench harness.

The two load-bearing contracts:

* **cache-key visibility** — every overlay parameter lands in the cell
  app token (and so in the ``ResultCache`` key): changing any parameter
  changes the key, identical overlays hit the cache across ``--jobs 2``
  pool runs;
* **determinism** — the ``repro corpus bench`` aggregate report is
  byte-identical across all four ``REPRO_HOTPATH`` engine modes.
"""

import dataclasses
import json
import os

import pytest

from repro.corpus.bench import aggregate_report, corpus_bench, run_corpus
from repro.corpus.manifest import (
    Manifest,
    ManifestEntry,
    manifest_cells,
    scan_corpus,
)
from repro.corpus.overlays import Overlay, apply_overlay, overlay_grid, parse_overlay
from repro.errors import ConfigurationError, GraphError
from repro.experiments.cache import ResultCache
from repro.graph.interchange import load_workload
from repro.util.intervals import hotpath_mode, set_hotpath_mode
from repro.util.tolerance import TOL
from repro.workloads.external import app_token, external_cell, parse_token, resolve_external

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS_DIR = os.path.join(REPO_ROOT, "examples", "corpus")
TRACE_PATH = os.path.join(CORPUS_DIR, "fft8.trace.json")
BRIDGED_PATH = os.path.join(CORPUS_DIR, "bridged_chains.stg")

MODES = ("legacy", "fast", "incremental", "array")


@pytest.fixture
def restore_mode():
    initial = hotpath_mode()
    yield
    set_hotpath_mode(initial)


class TestOverlayTokens:
    @pytest.mark.parametrize(
        "overlay",
        [
            Overlay(),
            Overlay(bridge="epsilon"),
            Overlay(ccr=0.5),
            Overlay(granularity=10.0),
            Overlay(het_range=(1.0, 50.0), het_seed=7),
            Overlay(bridge="epsilon", ccr=1e6, granularity=0.001,
                    het_range=(2.0, 2.0), het_seed=12),
        ],
    )
    def test_token_round_trip(self, overlay):
        assert parse_overlay(overlay.token()) == overlay

    def test_identity_token_empty(self):
        assert Overlay().token() == ""
        assert Overlay().is_identity

    @pytest.mark.parametrize("text", ["nope", "ccrx", "het1-10s3", "gran"])
    def test_malformed_tokens_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_overlay(text)

    @pytest.mark.parametrize(
        "text",
        [
            "ccr2,ccr3",                      # conflicting values
            "ccr2,ccr2",                      # even agreeing repeats
            "bridge,bridge",
            "gran0.1,gran10",
            "het1:10@0,het1:50@0",
            "bridge,ccr1,bridge",             # duplicate after other parts
        ],
    )
    def test_duplicate_parts_rejected(self, text):
        """Repeated parts must error, not silently last-win: 'ccr2,ccr3'
        would otherwise run (and cache) a ccr=3 experiment under a
        ccr=2-and-3 name."""
        with pytest.raises(ConfigurationError, match="duplicate overlay"):
            parse_overlay(text)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bridge="glue"),
            dict(ccr=0.0),
            dict(ccr=-1.0),
            dict(granularity=0.0),
            dict(het_range=(0.0, 1.0)),
            dict(het_range=(5.0, 1.0)),
            dict(het_seed=-1),
        ],
    )
    def test_invalid_overlays_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            Overlay(**kwargs)

    def test_overlay_grid_product(self):
        grid = overlay_grid(ccrs=[0.1, 1.0], het_ranges=[(1, 10)], het_seed=3)
        assert [o.token() for o in grid] == [
            "ccr0.1,het1.0:10.0@3", "ccr1.0,het1.0:10.0@3",
        ]
        assert overlay_grid() == [Overlay()]

    def test_tokens_distinguish_sub_percent_g_differences(self):
        """Tokens render floats at full repr precision: overlays closer
        than %g's 6 significant digits must still get distinct tokens
        (and so distinct cache keys)."""
        a, b = Overlay(ccr=1.0000001), Overlay(ccr=1.0000002)
        assert a != b
        assert a.token() != b.token()
        assert parse_overlay(a.token()) == a
        assert parse_overlay(b.token()) == b


class TestApplyOverlay:
    def test_identity_returns_same_object(self):
        wl = load_workload(TRACE_PATH)
        assert apply_overlay(wl, Overlay()) is wl
        # bridge-only overlays transform nothing at apply time either
        assert apply_overlay(wl, Overlay(bridge="epsilon")) is wl

    def test_ccr_rescales_exactly(self):
        wl = load_workload(TRACE_PATH)
        out = apply_overlay(wl, Overlay(ccr=0.25))
        g = out.graph
        assert abs(g.total_comm_cost() / g.total_exec_cost() - 0.25) < TOL
        # structure and exec costs untouched
        assert g.tasks() == wl.graph.tasks()
        assert all(g.cost(t) == wl.graph.cost(t) for t in g.tasks())
        assert out.exec_costs == wl.exec_costs

    def test_granularity_multiplies(self):
        wl = load_workload(TRACE_PATH)
        out = apply_overlay(wl, Overlay(granularity=3.0))
        for u, v in wl.graph.edges():
            assert out.graph.comm_cost(u, v) == wl.graph.comm_cost(u, v) * 3.0

    def test_ccr_then_granularity_compose(self):
        wl = load_workload(TRACE_PATH)
        out = apply_overlay(wl, Overlay(ccr=1.0, granularity=2.0))
        g = out.graph
        assert abs(g.total_comm_cost() / g.total_exec_cost() - 2.0) < TOL

    def test_ccr_needs_communication(self):
        wl = load_workload(TRACE_PATH)
        g = wl.graph.copy()
        for u, v in g.edges():
            g.set_edge_cost(u, v, 0.0)
        with pytest.raises(GraphError, match="no communication"):
            apply_overlay(dataclasses.replace(wl, graph=g), Overlay(ccr=1.0))

    def test_het_resample_deterministic_and_normalized(self):
        wl = load_workload(TRACE_PATH)
        a = apply_overlay(wl, Overlay(het_range=(1.0, 10.0), het_seed=4))
        b = apply_overlay(wl, Overlay(het_range=(1.0, 10.0), het_seed=4))
        c = apply_overlay(wl, Overlay(het_range=(1.0, 10.0), het_seed=5))
        assert a.exec_costs == b.exec_costs
        assert a.exec_costs != c.exec_costs
        assert a.exec_costs != wl.exec_costs
        for t, row in a.exec_costs.items():
            nominal = wl.graph.cost(t)
            # fastest processor normalized to lo * nominal, like sample()
            assert min(row) == nominal * 1.0
            assert all(nominal * 1.0 <= x <= nominal * 10.0 for x in row)
            assert len(row) == 8

    def test_het_resample_rejects_scalar_workloads(self):
        wl = load_workload(BRIDGED_PATH, bridge="epsilon")
        with pytest.raises(GraphError, match="het_lo/het_hi"):
            apply_overlay(wl, Overlay(het_range=(1.0, 10.0)))


class TestTokensAndCells:
    def test_app_token_carries_overlay(self):
        token = app_token(TRACE_PATH, overlay=Overlay(ccr=0.5))
        path, digest, overlay = parse_token(token)
        assert path == TRACE_PATH
        assert len(digest) == 12
        assert overlay == Overlay(ccr=0.5)
        # identity overlay leaves the token bare (back-compatible keys)
        assert "!" not in app_token(TRACE_PATH, overlay=Overlay())

    def test_every_overlay_parameter_changes_the_cache_key(self):
        def key(overlay):
            return external_cell(
                TRACE_PATH, algorithm="heft", topology="ring", overlay=overlay
            ).key()

        base = Overlay(ccr=1.0, granularity=2.0, het_range=(1.0, 10.0), het_seed=0)
        variants = [
            Overlay(),
            base,
            dataclasses.replace(base, ccr=1.5),
            dataclasses.replace(base, granularity=4.0),
            dataclasses.replace(base, het_range=(1.0, 20.0)),
            dataclasses.replace(base, het_seed=1),
        ]
        keys = [key(o) for o in variants]
        assert len(set(keys)) == len(keys), keys
        # and identical overlays alias the same key
        assert key(base) == key(dataclasses.replace(base))
        assert key(None) == key(Overlay())

    def test_resolve_external_applies_overlay(self):
        token = app_token(TRACE_PATH, overlay=Overlay(ccr=0.5))
        wl = resolve_external(token)
        g = wl.graph
        assert abs(g.total_comm_cost() / g.total_exec_cost() - 0.5) < TOL
        # the plain token still resolves to the untouched file
        plain = resolve_external(app_token(TRACE_PATH))
        assert plain.graph.total_comm_cost() != g.total_comm_cost()

    def test_resolve_external_bridges_from_token(self):
        token = app_token(BRIDGED_PATH, overlay=Overlay(bridge="epsilon"))
        wl = resolve_external(token)
        from repro.graph.validation import check_connected

        check_connected(wl.graph)  # must not raise

    def test_external_cell_rejects_het_overlay_on_scalar_file(self):
        with pytest.raises(ConfigurationError, match="het_lo/het_hi"):
            external_cell(
                BRIDGED_PATH, algorithm="bsa", topology="ring",
                overlay=Overlay(bridge="epsilon", het_range=(1.0, 10.0)),
            )


class TestManifest:
    def test_scan_bundled_corpus(self):
        manifest = scan_corpus(CORPUS_DIR)
        by_name = {os.path.basename(e.path): e for e in manifest.entries}
        assert set(by_name) == {
            "bridged_chains.stg", "epigenomics_sample.wfcommons.json",
            "fft8.trace.json", "montage_sample.dax",
        }
        stg = by_name["bridged_chains.stg"]
        assert stg.components == 3 and stg.needs_bridge
        assert stg.fmt == "stg"
        trace = by_name["fft8.trace.json"]
        assert trace.n_procs == 8 and trace.components == 1
        dax = by_name["montage_sample.dax"]
        assert dax.fmt == "dax" and dax.n_tasks == 16
        for entry in manifest.entries:
            assert len(entry.content_hash) == 64
            assert entry.ccr > 0

    def test_manifest_json_round_trip(self, tmp_path):
        manifest = scan_corpus(CORPUS_DIR)
        path = str(tmp_path / "manifest.json")
        manifest.save(path)
        assert Manifest.load(path) == manifest
        doc = json.loads(manifest.to_json())
        assert doc["format"] == "repro-corpus-manifest"

    def test_manifest_rejects_foreign_documents(self):
        with pytest.raises(ConfigurationError, match="manifest"):
            Manifest.from_json("{}")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            Manifest.from_json("{")
        with pytest.raises(ConfigurationError, match="version"):
            Manifest.from_dict(
                {"format": "repro-corpus-manifest", "version": 99}
            )

    def test_scan_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError):
            scan_corpus(str(tmp_path))

    def test_manifest_cells_expansion(self):
        manifest = scan_corpus(CORPUS_DIR)
        cells = manifest_cells(
            manifest, overlays=overlay_grid(ccrs=[0.5, 1.0]),
            topologies=("ring",), algorithms=("bsa", "dls"),
        )
        # 4 files x 2 overlays x 1 topology x 2 algorithms
        assert len(cells) == 16
        # disconnected files were auto-bridged
        for cell in cells:
            path, _, overlay = parse_token(cell.app)
            if os.path.basename(path) == "bridged_chains.stg":
                assert overlay.bridge == "epsilon"
            else:
                assert overlay.bridge == "none"
        # the trace file pinned its own processor count
        procs = {
            os.path.basename(parse_token(c.app)[0]): c.n_procs for c in cells
        }
        assert procs["fft8.trace.json"] == 8

    def test_manifest_cells_route_het_overlay_for_scalar_files(self):
        manifest = scan_corpus(CORPUS_DIR)
        cells = manifest_cells(
            manifest,
            overlays=[Overlay(het_range=(1.0, 10.0), het_seed=5)],
            topologies=("ring",), algorithms=("bsa",),
        )
        for cell in cells:
            path, _, overlay = parse_token(cell.app)
            if os.path.basename(path) == "fft8.trace.json":
                # vector file: overlay carries the re-sample
                assert overlay.het_range == (1.0, 10.0)
                assert overlay.het_seed == 5
            else:
                # scalar file: routed through the (cache-visible) cell axes
                assert overlay.het_range is None
                assert (cell.het_lo, cell.het_hi) == (1.0, 10.0)
                assert cell.system_seed == 5


class TestBench:
    def test_cache_hits_across_jobs2_runs(self, tmp_path, monkeypatch):
        """Satellite: identical overlays hit the cache across --jobs 2
        workers — the second pool run computes nothing."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        overlays = overlay_grid(ccrs=[0.5], granularities=[2.0])
        cache = ResultCache(str(tmp_path / "cache" / "results"))
        _, _, first = run_corpus(
            CORPUS_DIR, overlays=overlays, topologies=("ring",),
            algorithms=("heft", "cpop"), jobs=2, use_cache=True,
        )
        assert first.computed == first.unique and first.cache_hits == 0
        _, _, second = run_corpus(
            CORPUS_DIR, overlays=overlays, topologies=("ring",),
            algorithms=("heft", "cpop"), jobs=2, use_cache=True,
        )
        assert second.computed == 0
        assert second.cache_hits == second.unique == first.unique

    def test_report_byte_identical_across_modes_and_jobs(self, restore_mode):
        """Acceptance: the aggregate report is byte-identical across all
        four REPRO_HOTPATH engine modes and independent of --jobs."""
        reports = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            report, sweep = corpus_bench(
                CORPUS_DIR, topologies=("ring",), jobs=1, use_cache=False,
            )
            assert not sweep.failures
            reports[mode] = report
        assert reports["legacy"] == reports["fast"] == reports["incremental"]
        set_hotpath_mode("incremental")
        parallel, _ = corpus_bench(
            CORPUS_DIR, topologies=("ring",), jobs=2, use_cache=False,
        )
        assert parallel == reports["incremental"]

    def test_report_content(self):
        report, sweep = corpus_bench(
            CORPUS_DIR, topologies=("ring",), jobs=1, use_cache=False,
        )
        assert "scheduler ordering" in report
        assert "per-scenario normalized SL" in report
        for algo in ("bsa", "dls", "heft", "cpop", "etf"):
            assert algo in report
        assert "bridged_chains.stg!bridge" in report
        # the deterministic artifact never contains wall-clock numbers
        assert "cells/s" not in report

    def test_report_labels_show_routed_het_axes(self):
        """A het overlay routed through the cell axes (scalar files)
        must stay visible in the per-scenario labels — two heterogeneity
        scenarios may not render identically."""
        manifest = scan_corpus(CORPUS_DIR)
        scalar_only = Manifest(
            directory=manifest.directory,
            entries=tuple(
                e for e in manifest.entries
                if os.path.basename(e.path) == "epigenomics_sample.wfcommons.json"
            ),
        )
        cells, results, _ = run_corpus(
            scalar_only,
            overlays=[Overlay(het_range=(1.0, 5.0)),
                      Overlay(het_range=(1.0, 10.0))],
            topologies=("ring",), algorithms=("heft",), use_cache=False,
        )
        report = aggregate_report(cells, results, algorithms=("heft",))
        assert "~het1:5@0" in report
        assert "~het1:10@0" in report
        # the default binding (U[1,50], seed 0) stays unsuffixed
        plain_cells, plain_results, _ = run_corpus(
            scalar_only, topologies=("ring",), algorithms=("heft",),
            use_cache=False,
        )
        plain = aggregate_report(plain_cells, plain_results, ("heft",))
        assert "~het" not in plain

    def test_objectives_report_byte_identical_across_modes_and_jobs(
        self, restore_mode
    ):
        """PR 9: the per-criterion mean table rides the same determinism
        contract as the rest of the report — byte-identical across the
        four engine modes and independent of --jobs."""
        reports = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            report, sweep = corpus_bench(
                CORPUS_DIR, topologies=("ring",), algorithms=("bsa", "heft"),
                jobs=1, use_cache=False, objectives="energy,reliability",
            )
            assert not sweep.failures
            reports[mode] = report
        assert (reports["legacy"] == reports["fast"]
                == reports["incremental"] == reports["array"])
        assert "objective means over" in reports["legacy"]
        assert "mean energy" in reports["legacy"]
        assert "mean reliability" in reports["legacy"]
        set_hotpath_mode("incremental")
        parallel, _ = corpus_bench(
            CORPUS_DIR, topologies=("ring",), algorithms=("bsa", "heft"),
            jobs=2, use_cache=False, objectives="energy,reliability",
        )
        assert parallel == reports["incremental"]

    def test_objectives_axis_changes_cache_key(self):
        """The objectives token is cache-key-visible (canonicalized), so
        a scored sweep can never alias a makespan-only sweep."""
        manifest = scan_corpus(CORPUS_DIR)
        plain = manifest_cells(manifest, topologies=("ring",),
                               algorithms=("heft",))
        scored = manifest_cells(manifest, topologies=("ring",),
                                algorithms=("heft",),
                                objectives="reliability,energy")
        respelled = manifest_cells(manifest, topologies=("ring",),
                                   algorithms=("heft",),
                                   objectives="energy,reliability")
        for p, s, r in zip(plain, scored, respelled):
            assert p.key() != s.key()
            assert s.key() == r.key()
            assert s.objectives == "energy,reliability"

    def test_default_report_has_no_objectives_table(self):
        report, _ = corpus_bench(
            CORPUS_DIR, topologies=("ring",), algorithms=("heft",),
            jobs=1, use_cache=False,
        )
        assert "objective means" not in report

    def test_aggregate_report_notes_missing_cells(self):
        cells, results, _ = run_corpus(
            CORPUS_DIR, topologies=("ring",), use_cache=False,
            algorithms=("heft", "etf"),
        )
        # drop one result: its scenario must be reported as dropped
        dropped_key = cells[0].key()
        partial = {k: v for k, v in results.items() if k != dropped_key}
        report = aggregate_report(cells, partial, algorithms=("heft", "etf"))
        assert "dropped 1 scenario(s)" in report


class TestCorpusCli:
    def test_scan_ls_bench(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.cli import main

        assert main(["corpus", "ls", CORPUS_DIR]) == 0
        out = capsys.readouterr().out
        assert "bridged_chains.stg" in out and "wfcommons" in out

        manifest_path = str(tmp_path / "m.json")
        assert main(["corpus", "scan", CORPUS_DIR, "--out", manifest_path]) == 0
        assert Manifest.load(manifest_path).entries
        capsys.readouterr()

        report_path = str(tmp_path / "report.txt")
        assert main([
            "corpus", "bench", CORPUS_DIR, "-t", "ring", "-a", "heft", "dls",
            "--jobs", "2", "--ccr", "0.5", "--out", report_path,
        ]) == 0
        captured = capsys.readouterr()
        assert "scheduler ordering" in captured.out
        with open(report_path) as fh:
            assert "scheduler ordering" in fh.read()
        # telemetry goes to stderr, never into the deterministic artifact
        assert "sweep:" in captured.err

        assert main([
            "corpus", "report", CORPUS_DIR, "-t", "ring", "-a", "heft", "dls",
            "--ccr", "0.5",
        ]) == 0
        captured = capsys.readouterr()
        assert "scheduler ordering" in captured.out
        assert "sweep:" not in captured.err

    def test_bench_objectives_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.cli import main

        assert main([
            "corpus", "bench", CORPUS_DIR, "-t", "ring", "-a", "bsa", "heft",
            "-O", "energy", "reliability",
        ]) == 0
        out = capsys.readouterr().out
        assert "objective means over" in out
        assert "mean energy" in out and "mean reliability" in out

    def test_bench_missing_corpus(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["corpus", "bench", str(tmp_path)]) == 2
        assert "repro corpus:" in capsys.readouterr().err
