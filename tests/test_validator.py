"""Tests for the strict schedule validator."""

import pytest

from repro import Schedule, settle, validate_schedule
from repro.errors import InvalidScheduleError
from repro.schedule.validator import schedule_violations


@pytest.fixture
def valid_schedule(homogeneous_system):
    """a on P0; b, c on P1; d on P0 — all messages properly routed."""
    s = Schedule(homogeneous_system, algorithm="handmade")
    s.place_task("a", 0, start=0.0)
    s.place_task("b", 1, start=0.0)
    s.place_task("c", 1, start=0.0)
    s.place_task("d", 0, start=0.0)
    s.set_route(("a", "b"), [0, 1], hop_starts=[0.0])
    s.set_route(("a", "c"), [0, 1], hop_starts=[1.0])
    s.set_route(("b", "d"), [1, 0], hop_starts=[2.0])
    s.set_route(("c", "d"), [1, 0], hop_starts=[3.0])
    settle(s)
    return s


class TestValidSchedules:
    def test_handmade_valid(self, valid_schedule):
        assert schedule_violations(valid_schedule) == []
        validate_schedule(valid_schedule)

    def test_serial_valid(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        for t in ["a", "b", "c", "d"]:
            s.place_task(t, 2, start=0.0, position=len(s.proc_order[2]))
        for e in homogeneous_system.graph.edges():
            s.mark_local(e)
        settle(s)
        validate_schedule(s)


class TestViolationDetection:
    def test_missing_task(self, valid_schedule):
        valid_schedule.remove_task("d")
        v = schedule_violations(valid_schedule)
        assert any("not scheduled" in x for x in v)

    def test_wrong_duration(self, valid_schedule):
        valid_schedule.slots["a"].finish += 5.0
        v = schedule_violations(valid_schedule)
        assert any("duration" in x for x in v)

    def test_processor_overlap(self, valid_schedule):
        valid_schedule.slots["b"].start = valid_schedule.slots["c"].start
        valid_schedule.slots["b"].finish = valid_schedule.slots["b"].start + 20.0
        v = schedule_violations(valid_schedule)
        assert any("overlap" in x for x in v)

    def test_link_overlap(self, valid_schedule):
        hop_ab = valid_schedule.routes[("a", "b")].hops[0]
        hop_ac = valid_schedule.routes[("a", "c")].hops[0]
        hop_ac.start = hop_ab.start
        hop_ac.finish = hop_ac.start + 15.0
        v = schedule_violations(valid_schedule)
        assert any("hops" in x and "overlap" in x for x in v)

    def test_missing_route(self, valid_schedule):
        valid_schedule.clear_route(("a", "b"))
        v = schedule_violations(valid_schedule)
        assert any("no route" in x for x in v)

    def test_spurious_route_between_colocated(self, valid_schedule):
        # b and c share P1: a route between them is a violation
        valid_schedule.routes[("b", "d")].hops[0].edge = ("b", "d")
        s = valid_schedule
        s.remove_task("d")
        s.place_task("d", 1, start=s.slots["c"].finish + 100)
        v = schedule_violations(s)
        assert any("routed although" in x or "no route" in x for x in v)

    def test_route_wrong_endpoint(self, valid_schedule):
        # reroute a->b so it "arrives" at P2 instead of P1
        valid_schedule.clear_route(("a", "b"))
        valid_schedule.set_route(("a", "b"), [0, 2], hop_starts=[20.0])
        v = schedule_violations(valid_schedule)
        assert any("arrives at" in x for x in v)

    def test_start_before_message(self, valid_schedule):
        valid_schedule.slots["b"].start = 0.0
        valid_schedule.slots["b"].finish = 20.0
        v = schedule_violations(valid_schedule)
        assert any("before message" in x or "starts" in x for x in v)

    def test_same_proc_precedence(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        s.place_task("a", 0, start=5.0)
        s.place_task("b", 0, start=0.0)  # starts before its producer
        s.place_task("c", 1, start=0.0)
        s.place_task("d", 1, start=100.0)
        s.mark_local(("a", "b"))
        s.set_route(("a", "c"), [0, 1], hop_starts=[15.0])
        s.set_route(("b", "d"), [0, 1], hop_starts=[40.0])
        s.mark_local(("c", "d"))
        v = schedule_violations(s)
        assert any("precedence violated" in x for x in v)

    def test_negative_start(self, valid_schedule):
        valid_schedule.slots["a"].start = -1.0
        valid_schedule.slots["a"].finish = 9.0
        v = schedule_violations(valid_schedule)
        assert any("before time 0" in x for x in v)

    def test_raises_with_all_violations(self, valid_schedule):
        valid_schedule.slots["a"].finish += 1
        valid_schedule.slots["b"].start -= 100
        with pytest.raises(InvalidScheduleError) as err:
            validate_schedule(valid_schedule)
        assert len(err.value.violations) >= 2

    def test_store_and_forward_violation(self, homogeneous_system):
        s = Schedule(homogeneous_system)
        s.place_task("a", 0, start=0.0)
        s.place_task("b", 2, start=100.0)
        s.place_task("c", 0, start=20.0)
        s.place_task("d", 2, start=200.0)
        # 2-hop route where hop 2 starts before hop 1 finishes
        s.set_route(("a", "b"), [0, 1, 2], hop_starts=[10.0, 11.0])
        s.mark_local(("a", "c"))
        s.set_route(("c", "d"), [0, 1, 2], hop_starts=[60.0, 70.0])
        v = schedule_violations(s)
        assert any("before" in x and "ready" in x for x in v)
