"""Tests for t-level / b-level / critical-path analysis."""

import pytest

from repro import TaskGraph, b_levels, cp_length, critical_path, granularity, t_levels
from repro.graph.analysis import GraphAnalysis, static_b_levels


class TestLevels:
    def test_chain_levels(self, chain3):
        # x(4) -3-> y(6) -5-> z(8)
        bl = b_levels(chain3)
        assert bl == {"x": 4 + 3 + 6 + 5 + 8, "y": 6 + 5 + 8, "z": 8}
        tl = t_levels(chain3)
        assert tl == {"x": 0, "y": 4 + 3, "z": 4 + 3 + 6 + 5}

    def test_diamond_levels(self, diamond):
        bl = b_levels(diamond)
        # via b: 20+25+10 = 55; via c: 30+5+10 = 45
        assert bl["b"] == 55 and bl["c"] == 45
        assert bl["a"] == 10 + max(5 + 55, 15 + 45) == 70
        tl = t_levels(diamond)
        assert tl["d"] == max(10 + 5 + 20 + 25, 10 + 15 + 30 + 5) == 60

    def test_cp_invariant_t_plus_b(self, diamond):
        bl, tl = b_levels(diamond), t_levels(diamond)
        cp = critical_path(diamond)
        length = cp_length(diamond)
        for t in cp:
            assert tl[t] + bl[t] == pytest.approx(length)

    def test_custom_exec_cost(self, chain3):
        bl = b_levels(chain3, exec_cost=lambda t: 1.0)
        assert bl["x"] == 1 + 3 + 1 + 5 + 1

    def test_dict_exec_cost(self, chain3):
        costs = {"x": 2.0, "y": 2.0, "z": 2.0}
        tl = t_levels(chain3, exec_cost=costs)
        assert tl["z"] == 2 + 3 + 2 + 5

    def test_static_b_levels_ignore_comm(self, chain3):
        bl = static_b_levels(chain3)
        assert bl["x"] == 4 + 6 + 8


class TestCriticalPath:
    def test_chain_cp(self, chain3):
        assert critical_path(chain3) == ["x", "y", "z"]

    def test_diamond_cp_tie_resolved_by_exec_sum(self, diamond):
        # both a->b->d (10+5+20+25+10) and a->c->d (10+15+30+5+10) total 70;
        # the paper's tie rule picks the path with the larger execution sum,
        # i.e. the one through c (30 > 20).
        assert critical_path(diamond) == ["a", "c", "d"]

    def test_cp_length_matches_path(self, diamond):
        analysis = GraphAnalysis(diamond)
        assert analysis.path_length(analysis.cp) == pytest.approx(analysis.cp_len)

    def test_cp_tie_prefers_larger_exec_sum(self):
        g = TaskGraph()
        g.add_task("s", 10.0)
        g.add_task("heavy", 30.0)
        g.add_task("light", 10.0)
        g.add_task("e", 10.0)
        # two paths of equal total length 70; heavy path has larger exec sum
        g.add_edge("s", "heavy", 5.0)
        g.add_edge("heavy", "e", 15.0)
        g.add_edge("s", "light", 15.0)
        g.add_edge("light", "e", 25.0)
        assert critical_path(g) == ["s", "heavy", "e"]

    def test_single_task(self):
        g = TaskGraph()
        g.add_task("only", 5.0)
        assert critical_path(g) == ["only"]
        assert cp_length(g) == 5.0


class TestGranularity:
    def test_paper_definition(self, diamond):
        assert granularity(diamond) == pytest.approx(17.5 / 12.5)

    def test_no_edges(self):
        g = TaskGraph()
        g.add_task("a", 5.0)
        assert granularity(g) == float("inf")
