"""Equivalence regression tests for the fast and incremental engines.

Two layers of protection for the hot-path overhauls (indexed timelines,
memoized routing/costs, bound-based candidate pruning, change-driven
incremental settle, undo-log rollback):

* **pinned makespans** — exact floats for the paper's Table 1 worked
  example and fixed-seed sweep cells across every scheduler and both BSA
  route modes. Any change to scheduling arithmetic, however subtle,
  trips these. All arithmetic involved is deterministic IEEE-754, so the
  pins are machine-independent.
* **legacy/fast/incremental cross-checks** — the same cell scheduled
  under all four hot-path modes must serialize to byte-identical JSON
  (every task time and every message hop), on uniform *and*
  heterogeneous link models (full-duplex, bandwidth-skewed torus and
  fat-tree cells).
"""

from __future__ import annotations

import json

import pytest

from repro.core.bsa import BSAOptions, schedule_bsa
from repro.experiments.config import Cell
from repro.experiments.paper_example import run_paper_example
from repro.experiments.pareto import pareto_to_json, run_pareto
from repro.experiments.runner import _SCHEDULERS, build_cell_system
from repro.objectives import evaluate_objectives
from repro.schedule.io import schedule_to_json
from repro.util.intervals import hotpath_mode, set_hotpath_mode

MODES = ("legacy", "fast", "incremental", "array")


@pytest.fixture
def both_modes():
    """Restore the session's mode even when a test body fails midway."""
    initial = hotpath_mode()
    yield
    set_hotpath_mode(initial)


#: fixed-seed sweep cells (one regular, one random suite)
CELL_REGULAR = Cell("regular", "gauss", 40, 1.0, "ring", "x",
                    n_procs=8, graph_seed=3, system_seed=3)
CELL_RANDOM = Cell("random", "random", 30, 0.1, "hypercube", "x",
                   n_procs=8, graph_seed=7, system_seed=7)

#: exact schedule lengths per (cell, algorithm) — regenerate only when an
#: intentional algorithmic change is made, never for performance work
PINNED = {
    ("regular", "bsa"): 8696.409356983679,
    ("regular", "dls"): 12834.33279164142,
    ("regular", "heft"): 8929.199845235313,
    ("regular", "cpop"): 48445.270885614154,
    ("regular", "etf"): 73445.85537671586,
    ("random", "bsa"): 19886.270007245133,
    ("random", "dls"): 20494.286130461784,
    ("random", "heft"): 20645.843323245692,
    ("random", "cpop"): 20289.416135906395,
    ("random", "etf"): 30352.23961612196,
}

#: both route modes, neighbors scope (incremental is only defined there)
PINNED_ROUTE_MODES = {
    ("regular", "incremental"): 27743.360255631313,
    ("regular", "shortest"): 23351.958769638226,
    ("random", "incremental"): 28346.984959022604,
    ("random", "shortest"): 19751.398319758886,
}

#: heterogeneous link-model cells: full-duplex, bandwidth-skewed torus
#: and fat tree — the new axes must be as reproducible as the defaults
CELL_TORUS = Cell("random", "random", 30, 1.0, "torus", "x", n_procs=8,
                  graph_seed=13, system_seed=13,
                  duplex="full", bandwidth_skew=8.0)
CELL_FATTREE = Cell("regular", "gauss", 40, 1.0, "fattree", "x", n_procs=8,
                    graph_seed=5, system_seed=5,
                    duplex="full", bandwidth_skew=8.0)

#: PR 3 golden cells: the ETF and CPOP baselines had no pinned values
#: off the uniform half-duplex mesh — one full-duplex uniform torus cell
#: and one half-duplex bandwidth-skewed fat-tree cell close that gap
CELL_TORUS_FD = Cell("random", "random", 36, 1.0, "torus", "x", n_procs=9,
                     graph_seed=21, system_seed=21, duplex="full")
CELL_FATTREE_SKEW = Cell("regular", "gauss", 45, 0.5, "fattree", "x", n_procs=8,
                         graph_seed=11, system_seed=11, bandwidth_skew=6.0)

PINNED_BASELINES_LINK_MODEL = {
    ("torus_fd", "etf"): 37748.29486182677,
    ("torus_fd", "cpop"): 11183.597989604994,
    ("fattree_skew", "etf"): 67869.06198404686,
    ("fattree_skew", "cpop"): 61669.64289322252,
}

PINNED_LINK_MODEL = {
    ("torus", "bsa"): 1658.676355513322,
    ("torus", "dls"): 1765.8967197009376,
    ("torus", "heft"): 1468.0843657169328,
    ("torus", "cpop"): 15946.444545927852,
    ("torus", "etf"): 25233.547795115675,
    ("fattree", "bsa"): 3953.1405192774328,
    ("fattree", "dls"): 4877.120554511691,
    ("fattree", "heft"): 3869.672688984098,
    ("fattree", "cpop"): 62777.41692397765,
    ("fattree", "etf"): 73787.79713678898,
}


#: the series-parallel decomposition mapper (PR 9) pinned on the same
#: golden cells as the other schedulers. On the random suite cell the
#: graph has no serial chains, so spdecomp degenerates to HEFT exactly —
#: the shared float is intentional, not a copy-paste error.
PINNED_SPDECOMP = {
    "regular": 21199.6460230246,
    "random": 20645.843323245692,
    "torus": 2864.1463017080628,
    "fattree": 15202.355863924475,
    "torus_fd": 3091.8242917764665,
    "fattree_skew": 16540.619185208234,
}


#: n=1000 golden cell — the scale the array engine exists for, and the
#: same cell family as ``bench_hotpath.py``'s scaling curve. Pins the
#: exact makespan so array-mode schedules are locked against drift at
#: scale (regenerate only on intentional algorithmic change).
CELL_N1000 = Cell("regular", "gauss", 1000, 1.0, "hypercube", "bsa",
                  n_procs=16, graph_seed=1, system_seed=1)
PINNED_N1000 = 66554.90105672537


def _cell(suite: str) -> Cell:
    return {
        "regular": CELL_REGULAR,
        "random": CELL_RANDOM,
        "torus": CELL_TORUS,
        "fattree": CELL_FATTREE,
        "torus_fd": CELL_TORUS_FD,
        "fattree_skew": CELL_FATTREE_SKEW,
    }[suite]


class TestPinnedMakespans:
    def test_paper_example_exact(self):
        result = run_paper_example()
        assert result["metrics"].schedule_length == 186.0
        assert result["metrics"].total_comm_cost == 120.0

    @pytest.mark.parametrize("suite,algorithm", sorted(PINNED))
    def test_sweep_cell_exact(self, suite, algorithm):
        system = build_cell_system(_cell(suite))
        sched = _SCHEDULERS[algorithm](system)
        assert sched.schedule_length() == PINNED[(suite, algorithm)]

    @pytest.mark.parametrize("suite,route_mode", sorted(PINNED_ROUTE_MODES))
    def test_route_modes_exact(self, suite, route_mode):
        system = build_cell_system(_cell(suite))
        sched = schedule_bsa(
            system,
            BSAOptions(migration_scope="neighbors", route_mode=route_mode),
        )
        assert sched.schedule_length() == PINNED_ROUTE_MODES[(suite, route_mode)]

    @pytest.mark.parametrize("suite,algorithm", sorted(PINNED_LINK_MODEL))
    def test_link_model_cell_exact(self, suite, algorithm):
        system = build_cell_system(_cell(suite))
        sched = _SCHEDULERS[algorithm](system)
        assert sched.schedule_length() == PINNED_LINK_MODEL[(suite, algorithm)]

    @pytest.mark.parametrize("suite,algorithm", sorted(PINNED_BASELINES_LINK_MODEL))
    def test_baseline_link_model_cell_exact(self, suite, algorithm):
        system = build_cell_system(_cell(suite))
        sched = _SCHEDULERS[algorithm](system)
        assert sched.schedule_length() == PINNED_BASELINES_LINK_MODEL[(suite, algorithm)]

    @pytest.mark.parametrize("suite", sorted(PINNED_SPDECOMP))
    def test_spdecomp_cell_exact(self, suite):
        system = build_cell_system(_cell(suite))
        sched = _SCHEDULERS["spdecomp"](system)
        assert sched.schedule_length() == PINNED_SPDECOMP[suite]


class TestEngineModesIdentical:
    """legacy vs fast vs incremental vs array — byte-identical
    serialized output."""

    @pytest.mark.parametrize(
        "suite", ["regular", "random", "torus", "fattree", "torus_fd", "fattree_skew"]
    )
    @pytest.mark.parametrize(
        "algorithm", ["bsa", "dls", "heft", "cpop", "etf", "spdecomp"]
    )
    def test_serialized_schedules_identical(self, suite, algorithm, both_modes):
        blobs = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            system = build_cell_system(_cell(suite))
            blobs[mode] = schedule_to_json(_SCHEDULERS[algorithm](system))
        assert (blobs["legacy"] == blobs["fast"] == blobs["incremental"]
                == blobs["array"])

    @pytest.mark.parametrize("route_mode", ["incremental", "shortest"])
    def test_route_modes_identical(self, route_mode, both_modes):
        blobs = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            system = build_cell_system(CELL_RANDOM)
            sched = schedule_bsa(
                system,
                BSAOptions(migration_scope="neighbors", route_mode=route_mode),
            )
            blobs[mode] = schedule_to_json(sched)
        assert (blobs["legacy"] == blobs["fast"] == blobs["incremental"]
                == blobs["array"])

    def test_paper_example_identical(self, both_modes):
        blobs = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            blobs[mode] = schedule_to_json(run_paper_example()["schedule"])
        assert (blobs["legacy"] == blobs["fast"] == blobs["incremental"]
                == blobs["array"])

    def test_golden_cell_n1000(self, both_modes):
        """The n=1000 golden cell: array and incremental byte-identical
        AND pinned to the exact makespan. Legacy/fast are excluded here
        only for wall-clock reasons — the ``MODES`` sweeps above pin
        their equivalence on every differential cell, so the
        incremental blob transitively anchors all four modes."""
        blobs = {}
        for mode in ("incremental", "array"):
            set_hotpath_mode(mode)
            system = build_cell_system(CELL_N1000)
            sched = _SCHEDULERS["bsa"](system)
            assert sched.schedule_length() == PINNED_N1000, mode
            blobs[mode] = schedule_to_json(sched)
        assert blobs["incremental"] == blobs["array"]

    @pytest.mark.parametrize("suite", ["regular", "torus", "fattree_skew"])
    @pytest.mark.parametrize("algorithm", ["bsa", "heft", "spdecomp"])
    def test_objective_vectors_identical(self, suite, algorithm, both_modes):
        """All four objectives, not just the makespan, must be
        byte-identical across the engine modes — they are pure float
        reductions over the committed schedule, so identical schedules
        must give identical values down to the last bit."""
        blobs = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            system = build_cell_system(_cell(suite))
            sched = _SCHEDULERS[algorithm](system)
            values = evaluate_objectives(
                sched, "makespan,energy,reliability,throughput"
            )
            blobs[mode] = json.dumps(values, sort_keys=True)
        assert (blobs["legacy"] == blobs["fast"] == blobs["incremental"]
                == blobs["array"])

    def test_rejection_heavy_cell_identical(self, both_modes):
        """A communication-heavy cell whose BSA run rejects many
        migrations: exercises the undo-log rollback (incremental), the
        shallow-snapshot restore (fast) and the deep-copy restore
        (legacy) against each other on the same commit sequence."""
        from repro.core.bsa import BSAScheduler

        cell = Cell("regular", "gauss", 60, 0.1, "hypercube", "bsa",
                    n_procs=8, graph_seed=1, system_seed=1)
        blobs = {}
        rejected = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            scheduler = BSAScheduler(build_cell_system(cell), BSAOptions())
            blobs[mode] = schedule_to_json(scheduler.run())
            rejected[mode] = scheduler.stats.n_rejected_migrations
        assert (blobs["legacy"] == blobs["fast"] == blobs["incremental"]
                == blobs["array"])
        assert len(set(rejected.values())) == 1
        # the cell must keep exercising rollback; reseed it if this trips
        assert rejected["incremental"] > 0

#: golden Pareto cell (PR 9): fat-tree n=100 gauss, every scheduler
#: scored on all four objectives. The front and every objective value
#: are pinned exactly; the serialized artifact must be byte-identical
#: across all four engine modes.
CELL_PARETO = Cell("regular", "gauss", 100, 1.0, "fattree", "bsa",
                   n_procs=8, graph_seed=2, system_seed=2)

PINNED_PARETO_FRONT = ["bsa", "dls", "heft"]

PINNED_PARETO_VALUES = {
    "bsa": {
        "energy": 72763.65329156743,
        "makespan": 15625.6879943309,
        "reliability": 0.5669266229746843,
        "throughput": 10129.497862617287,
    },
    "dls": {
        "energy": 73122.10404707766,
        "makespan": 20045.52312037218,
        "reliability": 0.6162476532259843,
        "throughput": 11372.732782069601,
    },
    "heft": {
        "energy": 61863.09299873603,
        "makespan": 13425.483717367097,
        "reliability": 0.6064346300148088,
        "throughput": 10315.061896961502,
    },
    "cpop": {
        "energy": 293257.55288821465,
        "makespan": 79842.74772650919,
        "reliability": 0.22407986018408355,
        "throughput": 79842.74772650919,
    },
    "etf": {
        "energy": 619299.6642026117,
        "makespan": 117796.9418700612,
        "reliability": 0.019959237524555282,
        "throughput": 77823.85776555596,
    },
    "spdecomp": {
        "energy": 169543.15612680075,
        "makespan": 46262.84079518959,
        "reliability": 0.4086511047707097,
        "throughput": 20558.667669277038,
    },
}


class TestGoldenPareto:
    """The Pareto sweep is an artifact-producing endpoint (CLI stdout
    and the ``/pareto`` HTTP body are its exact bytes), so it gets the
    same golden treatment as the makespans: exact values, exact front,
    byte-identical serialization under every engine mode."""

    def _run(self):
        doc, _ = run_pareto(CELL_PARETO, use_cache=False)
        return doc

    def test_front_and_values_exact(self):
        doc = self._run()
        by_algo = {p["algorithm"]: p for p in doc["points"]}
        assert doc["front"] == PINNED_PARETO_FRONT
        for algo, expected in PINNED_PARETO_VALUES.items():
            assert by_algo[algo]["values"] == expected, algo
            assert by_algo[algo]["on_front"] == (algo in PINNED_PARETO_FRONT)

    def test_artifact_identical_across_modes(self, both_modes):
        blobs = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            blobs[mode] = pareto_to_json(self._run())
        assert (blobs["legacy"] == blobs["fast"] == blobs["incremental"]
                == blobs["array"])
