"""Tests for HEFT, CPOP and the naive reference schedulers."""

import pytest

from repro import (
    schedule_cpop,
    schedule_heft,
    schedule_round_robin,
    schedule_serial,
    validate_schedule,
)
from repro.baselines.cpop import downward_ranks
from repro.baselines.heft import upward_ranks


class TestHEFT:
    def test_valid(self, small_random_system):
        sched = schedule_heft(small_random_system)
        validate_schedule(sched)
        assert sched.algorithm == "HEFT"

    def test_upward_ranks_decrease_along_edges(self, small_random_system):
        ranks = upward_ranks(small_random_system)
        graph = small_random_system.graph
        for u, v in graph.edges():
            assert ranks[u] > ranks[v]

    def test_valid_on_paper_system(self, paper_system):
        validate_schedule(schedule_heft(paper_system))

    def test_deterministic(self, small_random_system):
        a = schedule_heft(small_random_system)
        b = schedule_heft(small_random_system)
        assert a.schedule_length() == b.schedule_length()


class TestCPOP:
    def test_valid(self, small_random_system):
        sched = schedule_cpop(small_random_system)
        validate_schedule(sched)

    def test_downward_ranks_increase_along_edges(self, small_random_system):
        ranks = downward_ranks(small_random_system)
        graph = small_random_system.graph
        for u, v in graph.edges():
            assert ranks[v] > ranks[u]

    def test_entry_rank_zero(self, paper_system):
        ranks = downward_ranks(paper_system)
        assert ranks["T1"] == 0.0

    def test_valid_on_paper_system(self, paper_system):
        validate_schedule(schedule_cpop(paper_system))


class TestNaive:
    def test_serial_single_processor(self, small_random_system):
        sched = schedule_serial(small_random_system)
        validate_schedule(sched)
        procs = {s.proc for s in sched.slots.values()}
        assert len(procs) == 1
        # serial schedule = sum of exec costs on that processor
        proc = procs.pop()
        total = sum(
            small_random_system.exec_cost(t, proc)
            for t in small_random_system.graph.tasks()
        )
        assert sched.schedule_length() == pytest.approx(total)

    def test_serial_picks_fastest_processor(self, small_random_system):
        sched = schedule_serial(small_random_system)
        proc = next(iter(sched.slots.values())).proc
        system = small_random_system
        totals = [
            sum(system.exec_cost(t, p) for t in system.graph.tasks())
            for p in system.topology.processors
        ]
        assert totals[proc] == pytest.approx(min(totals))

    def test_round_robin_valid_and_spread(self, small_random_system):
        sched = schedule_round_robin(small_random_system)
        validate_schedule(sched)
        procs = {s.proc for s in sched.slots.values()}
        assert len(procs) == small_random_system.topology.n_procs

    def test_schedulers_beat_round_robin_usually(self, small_random_system):
        """Sanity: real schedulers should not lose to naive round-robin."""
        from repro import schedule_bsa, schedule_dls

        rr = schedule_round_robin(small_random_system).schedule_length()
        assert schedule_bsa(small_random_system).schedule_length() <= rr * 1.05
        assert schedule_dls(small_random_system).schedule_length() <= rr * 1.05
