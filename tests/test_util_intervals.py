"""Unit tests for interval math (gap search is the substrate's hot core)."""

import pytest

from repro.util.intervals import (
    HOTPATH_MODES,
    Interval,
    Timeline,
    earliest_gap,
    fast_path_enabled,
    hotpath_mode,
    insert_interval,
    intervals_overlap,
    set_hotpath_mode,
    total_busy,
    verify_disjoint,
)


class TestInterval:
    def test_duration(self):
        assert Interval(2.0, 5.0).duration == 3.0

    def test_zero_duration_allowed(self):
        assert Interval(2.0, 2.0).duration == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 2.0)

    def test_overlap_detection(self):
        a = Interval(0.0, 10.0)
        assert a.overlaps(Interval(5.0, 15.0))
        assert not a.overlaps(Interval(10.0, 20.0))  # half-open: touching is fine
        assert not a.overlaps(Interval(20.0, 30.0))

    def test_payload_carried(self):
        assert Interval(0, 1, payload="task").payload == "task"


class TestIntervalsOverlap:
    def test_disjoint(self):
        assert not intervals_overlap(0, 1, 2, 3)

    def test_touching_not_overlap(self):
        assert not intervals_overlap(0, 5, 5, 9)

    def test_nested(self):
        assert intervals_overlap(0, 10, 3, 4)

    def test_identical(self):
        assert intervals_overlap(3, 7, 3, 7)


class TestEarliestGap:
    def test_empty_timeline(self):
        assert earliest_gap([], ready=3.0, duration=5.0) == 3.0

    def test_fits_before_first(self):
        busy = [Interval(10, 20)]
        assert earliest_gap(busy, ready=0.0, duration=5.0) == 0.0

    def test_does_not_fit_before_first(self):
        busy = [Interval(3, 20)]
        assert earliest_gap(busy, ready=0.0, duration=5.0) == 20.0

    def test_fits_between(self):
        busy = [Interval(0, 10), Interval(25, 30)]
        assert earliest_gap(busy, ready=0.0, duration=10.0) == 10.0

    def test_gap_too_small_skipped(self):
        busy = [Interval(0, 10), Interval(12, 30)]
        assert earliest_gap(busy, ready=0.0, duration=5.0) == 30.0

    def test_ready_inside_busy(self):
        busy = [Interval(0, 10)]
        assert earliest_gap(busy, ready=5.0, duration=2.0) == 10.0

    def test_ready_inside_gap(self):
        busy = [Interval(0, 10), Interval(20, 30)]
        assert earliest_gap(busy, ready=12.0, duration=5.0) == 12.0

    def test_ready_inside_gap_but_too_late(self):
        busy = [Interval(0, 10), Interval(20, 30)]
        assert earliest_gap(busy, ready=17.0, duration=5.0) == 30.0

    def test_zero_duration_at_ready(self):
        busy = [Interval(0, 10)]
        assert earliest_gap(busy, ready=5.0, duration=0.0) == 5.0

    def test_negative_ready_clamped(self):
        assert earliest_gap([], ready=-5.0, duration=1.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            earliest_gap([], ready=0.0, duration=-1.0)

    def test_exact_fit(self):
        busy = [Interval(0, 10), Interval(15, 20)]
        assert earliest_gap(busy, ready=0.0, duration=5.0) == 10.0


class TestInsertInterval:
    def test_insert_sorted_position(self):
        busy = [Interval(0, 10), Interval(20, 30)]
        idx = insert_interval(busy, Interval(12, 18))
        assert idx == 1
        assert [iv.start for iv in busy] == [0, 12, 20]

    def test_insert_overlap_rejected(self):
        busy = [Interval(0, 10)]
        with pytest.raises(ValueError):
            insert_interval(busy, Interval(5, 8))

    def test_insert_at_front_and_back(self):
        busy = [Interval(10, 20)]
        insert_interval(busy, Interval(0, 5))
        insert_interval(busy, Interval(25, 30))
        assert [iv.start for iv in busy] == [0, 10, 25]


class TestTotals:
    def test_total_busy(self):
        assert total_busy([Interval(0, 5), Interval(10, 12)]) == 7.0

    def test_verify_disjoint_clean(self):
        assert verify_disjoint([Interval(0, 5), Interval(5, 9)]) is None

    def test_verify_disjoint_finds_overlap(self):
        bad = [Interval(0, 5), Interval(4, 9)]
        pair = verify_disjoint(bad)
        assert pair == (bad[0], bad[1])


def _random_busy(rng, n):
    """A start-sorted, legally non-overlapping timeline; occasionally a
    zero-duration reservation *inside* an earlier interval's span (legal:
    sub-EPS overlap) so finish times are non-monotonic — the worst case
    for the indexed bisect."""
    busy = []
    t = 0.0
    for _ in range(n):
        t += rng.random() * 3
        dur = 0.0 if rng.random() < 0.15 else rng.random() * 4
        busy.append(Interval(t, t + dur))
        t += dur
    if busy and len(busy) > 2:
        # zero-width straggler whose finish precedes the previous finish
        host = busy[len(busy) // 2]
        if host.duration > 1.0:
            z = Interval(host.finish, host.finish)
            busy.insert(len(busy) // 2 + 1, z)
    busy.sort(key=lambda iv: iv.start)
    return busy


class TestTimeline:
    """The indexed structure must agree with the legacy scan bit-for-bit."""

    def test_matches_legacy_randomized(self):
        import random
        rng = random.Random(42)
        for trial in range(200):
            busy = _random_busy(rng, rng.randrange(0, 12))
            tl = Timeline.from_items(busy)
            ready = rng.random() * 30 - 2
            duration = 0.0 if rng.random() < 0.1 else rng.random() * 5
            assert tl.earliest_gap(ready, duration) == earliest_gap(
                busy, ready, duration
            ), (trial, [(iv.start, iv.finish) for iv in busy], ready, duration)

    def test_merged_matches_legacy_sorted_merge(self):
        import random
        rng = random.Random(7)
        for trial in range(200):
            busy = _random_busy(rng, rng.randrange(0, 10))
            extras = _random_busy(rng, rng.randrange(0, 4))
            tl = Timeline.from_items(busy)
            merged = sorted(busy + extras, key=lambda iv: iv.start)
            ready = rng.random() * 25
            duration = rng.random() * 5
            got = tl.earliest_gap_merged(
                ready, duration,
                [iv.start for iv in extras], [iv.finish for iv in extras],
            )
            assert got == earliest_gap(merged, ready, duration), (
                trial, ready, duration
            )

    def test_last_finish_and_len(self):
        tl = Timeline.from_items([Interval(0, 5), Interval(7, 9)])
        assert len(tl) == 2
        assert tl.last_finish() == 9
        assert Timeline().last_finish() == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline().earliest_gap(0.0, -1.0)


class TestHotpathMode:
    def test_mode_round_trip(self):
        assert hotpath_mode() in HOTPATH_MODES
        prev = set_hotpath_mode("legacy")
        try:
            assert not fast_path_enabled()
        finally:
            set_hotpath_mode(prev)
        assert hotpath_mode() == prev

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            set_hotpath_mode("turbo")

    def test_incremental_implies_fast(self):
        from repro.util.intervals import array_enabled, incremental_enabled

        prev = hotpath_mode()
        try:
            set_hotpath_mode("incremental")
            assert fast_path_enabled() and incremental_enabled()
            assert not array_enabled()
            set_hotpath_mode("fast")
            assert fast_path_enabled() and not incremental_enabled()
            assert not array_enabled()
            set_hotpath_mode("legacy")
            assert not fast_path_enabled() and not incremental_enabled()
            assert not array_enabled()
        finally:
            set_hotpath_mode(prev)

    def test_array_without_numpy_raises_configuration_error(self):
        """Requesting the array engine on a numpy-free install must fail
        with a clean ConfigurationError — at set_hotpath_mode() and at
        env-var import time alike — while the other three modes keep
        working. numpy IS installed here, so a child process blocks its
        import via a meta_path finder before touching repro."""
        import os
        import subprocess
        import sys
        import textwrap

        code = textwrap.dedent("""
            import sys

            class _BlockNumpy:
                def find_spec(self, name, path=None, target=None):
                    if name == "numpy" or name.startswith("numpy."):
                        raise ImportError("numpy blocked for test")
                    return None

            sys.meta_path.insert(0, _BlockNumpy())

            from repro.errors import ConfigurationError
            from repro.util.intervals import (
                hotpath_mode,
                set_hotpath_mode,
            )

            # numpy-free modes stay fully selectable
            for mode in ("incremental", "fast", "legacy"):
                set_hotpath_mode(mode)
            try:
                set_hotpath_mode("array")
            except ConfigurationError as exc:
                assert "numpy" in str(exc), exc
            else:
                raise SystemExit("array mode accepted without numpy")
            # the failed request must not corrupt the mode switch
            assert hotpath_mode() == "legacy"

            # env-var request: importing repro with REPRO_HOTPATH=array
            # must raise the same clean error (re-exec with the blocker
            # installed via this same script, stage 2)
            print("STAGE1-OK")
        """)
        env = {**os.environ, "PYTHONPATH": "src"}
        env.pop("REPRO_HOTPATH", None)
        done = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert done.returncode == 0, done.stderr
        assert "STAGE1-OK" in done.stdout

        env_code = textwrap.dedent("""
            import sys

            class _BlockNumpy:
                def find_spec(self, name, path=None, target=None):
                    if name == "numpy" or name.startswith("numpy."):
                        raise ImportError("numpy blocked for test")
                    return None

            sys.meta_path.insert(0, _BlockNumpy())
            try:
                import repro.util.intervals  # noqa: F401
            except Exception as exc:
                assert type(exc).__name__ == "ConfigurationError", exc
                assert "numpy" in str(exc), exc
                print("STAGE2-OK")
            else:
                raise SystemExit(
                    "REPRO_HOTPATH=array import succeeded without numpy"
                )
        """)
        env["REPRO_HOTPATH"] = "array"
        done = subprocess.run(
            [sys.executable, "-c", env_code],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert done.returncode == 0, done.stderr
        assert "STAGE2-OK" in done.stdout

    def test_array_implies_incremental_and_fast(self):
        """The array engine is the incremental engine on flat arrays:
        everything gated on the incremental or fast predicates (undo-log
        transactions, memoized routes, settle seeding) must stay on."""
        from repro.util.intervals import array_enabled, incremental_enabled

        prev = hotpath_mode()
        try:
            set_hotpath_mode("array")
            assert array_enabled()
            assert incremental_enabled()
            assert fast_path_enabled()
        finally:
            set_hotpath_mode(prev)
