"""Unit tests for interval math (gap search is the substrate's hot core)."""

import pytest

from repro.util.intervals import (
    Interval,
    earliest_gap,
    insert_interval,
    intervals_overlap,
    total_busy,
    verify_disjoint,
)


class TestInterval:
    def test_duration(self):
        assert Interval(2.0, 5.0).duration == 3.0

    def test_zero_duration_allowed(self):
        assert Interval(2.0, 2.0).duration == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Interval(5.0, 2.0)

    def test_overlap_detection(self):
        a = Interval(0.0, 10.0)
        assert a.overlaps(Interval(5.0, 15.0))
        assert not a.overlaps(Interval(10.0, 20.0))  # half-open: touching is fine
        assert not a.overlaps(Interval(20.0, 30.0))

    def test_payload_carried(self):
        assert Interval(0, 1, payload="task").payload == "task"


class TestIntervalsOverlap:
    def test_disjoint(self):
        assert not intervals_overlap(0, 1, 2, 3)

    def test_touching_not_overlap(self):
        assert not intervals_overlap(0, 5, 5, 9)

    def test_nested(self):
        assert intervals_overlap(0, 10, 3, 4)

    def test_identical(self):
        assert intervals_overlap(3, 7, 3, 7)


class TestEarliestGap:
    def test_empty_timeline(self):
        assert earliest_gap([], ready=3.0, duration=5.0) == 3.0

    def test_fits_before_first(self):
        busy = [Interval(10, 20)]
        assert earliest_gap(busy, ready=0.0, duration=5.0) == 0.0

    def test_does_not_fit_before_first(self):
        busy = [Interval(3, 20)]
        assert earliest_gap(busy, ready=0.0, duration=5.0) == 20.0

    def test_fits_between(self):
        busy = [Interval(0, 10), Interval(25, 30)]
        assert earliest_gap(busy, ready=0.0, duration=10.0) == 10.0

    def test_gap_too_small_skipped(self):
        busy = [Interval(0, 10), Interval(12, 30)]
        assert earliest_gap(busy, ready=0.0, duration=5.0) == 30.0

    def test_ready_inside_busy(self):
        busy = [Interval(0, 10)]
        assert earliest_gap(busy, ready=5.0, duration=2.0) == 10.0

    def test_ready_inside_gap(self):
        busy = [Interval(0, 10), Interval(20, 30)]
        assert earliest_gap(busy, ready=12.0, duration=5.0) == 12.0

    def test_ready_inside_gap_but_too_late(self):
        busy = [Interval(0, 10), Interval(20, 30)]
        assert earliest_gap(busy, ready=17.0, duration=5.0) == 30.0

    def test_zero_duration_at_ready(self):
        busy = [Interval(0, 10)]
        assert earliest_gap(busy, ready=5.0, duration=0.0) == 5.0

    def test_negative_ready_clamped(self):
        assert earliest_gap([], ready=-5.0, duration=1.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            earliest_gap([], ready=0.0, duration=-1.0)

    def test_exact_fit(self):
        busy = [Interval(0, 10), Interval(15, 20)]
        assert earliest_gap(busy, ready=0.0, duration=5.0) == 10.0


class TestInsertInterval:
    def test_insert_sorted_position(self):
        busy = [Interval(0, 10), Interval(20, 30)]
        idx = insert_interval(busy, Interval(12, 18))
        assert idx == 1
        assert [iv.start for iv in busy] == [0, 12, 20]

    def test_insert_overlap_rejected(self):
        busy = [Interval(0, 10)]
        with pytest.raises(ValueError):
            insert_interval(busy, Interval(5, 8))

    def test_insert_at_front_and_back(self):
        busy = [Interval(10, 20)]
        insert_interval(busy, Interval(0, 5))
        insert_interval(busy, Interval(25, 30))
        assert [iv.start for iv in busy] == [0, 10, 25]


class TestTotals:
    def test_total_busy(self):
        assert total_busy([Interval(0, 5), Interval(10, 12)]) == 7.0

    def test_verify_disjoint_clean(self):
        assert verify_disjoint([Interval(0, 5), Interval(5, 9)]) is None

    def test_verify_disjoint_finds_overlap(self):
        bad = [Interval(0, 5), Interval(4, 9)]
        pair = verify_disjoint(bad)
        assert pair == (bad[0], bad[1])
