"""Tests for the one-command reproduction report."""

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.report import generate_report
from tests.test_integration import TINY


@pytest.fixture
def tiny_cache(tmp_path):
    return ResultCache(str(tmp_path / "cells.json"))


class TestReport:
    def test_report_structure(self, tiny_cache):
        text = generate_report(scale=TINY, cache=tiny_cache, include_example=False)
        assert text.startswith("# BSA reproduction report")
        for heading in ("Figure 3", "Figure 4", "Figure 5", "Figure 6",
                        "Figure 7", "Runtime"):
            assert heading in text
        assert "bsa/dls" in text  # ratio columns rendered
        assert "`tiny`" in text

    def test_report_with_example(self, tiny_cache):
        text = generate_report(scale=TINY, cache=tiny_cache, include_example=True)
        assert "Worked example" in text
        assert "first pivot: P2" in text
        assert "schedule length" in text  # gantt footer present

    def test_report_reuses_cache(self, tiny_cache):
        generate_report(scale=TINY, cache=tiny_cache, include_example=False)
        n = len(tiny_cache)
        generate_report(scale=TINY, cache=tiny_cache, include_example=False)
        assert len(tiny_cache) == n  # second render: zero new cell runs
