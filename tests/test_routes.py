"""Tests for incremental route algebra (extension / truncation / locality)."""

import pytest

from repro.core.routes import new_incoming_path, new_outgoing_path
from repro.errors import RoutingError


class TestIncomingPaths:
    def test_local_message_extends_to_one_hop(self):
        # producer and consumer both on A=0; consumer moves to B=1
        assert new_incoming_path(None, 0, 0, 1) == [0, 1]

    def test_becomes_local(self):
        # producer already on B: message becomes local
        assert new_incoming_path([1, 0], 1, 0, 1) is None

    def test_extension(self):
        # route 2 -> 0, consumer moves 0 -> 1
        assert new_incoming_path([2, 0], 2, 0, 1) == [2, 0, 1]

    def test_truncation_at_revisit(self):
        # route passes through B=1 already: 2 -> 1 -> 0; truncate at 1
        assert new_incoming_path([2, 1, 0], 2, 0, 1) == [2, 1]

    def test_truncation_at_first_visit(self):
        # B=1 appears twice: truncate at the *first* occurrence, so the
        # result visits B exactly once (cutting at the last visit kept
        # [2, 1, 3, 1], a path that doubles back through B)
        path = [2, 1, 3, 1, 0]
        assert new_incoming_path(path, 2, 0, 1) == [2, 1]

    def test_truncated_path_never_revisits_new_proc(self):
        # multi-visit paths (possible after repeated migrations): the
        # truncated result must contain new_proc exactly once
        for path, new_proc in [
            ([2, 1, 3, 1, 0], 1),
            ([5, 4, 3, 4, 2, 4, 0], 4),
            ([2, 3, 0, 3, 6], 3),
        ]:
            out = new_incoming_path(path, path[0], path[-1], new_proc)
            assert out.count(new_proc) == 1
            assert out[-1] == new_proc
            # result is a prefix of the old path: existing hops are reused
            assert out == path[: len(out)]

    def test_truncation_disabled(self):
        assert new_incoming_path([2, 1, 0], 2, 0, 1, truncate=False) == [2, 1, 0, 1]

    def test_path_must_end_at_consumer(self):
        with pytest.raises(RoutingError):
            new_incoming_path([2, 3], 2, 0, 1)

    def test_path_must_start_at_producer(self):
        with pytest.raises(RoutingError):
            new_incoming_path([2, 0], 9, 0, 1)


class TestOutgoingPaths:
    def test_local_message_prepends(self):
        # producer and consumer both on A=0; producer moves to B=1
        assert new_outgoing_path(None, 0, 0, 1) == [1, 0]

    def test_becomes_local(self):
        # consumer already on B: message becomes local
        assert new_outgoing_path([0, 1], 1, 0, 1) is None

    def test_prepension(self):
        assert new_outgoing_path([0, 2], 2, 0, 1) == [1, 0, 2]

    def test_truncation_at_revisit(self):
        # old route 0 -> 1 -> 2; producer moves to 1: drop the front
        assert new_outgoing_path([0, 1, 2], 2, 0, 1) == [1, 2]

    def test_truncation_at_last_visit(self):
        # B=1 appears twice: truncate at the *last* occurrence, so the
        # result departs B exactly once (cutting at the first visit kept
        # [1, 3, 1, 2], a path that doubles back through B)
        path = [0, 1, 3, 1, 2]
        assert new_outgoing_path(path, 2, 0, 1) == [1, 2]

    def test_truncated_path_never_revisits_new_proc(self):
        for path, new_proc in [
            ([0, 1, 3, 1, 2], 1),
            ([0, 4, 3, 4, 2, 4, 5], 4),
            ([6, 3, 0, 3, 2], 3),
        ]:
            out = new_outgoing_path(path, path[-1], path[0], new_proc)
            assert out.count(new_proc) == 1
            assert out[0] == new_proc
            # result is a suffix of the old path: existing hops are reused
            assert out == path[len(path) - len(out):]

    def test_truncation_disabled(self):
        assert new_outgoing_path([0, 1, 2], 2, 0, 1, truncate=False) == [1, 0, 1, 2]

    def test_path_must_start_at_producer(self):
        with pytest.raises(RoutingError):
            new_outgoing_path([5, 2], 2, 0, 1)

    def test_path_must_end_at_consumer(self):
        with pytest.raises(RoutingError):
            new_outgoing_path([0, 2], 7, 0, 1)


class TestSymmetry:
    def test_round_trip_is_identity_with_truncation(self):
        # moving 0 -> 1 then 1 -> 0 restores the original route
        out = new_incoming_path([2, 0], 2, 0, 1)        # [2, 0, 1]
        back = new_incoming_path(out, 2, 1, 0)           # truncate at 0
        assert back == [2, 0]
