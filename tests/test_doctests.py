"""Doctest leg: the curated public-API modules must carry runnable
examples, and the examples must pass.

These are the modules the documentation sweep promises examples for
(workload generators, graph IO/interchange, the topology builders and
the schedule container). Running them inside the tier-1 suite means the
examples execute under all three ``REPRO_HOTPATH`` CI legs — a docstring
whose output depended on the engine mode would fail here.
"""

import doctest
import importlib

import pytest

CURATED_MODULES = [
    "repro.graph.io",
    "repro.graph.interchange",
    "repro.network.topology",
    "repro.schedule.schedule",
    "repro.workloads.base",
    "repro.workloads.external",
    "repro.workloads.suites",
    "repro.corpus.overlays",
    "repro.dynamic.events",
    # the core/baselines scheduler entry points (ROADMAP: doctest
    # coverage growth) — every schedule_* runs a real 12-task example
    "repro.core.bsa",
    "repro.baselines.dls",
    "repro.baselines.heft",
    "repro.baselines.cpop",
    "repro.baselines.etf",
]


@pytest.mark.parametrize("module_name", CURATED_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, (
        f"{module_name} is a curated API module but carries no doctest "
        f"examples — the documentation sweep promises runnable examples"
    )
    assert results.failed == 0


def test_curated_public_functions_have_docstrings():
    """Every module-level public function in the curated modules must
    have a docstring (the doctest above checks the examples run; this
    catches a new public function added with no documentation at all)."""
    import inspect

    missing = []
    for module_name in CURATED_MODULES:
        module = importlib.import_module(module_name)
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if obj.__module__ != module_name:
                continue  # re-exported helper documented at home
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module_name}.{name}")
    assert not missing, f"public functions without docstrings: {missing}"
