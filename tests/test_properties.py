"""Property-based tests (hypothesis) for core invariants.

The central property: *every algorithm, on every random (graph, platform)
pair, emits a schedule that passes the strict validator* — processor and
link exclusivity, contiguous routes, store-and-forward timing, precedence.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    HeterogeneousSystem,
    b_levels,
    chain,
    clique,
    critical_path,
    hypercube,
    random_topology,
    ring,
    schedule_bsa,
    schedule_dls,
    serialize,
    star,
    t_levels,
    validate_graph,
)
from repro.core.bsa import BSAOptions
from repro.schedule.validator import schedule_violations
from repro.util.intervals import EPS, Interval, earliest_gap
from repro.workloads.granularity import apply_granularity
from repro.workloads.random_graphs import random_layered_graph

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

graph_params = st.tuples(
    st.integers(min_value=2, max_value=28),   # tasks
    st.integers(min_value=0, max_value=10_000),  # seed
    st.sampled_from([0.1, 1.0, 10.0]),        # granularity
)


def make_topology(kind: str, seed: int):
    if kind == "ring":
        return ring(4)
    if kind == "chain":
        return chain(3)
    if kind == "star":
        return star(5)
    if kind == "hypercube":
        return hypercube(4)
    if kind == "clique":
        return clique(4)
    return random_topology(5, 1, 4, seed=seed)


topology_kinds = st.sampled_from(
    ["ring", "chain", "star", "hypercube", "clique", "random"]
)

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# schedule validity: the flagship property
# ---------------------------------------------------------------------------

@slow
@given(params=graph_params, topo_kind=topology_kinds, link_het=st.booleans())
def test_bsa_schedules_always_valid(params, topo_kind, link_het):
    n, seed, gran = params
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, gran, seed=seed)
    topo = make_topology(topo_kind, seed)
    system = HeterogeneousSystem.sample(
        graph, topo, het_range=(1, 50), seed=seed,
        link_het_range=(1, 50) if link_het else None,
    )
    sched = schedule_bsa(system, BSAOptions(n_sweeps=2))
    assert schedule_violations(sched) == []


@slow
@given(params=graph_params, topo_kind=topology_kinds)
def test_bsa_literal_variant_always_valid(params, topo_kind):
    n, seed, gran = params
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, gran, seed=seed)
    topo = make_topology(topo_kind, seed)
    system = HeterogeneousSystem.sample(graph, topo, het_range=(1, 50), seed=seed)
    sched = schedule_bsa(
        system,
        BSAOptions(
            migration_scope="neighbors", route_mode="incremental", n_sweeps=1
        ),
    )
    assert schedule_violations(sched) == []


@slow
@given(params=graph_params, topo_kind=topology_kinds)
def test_dls_schedules_always_valid(params, topo_kind):
    n, seed, gran = params
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, gran, seed=seed)
    topo = make_topology(topo_kind, seed)
    system = HeterogeneousSystem.sample(graph, topo, het_range=(1, 50), seed=seed)
    assert schedule_violations(schedule_dls(system)) == []


@slow
@given(params=graph_params)
def test_bsa_never_worse_than_serialization(params):
    """run() keeps the best sweep-boundary schedule, so the initial
    serialization is always an upper bound on the result."""
    n, seed, gran = params
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, gran, seed=seed)
    system = HeterogeneousSystem.sample(graph, ring(4), het_range=(1, 10), seed=seed)
    from repro.core.bsa import BSAScheduler

    scheduler = BSAScheduler(system, BSAOptions(n_sweeps=2))
    sched = scheduler.run()
    assert sched.schedule_length() <= scheduler.stats.serial_length + 1e-6
    assert schedule_violations(sched) == []


@slow
@given(params=graph_params)
def test_bsa_respects_exec_lower_bound(params):
    n, seed, gran = params
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, gran, seed=seed)
    system = HeterogeneousSystem.sample(graph, ring(4), het_range=(1, 10), seed=seed)
    from repro.schedule.metrics import compute_metrics

    m = compute_metrics(schedule_bsa(system, BSAOptions(n_sweeps=2)))
    assert m.schedule_length >= m.cp_exec_lower_bound - 1e-6


# ---------------------------------------------------------------------------
# graph-analysis invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 60), seed=st.integers(0, 10_000))
def test_generated_graphs_valid_and_serializable(n, seed):
    graph = random_layered_graph(n, seed=seed)
    validate_graph(graph)
    order = serialize(graph)
    assert graph.is_topological(order)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 60), seed=st.integers(0, 10_000))
def test_cp_level_invariant(n, seed):
    graph = random_layered_graph(n, seed=seed)
    bl, tl = b_levels(graph), t_levels(graph)
    cp = critical_path(graph)
    cp_len = max(bl.values())
    # every task: t + b <= CP length; equality on the chosen CP
    for t in graph.tasks():
        assert tl[t] + bl[t] <= cp_len + 1e-6
    for t in cp:
        assert tl[t] + bl[t] == pytest.approx(cp_len)
    # CP is an actual path
    for a, b in zip(cp, cp[1:]):
        assert graph.has_edge(a, b)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(2, 50), seed=st.integers(0, 10_000),
       gran=st.floats(0.05, 20.0))
def test_granularity_always_exact(n, seed, gran):
    graph = random_layered_graph(n, seed=seed)
    apply_granularity(graph, gran, seed=seed)
    assert graph.mean_exec_cost() / graph.mean_comm_cost() == pytest.approx(gran)


# ---------------------------------------------------------------------------
# interval invariants
# ---------------------------------------------------------------------------

interval_lists = st.lists(
    st.tuples(st.floats(0, 1000), st.floats(0.1, 50)), max_size=12
).map(
    lambda raw: sorted(
        (Interval(s, s + d) for s, d in raw), key=lambda iv: iv.start
    )
)


def _disjointify(ivs):
    out = []
    t = 0.0
    for iv in ivs:
        start = max(t, iv.start)
        out.append(Interval(start, start + iv.duration))
        t = out[-1].finish
    return out


@settings(max_examples=200, deadline=None)
@given(ivs=interval_lists, ready=st.floats(0, 1500), dur=st.floats(0.1, 100))
def test_earliest_gap_sound(ivs, ready, dur):
    busy = _disjointify(ivs)
    start = earliest_gap(busy, ready, dur)
    assert start >= ready - EPS
    new = Interval(start, start + dur)
    assert all(not new.overlaps(b) for b in busy)


@settings(max_examples=200, deadline=None)
@given(ivs=interval_lists, ready=st.floats(0, 1500), dur=st.floats(0.1, 100))
def test_earliest_gap_is_earliest_at_boundaries(ivs, ready, dur):
    """No feasible start exists earlier than the returned one at any
    candidate boundary (ready or a reservation finish)."""
    busy = _disjointify(ivs)
    start = earliest_gap(busy, ready, dur)
    candidates = [ready] + [b.finish for b in busy]
    for c in candidates:
        if c >= start - EPS or c < ready - EPS:
            continue
        probe = Interval(c, c + dur)
        assert any(probe.overlaps(b) for b in busy), (
            f"feasible earlier start {c} < {start}"
        )


# ---------------------------------------------------------------------------
# topology invariants
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(m=st.integers(2, 24), seed=st.integers(0, 1000),
       mind=st.integers(1, 3), maxd=st.integers(4, 8))
def test_random_topologies_connected_and_bounded(m, seed, mind, maxd):
    topo = random_topology(m, mind, maxd, seed=seed)
    assert topo.n_procs == m
    order = topo.bfs_order(0)
    assert sorted(order) == list(range(m))  # connected
    cap = min(maxd, m - 1)
    assert all(topo.degree(p) <= max(cap, 1) for p in topo.processors)
