"""Online rescheduling: events, injection, repair, and the simulator.

The discipline mirrors ``test_incremental_settle.py``: every guarantee
is asserted as byte-level state equality, not approximate metrics —
the committed prefix must be value-identical after every event, a
rejected repair must leave the schedule fingerprint *and* dict
insertion order untouched, and the whole simulation must be
bit-deterministic across hot-path modes and ``--jobs`` fan-out.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.bsa import BSAOptions, schedule_bsa
from repro.dynamic import (
    FailureInjector,
    LinkFailure,
    ProcFailure,
    Scenario,
    TaskArrival,
    cone_repair,
    events_from_dict,
    events_to_dict,
    parse_scenario,
    prefix_fingerprint,
    read_event_trace,
    replan_tail,
    simulate,
    simulate_scenario,
    sort_events,
    write_event_trace,
)
from repro.dynamic.events import _alive_connected
from repro.dynamic.repair import alive_path
from repro.dynamic.simulate import affected_work
from repro.errors import ConfigurationError, SchedulingError
from repro.experiments.cache import ResultCache
from repro.experiments.config import Cell
from repro.experiments.runner import build_cell_system, run_cell, run_cells
from repro.network.topology import hypercube, ring
from repro.schedule.io import schedule_to_json
from repro.schedule.validator import schedule_violations, validate_schedule
from repro.util.intervals import hotpath_mode, set_hotpath_mode

MODES = ("legacy", "fast", "incremental", "array")

#: the bench's smoke cell: small enough to schedule in ~100 ms, rich
#: enough that a scenario displaces real work
CELL = Cell("regular", "gauss", 40, 1.0, "ring", "bsa",
            n_procs=8, graph_seed=3, system_seed=3)


@pytest.fixture(autouse=True)
def _restore_mode():
    initial = hotpath_mode()
    yield
    set_hotpath_mode(initial)


def _fresh(cell=CELL):
    system = build_cell_system(cell)
    sched = schedule_bsa(system, BSAOptions())
    validate_schedule(sched)
    return system, sched


def _state_fingerprint(sched):
    """Every observable bit of schedule state, including dict order
    (same discipline as test_incremental_settle.py)."""
    return (
        [(t, s.proc, s.start, s.finish) for t, s in sched.slots.items()],
        {p: list(o) for p, o in sched.proc_order.items()},
        [
            (e, [(h.src, h.dst, h.start, h.finish) for h in r.hops])
            for e, r in sched.routes.items()
        ],
        {
            ch: [(h.edge, h.src, h.dst, h.start, h.finish) for h in hops]
            for ch, hops in sched.link_order.items()
        },
    )


# ----------------------------------------------------------------------
# scenario tokens
# ----------------------------------------------------------------------

class TestScenarioTokens:
    @pytest.mark.parametrize(
        "scn",
        [
            Scenario(0, 0, 0, 0),
            Scenario(1, 0, 0, 3),
            Scenario(0, 2, 1, 7),
            Scenario(2, 1, 3, 12345),
        ],
    )
    def test_round_trip(self, scn):
        assert parse_scenario(scn.token()) == scn

    def test_zero_parts_omitted(self):
        assert Scenario(1, 0, 1, 0).token() == "f1a1s0"
        assert Scenario(0, 0, 0, 5).token() == "s5"

    @pytest.mark.parametrize(
        "text", ["", "f1", "s", "x1s0", "a1f1s0", "f1a1s0x", "f-1s0"]
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_scenario(text)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(-1, 0, 0, 0)


# ----------------------------------------------------------------------
# injection + trace round-trip
# ----------------------------------------------------------------------

class TestInjector:
    def test_deterministic(self):
        system, sched = _fresh()
        horizon = sched.schedule_length()
        scn = parse_scenario("f1l1a2s7")
        a = FailureInjector(system, scn, horizon).events()
        b = FailureInjector(system, scn, horizon).events()
        assert events_to_dict(a) == events_to_dict(b)
        assert len(a) == 4

    def test_seed_changes_events(self):
        system, sched = _fresh()
        horizon = sched.schedule_length()
        a = FailureInjector(system, parse_scenario("f1a1s0"), horizon).events()
        b = FailureInjector(system, parse_scenario("f1a1s1"), horizon).events()
        assert events_to_dict(a) != events_to_dict(b)

    def test_times_inside_horizon(self):
        system, sched = _fresh()
        horizon = sched.schedule_length()
        events = FailureInjector(
            system, parse_scenario("f2l1a2s3"), horizon
        ).events()
        assert all(0 < ev.time < horizon for ev in events)

    def test_failures_keep_system_connected(self):
        system, sched = _fresh()
        events = FailureInjector(
            system, parse_scenario("f3l2s11"), sched.schedule_length()
        ).events()
        dead_procs = {e.proc for e in events if isinstance(e, ProcFailure)}
        dead_links = {e.link for e in events if isinstance(e, LinkFailure)}
        assert _alive_connected(system.topology, dead_procs, dead_links)
        assert len(dead_procs) == 3 and len(dead_links) == 2

    def test_trace_json_round_trip(self, tmp_path):
        system, sched = _fresh()
        events = FailureInjector(
            system, parse_scenario("f1l1a2s7"), sched.schedule_length()
        ).events()
        path = tmp_path / "trace.json"
        write_event_trace(events, str(path))
        back = read_event_trace(str(path))
        assert events_to_dict(back) == events_to_dict(events)
        # and a second write is byte-identical (no ambient state)
        path2 = tmp_path / "trace2.json"
        write_event_trace(back, str(path2))
        assert path.read_bytes() == path2.read_bytes()

    def test_malformed_trace_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "nope", "events": []}))
        with pytest.raises(ConfigurationError):
            read_event_trace(str(path))
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            read_event_trace(str(path))

    def test_sort_events_orders_by_time_then_kind(self):
        arr = TaskArrival(time=5.0, task="dyn0", cost=1.0)
        pf = ProcFailure(time=5.0, proc=1)
        lf = LinkFailure(time=2.0, link=(0, 1))
        assert sort_events([pf, arr, lf]) == [lf, arr, pf]


# ----------------------------------------------------------------------
# simulation invariants
# ----------------------------------------------------------------------

class TestSimulateInvariants:
    def test_validator_clean_and_prefix_intact(self):
        system, sched = _fresh()
        sim = simulate_scenario(system, sched, "f1l1a2s7")
        assert sim.records, "scenario produced no events"
        assert all(r.prefix_intact for r in sim.records)
        assert schedule_violations(sim.schedule) == []
        # arrivals are actually scheduled
        arrivals = [r for r in sim.records if r.etype == "arrival"]
        assert len(arrivals) == 2
        assert "dyn0" in sim.schedule.slots and "dyn1" in sim.schedule.slots

    def test_dead_proc_gets_no_new_work(self):
        system, sched = _fresh()
        events = FailureInjector(
            system, parse_scenario("f1s3"), sched.schedule_length()
        ).events()
        (ev,) = events
        sim = simulate(sched, events, compare_replan=False)
        # drain semantics: slots on the dead proc all started before T
        for t in sim.schedule.proc_order[ev.proc]:
            assert sim.schedule.slots[t].start < ev.time

    def test_repair_vs_replan_quality_reported(self):
        system, sched = _fresh()
        sim = simulate_scenario(system, sched, "f1l1a2s7")
        ratios = [r.sl_after / r.sl_replan for r in sim.records if r.sl_replan]
        assert ratios, "no event produced an oracle comparison"
        log = sim.event_log()
        assert log["format"] == "repro-event-log"
        assert log["n_events"] == len(sim.records)
        assert sim.repair_wall_s > 0

    def test_duplicate_failures_rejected(self):
        system, sched = _fresh()
        events = [ProcFailure(time=10.0, proc=2), ProcFailure(time=20.0, proc=2)]
        with pytest.raises(ConfigurationError, match="failed twice"):
            simulate(sched, events, compare_replan=False)

    def test_unknown_resources_rejected(self):
        system, sched = _fresh()
        with pytest.raises(ConfigurationError, match="unknown proc"):
            simulate(sched, [ProcFailure(time=1.0, proc=99)],
                     compare_replan=False)
        system, sched = _fresh()
        with pytest.raises(ConfigurationError, match="unknown link"):
            simulate(sched, [LinkFailure(time=1.0, link=(0, 5))],
                     compare_replan=False)

    def test_event_trace_file_drives_simulation(self, tmp_path):
        """An explicit trace (the README's format) round-trips through
        the simulator exactly like injected events."""
        system, sched = _fresh()
        events = FailureInjector(
            system, parse_scenario("f1a1s3"), sched.schedule_length()
        ).events()
        path = tmp_path / "trace.json"
        write_event_trace(events, str(path))
        sim_a = simulate(sched, read_event_trace(str(path)),
                         compare_replan=False)
        system2, sched2 = _fresh()
        sim_b = simulate(sched2, events, compare_replan=False)
        assert sim_a.log_json() == sim_b.log_json()


# ----------------------------------------------------------------------
# byte-identity: hot-path modes and parallel fan-out
# ----------------------------------------------------------------------

class TestModeIdentity:
    def test_engine_mode_byte_identity(self):
        blobs = {}
        logs = {}
        for mode in MODES:
            set_hotpath_mode(mode)
            system, sched = _fresh()
            sim = simulate_scenario(system, sched, "f1l1a2s7",
                                    compare_replan=False)
            blobs[mode] = schedule_to_json(sim.schedule)
            logs[mode] = sim.log_json()
        assert blobs["legacy"] == blobs["fast"] == blobs["incremental"]
        assert logs["legacy"] == logs["fast"] == logs["incremental"]

    def test_jobs_fanout_identical(self, tmp_path):
        cells = [
            dataclasses.replace(CELL, scenario=scn, graph_seed=seed,
                                system_seed=seed)
            for scn in ("f1a1s0", "f1l1a1s1")
            for seed in (3, 4)
        ]
        results = {}
        for jobs in (1, 2):
            cache = ResultCache(str(tmp_path / f"jobs{jobs}"))
            got, _ = run_cells(cells, jobs=jobs, cache=cache)
            results[jobs] = {
                k: dataclasses.asdict(r) for k, r in got.items()
            }
            for d in results[jobs].values():
                d.pop("runtime_s")  # wall clock is per-process
        assert results[1] == results[2]


# ----------------------------------------------------------------------
# experiments wiring
# ----------------------------------------------------------------------

class TestCellScenario:
    def test_static_key_unchanged(self):
        """Adding the scenario axis must not move pre-existing cache
        entries: static cells keep their exact old keys."""
        assert CELL.key() == (
            "regular/gauss/n40/g1/ring8/bsa/het1-50/lh0/gs3/ss3"
        )
        assert "/sc" not in CELL.key()

    def test_scenario_key_visible(self):
        cell = dataclasses.replace(CELL, scenario="f1a1s2")
        assert cell.key().endswith("/scf1a1s2")
        assert cell.key() != CELL.key()

    def test_run_cell_scenario_metrics(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        cell = dataclasses.replace(CELL, scenario="f1a1s2")
        r = run_cell(cell, cache=cache)
        static = run_cell(CELL, cache=cache)
        assert r.n_events == 2
        assert static.n_events == 0
        assert r.n_tasks == static.n_tasks + 1          # the arrival
        assert r.schedule_length >= static.schedule_length
        # cached round trip preserves the new field
        again = run_cell(cell, cache=cache)
        assert again == r

    def test_cellresult_from_dict_back_compat(self):
        """Pre-scenario cache entries (no n_events key) still load."""
        from repro.experiments.runner import CellResult

        d = dict(schedule_length=1.0, total_comm_cost=2.0, speedup=3.0,
                 normalized_sl=4.0, runtime_s=0.1, n_tasks=5, n_edges=6)
        assert CellResult.from_dict(d).n_events == 0


# ----------------------------------------------------------------------
# rollback under repair: rejected repairs leave zero trace
# ----------------------------------------------------------------------

class TestRollbackUnderRepair:
    @pytest.mark.parametrize("mode", MODES)
    def test_rejected_repair_is_invisible(self, mode, monkeypatch):
        """Force the validator gate to reject the repair: the rollback
        must restore the schedule fingerprint *and* dict insertion
        order byte-identically (the test_incremental_settle.py
        discipline), in every hot-path mode."""
        set_hotpath_mode(mode)
        system, sched = _fresh()
        from repro.dynamic.simulate import _apply_arrival

        events = FailureInjector(
            system, parse_scenario("a1s3"), sched.schedule_length()
        ).events()
        (ev,) = events
        _apply_arrival(system, ev)  # world mutates; the schedule must not
        before = _state_fingerprint(sched)
        work = affected_work(sched, ev, ev.time, set(), set())

        import repro.dynamic.repair as repair_mod
        monkeypatch.setattr(repair_mod, "schedule_violations",
                            lambda s: ["forced rejection"])
        res = cone_repair(sched, ev.time, *work, set(), set())
        assert not res.ok
        assert "forced rejection" in res.error
        assert _state_fingerprint(sched) == before

        rres = replan_tail(sched, ev.time, set(), set())
        assert not rres.ok
        assert _state_fingerprint(sched) == before

        # and with the real validator restored the same repair commits
        monkeypatch.setattr(repair_mod, "schedule_violations",
                            schedule_violations)
        res = cone_repair(sched, ev.time, *work, set(), set())
        assert res.ok
        assert _state_fingerprint(sched) != before
        assert schedule_violations(sched) == []

    @pytest.mark.parametrize("mode", MODES)
    def test_settle_failure_rolls_back(self, mode):
        """A repair that fails *inside* the transaction (no alive route
        for a displaced task) must also be invisible."""
        set_hotpath_mode(mode)
        system, sched = _fresh()
        topo = system.topology
        # kill every neighbor link of proc 0's successors' procs is
        # overkill; instead pick an impossible repair: all procs dead
        # but one, then fail that one too via dead set passed directly
        dead = set(topo.processors) - {0}
        frontier = sched.schedule_length() * 0.5
        moves, reroutes = [], []
        for p in dead:
            moves += [
                t for t in sched.proc_order[p]
                if sched.slots[t].start >= frontier
            ]
        moves.sort(key=lambda t: (sched.slots[t].start,
                                  system.graph.task_index(t)))
        before = _state_fingerprint(sched)
        res = cone_repair(sched, frontier, moves, reroutes, dead, set())
        # proc 0 alone cannot host messages that already departed on
        # frozen hops toward other procs — whatever the failure mode,
        # the schedule must be untouched
        if not res.ok:
            assert _state_fingerprint(sched) == before


# ----------------------------------------------------------------------
# repair primitives
# ----------------------------------------------------------------------

class TestAlivePath:
    def test_avoids_dead_resources(self):
        topo = hypercube(8)
        path = alive_path(topo, 0, 7)
        assert path[0] == 0 and path[-1] == 7
        # kill the direct riches: all of 0's neighbors except one
        dead_procs = {1, 2}
        p = alive_path(topo, 0, 7, dead_procs, set())
        assert p is not None
        assert not (set(p[1:]) & dead_procs)

    def test_dead_destination_unreachable(self):
        topo = ring(4)
        assert alive_path(topo, 0, 2, {2}, set()) is None

    def test_evacuation_from_dead_source_allowed(self):
        """Drain semantics: data may leave a dead proc."""
        topo = ring(4)
        p = alive_path(topo, 0, 2, {0}, set())
        assert p is not None and p[0] == 0

    def test_dead_links_avoided(self):
        topo = ring(4)  # 0-1-2-3-0
        p = alive_path(topo, 0, 1, set(), {(0, 1)})
        assert p == [0, 3, 2, 1]
