"""External graph files as first-class workload families.

Covers the provider layer (app tokens with content hashes, stale-file
detection, cell construction), the runner integration (serial and
process-pool), and the acceptance property for the bundled corpus:
every file schedules validator-clean and byte-identically across all
four ``REPRO_HOTPATH`` engine modes, under every scheduler.
"""

import os

import pytest

from repro.errors import ConfigurationError
from repro.experiments.external import corpus_cells, corpus_paths
from repro.experiments.runner import _SCHEDULERS, build_cell_system, run_cell, run_cells
from repro.graph.interchange import load_workload, save_workload
from repro.schedule.io import schedule_to_json
from repro.schedule.validator import validate_schedule
from repro.util.intervals import hotpath_mode, set_hotpath_mode
from repro.workloads.external import (
    app_token,
    external_cell,
    resolve_external,
    split_token,
)
from repro.workloads.suites import random_graph

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS_DIR = os.path.join(REPO_ROOT, "examples", "graphs")

MODES = ("legacy", "fast", "incremental", "array")


@pytest.fixture
def restore_mode():
    initial = hotpath_mode()
    yield
    set_hotpath_mode(initial)


def _write_sample(tmp_path, n=20, seed=1):
    path = str(tmp_path / "sample.stg")
    save_workload(random_graph(n, 1.0, seed=seed), path)
    return path


class TestTokens:
    def test_token_embeds_content_hash(self, tmp_path):
        path = _write_sample(tmp_path)
        token = app_token(path)
        tpath, digest = split_token(token)
        assert tpath == path
        assert digest == load_workload(path).content_hash[:12]

    def test_resolve_rejects_changed_file(self, tmp_path):
        path = _write_sample(tmp_path, seed=1)
        token = app_token(path)
        save_workload(random_graph(20, 1.0, seed=2), path)
        with pytest.raises(ConfigurationError, match="changed on disk"):
            resolve_external(token)
        # a fresh token for the new content resolves fine
        assert resolve_external(app_token(path)).graph.n_tasks == 20

    def test_resolve_accepts_unpinned_path(self, tmp_path):
        path = _write_sample(tmp_path)
        assert resolve_external(path).graph.n_tasks == 20

    def test_cache_key_changes_with_content(self, tmp_path):
        path = _write_sample(tmp_path, seed=1)
        cell_a = external_cell(path, algorithm="heft", topology="ring")
        save_workload(random_graph(20, 1.0, seed=5), path)
        cell_b = external_cell(path, algorithm="heft", topology="ring")
        assert cell_a.key() != cell_b.key()
        assert cell_a.key().startswith("external/")


class TestCells:
    def test_external_cell_defaults(self, tmp_path):
        path = _write_sample(tmp_path, n=30)
        cell = external_cell(path, algorithm="bsa", topology="hypercube")
        assert cell.suite == "external"
        assert cell.size == 30
        assert cell.n_procs == 16
        assert cell.granularity == 1.0

    def test_trace_pins_n_procs(self):
        path = os.path.join(CORPUS_DIR, "ge_trace.json")
        cell = external_cell(path, algorithm="dls", topology="ring")
        assert cell.n_procs == 8
        with pytest.raises(ConfigurationError, match="cannot apply"):
            external_cell(path, algorithm="dls", topology="ring", n_procs=16)

    def test_build_cell_system_binds_exec_table(self):
        path = os.path.join(CORPUS_DIR, "ge_trace.json")
        workload = load_workload(path)
        cell = external_cell(path, algorithm="dls", topology="ring")
        system = build_cell_system(cell)
        for task in system.graph.tasks():
            assert system.exec_cost_row(task) == workload.exec_costs[task]

    def test_mismatched_hand_built_cell_rejected(self, tmp_path):
        # a hand-made cell with the wrong processor count must fail at
        # bind time, not silently resample
        path = os.path.join(CORPUS_DIR, "ge_trace.json")
        cell = external_cell(path, algorithm="dls", topology="ring")
        bad = type(cell)(**{**cell.__dict__, "n_procs": 4})
        with pytest.raises(ConfigurationError, match="8-processor"):
            build_cell_system(bad)

    def test_run_cell_and_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = _write_sample(tmp_path)
        cell = external_cell(path, algorithm="heft", topology="ring", n_procs=8)
        from repro.experiments.cache import ResultCache

        cache = ResultCache(str(tmp_path / "cache" / "results"))
        first = run_cell(cell, cache=cache)
        assert cache.get(cell.key()) is not None
        again = run_cell(cell, cache=cache)
        assert first == again

    def test_run_cells_parallel_workers_resolve_files(self, tmp_path):
        # pool workers rebuild external cells from the token alone: the
        # file path must be enough in a fresh process
        path = _write_sample(tmp_path, n=25)
        cells = [
            external_cell(path, algorithm=a, topology="ring", n_procs=4)
            for a in ("heft", "cpop", "etf", "dls")
        ]
        serial, _ = run_cells(cells, jobs=1, use_cache=False)
        parallel, _ = run_cells(cells, jobs=2, use_cache=False)

        def strip_timing(results):
            return {
                key: {k: v for k, v in r.to_dict().items() if k != "runtime_s"}
                for key, r in results.items()
            }

        assert strip_timing(serial) == strip_timing(parallel)


class TestCorpus:
    def test_corpus_paths_finds_all_three_formats(self):
        names = [os.path.basename(p) for p in corpus_paths(CORPUS_DIR)]
        assert names == ["forkjoin.stg", "ge_trace.json", "series_parallel.dot"]

    def test_corpus_cells_grid(self):
        cells = corpus_cells(CORPUS_DIR)
        # 3 files x 2 topologies x 6 algorithms
        assert len(cells) == 36
        assert {c.algorithm for c in cells} == {
            "bsa", "dls", "heft", "cpop", "etf", "spdecomp"}
        assert all(c.n_procs == 8 for c in cells)

    def test_missing_corpus_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="corpus"):
            corpus_paths(str(tmp_path))

    @pytest.mark.parametrize(
        "filename", ["forkjoin.stg", "ge_trace.json", "series_parallel.dot"]
    )
    @pytest.mark.parametrize("algorithm", ["bsa", "dls", "heft", "cpop", "etf"])
    def test_corpus_schedules_validator_clean(self, filename, algorithm):
        path = os.path.join(CORPUS_DIR, filename)
        cell = external_cell(path, algorithm=algorithm, topology="hypercube",
                             n_procs=None if filename.endswith("trace.json")
                             else 8)
        system = build_cell_system(cell)
        schedule = _SCHEDULERS[algorithm](system)
        validate_schedule(schedule)
        assert len(schedule.slots) == system.graph.n_tasks

    @pytest.mark.parametrize(
        "filename", ["forkjoin.stg", "ge_trace.json", "series_parallel.dot"]
    )
    def test_corpus_byte_identical_across_engine_modes(self, filename, restore_mode):
        """Acceptance: `repro schedule --graph <sample>` produces a
        validator-clean schedule byte-identical across all three
        REPRO_HOTPATH modes (checked via the serialized schedule, which
        records every task time and every message hop)."""
        path = os.path.join(CORPUS_DIR, filename)
        for algorithm in ("bsa", "dls"):
            blobs = {}
            for mode in MODES:
                set_hotpath_mode(mode)
                cell = external_cell(path, algorithm=algorithm, topology="ring")
                system = build_cell_system(cell)
                schedule = _SCHEDULERS[algorithm](system)
                validate_schedule(schedule)
                blobs[mode] = schedule_to_json(schedule)
            assert blobs["legacy"] == blobs["fast"] == blobs["incremental"], (
                f"{filename}/{algorithm}: engine modes diverged"
            )
