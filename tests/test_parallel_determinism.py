"""The parallel sweep engine: sharding, reporting, and determinism.

The headline guarantee: the same sweep run with ``--jobs 1`` and
``--jobs 4`` produces identical cached results (modulo measured wall
time) and identical aggregate tables — each cell is a pure function of
its own seeds and workers never touch shared state.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.config import Cell, Scale
from repro.experiments.figures import figure3
from repro.experiments.reporting import render_panels
from repro.experiments.runner import run_cells

TINY_SCALE = Scale(
    name="tiny",
    sizes=(20,),
    granularities=(1.0,),
    topologies=("ring", "clique"),
    regular_apps=("gauss",),
    n_random_seeds=1,
    het_sweep_sizes=(20,),
    het_sweep_n_graphs=1,
    het_ranges=((1, 10),),
)


def _tiny_cells():
    return [
        Cell("random", "random", 20, 1.0, topology, algorithm,
             n_procs=4, graph_seed=seed, system_seed=seed)
        for topology in ("ring", "clique")
        for algorithm in ("bsa", "dls")
        for seed in (0, 1)
    ]


def _stable(result):
    """Everything deterministic about a cell result (runtime is wall
    clock measured in whichever process ran the cell)."""
    d = dataclasses.asdict(result)
    d.pop("runtime_s")
    return d


class TestShardedCache:
    def test_sharded_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "shards"), shards=4)
        keys = [f"cell/{i}" for i in range(20)]
        for i, key in enumerate(keys):
            cache.put(key, {"schedule_length": float(i)}, flush=False)
        cache.flush()
        reloaded = ResultCache(str(tmp_path / "shards"), shards=4)
        assert len(reloaded) == 20
        for i, key in enumerate(keys):
            assert reloaded.get(key) == {"schedule_length": float(i)}
        shard_files = list((tmp_path / "shards").glob("shard-*.json"))
        assert 1 < len(shard_files) <= 4

    def test_put_many_single_flush(self, tmp_path):
        cache = ResultCache(str(tmp_path / "shards"), shards=2)
        cache.put_many([(f"k{i}", {"v": i}) for i in range(6)])
        assert len(ResultCache(str(tmp_path / "shards"), shards=2)) == 6

    def test_default_cache_is_sharded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache()
        assert cache.sharded
        cache.put("k", {"v": 1})
        assert ResultCache().get("k") == {"v": 1}

    def test_legacy_single_file_imported(self, tmp_path, monkeypatch):
        """A pre-sharding results.json is absorbed into the shard layout
        instead of being silently orphaned."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        legacy = ResultCache(str(tmp_path / "results.json"))
        legacy.put("old-cell", {"schedule_length": 5.0})

        cache = ResultCache()  # default sharded layout, no dir yet
        assert cache.get("old-cell") == {"schedule_length": 5.0}
        cache.flush()
        assert (tmp_path / "results").is_dir()
        # a fresh handle reads it from the shards (no import path taken)
        assert ResultCache().get("old-cell") == {"schedule_length": 5.0}

    def test_bad_shards_env_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "eight")
        cache = ResultCache()
        assert cache.sharded  # fell back to the default shard count

    def test_explicit_directory_honors_shards_env(self, tmp_path, monkeypatch):
        """REPRO_CACHE_SHARDS applies to explicit directories too, not
        only the env-derived default (it used to be read iff path=None)."""
        monkeypatch.setenv("REPRO_CACHE_SHARDS", "3")
        cache = ResultCache(str(tmp_path / "mycache"))
        assert cache.sharded and cache.n_shards == 3
        for i in range(12):
            cache.put(f"k{i}", {"v": i}, flush=False)
        cache.flush()
        files = sorted(p.name for p in (tmp_path / "mycache").glob("shard-*.json"))
        assert files and all(f in {f"shard-{j:02d}.json" for j in range(3)}
                             for f in files)
        # explicit shards= still beats the env
        assert ResultCache(str(tmp_path / "other"), shards=5).n_shards == 5
        # a .json path stays a single-file cache
        assert not ResultCache(str(tmp_path / "single.json")).sharded

    def test_explicit_directory_imports_legacy_file(self, tmp_path):
        """A pre-sharding <dir>.json sibling is absorbed for explicit
        directories exactly like the default layout does."""
        legacy = ResultCache(str(tmp_path / "mycache.json"))
        legacy.put("old-cell", {"schedule_length": 7.0})
        cache = ResultCache(str(tmp_path / "mycache"), shards=4)
        assert cache.get("old-cell") == {"schedule_length": 7.0}
        cache.flush()
        assert ResultCache(str(tmp_path / "mycache"), shards=4).get(
            "old-cell") == {"schedule_length": 7.0}

    def test_failed_flush_is_retried(self, tmp_path, monkeypatch):
        """A shard whose write fails (disk error) stays dirty and really
        is persisted by the next flush, as the docstring promises."""
        import os as _os

        cache = ResultCache(str(tmp_path / "shards"), shards=2)
        cache.put("k", {"v": 1}, flush=False)
        real_replace = _os.replace

        def failing_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.experiments.cache.os.replace",
                            failing_replace)
        cache.flush()
        assert cache._dirty  # nothing was persisted, nothing forgotten
        assert ResultCache(str(tmp_path / "shards"), shards=2).get("k") is None

        monkeypatch.setattr("repro.experiments.cache.os.replace", real_replace)
        cache.flush()
        assert not cache._dirty
        assert ResultCache(str(tmp_path / "shards"), shards=2).get(
            "k") == {"v": 1}

    def test_unwritable_directory_flush_is_retried(self, tmp_path, capsys):
        """makedirs failing (path blocked by a file) must not crash the
        flush nor drop the dirty set — and must warn, once, that
        persistence is off."""
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        cache = ResultCache(str(blocker), shards=2)
        cache.put("k", {"v": 2}, flush=False)
        cache.flush()  # keeps the shard dirty
        assert cache._dirty
        cache.flush()
        assert capsys.readouterr().err.count("result-cache flush") == 1  # once
        blocker.unlink()
        cache.flush()
        assert not cache._dirty
        assert ResultCache(str(blocker), shards=2).get("k") == {"v": 2}

    def test_existing_single_file_at_bare_path_stays_single_file(self, tmp_path):
        """A pre-sharding cache written to an extension-less path (the
        old shards=None default for any explicit path) keeps its
        single-file layout instead of being shadowed by a same-named
        shard directory that could never flush."""
        bare = tmp_path / "mycache"
        old = ResultCache(str(bare), shards=1)
        old.put("old-cell", {"schedule_length": 3.0})
        assert bare.is_file()

        cache = ResultCache(str(bare))  # would default to sharded if new
        assert not cache.sharded
        assert cache.get("old-cell") == {"schedule_length": 3.0}
        cache.put("new-cell", {"schedule_length": 4.0})
        reread = ResultCache(str(bare))
        assert reread.get("old-cell") == {"schedule_length": 3.0}
        assert reread.get("new-cell") == {"schedule_length": 4.0}
        assert bare.is_file()


class TestRunCells:
    def test_serial_report(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        cells = _tiny_cells()
        results, report = run_cells(cells, jobs=1, cache=cache)
        assert report.total == len(cells)
        assert report.unique == len(cells)
        assert report.computed == len(cells)
        assert report.cache_hits == 0
        assert not report.failures
        assert set(results) == {c.key() for c in cells}
        # second run: all hits, nothing recomputed
        _, report2 = run_cells(cells, jobs=1, cache=cache)
        assert report2.cache_hits == len(cells)
        assert report2.computed == 0
        assert "cache hits" in report2.summary()

    def test_duplicates_deduplicated(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        cell = _tiny_cells()[0]
        results, report = run_cells([cell, cell, cell], cache=cache)
        assert report.total == 3
        assert report.unique == 1
        assert report.computed == 1

    def test_failures_reported(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        bad = Cell("random", "random", 20, 1.0, "ring", "no-such-algo",
                   n_procs=4)
        with pytest.raises(ConfigurationError):
            run_cells([bad], cache=cache)
        _, report = run_cells([bad], cache=cache, raise_on_error=False)
        assert len(report.failures) == 1
        assert "no-such-algo" in report.failures[0][0]

    def test_progress_callback(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c.json"))
        lines = []
        run_cells(_tiny_cells()[:2], cache=cache, progress=lines.append)
        assert lines


class TestParallelDeterminism:
    def test_jobs1_vs_jobs4_identical_results(self, tmp_path):
        cells = _tiny_cells()
        cache1 = ResultCache(str(tmp_path / "jobs1"), shards=4)
        cache4 = ResultCache(str(tmp_path / "jobs4"), shards=4)

        results1, report1 = run_cells(cells, jobs=1, cache=cache1)
        results4, report4 = run_cells(cells, jobs=4, cache=cache4)

        assert report1.computed == report4.computed == len(cells)
        assert set(results1) == set(results4)
        for key in results1:
            assert _stable(results1[key]) == _stable(results4[key]), key
        # the caches agree too (parent-side writes only)
        for cell in cells:
            a = ResultCache(str(tmp_path / "jobs1"), shards=4).get(cell.key())
            b = ResultCache(str(tmp_path / "jobs4"), shards=4).get(cell.key())
            a.pop("runtime_s"), b.pop("runtime_s")
            assert a == b

    def test_jobs1_vs_jobs4_identical_tables(self, tmp_path):
        """Aggregate figure tables are byte-identical across job counts."""
        tables = {}
        for jobs in (1, 4):
            cache = ResultCache(str(tmp_path / f"fig-jobs{jobs}"), shards=4)
            panels = figure3(scale=TINY_SCALE, cache=cache, jobs=jobs)
            tables[jobs] = render_panels(panels)
        assert tables[1] == tables[4]

    def test_chunking_does_not_change_results(self, tmp_path):
        cells = _tiny_cells()
        outs = []
        for chunk_size in (1, 3, len(cells)):
            cache = ResultCache(str(tmp_path / f"chunk{chunk_size}"), shards=2)
            results, _ = run_cells(cells, jobs=2, cache=cache,
                                   chunk_size=chunk_size)
            outs.append({k: _stable(v) for k, v in results.items()})
        assert outs[0] == outs[1] == outs[2]
