"""Tests for the shared list-scheduler scaffolding."""

import pytest

from repro import HeterogeneousSystem, TaskGraph, chain, ring
from repro.baselines.common import ListScheduleBuilder
from repro.errors import SchedulingError
from repro.schedule.validator import schedule_violations


@pytest.fixture
def builder(chain3):
    table = {t: [chain3.cost(t)] * 3 for t in chain3.tasks()}
    system = HeterogeneousSystem.from_exec_table(chain3, ring(3), table)
    return ListScheduleBuilder(system, algorithm="test")


class TestPlanMessages:
    def test_entry_task_no_messages(self, builder):
        da, plans = builder.plan_messages("x", 0)
        assert da == 0.0 and plans == []

    def test_unscheduled_predecessor_rejected(self, builder):
        with pytest.raises(SchedulingError):
            builder.plan_messages("y", 0)

    def test_local_plan(self, builder):
        builder.commit("x", 0, 0.0, [])
        da, plans = builder.plan_messages("y", 0)
        assert da == pytest.approx(4.0)  # x finishes at 4
        assert plans[0].path is None

    def test_remote_plan_timing(self, builder):
        builder.commit("x", 0, 0.0, [])
        da, plans = builder.plan_messages("y", 1)
        # message x->y costs 3, departs at 4 over link (0,1)
        assert plans[0].path == [0, 1]
        assert plans[0].hop_starts == [pytest.approx(4.0)]
        assert da == pytest.approx(7.0)

    def test_planning_does_not_commit(self, builder):
        builder.commit("x", 0, 0.0, [])
        builder.plan_messages("y", 1)
        assert builder.sched.link_order[(0, 1)] == []

    def test_two_messages_share_tentative_load(self):
        """Two in-messages crossing the same link must not overlap in plan."""
        g = TaskGraph(name="join")
        g.add_task("p", 4.0)
        g.add_task("q", 4.0)
        g.add_task("j", 2.0)
        g.add_edge("p", "j", 10.0)
        g.add_edge("q", "j", 10.0)
        table = {t: [g.cost(t)] * 2 for t in g.tasks()}
        system = HeterogeneousSystem.from_exec_table(g, chain(2), table)
        b = ListScheduleBuilder(system, algorithm="test")
        b.commit("p", 0, 0.0, [])
        b.commit("q", 0, 4.0, [])
        da, plans = b.plan_messages("j", 1)
        spans = sorted(
            (p.hop_starts[0], p.hop_starts[0] + 10.0) for p in plans
        )
        assert spans[1][0] >= spans[0][1] - 1e-9  # serialized on the link
        assert da == pytest.approx(spans[1][1])


class TestBuilderPolicies:
    def test_proc_append_policy(self, builder):
        builder.commit("x", 0, 0.0, [])
        assert builder.proc_available(0) == pytest.approx(4.0)
        start = builder.earliest_start("y", 0, data_arrival=1.0)
        assert start == pytest.approx(4.0)  # append: after last task

    def test_proc_insertion_policy(self, chain3):
        table = {t: [chain3.cost(t)] * 3 for t in chain3.tasks()}
        system = HeterogeneousSystem.from_exec_table(chain3, ring(3), table)
        b = ListScheduleBuilder(system, algorithm="test", proc_insertion=True)
        # occupy [10, 16) so an earlier gap exists
        b.sched.place_task("y", 0, start=10.0)
        start = b.earliest_start("x", 0, data_arrival=0.0)
        assert start == 0.0  # fits in the gap before y

    def test_finish_marks_leftover_locals(self, builder):
        builder.commit("x", 0, 0.0, [])
        da, plans = builder.plan_messages("y", 0)
        builder.commit("y", 0, da, plans)
        da, plans = builder.plan_messages("z", 0)
        builder.commit("z", 0, da, plans)
        sched = builder.finish()
        assert schedule_violations(sched) == []
        assert all(r.is_local for r in sched.routes.values())
