"""Shared fixtures: small graphs and systems used across the test suite."""

from __future__ import annotations

import pytest

from repro import (
    HeterogeneousSystem,
    TaskGraph,
    clique,
    hypercube,
    random_graph,
    ring,
)
from repro.experiments.paper_example import build_figure1_graph, build_paper_system


@pytest.fixture
def diamond() -> TaskGraph:
    """a -> b, a -> c, b -> d, c -> d (the canonical 4-task diamond)."""
    g = TaskGraph(name="diamond")
    g.add_task("a", 10.0)
    g.add_task("b", 20.0)
    g.add_task("c", 30.0)
    g.add_task("d", 10.0)
    g.add_edge("a", "b", 5.0)
    g.add_edge("a", "c", 15.0)
    g.add_edge("b", "d", 25.0)
    g.add_edge("c", "d", 5.0)
    return g


@pytest.fixture
def chain3() -> TaskGraph:
    """x -> y -> z chain."""
    g = TaskGraph(name="chain3")
    g.add_task("x", 4.0)
    g.add_task("y", 6.0)
    g.add_task("z", 8.0)
    g.add_edge("x", "y", 3.0)
    g.add_edge("y", "z", 5.0)
    return g


@pytest.fixture
def paper_graph() -> TaskGraph:
    return build_figure1_graph()


@pytest.fixture
def paper_system() -> HeterogeneousSystem:
    return build_paper_system()


@pytest.fixture
def small_random_system() -> HeterogeneousSystem:
    """A 30-task random graph on a 4-processor ring (fast to schedule)."""
    graph = random_graph(30, granularity=1.0, seed=7)
    return HeterogeneousSystem.sample(graph, ring(4), het_range=(1, 10), seed=7)


@pytest.fixture
def homogeneous_system(diamond) -> HeterogeneousSystem:
    """Diamond graph on a 3-ring where every processor is identical."""
    table = {t: [diamond.cost(t)] * 3 for t in diamond.tasks()}
    return HeterogeneousSystem.from_exec_table(diamond, ring(3), table)
