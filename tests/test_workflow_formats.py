"""DAX/Pegasus and WfCommons workflow-format importers.

Round-trip exactness (including float costs and id types) over a
randomized sweep, the runtime→cost and shared-file→comm mappings on
foreign-style documents, strict error paths, sniffing, and the
acceptance property for the bundled corpus samples: both import,
schedule validator-clean under all five schedulers, and serialize
byte-identically across all four ``REPRO_HOTPATH`` engine modes.
"""

import os
import random

import pytest

from repro.errors import GraphError
from repro.experiments.runner import _SCHEDULERS, build_cell_system
from repro.graph.interchange import (
    FORMATS,
    dumps_workload,
    format_names,
    graphs_equal,
    load_workload,
    loads_workload,
    read_dax,
    read_wfcommons,
    sniff_format,
    write_dax,
    write_wfcommons,
)
from repro.graph.model import TaskGraph
from repro.schedule.io import schedule_to_json
from repro.schedule.validator import validate_schedule
from repro.util.intervals import hotpath_mode, set_hotpath_mode
from repro.workloads.external import external_cell

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CORPUS_DIR = os.path.join(REPO_ROOT, "examples", "corpus")

DAX_SAMPLE = os.path.join(CORPUS_DIR, "montage_sample.dax")
WFC_SAMPLE = os.path.join(CORPUS_DIR, "epigenomics_sample.wfcommons.json")

MODES = ("legacy", "fast", "incremental", "array")


@pytest.fixture
def restore_mode():
    initial = hotpath_mode()
    yield
    set_hotpath_mode(initial)


def _random_graph(rng, trial):
    g = TaskGraph(name=f"wf-{trial}")
    n = rng.randint(1, 24)
    ids = [i if rng.random() < 0.5 else f"t-{i}" for i in range(n)]
    for tid in ids:
        g.add_task(tid, rng.uniform(0.001, 400.0))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.15:
                comm = 0.0 if rng.random() < 0.1 else rng.uniform(0.0, 250.0)
                g.add_edge(ids[i], ids[j], comm)
    return g


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ["dax", "wfcommons"])
    def test_randomized_round_trip_exact(self, fmt):
        rng = random.Random(20260726)
        for trial in range(25):
            g = _random_graph(rng, trial)
            back = loads_workload(dumps_workload(g, fmt), fmt, validate=False)
            assert graphs_equal(g, back.graph, check_name=True), (fmt, trial)
            # id *types* survive (ints stay ints, strings stay strings)
            assert [type(t) for t in g.tasks()] == [
                type(t) for t in back.graph.tasks()
            ]
            assert back.fmt == fmt

    @pytest.mark.parametrize("fmt", ["dax", "wfcommons"])
    def test_exact_floats_survive(self, fmt):
        g = TaskGraph("floats")
        g.add_task(0, 0.1 + 0.2)  # not representable at %g precision
        g.add_task(1, 1e-12)
        g.add_edge(0, 1, 2.0 / 3.0)
        back = loads_workload(dumps_workload(g, fmt), fmt, validate=False).graph
        assert back.cost(0) == 0.1 + 0.2
        assert back.cost(1) == 1e-12
        assert back.comm_cost(0, 1) == 2.0 / 3.0

    def test_wfcommons_writer_emits_execution_metadata(self):
        """Written instances must carry the machine metadata external
        WfCommons tools expect — a machines table, per-task machine
        assignments, and a makespan — and still round-trip exactly."""
        import json

        from repro.graph.interchange import WFCOMMONS_REFERENCE_MACHINE

        g = TaskGraph("meta")
        g.add_task("a", 2.5)
        g.add_task("b", 4.0)
        g.add_edge("a", "b", 3.0)
        text = write_wfcommons(g)
        doc = json.loads(text)
        execution = doc["workflow"]["execution"]
        # one synthetic reference node (nominal costs are
        # reference-machine costs), named and with a cpu block
        assert [m["nodeName"] for m in execution["machines"]] == [
            WFCOMMONS_REFERENCE_MACHINE
        ]
        assert execution["machines"][0]["cpu"]["coreCount"] == 1
        # every task is assigned to it and keeps its exact runtime
        by_id = {e["id"]: e for e in execution["tasks"]}
        assert set(by_id) == {"a", "b"}
        assert all(
            e["machines"] == [WFCOMMONS_REFERENCE_MACHINE]
            for e in by_id.values()
        )
        assert by_id["a"]["runtimeInSeconds"] == 2.5
        # serial reference makespan = total execution cost
        assert execution["makespanInSeconds"] == 6.5
        # the metadata does not disturb the lossless round trip
        back = read_wfcommons(text)
        assert graphs_equal(g, back.graph, check_name=True)


class TestDaxReader:
    def test_bundled_sample_imports(self):
        wl = load_workload(DAX_SAMPLE)
        assert wl.fmt == "dax"
        assert wl.graph.name == "montage-sample"
        assert wl.graph.n_tasks == 16
        assert wl.graph.n_edges == 24
        # foreign DAX (no reproid): job ids become string task ids
        assert "ID00000" in wl.graph
        # runtime attribute maps to the execution cost verbatim
        assert wl.graph.cost("ID00000") == 13.59
        # multi-file edges: mBackground reads proj_i AND corrections.tbl
        # from two different parents — each edge sums its own files
        assert wl.graph.comm_cost("ID00000", "ID00009") == 165.0
        assert wl.graph.comm_cost("ID00008", "ID00009") == 1.8

    def test_shared_file_sizes_sum_per_edge(self):
        text = (
            '<adag name="m"><job id="A" runtime="1">'
            '<uses file="f1" link="output" size="10.0"/>'
            '<uses file="f2" link="output" size="4.0"/>'
            '<uses file="f3" link="output" size="100.0"/></job>'
            '<job id="B" runtime="2">'
            '<uses file="f1" link="input" size="10.0"/>'
            '<uses file="f2" link="input" size="4.0"/></job>'
            '<child ref="B"><parent ref="A"/></child></adag>'
        )
        wl = read_dax(text)
        # f3 is produced but not consumed by B: not part of the edge
        assert wl.graph.comm_cost("A", "B") == 14.0

    def test_runtime_and_size_scales(self):
        text = (
            '<adag><job id="A" runtime="2"><uses file="f" link="output" '
            'size="8"/></job><job id="B" runtime="4"><uses file="f" '
            'link="input" size="8"/></job>'
            '<child ref="B"><parent ref="A"/></child></adag>'
        )
        wl = read_dax(text, runtime_scale=10.0, size_scale=0.5)
        assert wl.graph.cost("A") == 20.0
        assert wl.graph.comm_cost("A", "B") == 4.0

    def test_repeated_parent_declarations_deduplicated(self):
        # legal DAX: the same dependency stated twice (within one child
        # block or across blocks) is one edge, like the WfCommons reader
        text = (
            '<adag><job id="A" runtime="2"/><job id="B" runtime="3"/>'
            '<child ref="B"><parent ref="A"/><parent ref="A"/></child>'
            '<child ref="B"><parent ref="A"/></child></adag>'
        )
        wl = read_dax(text, default_comm=1.0)
        assert wl.graph.edges() == [("A", "B")]

    def test_namespaced_and_dax3_spellings(self):
        text = (
            '<adag xmlns="http://pegasus.isi.edu/schema/DAX">'
            '<job id="A" runtime="1"><uses name="f" link="output" size="3"/>'
            '</job><job id="B" runtime="1"><uses name="f" link="input" '
            'size="3"/></job><child ref="B"><parent ref="A"/></child></adag>'
        )
        wl = read_dax(text)
        assert wl.graph.comm_cost("A", "B") == 3.0

    @pytest.mark.parametrize(
        "text, match",
        [
            ("<adag><job runtime='1'/></adag>", "without an id"),
            ("<adag><job id='A'/></adag>", "no runtime"),
            ("<adag><job id='A' runtime='x'/></adag>", "not a number"),
            ("<adag><job id='A' runtime='0'/></adag>", "non-positive"),
            ("<adag><job id='A' runtime='-2'/></adag>", "non-positive"),
            ("<adag><job id='A' runtime='1'/><job id='A' runtime='1'/></adag>",
             "duplicate"),
            ("<adag></adag>", "no jobs"),
            ("<adag><job id='A' runtime='1'/><child ref='A'>"
             "<parent ref='Z'/></child></adag>", "unknown parent"),
            ("<adag><job id='A' runtime='1'/><child ref='Z'>"
             "<parent ref='A'/></child></adag>", "unknown job"),
            ("<notadax/>", "expected <adag>"),
            ("<adag", "not well-formed"),
        ],
    )
    def test_error_paths(self, text, match):
        with pytest.raises(GraphError, match=match):
            read_dax(text)


class TestWfCommonsReader:
    def test_bundled_sample_imports(self):
        wl = load_workload(WFC_SAMPLE)
        assert wl.fmt == "wfcommons"
        assert wl.graph.name == "epigenomics-sample"
        assert wl.graph.n_tasks == 20
        assert wl.graph.cost("fastqSplit_00") == 35.26
        # edge comm = size of the one shared file
        assert wl.graph.comm_cost("fastqSplit_00", "filterContams_00") == 30.2

    def test_flat_and_spec_layouts_read_identically(self):
        flat = (
            '{"name": "w", "workflow": {"tasks": ['
            '{"name": "a", "runtime": 2.0, "parents": [], "files": ['
            '{"name": "f", "link": "output", "size": 7.0}]},'
            '{"name": "b", "runtime": 3.0, "parents": ["a"], "files": ['
            '{"name": "f", "link": "input", "size": 7.0}]}]}}'
        )
        spec = (
            '{"name": "w", "schemaVersion": "1.4", "workflow": {'
            '"specification": {"tasks": ['
            '{"id": "a", "parents": [], "children": ["b"],'
            ' "inputFiles": [], "outputFiles": ["f"]},'
            '{"id": "b", "parents": ["a"], "children": [],'
            ' "inputFiles": ["f"], "outputFiles": []}],'
            '"files": [{"id": "f", "sizeInBytes": 7.0}]},'
            '"execution": {"tasks": ['
            '{"id": "a", "runtimeInSeconds": 2.0},'
            '{"id": "b", "runtimeInSeconds": 3.0}]}}}'
        )
        a = read_wfcommons(flat).graph
        b = read_wfcommons(spec).graph
        assert graphs_equal(a, b, check_name=True)
        assert a.comm_cost("a", "b") == 7.0

    def test_legacy_layout_resolves_parents_by_name(self):
        # real legacy instances carry both a name and a surrogate id,
        # with parents/children referencing the *name*
        text = (
            '{"workflow": {"tasks": ['
            '{"name": "mProject_00", "id": "ID0000001", "runtime": 1.0},'
            '{"name": "mDiff_00", "id": "ID0000002", "runtime": 2.0,'
            ' "parents": ["mProject_00"]}]}}'
        )
        wl = read_wfcommons(text)
        assert wl.graph.tasks() == ["mProject_00", "mDiff_00"]
        assert wl.graph.edges() == [("mProject_00", "mDiff_00")]

    def test_children_only_structure(self):
        # some instances declare children but not parents
        text = (
            '{"workflow": {"tasks": ['
            '{"name": "a", "runtime": 1.0, "children": ["b"]},'
            '{"name": "b", "runtime": 1.0}]}}'
        )
        wl = read_wfcommons(text, default_comm=2.5)
        assert wl.graph.edges() == [("a", "b")]
        assert wl.graph.comm_cost("a", "b") == 2.5

    def test_runtime_scale(self):
        text = (
            '{"workflow": {"tasks": [{"name": "a", "runtime": 0.004}]}}'
        )
        wl = read_wfcommons(text, runtime_scale=1000.0)
        assert wl.graph.cost("a") == 4.0

    @pytest.mark.parametrize(
        "text, match",
        [
            ("{", "not valid JSON"),
            ("{}", "no 'workflow' object"),
            ('{"workflow": {}}', "neither"),
            ('{"workflow": {"tasks": [{"runtime": 1}]}}', "without id/name"),
            ('{"workflow": {"tasks": [{"name": "a"}]}}', "no runtime"),
            ('{"workflow": {"tasks": [{"name": "a", "runtime": 0}]}}',
             "non-positive"),
            ('{"workflow": {"tasks": [{"name": "a", "runtime": "x"}]}}',
             "not a number"),
            ('{"workflow": {"tasks": [{"name": "a", "runtime": 1},'
             '{"name": "a", "runtime": 1}]}}', "duplicate"),
            ('{"workflow": {"tasks": [{"name": "a", "runtime": 1,'
             ' "parents": ["z"]}]}}', "unknown parent"),
            ('{"workflow": {"tasks": [{"name": "a", "runtime": 1,'
             ' "children": ["z"]}]}}', "unknown child"),
        ],
    )
    def test_error_paths(self, text, match):
        with pytest.raises(GraphError, match=match):
            read_wfcommons(text)

    def test_spec_layout_missing_execution_runtime(self):
        text = (
            '{"workflow": {"specification": {"tasks": ['
            '{"id": "a", "parents": []}]}, "execution": {"tasks": []}}}'
        )
        with pytest.raises(GraphError, match="no runtime"):
            read_wfcommons(text)


class TestRegistry:
    def test_formats_registered(self):
        assert format_names() == ("stg", "dot", "trace", "json", "dax", "wfcommons")
        assert FORMATS["dax"].extensions == (".dax",)
        assert FORMATS["wfcommons"].extensions == (".wfcommons.json",)

    def test_sniffing(self):
        with open(DAX_SAMPLE) as fh:
            assert sniff_format(fh.read()) == "dax"
        with open(WFC_SAMPLE) as fh:
            assert sniff_format(fh.read()) == "wfcommons"
        # a wfcommons doc never collides with the trace/json sniffers
        g = TaskGraph("x")
        g.add_task(0, 1.0)
        assert sniff_format(write_wfcommons(g)) == "wfcommons"
        assert sniff_format(write_dax(g)) == "dax"

    def test_load_validates_strictly(self, tmp_path):
        # an acyclic check still applies to workflow formats
        text = (
            '<adag><job id="A" runtime="1"/><job id="B" runtime="1"/>'
            '<child ref="B"><parent ref="A"/></child>'
            '<child ref="A"><parent ref="B"/></child></adag>'
        )
        path = tmp_path / "cyclic.dax"
        path.write_text(text)
        with pytest.raises(Exception):
            load_workload(str(path))


class TestCorpusSamplesSchedule:
    @pytest.mark.parametrize("path", [DAX_SAMPLE, WFC_SAMPLE])
    @pytest.mark.parametrize("algorithm", ["bsa", "dls", "heft", "cpop", "etf"])
    def test_validator_clean_under_all_schedulers(self, path, algorithm):
        cell = external_cell(path, algorithm=algorithm, topology="hypercube",
                             n_procs=8)
        system = build_cell_system(cell)
        schedule = _SCHEDULERS[algorithm](system)
        validate_schedule(schedule)
        assert len(schedule.slots) == system.graph.n_tasks

    @pytest.mark.parametrize("path", [DAX_SAMPLE, WFC_SAMPLE])
    def test_byte_identical_across_engine_modes(self, path, restore_mode):
        for algorithm in ("bsa", "dls"):
            blobs = {}
            for mode in MODES:
                set_hotpath_mode(mode)
                cell = external_cell(path, algorithm=algorithm,
                                     topology="ring", n_procs=8)
                system = build_cell_system(cell)
                schedule = _SCHEDULERS[algorithm](system)
                validate_schedule(schedule)
                blobs[mode] = schedule_to_json(schedule)
            assert blobs["legacy"] == blobs["fast"] == blobs["incremental"], (
                f"{os.path.basename(path)}/{algorithm}: engine modes diverged"
            )
