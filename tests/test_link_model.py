"""Heterogeneous link model: LinkSpec, duplex channels, bandwidth,
new topology builders (torus / fat tree), cost-aware routing, and the
duplex-aware validator.
"""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.network.routing import RoutingTable, shortest_path
from repro.network.system import HeterogeneousSystem
from repro.network.topology import (
    DEFAULT_LINK_SPEC,
    LinkSpec,
    Topology,
    apply_link_model,
    chain,
    fat_tree,
    ring,
    torus2d,
)
from repro.graph.model import TaskGraph
from repro.schedule.schedule import Schedule
from repro.schedule.settle import settle
from repro.schedule.io import schedule_from_dict, schedule_to_dict
from repro.schedule.validator import schedule_violations, validate_schedule
from repro.util.tolerance import EPS, TOL


# ----------------------------------------------------------------------
# LinkSpec & Topology accessors
# ----------------------------------------------------------------------

class TestLinkSpec:
    def test_defaults(self):
        assert DEFAULT_LINK_SPEC == LinkSpec(bandwidth=1.0, duplex="half")

    def test_validation(self):
        with pytest.raises(TopologyError):
            LinkSpec(bandwidth=0.0)
        with pytest.raises(TopologyError):
            LinkSpec(bandwidth=-2.0)
        with pytest.raises(TopologyError):
            LinkSpec(duplex="simplex")

    def test_roundtrip(self):
        spec = LinkSpec(bandwidth=3.5, duplex="full")
        assert LinkSpec.from_dict(spec.to_dict()) == spec


class TestTopologySpecs:
    def test_default_specs_uniform(self):
        t = ring(4)
        assert t.uniform_bandwidth
        assert t.all_half_duplex
        assert t.spec(0, 1) == DEFAULT_LINK_SPEC
        assert t.bandwidth(1, 0) == 1.0
        assert t.duplex(2, 3) == "half"

    def test_explicit_specs(self):
        t = Topology(3, [(0, 1), (1, 2)], link_specs={
            (1, 0): LinkSpec(bandwidth=4.0, duplex="full"),
        })
        assert t.bandwidth(0, 1) == 4.0          # reversed pair canonicalized
        assert t.duplex(0, 1) == "full"
        assert t.spec(1, 2) == DEFAULT_LINK_SPEC
        assert not t.uniform_bandwidth
        assert not t.all_half_duplex

    def test_spec_for_missing_link_rejected(self):
        with pytest.raises(TopologyError):
            Topology(3, [(0, 1), (1, 2)], link_specs={(0, 2): LinkSpec()})

    def test_both_orientations_of_one_link_rejected(self):
        # (0, 1) and (1, 0) canonicalize to the same link: accepting both
        # would let dict order silently pick one spec
        with pytest.raises(TopologyError):
            Topology(3, [(0, 1), (1, 2)], link_specs={
                (0, 1): LinkSpec(bandwidth=2.0),
                (1, 0): LinkSpec(bandwidth=8.0),
            })

    def test_half_duplex_channels_are_link_ids(self):
        t = ring(4)
        assert t.channels() == t.links
        assert t.channel(0, 1) == (0, 1)
        assert t.channel(1, 0) == (0, 1)

    def test_full_duplex_channels_per_direction(self):
        t = Topology(3, [(0, 1), (1, 2)],
                     default_spec=LinkSpec(duplex="full"))
        assert t.channels() == [(0, 1), (1, 0), (1, 2), (2, 1)]
        assert t.channel(0, 1) == (0, 1)
        assert t.channel(1, 0) == (1, 0)

    def test_channel_missing_link(self):
        with pytest.raises(TopologyError):
            ring(4).channel(0, 2)

    def test_serialization_roundtrip(self):
        t = Topology(3, [(0, 1), (1, 2)], name="t3", link_specs={
            (0, 1): LinkSpec(bandwidth=2.0, duplex="full"),
        })
        t2 = Topology.from_dict(t.to_dict())
        assert t2.name == "t3"
        assert t2.links == t.links
        assert t2.spec(0, 1) == t.spec(0, 1)
        assert t2.spec(1, 2) == DEFAULT_LINK_SPEC
        # default specs are omitted from the export
        assert "1-2" not in (t.to_dict().get("link_specs") or {})


# ----------------------------------------------------------------------
# new builders
# ----------------------------------------------------------------------

class TestTorus:
    def test_4x4(self):
        t = torus2d(4, 4)
        assert t.n_procs == 16
        assert t.n_links == 32                   # 2 links per node
        assert all(t.degree(p) == 4 for p in t.processors)
        assert t.has_link(0, 3)                  # row wrap
        assert t.has_link(0, 12)                 # column wrap

    def test_no_duplicate_links_for_dim_2(self):
        # a 2-wide dimension must not wrap (would duplicate the mesh link)
        t = torus2d(2, 4)
        assert t.n_links == 12
        t = torus2d(2, 2)
        assert t.n_links == 4

    def test_diameter_beats_mesh(self):
        from repro.network.topology import mesh2d
        assert torus2d(4, 4).diameter() < mesh2d(4, 4).diameter()

    def test_too_small(self):
        with pytest.raises(TopologyError):
            torus2d(1, 2)


class TestFatTree:
    def test_bandwidth_doubles_toward_root(self):
        t = fat_tree(15)                          # complete binary, 4 levels
        # leaf links (depth 2 -> 3) have bandwidth 1, doubling upward
        assert t.bandwidth(3, 7) == 1.0
        assert t.bandwidth(1, 3) == 2.0
        assert t.bandwidth(0, 1) == 4.0
        assert not t.uniform_bandwidth
        assert t.all_half_duplex

    def test_duplex_option(self):
        t = fat_tree(7, duplex="full")
        assert not t.all_half_duplex
        assert len(t.channels()) == 2 * t.n_links

    def test_validation(self):
        with pytest.raises(TopologyError):
            fat_tree(1)
        with pytest.raises(TopologyError):
            fat_tree(8, branching=1)


class TestApplyLinkModel:
    def test_defaults_are_identity(self):
        t = ring(4)
        assert apply_link_model(t) is t

    def test_full_duplex_overlay(self):
        t = apply_link_model(ring(4), duplex="full")
        assert not t.all_half_duplex
        assert t.uniform_bandwidth
        assert t.name == "ring4+full"

    def test_bandwidth_skew_deterministic_and_bounded(self):
        t1 = apply_link_model(ring(6), bandwidth_skew=8.0, seed=3)
        t2 = apply_link_model(ring(6), bandwidth_skew=8.0, seed=3)
        for l in t1.links:
            assert 1.0 <= t1.bandwidth(*l) <= 8.0
            assert t1.bandwidth(*l) == t2.bandwidth(*l)
        t3 = apply_link_model(ring(6), bandwidth_skew=8.0, seed=4)
        assert any(t1.bandwidth(*l) != t3.bandwidth(*l) for l in t1.links)

    def test_duplex_flip_preserves_fat_bandwidths(self):
        t = apply_link_model(fat_tree(7), duplex="full")
        assert t.bandwidth(0, 1) == fat_tree(7).bandwidth(0, 1)
        assert t.duplex(0, 1) == "full"

    def test_half_overlay_converts_full_duplex_base(self):
        # requesting the default model on a full-duplex base is NOT a
        # no-op: "duplex applies to every link"
        base = fat_tree(8, duplex="full")
        t = apply_link_model(base, duplex="half")
        assert t is not base
        assert t.all_half_duplex
        assert t.bandwidth(0, 1) == base.bandwidth(0, 1)  # fatness kept

    def test_skew_below_one_rejected(self):
        with pytest.raises(TopologyError):
            apply_link_model(ring(4), bandwidth_skew=0.5)


# ----------------------------------------------------------------------
# bandwidth in hop durations
# ----------------------------------------------------------------------

def _two_task_system(topology):
    g = TaskGraph(name="pair")
    g.add_task("a", 10.0)
    g.add_task("b", 10.0)
    g.add_edge("a", "b", 12.0)
    table = {t: [g.cost(t)] * topology.n_procs for t in g.tasks()}
    return HeterogeneousSystem.from_exec_table(g, topology, table)


class TestBandwidthCost:
    def test_comm_cost_divides_by_bandwidth(self):
        topo = Topology(2, [(0, 1)], link_specs={(0, 1): LinkSpec(bandwidth=4.0)})
        system = _two_task_system(topo)
        assert system.comm_cost(("a", "b"), (0, 1)) == 12.0 / 4.0

    def test_unit_bandwidth_is_bit_exact(self):
        fast = _two_task_system(chain(2))
        assert fast.comm_cost(("a", "b"), (0, 1)) == 12.0


# ----------------------------------------------------------------------
# cost-aware routing
# ----------------------------------------------------------------------

class TestWeightedRouting:
    def test_equals_bfs_hop_counts_on_uniform_topology(self):
        # same metric on unit bandwidth: every route has the BFS hop
        # count (equal-length ties may resolve to a different route)
        topo = ring(6)
        bfs = RoutingTable(topo, strategy="bfs")
        weighted = RoutingTable(topo, strategy="weighted")
        for s in topo.processors:
            for d in topo.processors:
                assert bfs.hop_distance(s, d) == weighted.hop_distance(s, d)

    def test_deterministic(self):
        topo = apply_link_model(ring(6), bandwidth_skew=4.0, seed=9)
        t1 = RoutingTable(topo, strategy="weighted")
        t2 = RoutingTable(topo, strategy="weighted")
        for s in topo.processors:
            for d in topo.processors:
                assert t1.path(s, d) == t2.path(s, d)

    def test_prefers_fat_links(self):
        # square 0-1-2-3-0; the 0-1-2 side is 10x fatter than 0-3-2
        topo = Topology(4, [(0, 1), (1, 2), (2, 3), (0, 3)], link_specs={
            (0, 1): LinkSpec(bandwidth=10.0),
            (1, 2): LinkSpec(bandwidth=10.0),
        })
        weighted = RoutingTable(topo, strategy="weighted")
        assert weighted.path(0, 2) == [0, 1, 2]    # 0.2 < 2.0 total time
        bfs = RoutingTable(topo, strategy="bfs")
        assert bfs.path(0, 2) == [0, 1, 2]          # tie at 2 hops, lexicographic

    def test_takes_longer_but_faster_route(self):
        # 0-2 direct (thin) vs 0-1-2 (two fat hops)
        topo = Topology(3, [(0, 1), (1, 2), (0, 2)], link_specs={
            (0, 1): LinkSpec(bandwidth=10.0),
            (1, 2): LinkSpec(bandwidth=10.0),
        })
        weighted = RoutingTable(topo, strategy="weighted")
        assert weighted.path(0, 2) == [0, 1, 2]
        assert RoutingTable(topo, strategy="bfs").path(0, 2) == [0, 2]

    def test_dls_weighted_variant(self):
        # the registry variant routes over the weighted table and still
        # produces a strictly valid schedule on a fat tree
        from repro.experiments.config import Cell
        from repro.experiments.runner import _SCHEDULERS, build_cell_system

        cell = Cell("random", "random", 24, 1.0, "fattree", "dls-weighted",
                    n_procs=8, graph_seed=21, system_seed=22)
        system = build_cell_system(cell)
        sched = _SCHEDULERS["dls-weighted"](system)
        validate_schedule(sched)
        assert len(sched.slots) == system.graph.n_tasks


# ----------------------------------------------------------------------
# full-duplex scheduling substrate + duplex-aware validation
# ----------------------------------------------------------------------

def _crossing_system(duplex: str):
    """Two messages crossing one link in opposite directions."""
    g = TaskGraph(name="cross")
    g.add_task("a", 10.0)
    g.add_task("b", 10.0)
    g.add_task("c", 5.0)
    g.add_task("d", 5.0)
    g.add_edge("a", "c", 20.0)
    g.add_edge("b", "d", 20.0)
    topo = Topology(2, [(0, 1)], name=f"pair-{duplex}",
                    default_spec=LinkSpec(duplex=duplex))
    table = {t: [g.cost(t)] * 2 for t in g.tasks()}
    return HeterogeneousSystem.from_exec_table(g, topo, table)


def _crossing_schedule(system) -> Schedule:
    """a on P0 -> c on P1 and b on P1 -> d on P0, messages overlapping."""
    s = Schedule(system, algorithm="handmade")
    s.place_task("a", 0, start=0.0)
    s.place_task("b", 1, start=0.0)
    s.place_task("c", 1, start=30.0)
    s.place_task("d", 0, start=30.0)
    s.set_route(("a", "c"), [0, 1], hop_starts=[10.0])
    s.set_route(("b", "d"), [1, 0], hop_starts=[10.0])
    return s


class TestDuplexValidation:
    def test_crossing_valid_on_full_duplex(self):
        sched = _crossing_schedule(_crossing_system("full"))
        assert schedule_violations(sched) == []

    def test_crossing_flagged_on_half_duplex(self):
        sched = _crossing_schedule(_crossing_system("half"))
        v = schedule_violations(sched)
        assert any("overlap" in x for x in v)

    def test_full_duplex_replay_on_half_duplex_is_caught(self):
        # the satellite case: a schedule valid under full duplex must be
        # rejected when validated against a half-duplex system — the
        # validator reads the duplex mode from the topology, not from
        # how the hops were stored
        full = _crossing_system("full")
        blob = schedule_to_dict(_crossing_schedule(full))
        half = _crossing_system("half")
        replay = schedule_from_dict(blob, half)
        v = schedule_violations(replay)
        assert any("overlap" in x for x in v)

    def test_same_direction_overlap_still_flagged_on_full_duplex(self):
        system = _crossing_system("full")
        s = Schedule(system, algorithm="handmade")
        s.place_task("a", 0, start=0.0)
        s.place_task("b", 0, start=10.0)
        s.place_task("c", 1, start=40.0)
        s.place_task("d", 1, start=45.0)
        s.set_route(("a", "c"), [0, 1], hop_starts=[10.0])
        s.set_route(("b", "d"), [0, 1], hop_starts=[25.0])  # overlaps [10, 30)
        v = schedule_violations(s)
        assert any("overlap" in x and "direction" in x for x in v)

    def test_full_duplex_link_order_channels(self):
        sched = _crossing_schedule(_crossing_system("full"))
        assert set(sched.link_order) == {(0, 1), (1, 0)}
        assert len(sched.link_order[(0, 1)]) == 1
        assert len(sched.link_order[(1, 0)]) == 1

    def test_settle_respects_per_direction_timelines(self):
        sched = _crossing_schedule(_crossing_system("full"))
        settle(sched)
        # both messages depart at t=10 (producers finish at 10): the two
        # directions do not serialize against each other
        assert sched.routes[("a", "c")].hops[0].start == 10.0
        assert sched.routes[("b", "d")].hops[0].start == 10.0
        validate_schedule(sched)

    def test_settle_serializes_half_duplex(self):
        sched = _crossing_schedule(_crossing_system("half"))
        settle(sched)
        starts = sorted(
            r.hops[0].start for r in sched.routes.values() if r.hops
        )
        assert starts == [10.0, 30.0]             # one waits for the other
        validate_schedule(sched)


# ----------------------------------------------------------------------
# tolerance unification (bugfix regression)
# ----------------------------------------------------------------------

class TestToleranceBoundary:
    def test_validator_tol_matches_engine_eps(self):
        assert TOL == EPS == 1e-9

    def test_band_violation_now_caught(self):
        # a hop departing 5e-7 before its producer finishes sits in the
        # old 1e-9..1e-6 blind spot: the engine would never build it,
        # but the validator's old 1e-6 tolerance accepted it
        system = _crossing_system("full")
        s = Schedule(system, algorithm="handmade")
        s.place_task("a", 0, start=0.0)           # finishes at 10.0
        s.place_task("b", 1, start=0.0)
        s.place_task("c", 1, start=40.0)
        s.place_task("d", 1, start=50.0)
        s.mark_local(("b", "d"))
        s.set_route(("a", "c"), [0, 1], hop_starts=[10.0 - 5e-7])
        v = schedule_violations(s)
        assert any("before" in x and "ready" in x for x in v)

    def test_sub_eps_noise_still_tolerated(self):
        system = _crossing_system("full")
        s = Schedule(system, algorithm="handmade")
        s.place_task("a", 0, start=0.0)
        s.place_task("b", 1, start=0.0)
        s.place_task("c", 1, start=40.0)
        s.place_task("d", 1, start=50.0)
        s.mark_local(("b", "d"))
        s.set_route(("a", "c"), [0, 1], hop_starts=[10.0 - 5e-10])
        v = [x for x in schedule_violations(s) if "ready" in x]
        assert v == []
