"""Tests for BFS routing tables."""

import pytest

from repro import RoutingTable, clique, hypercube, ring
from repro.errors import RoutingError
from repro.network.routing import shortest_path
from repro.network.topology import random_topology


class TestRoutingTable:
    def test_ring_paths(self):
        table = RoutingTable(ring(8))
        assert table.path(0, 0) == [0]
        assert table.path(0, 2) == [0, 1, 2]
        assert table.hop_distance(0, 4) == 4
        # the short way around
        assert table.path(0, 6) == [0, 7, 6]

    def test_clique_one_hop(self):
        table = RoutingTable(clique(6))
        for a in range(6):
            for b in range(6):
                if a != b:
                    assert table.path(a, b) == [a, b]

    def test_hypercube_distance_is_popcount(self):
        table = RoutingTable(hypercube(16))
        for a in range(16):
            for b in range(16):
                if a != b:
                    assert table.hop_distance(a, b) == bin(a ^ b).count("1")

    def test_links_on_path(self):
        table = RoutingTable(ring(6))
        assert table.links_on_path(0, 2) == [(0, 1), (1, 2)]

    def test_next_hop_self_rejected(self):
        table = RoutingTable(ring(4))
        with pytest.raises(RoutingError):
            table.next_hop(1, 1)

    def test_paths_are_shortest_on_random_topologies(self):
        for seed in range(3):
            topo = random_topology(12, 2, 5, seed=seed)
            table = RoutingTable(topo)
            for a in topo.processors:
                for b in topo.processors:
                    if a == b:
                        continue
                    assert table.hop_distance(a, b) == len(shortest_path(topo, a, b)) - 1

    def test_deterministic(self):
        t1 = RoutingTable(ring(8))
        t2 = RoutingTable(ring(8))
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert t1.path(a, b) == t2.path(a, b)


class TestShortestPath:
    def test_endpoints(self):
        topo = hypercube(8)
        path = shortest_path(topo, 0, 7)
        assert path[0] == 0 and path[-1] == 7
        assert len(path) == 4  # 3 hops
        for a, b in zip(path, path[1:]):
            assert topo.has_link(a, b)

    def test_same_node(self):
        assert shortest_path(ring(4), 2, 2) == [2]
