"""Tests for the Schedule container (slots, routes, bookkeeping)."""

import pytest

from repro import Schedule
from repro.errors import SchedulingError
from repro.schedule.events import MessageHop, Route


@pytest.fixture
def sched(homogeneous_system):
    return Schedule(homogeneous_system, algorithm="test")


class TestTaskPlacement:
    def test_place_and_query(self, sched):
        slot = sched.place_task("a", 0, start=5.0)
        assert slot.start == 5.0
        assert slot.finish == 15.0  # cost(a) == 10
        assert sched.proc_of("a") == 0
        assert sched.is_scheduled("a")
        assert sched.schedule_length() == 15.0

    def test_double_placement_rejected(self, sched):
        sched.place_task("a", 0, start=0.0)
        with pytest.raises(SchedulingError):
            sched.place_task("a", 1, start=0.0)

    def test_unscheduled_query_rejected(self, sched):
        with pytest.raises(SchedulingError):
            sched.proc_of("a")

    def test_order_sorted_by_start(self, sched):
        sched.place_task("a", 0, start=50.0)
        sched.place_task("b", 0, start=10.0)
        sched.place_task("c", 0, start=80.0)
        assert sched.proc_order[0] == ["b", "a", "c"]

    def test_explicit_position(self, sched):
        sched.place_task("a", 0, start=0.0)
        sched.place_task("b", 0, start=100.0, position=0)
        assert sched.proc_order[0] == ["b", "a"]

    def test_remove_task(self, sched):
        sched.place_task("a", 0, start=0.0)
        slot = sched.remove_task("a")
        assert slot.task == "a"
        assert not sched.is_scheduled("a")
        assert sched.proc_order[0] == []
        with pytest.raises(SchedulingError):
            sched.remove_task("a")

    def test_empty_schedule_length(self, sched):
        assert sched.schedule_length() == 0.0


class TestRoutes:
    def test_set_route_creates_hops(self, sched):
        sched.place_task("a", 0, start=0.0)
        sched.place_task("b", 1, start=100.0)
        route = sched.set_route(("a", "b"), [0, 1], hop_starts=[10.0])
        assert len(route.hops) == 1
        hop = route.hops[0]
        assert hop.link == (0, 1)
        assert hop.start == 10.0
        assert hop.finish == 10.0 + 5.0  # comm cost a->b is 5
        assert sched.link_order[(0, 1)] == [hop]

    def test_multihop_route(self, sched):
        route = sched.set_route(("a", "c"), [0, 1, 2], hop_starts=[0.0, 20.0])
        assert route.procs == [0, 1, 2]
        assert route.check_contiguous()
        assert len(sched.link_order[(0, 1)]) == 1
        assert len(sched.link_order[(1, 2)]) == 1

    def test_set_route_replaces_old(self, sched):
        sched.set_route(("a", "b"), [0, 1], hop_starts=[0.0])
        sched.set_route(("a", "b"), [0, 2, 1], hop_starts=[0.0, 10.0])
        # the old direct hop on (0,1) is released; new hops on (0,2), (1,2)
        assert len(sched.link_order[(0, 1)]) == 0
        assert len(sched.link_order[(0, 2)]) == 1
        assert len(sched.link_order[(1, 2)]) == 1
        assert sched.routes[("a", "b")].procs == [0, 2, 1]

    def test_route_over_missing_link_rejected(self, sched):
        # ring(3) has links (0,1),(1,2),(0,2): path [0, 0] invalid anyway
        with pytest.raises(SchedulingError):
            sched.set_route(("a", "b"), [0])

    def test_clear_route_releases_links(self, sched):
        sched.set_route(("a", "b"), [0, 1], hop_starts=[0.0])
        sched.clear_route(("a", "b"))
        assert sched.link_order[(0, 1)] == []
        assert ("a", "b") not in sched.routes

    def test_mark_local(self, sched):
        sched.set_route(("a", "b"), [0, 1], hop_starts=[0.0])
        sched.mark_local(("a", "b"))
        assert sched.routes[("a", "b")].is_local
        assert sched.link_order[(0, 1)] == []

    def test_arrival_time_local_vs_routed(self, sched):
        sched.place_task("a", 0, start=0.0)   # finishes at 10
        sched.place_task("b", 0, start=10.0)
        sched.mark_local(("a", "b"))
        assert sched.arrival_time(("a", "b")) == 10.0
        sched.remove_task("b")
        sched.place_task("b", 1, start=100.0)
        sched.set_route(("a", "b"), [0, 1], hop_starts=[12.0])
        assert sched.arrival_time(("a", "b")) == 17.0  # 12 + comm 5


class TestCopyRestore:
    def test_copy_is_deep(self, sched):
        sched.place_task("a", 0, start=0.0)
        sched.set_route(("a", "b"), [0, 1], hop_starts=[0.0])
        dup = sched.copy()
        dup.slots["a"].start = 999.0
        dup.routes[("a", "b")].hops[0].start = 999.0
        assert sched.slots["a"].start == 0.0
        assert sched.routes[("a", "b")].hops[0].start == 0.0

    def test_copy_preserves_link_identity(self, sched):
        sched.set_route(("a", "b"), [0, 1], hop_starts=[3.0])
        dup = sched.copy()
        # the hop in dup.link_order must be the same object as in dup.routes
        assert dup.link_order[(0, 1)][0] is dup.routes[("a", "b")].hops[0]

    def test_restore_from(self, sched):
        sched.place_task("a", 0, start=0.0)
        snapshot = sched.copy()
        sched.place_task("b", 1, start=5.0)
        sched.restore_from(snapshot)
        assert not sched.is_scheduled("b")
        assert sched.is_scheduled("a")


class TestRouteObject:
    def test_route_procs_empty_when_local(self):
        assert Route(("a", "b"), []).procs == []
        assert Route(("a", "b"), []).is_local

    def test_contiguity_check(self):
        h1 = MessageHop(("a", "b"), 0, 1)
        h2 = MessageHop(("a", "b"), 1, 2)
        h3 = MessageHop(("a", "b"), 3, 2)
        assert Route(("a", "b"), [h1, h2]).check_contiguous()
        assert not Route(("a", "b"), [h1, h3]).check_contiguous()

    def test_hop_link_canonical(self):
        assert MessageHop(("a", "b"), 3, 1).link == (1, 3)
